// ocasta_cli — command-line driver over trace files and TTKV snapshots.
//
// Subcommands:
//   record <machine> <trace.tsv>          simulate a Table I machine, save its trace
//   stats <trace.tsv>                     per-application trace statistics
//   cluster <trace.tsv> <app> [options]   cluster one application's keys
//       --threshold <corr>   correlation threshold (default 2.0)
//       --window <seconds>   co-modification window (default 1.0)
//       --linkage <complete|single|average>
//       --threads <n>        correlation worker threads (0 = all cores)
//   snapshot <trace.tsv> <app> <out.ttkv> build + persist the app's TTKV
//   history <snapshot.ttkv> <key>         dump a key's version history
//   repair --scenario <1-16> [options]    run a Table III error end-to-end
//       --strategy <dfs|bfs>  --spurious <n>  --tuned
//   serve [options]                       run the ocastad TTKV daemon
//       --port <n>      TCP port (default 7341, 0 = ephemeral)
//       --shards <n>    engine shard count (default 8)
//       --window <s>    online-clustering window seconds (default 1.0)
//       --port-file <p> write the bound port to a file (for scripts)
//       --data-dir <d>  durable mode: write-ahead log + snapshots in <d>;
//                       restart replays them (acked writes survive kill -9)
//       --fsync <p>     off | batch (default, group commit) | always
//       --checkpoint-interval <s>  periodic snapshot+log-truncation (0 = off)
//       --io-threads <n>  epoll worker event loops (default 1, 0 = per-core)
//       --max-conns <n>   open-connection cap; excess connections get a
//                         graceful error reply (default 1024, 0 = unlimited)
//       --idle-timeout <s>  close idle connections (default 300, 0 = never)
//       --metrics-port <n>  serve Prometheus text on 127.0.0.1:<n>/metrics
//                           (also enables the METRICS wire op; 0 = off)
//       --metrics           enable metrics without the HTTP listener
//       --slow-op-micros <n>  log requests slower than n µs (0 = off)
//       --slow-op-log-per-sec <n>  slow-op line rate cap (default 10)
//       --follow <host:port>  run as a FOLLOWER of that leader: bootstrap,
//                             tail its WAL, serve reads, redirect mutations
//                             (NOT_LEADER); requires --data-dir
//       --follower-id <id>  stable quorum identity (default from data-dir)
//       --acks <leader|quorum>  mutation ack level (default leader)
//       --quorum-followers <n>  follower acks required under quorum (default 1)
//       --quorum-timeout <s>    quorum wait before failing the write (default 5)
//   promote [--host --port]               flip a follower into a leader
//   replstat [--host --port]              print a daemon's replication state
//       (role guess, last LSN via a REPLICATE status probe) — scripts use
//       it to promote the most caught-up follower
//   metrics [--host --port] [--prom] [--watch]
//       fetch the daemon's metrics snapshot over the wire (METRICS op);
//       default renders a table (latencies in µs), --prom renders
//       Prometheus text, --watch refreshes every 2 seconds
//   remote <op> [args] [--backend --host --port --shards --window
//                       --data-dir --fsync]
//       drive any api::Engine backend (default: remote, a running ocastad);
//       --data-dir makes a local/sharded backend durable
//       ops: ping, put <key> <value>, get <key>, delete <key> [--force],
//            history <key>, stats, list [prefix], cluster [--threshold
//            --linkage], compact <seconds>, snapshot <out.ttkv>, shutdown
//   batch [--backend --host --port --shards --window --data-dir --fsync]
//       newline-delimited commands from stdin applied as ONE BatchCmd
//       (trace replay through any backend); lines:
//            ping | put <key> <value> | get <key> | getat <key> <seconds>
//            | delete <key> [force] | history <key> | list [prefix]
//            | stats | compact <seconds> | cluster <threshold> [linkage]
//   list                                  machines, applications, scenarios
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ground_truth.h"
#include "api/backends.h"
#include "api/engine.h"
#include "apps/catalog.h"
#include "client/ttkv_client.h"
#include "clustering/engine.h"
#include "common/error.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/strings.h"
#include "common/table.h"
#include "logger/recorder.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "parsers/config_map.h"
#include "scenarios/harness.h"
#include "server/server.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace ocasta;

namespace {

constexpr uint16_t kDefaultPort = 7341;

int Usage() {
  std::fprintf(
      stderr,
      "usage: ocasta_cli "
      "<record|stats|cluster|snapshot|history|repair|serve|promote|replstat|remote|batch|"
      "metrics|list> ...\n"
      "run 'ocasta_cli list' to see machines, applications and scenarios\n");
  return 2;
}

// Shared --backend/--host/--port/--shards/--window/--data-dir/--fsync
// parsing for the subcommands that drive an api::Engine.
api::BackendOptions BackendFromArgs(const Args& args, const std::string& default_backend) {
  api::BackendOptions options;
  options.backend = args.Get("backend", default_backend);
  options.num_shards = static_cast<size_t>(args.GetInt("shards", 8));
  options.cluster_window_seconds = args.GetDouble("window", 1.0);
  options.host = args.Get("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(args.GetInt("port", kDefaultPort));
  options.data_dir = args.Get("data-dir", "");
  options.fsync = args.Get("fsync", "batch");
  return options;
}

TTKV TtkvFromTraceFile(const std::string& path, const std::string& app) {
  const TraceLog trace = TraceLog::ParseText(ReadFile(path));
  TTKV ttkv;
  TtkvRecorder recorder(ttkv);
  for (const AccessEvent& event : trace.events()) {
    if (event.app == app) recorder.OnAccess(event);
  }
  if (ttkv.num_keys() == 0) throw Error("trace has no events for application: " + app);
  return ttkv;
}

int CmdRecord(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const MachineTrace machine = GenerateMachineTrace(ProfileByName(args.positional[0]));
  WriteFile(args.positional[1], machine.trace.ToText());
  const TraceStats stats = machine.trace.Stats();
  std::printf("wrote %s: %zu events, %llu writes over %.0f days, apps:",
              args.positional[1].c_str(), machine.trace.size(),
              static_cast<unsigned long long>(stats.writes), stats.days);
  for (const std::string& app : machine.trace.AppNames()) std::printf(" [%s]", app.c_str());
  std::printf("\n");
  return 0;
}

int CmdStats(const Args& args) {
  if (args.positional.size() != 1) return Usage();
  const TraceLog trace = TraceLog::ParseText(ReadFile(args.positional[0]));
  TextTable table({"Application", "Days", "Writes", "Deletes", "#Keys"});
  for (const std::string& app : trace.AppNames()) {
    const TraceStats stats = trace.FilterByApp(app).Stats();
    table.add_row({app, StrFormat("%.1f", stats.days), std::to_string(stats.writes),
                   std::to_string(stats.deletes), std::to_string(stats.num_keys)});
  }
  const TraceStats total = trace.Stats();
  table.add_row({"(machine)", StrFormat("%.1f", total.days), std::to_string(total.writes),
                 std::to_string(total.deletes), std::to_string(total.num_keys)});
  std::printf("%s", table.render().c_str());
  return 0;
}

Linkage LinkageFromName(const std::string& name) {
  if (name == "complete") return Linkage::kComplete;
  if (name == "single") return Linkage::kSingle;
  if (name == "average") return Linkage::kAverage;
  throw Error("unknown linkage: " + name);
}

int CmdCluster(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const TTKV ttkv = TtkvFromTraceFile(args.positional[0], args.positional[1]);
  ClusteringParams params;
  params.threshold_correlation = args.GetDouble("threshold", 2.0);
  params.window_seconds = args.GetDouble("window", 1.0);
  params.linkage = LinkageFromName(args.Get("linkage", "complete"));
  params.num_threads = static_cast<int>(args.GetDouble("threads", 1));
  if (params.num_threads < 0) throw Error("--threads must be >= 0 (0 = all cores)");
  const ClusterSet clusters = ClusterKeys(ttkv, params);
  std::printf("%s: %zu keys, %zu clusters (%zu multi-key, avg size %.1f)\n\n",
              args.positional[1].c_str(), ttkv.num_keys(), clusters.size(),
              clusters.multi_cluster_count(), clusters.average_multi_cluster_size());
  for (const KeyCluster& cluster : clusters.clusters()) {
    if (cluster.size() < 2) continue;
    std::printf("cluster (%zu keys, %llu modifications):\n", cluster.size(),
                static_cast<unsigned long long>(cluster.version_count));
    for (uint32_t key : cluster.keys) std::printf("    %s\n", ttkv.key_name(key).c_str());
  }
  return 0;
}

int CmdSnapshot(const Args& args) {
  if (args.positional.size() != 3) return Usage();
  const TTKV ttkv = TtkvFromTraceFile(args.positional[0], args.positional[1]);
  const std::string bytes = ttkv.Serialize();
  WriteFile(args.positional[2], bytes);
  std::printf("wrote %s: %zu keys, %zu bytes\n", args.positional[2].c_str(), ttkv.num_keys(),
              bytes.size());
  return 0;
}

void PrintHistory(const VersionedRecord& record) {
  std::printf("%s: %llu writes, %llu deletions, %llu reads\n", record.key.c_str(),
              static_cast<unsigned long long>(record.write_count),
              static_cast<unsigned long long>(record.delete_count),
              static_cast<unsigned long long>(record.read_count));
  for (const Version& version : record.versions) {
    std::printf("  [%s] %s\n", FormatTimestamp(version.timestamp).c_str(),
                version.is_delete ? "<deleted>" : version.value.ToDisplay().c_str());
  }
}

int CmdHistory(const Args& args) {
  if (args.positional.size() != 2) return Usage();
  const TTKV ttkv = TTKV::Deserialize(ReadFile(args.positional[0]));
  PrintHistory(ttkv.record(args.positional[1]));
  return 0;
}

int CmdRepair(const Args& args) {
  const int id = static_cast<int>(args.GetDouble("scenario", 0));
  if (id < 1 || id > 16) return Usage();
  const ErrorScenario scenario = ScenarioById(id);
  std::printf("case %d: %s (%s on %s)\n", id, scenario.description.c_str(),
              scenario.app.c_str(), scenario.machine.c_str());
  const MachineTrace machine = GenerateMachineTrace(ProfileByName(scenario.machine));
  ScenarioRunOptions options;
  options.strategy = args.Get("strategy", "dfs") == "bfs" ? SearchStrategy::kBfs
                                                          : SearchStrategy::kDfs;
  options.spurious_writes = static_cast<int>(args.GetDouble("spurious", 0));
  options.use_tuned_params = args.Has("tuned");
  const ScenarioRun run = RunScenario(machine, scenario, options);
  std::printf("Ocasta:  %s — %zu trials (%s), %zu screenshots, cluster size %zu\n",
              run.ocasta.fixed ? "FIXED" : "not fixed", run.ocasta.trials_to_fix,
              FormatMinSec(run.ocasta.time_to_fix).c_str(), run.ocasta.unique_screenshots,
              run.offending_cluster_size);
  std::printf("NoClust: %s\n", run.noclust.fixed ? "FIXED" : "not fixed");
  if (!run.ocasta.fixed && scenario.needs_tuning && !options.use_tuned_params) {
    std::printf("hint: this error needs tuning in the paper too — retry with --tuned\n");
  }
  return run.ocasta.fixed ? 0 : 1;
}

int CmdServe(const Args& args) {
  // A client that vanishes mid-reply must surface as a failed send on its
  // own connection, never as a process-killing SIGPIPE (the event loop also
  // sends with MSG_NOSIGNAL; this covers any future plain write).
  ::signal(SIGPIPE, SIG_IGN);
  ServerOptions options;
  options.port = static_cast<uint16_t>(args.GetInt("port", kDefaultPort));
  options.num_shards = static_cast<size_t>(args.GetInt("shards", 8));
  options.cluster_window_seconds = args.GetDouble("window", 1.0);
  options.data_dir = args.Get("data-dir", "");
  options.fsync = args.Get("fsync", "batch");
  options.checkpoint_interval_seconds = args.GetDouble("checkpoint-interval", 0.0);
  options.io_threads = static_cast<size_t>(args.GetInt("io-threads", 1));
  options.max_conns = static_cast<size_t>(args.GetInt("max-conns", 1024));
  options.idle_timeout_seconds = args.GetDouble("idle-timeout", 300.0);
  options.metrics_port = static_cast<uint16_t>(args.GetInt("metrics-port", 0));
  if (args.Has("metrics") && options.metrics == nullptr) {
    options.metrics = std::make_shared<obs::MetricsRegistry>();
  }
  options.slow_op_micros = args.GetDouble("slow-op-micros", 0.0);
  options.slow_op_log_per_sec = args.GetDouble("slow-op-log-per-sec", 10.0);
  const std::string follow = args.Get("follow", "");
  if (!follow.empty()) {
    const size_t colon = follow.rfind(':');
    if (colon == std::string::npos) throw Error("--follow expects host:port");
    options.follow_host = follow.substr(0, colon);
    options.follow_port = static_cast<uint16_t>(std::stoul(follow.substr(colon + 1)));
  }
  options.follower_id = args.Get("follower-id", "");
  options.acks = args.Get("acks", "leader");
  options.quorum_followers = static_cast<size_t>(args.GetInt("quorum-followers", 1));
  options.quorum_timeout_seconds = args.GetDouble("quorum-timeout", 5.0);
  TtkvServer server(options);
  server.Start();
  if (!options.follow_host.empty()) {
    std::printf(
        "ocastad FOLLOWER on 127.0.0.1:%u tailing %s:%u (durable in %s; reads only, "
        "mutations redirect)\n",
        static_cast<unsigned>(server.port()), options.follow_host.c_str(),
        static_cast<unsigned>(options.follow_port), options.data_dir.c_str());
  } else if (options.data_dir.empty()) {
    std::printf("ocastad listening on 127.0.0.1:%u (%zu shards, %zu io threads, in-memory)\n",
                static_cast<unsigned>(server.port()), options.num_shards,
                server.io_threads());
  } else {
    std::printf(
        "ocastad listening on 127.0.0.1:%u (%zu shards, %zu io threads, durable in %s, "
        "fsync=%s)\n",
        static_cast<unsigned>(server.port()), options.num_shards, server.io_threads(),
        options.data_dir.c_str(), options.fsync.c_str());
  }
  if (server.metrics_port() != 0) {
    std::printf("metrics on http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(server.metrics_port()));
  }
  std::fflush(stdout);
  if (args.Has("port-file")) {
    WriteFile(args.Get("port-file", ""), std::to_string(server.port()) + "\n");
  }
  server.Wait();
  std::printf("ocastad stopped after %llu connections\n",
              static_cast<unsigned long long>(server.connections_served()));
  return 0;
}

int CmdPromote(const Args& args) {
  TtkvClient client(args.Get("host", "127.0.0.1"),
                    static_cast<uint16_t>(args.GetInt("port", kDefaultPort)));
  client.Promote();
  std::printf("promoted: daemon at %s:%d now accepts mutations\n",
              args.Get("host", "127.0.0.1").c_str(),
              static_cast<int>(args.GetInt("port", kDefaultPort)));
  return 0;
}

int CmdReplstat(const Args& args) {
  TtkvClient client(args.Get("host", "127.0.0.1"),
                    static_cast<uint16_t>(args.GetInt("port", kDefaultPort)));
  // An anonymous status probe (max_records == 0): the daemon answers with
  // its role and last LSN only, and grants no quorum standing to the
  // empty id.
  const api::ReplicateResult status = client.Replicate("", 0, 0);
  std::printf("role=%s last_lsn=%llu\n", status.follower ? "follower" : "leader",
              static_cast<unsigned long long>(status.leader_lsn));
  return 0;
}

int CmdRemote(const Args& args) {
  if (args.positional.empty()) return Usage();
  const std::string& op = args.positional[0];
  const auto arg = [&](size_t i) -> const std::string& {
    if (i >= args.positional.size()) throw Error("remote " + op + ": missing argument");
    return args.positional[i];
  };
  // The op runs against whichever backend --backend picks; "remote" (the
  // default) talks to a running ocastad, "sharded"/"local" run in-process.
  const std::unique_ptr<api::Engine> engine = api::MakeEngine(BackendFromArgs(args, "remote"));
  if (op == "ping") {
    api::Ping(*engine);
    std::printf("pong\n");
    return 0;
  }
  if (op == "put") {
    api::Put(*engine, arg(1), InferScalar(arg(2)));
    std::printf("ok\n");
    return 0;
  }
  if (op == "get") {
    const std::optional<Value> value = api::Get(*engine, arg(1));
    if (!value.has_value()) {
      std::printf("(absent)\n");
      return 1;
    }
    std::printf("%s\n", value->ToDisplay().c_str());
    return 0;
  }
  if (op == "delete") {
    std::printf("%s\n", api::Delete(*engine, arg(1), 0, args.Has("force")) ? "deleted"
                                                                           : "(absent)");
    return 0;
  }
  if (op == "history") {
    const std::optional<VersionedRecord> record = api::History(*engine, arg(1));
    if (!record.has_value()) throw Error("unknown key: " + arg(1));
    PrintHistory(*record);
    return 0;
  }
  if (op == "stats") {
    const EngineStats stats = api::Stats(*engine);
    std::printf("keys %zu, writes %llu (deletes %llu), reads %llu, ~%zu bytes\n",
                stats.ttkv.num_keys, static_cast<unsigned long long>(stats.ttkv.writes),
                static_cast<unsigned long long>(stats.ttkv.deletes),
                static_cast<unsigned long long>(stats.ttkv.reads), stats.ttkv.size_bytes);
    std::printf("shards %zu, ops served: %llu puts, %llu gets, %llu deletes\n",
                stats.num_shards, static_cast<unsigned long long>(stats.puts),
                static_cast<unsigned long long>(stats.gets),
                static_cast<unsigned long long>(stats.deletes));
    return 0;
  }
  if (op == "list") {
    for (const std::string& key :
         api::ListKeys(*engine, args.positional.size() > 1 ? args.positional[1] : "")) {
      std::printf("%s\n", key.c_str());
    }
    return 0;
  }
  if (op == "cluster") {
    const auto clusters = api::ClusterNow(*engine, args.GetDouble("threshold", 2.0),
                                          LinkageFromName(args.Get("linkage", "complete")));
    for (const NamedCluster& cluster : clusters) {
      if (cluster.keys.size() < 2) continue;
      std::printf("cluster (%zu keys, %llu modifications):\n", cluster.keys.size(),
                  static_cast<unsigned long long>(cluster.version_count));
      for (const std::string& key : cluster.keys) std::printf("    %s\n", key.c_str());
    }
    return 0;
  }
  if (op == "compact") {
    char* end = nullptr;
    const double horizon = std::strtod(arg(1).c_str(), &end);
    if (end == arg(1).c_str() || *end != '\0') {
      throw Error("compact: horizon must be a number in seconds, got: " + arg(1));
    }
    const uint64_t dropped = api::Compact(*engine, Seconds(horizon));
    std::printf("dropped %llu versions\n", static_cast<unsigned long long>(dropped));
    return 0;
  }
  if (op == "snapshot") {
    const std::string bytes = api::Snapshot(*engine).Serialize();
    WriteFile(arg(1), bytes);
    std::printf("wrote %s: %zu bytes\n", arg(1).c_str(), bytes.size());
    return 0;
  }
  if (op == "shutdown") {
    api::Shutdown(*engine);
    std::printf("ocastad shutting down\n");
    return 0;
  }
  return Usage();
}

// --- batch: newline-delimited commands from stdin, one BatchCmd ------------

double ParseNumber(const std::string& what, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw Error(what + ": expected a number, got: " + text);
  }
  return value;
}

api::Command ParseBatchLine(const std::vector<std::string>& tokens) {
  const std::string& op = tokens[0];
  const auto want = [&](size_t n) {
    if (tokens.size() - 1 != n) {
      throw Error("batch " + op + ": expected " + std::to_string(n) + " argument(s)");
    }
  };
  if (op == "ping") {
    want(0);
    return api::PingCmd{};
  }
  if (op == "put") {
    want(2);
    return api::PutCmd{tokens[1], InferScalar(tokens[2]), 0};
  }
  if (op == "get") {
    want(1);
    return api::GetCmd{tokens[1]};
  }
  if (op == "getat") {
    want(2);
    return api::GetAtCmd{tokens[1], Seconds(ParseNumber("batch getat", tokens[2]))};
  }
  if (op == "delete") {
    if (tokens.size() == 3 && tokens[2] == "force") return api::DeleteCmd{tokens[1], 0, true};
    want(1);
    return api::DeleteCmd{tokens[1], 0, false};
  }
  if (op == "history") {
    want(1);
    return api::HistoryCmd{tokens[1]};
  }
  if (op == "list") {
    if (tokens.size() == 1) return api::ListKeysCmd{""};
    want(1);
    return api::ListKeysCmd{tokens[1]};
  }
  if (op == "stats") {
    want(0);
    return api::StatsCmd{};
  }
  if (op == "compact") {
    want(1);
    return api::CompactCmd{Seconds(ParseNumber("batch compact", tokens[1]))};
  }
  if (op == "cluster") {
    api::ClusterNowCmd cmd;
    if (tokens.size() < 2 || tokens.size() > 3) throw Error("batch cluster: <threshold> [linkage]");
    cmd.threshold_correlation = ParseNumber("batch cluster", tokens[1]);
    if (tokens.size() == 3) cmd.linkage = LinkageFromName(tokens[2]);
    return cmd;
  }
  throw Error("batch: unknown command: " + op);
}

void PrintBatchResult(const api::Result& result) {
  if (const auto* err = std::get_if<api::ErrorResult>(&result.op)) {
    std::printf("error: %s\n", err->message.c_str());
    return;
  }
  if (std::holds_alternative<api::OkResult>(result.op)) {
    std::printf("ok\n");
    return;
  }
  if (const auto* existed = std::get_if<api::ExistedResult>(&result.op)) {
    std::printf("%s\n", existed->existed ? "deleted" : "(absent)");
    return;
  }
  if (const auto* value = std::get_if<api::ValueResult>(&result.op)) {
    std::printf("%s\n", value->value.has_value() ? value->value->ToDisplay().c_str()
                                                 : "(absent)");
    return;
  }
  if (const auto* history = std::get_if<api::HistoryResult>(&result.op)) {
    if (!history->record.has_value()) {
      std::printf("(absent)\n");
    } else {
      PrintHistory(*history->record);
    }
    return;
  }
  if (const auto* keys = std::get_if<api::KeysResult>(&result.op)) {
    std::printf("%zu keys", keys->keys.size());
    for (const std::string& key : keys->keys) std::printf(" %s", key.c_str());
    std::printf("\n");
    return;
  }
  if (const auto* stats = std::get_if<api::StatsResult>(&result.op)) {
    std::printf("keys %zu, writes %llu, reads %llu\n", stats->stats.ttkv.num_keys,
                static_cast<unsigned long long>(stats->stats.ttkv.writes),
                static_cast<unsigned long long>(stats->stats.ttkv.reads));
    return;
  }
  if (const auto* compact = std::get_if<api::CompactResult>(&result.op)) {
    std::printf("dropped %llu versions\n",
                static_cast<unsigned long long>(compact->versions_dropped));
    return;
  }
  if (const auto* clusters = std::get_if<api::ClustersResult>(&result.op)) {
    std::printf("%zu clusters\n", clusters->clusters.size());
    return;
  }
  std::printf("(unprintable result)\n");
}

int CmdBatch(const Args& args) {
  const std::unique_ptr<api::Engine> engine = api::MakeEngine(BackendFromArgs(args, "remote"));
  api::BatchCmd batch;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    batch.commands.push_back(ParseBatchLine(SplitNonEmpty(trimmed, ' ')));
  }
  if (batch.commands.empty()) {
    std::printf("batch: no commands on stdin\n");
    return 0;
  }
  // One ApplyBatch: a single BATCH frame on the remote backend, grouped
  // shard locking on the sharded backend.
  const std::vector<api::Result> results = engine->ApplyBatch(std::span(batch.commands));
  int failures = 0;
  for (const api::Result& result : results) {
    if (api::IsError(result)) ++failures;
    PrintBatchResult(result);
  }
  if (failures > 0) {
    std::fprintf(stderr, "batch: %d of %zu commands failed\n", failures, results.size());
    return 1;
  }
  return 0;
}

// --- metrics: fetch + render the daemon's metrics snapshot -----------------

std::string RenderLabels(const obs::Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

// Latency histograms are recorded in nanoseconds (the *_ns suffix is the
// contract); humans read microseconds.
std::string RenderQuantile(const std::string& name, double v) {
  if (name.ends_with("_ns")) return StrFormat("%.1fus", v / 1000.0);
  return StrFormat("%.0f", v);
}

void PrintSnapshotTables(const obs::MetricsSnapshot& snap) {
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TextTable table({"Metric", "Value"});
    for (const auto& c : snap.counters) {
      table.add_row({c.name + RenderLabels(c.labels), std::to_string(c.value)});
    }
    for (const auto& g : snap.gauges) {
      table.add_row({g.name + RenderLabels(g.labels), std::to_string(g.value)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  if (!snap.histograms.empty()) {
    TextTable table({"Histogram", "Count", "p50", "p90", "p99", "p99.9", "Max"});
    for (const auto& h : snap.histograms) {
      table.add_row({h.name + RenderLabels(h.labels), std::to_string(h.stats.count),
                     RenderQuantile(h.name, h.stats.p50), RenderQuantile(h.name, h.stats.p90),
                     RenderQuantile(h.name, h.stats.p99), RenderQuantile(h.name, h.stats.p999),
                     RenderQuantile(h.name, h.stats.max)});
    }
    std::printf("%s", table.render().c_str());
  }
  if (snap.empty()) {
    std::printf("(empty snapshot — is the daemon running with --metrics-port/--metrics?)\n");
  }
}

int CmdMetrics(const Args& args) {
  api::BackendOptions backend = BackendFromArgs(args, "remote");
  const std::unique_ptr<api::Engine> engine = api::MakeEngine(backend);
  const bool prom = args.Has("prom");
  const bool watch = args.Has("watch");
  for (;;) {
    const obs::MetricsSnapshot snap = api::Metrics(*engine);
    if (watch) std::printf("\033[2J\033[H");
    if (prom) {
      std::printf("%s", obs::WritePrometheusText(snap).c_str());
    } else {
      PrintSnapshotTables(snap);
    }
    if (!watch) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(2));
  }
  return 0;
}

int CmdList() {
  std::printf("machines (Table I):\n");
  for (const MachineProfile& profile : Table1Profiles()) {
    std::printf("  %-16s %3d days, apps:", profile.name.c_str(), profile.days);
    for (const std::string& app : profile.apps) std::printf(" [%s]", app.c_str());
    std::printf("\n");
  }
  std::printf("\napplications (Table II):\n");
  for (const AppSchema& app : AllAppSchemas()) {
    std::printf("  %-22s %-8s %4zu keys\n", app.name.c_str(), StoreKindName(app.store),
                app.total_keys());
  }
  std::printf("\nscenarios (Table III):\n");
  for (const ErrorScenario& scenario : AllScenarios()) {
    std::printf("  %2d. [%s] %s\n", scenario.id, scenario.app.c_str(),
                scenario.description.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args = Args::Parse(argc, argv, 2);
  try {
    if (command == "record") return CmdRecord(args);
    if (command == "stats") return CmdStats(args);
    if (command == "cluster") return CmdCluster(args);
    if (command == "snapshot") return CmdSnapshot(args);
    if (command == "history") return CmdHistory(args);
    if (command == "repair") return CmdRepair(args);
    if (command == "serve") return CmdServe(args);
    if (command == "promote") return CmdPromote(args);
    if (command == "replstat") return CmdReplstat(args);
    if (command == "remote") return CmdRemote(args);
    if (command == "batch") return CmdBatch(args);
    if (command == "metrics") return CmdMetrics(args);
    if (command == "list") return CmdList();
  } catch (const std::exception& e) {
    // Error and all its subclasses, plus stray std::stod/stoll failures:
    // the CLI contract is `error: ...` + exit 1, never a crash.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
