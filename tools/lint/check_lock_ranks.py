#!/usr/bin/env python3
"""Lock-rank table linter for the lockdep layer.

src/common/lockdep.h declares one `LockClass` per project mutex, each
with a unique acquisition rank, and docs/TOOLING.md carries the human-
readable rank table that explains WHY each lock sits where it does.
Two project invariants keep that system trustworthy:

  1. Ranks are unique (rank 0, kUnranked, is the explicit opt-out) — a
     duplicate rank silently disables the order check between two locks.
  2. The doc table and the source agree — a lock added or re-ranked in
     code without its rationale row is undocumented policy.

This linter parses both and fails on: duplicate source ranks, source
classes missing from the doc table, doc rows naming no source class
(stale docs), and rank mismatches between the two.

Exit codes: 0 = consistent, 1 = violation, 2 = parse error (a pattern
that stops matching must fail loudly, not vacuously pass).

Stdlib-only: runs as a ctest entry and in CI with bare python3.
"""

import argparse
import re
import sys
from collections import defaultdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_LOCKDEP = REPO_ROOT / "src" / "common" / "lockdep.h"
DEFAULT_DOC = REPO_ROOT / "docs" / "TOOLING.md"

CLASS_RE = re.compile(
    r'inline\s+constexpr\s+LockClass\s+(k\w+)\s*\{\s*"([^"]+)"\s*,\s*(\w+)\s*\}\s*;'
)
# Doc table row: | <rank> | `<lock name>` | rationale |
DOC_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`([^`]+)`\s*\|")


def fail_parse(msg):
    print(f"check_lock_ranks: PARSE ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def parse_lockdep(path):
    text = Path(path).read_text()
    classes = {}  # constant name -> (lock name, rank)
    for m in CLASS_RE.finditer(text):
        const, name, rank = m.group(1), m.group(2), m.group(3)
        if rank == "kUnranked":
            rank_value = 0
        elif rank.isdigit():
            rank_value = int(rank)
        else:
            fail_parse(f"{const} in {path} has non-literal rank {rank!r}")
        if const in classes:
            fail_parse(f"duplicate LockClass constant {const} in {path}")
        classes[const] = (name, rank_value)
    if not classes:
        fail_parse(f"no 'inline constexpr LockClass' declarations found in {path}")
    return classes


def parse_doc(path):
    text = Path(path).read_text()
    rows = {}  # lock name -> rank
    for line in text.splitlines():
        m = DOC_ROW_RE.match(line.strip())
        if m is None:
            continue
        rank, name = int(m.group(1)), m.group(2)
        if name in rows:
            fail_parse(f"doc rank table in {path} lists {name} twice")
        rows[name] = rank
    if not rows:
        fail_parse(f"no rank-table rows (| N | `lock` | ...) found in {path}")
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--lockdep", default=str(DEFAULT_LOCKDEP))
    ap.add_argument("--doc", default=str(DEFAULT_DOC))
    args = ap.parse_args()

    classes = parse_lockdep(args.lockdep)
    doc = parse_doc(args.doc)

    problems = []

    # 1. Duplicate ranks in source (kUnranked 0 is the sanctioned opt-out).
    by_rank = defaultdict(list)
    for const, (name, rank) in classes.items():
        if rank != 0:
            by_rank[rank].append(f"{const} ({name})")
    for rank, holders in sorted(by_rank.items()):
        if len(holders) > 1:
            problems.append(
                f"DUPLICATE RANK {rank}: {', '.join(sorted(holders))} — a shared "
                f"rank disables the lock-order check between these locks"
            )

    # 2/3/4. Source vs doc table.
    source_names = {name: rank for name, rank in classes.values()}
    for name, rank in sorted(source_names.items()):
        if rank == 0:
            continue  # unranked classes are outside the doc table's contract
        if name not in doc:
            problems.append(
                f"UNDOCUMENTED: {name} (rank {rank}) has no row in the "
                f"TOOLING.md rank table — every ranked lock needs its "
                f"ordering rationale documented"
            )
        elif doc[name] != rank:
            problems.append(
                f"RANK MISMATCH: {name} is rank {rank} in lockdep.h but "
                f"rank {doc[name]} in TOOLING.md"
            )
    for name, rank in sorted(doc.items()):
        if name not in source_names:
            problems.append(
                f"STALE DOC ROW: TOOLING.md documents {name} (rank {rank}) "
                f"but lockdep.h declares no such LockClass"
            )

    if problems:
        print(
            f"check_lock_ranks: rank table inconsistent "
            f"({args.lockdep} vs {args.doc}):",
            file=sys.stderr,
        )
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1

    ranked = sum(1 for _, r in classes.values() if r != 0)
    print(f"check_lock_ranks: OK ({ranked} ranked classes, doc table consistent)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
