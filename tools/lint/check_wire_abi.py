#!/usr/bin/env python3
"""Wire-ABI compatibility linter for the ocasta binary protocol.

The protocol's compatibility story (docs/PROTOCOL.md) rests on a few
numbers never silently changing: OpTag / ResultTag enumerator values,
the protocol-version window, the batch-depth cap, and the frame-size
cap. A renumbered or removed tag breaks every deployed client; an
accidentally widened version window un-gates framing changes. This
linter parses those constants straight out of the headers and compares
them against the committed golden file (docs/wire_abi.golden).

ANY difference fails — removals and renumberings because they break the
wire, additions because they must be reviewed and then explicitly
blessed by regenerating the golden (run with --update). The diagnostic
names the exact symbol and both values so the failure is actionable.

Exit codes: 0 = golden matches, 1 = mismatch, 2 = parse/setup error
(a header that stops parsing must fail loudly, not vacuously pass).

Stdlib-only by design: it runs as a ctest entry and in CI with no
dependencies beyond python3.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DEFAULT_CODEC = REPO_ROOT / "src" / "api" / "codec.h"
DEFAULT_WIRE = REPO_ROOT / "src" / "server" / "wire.h"
DEFAULT_GOLDEN = REPO_ROOT / "docs" / "wire_abi.golden"

# The scalar constants that are wire ABI. Maps golden key -> (file kind,
# C++ identifier). Values are evaluated as C++-ish integer expressions
# (only shifts and arithmetic appear in practice).
SCALARS = [
    ("kProtocolVersion", "codec", "kProtocolVersion"),
    ("kMinProtocolVersion", "codec", "kMinProtocolVersion"),
    ("kMaxBatchDepth", "codec", "kMaxBatchDepth"),
    ("kMaxFrameBytes", "wire", "kMaxFrameBytes"),
]

ENUMS = [("OpTag", "codec"), ("ResultTag", "codec")]


def fail_parse(msg):
    print(f"check_wire_abi: PARSE ERROR: {msg}", file=sys.stderr)
    sys.exit(2)


def eval_cpp_int(expr):
    """Evaluate a constant C++ integer expression (literals, <<, +, *)."""
    # Strip suffixes like u/ul/ull from integer literals.
    cleaned = re.sub(r"\b(0[xX][0-9a-fA-F]+|\d+)[uUlL]*", r"\1", expr)
    if not re.fullmatch(r"[\s0-9a-fA-FxX<>+*()-]+", cleaned):
        fail_parse(f"unsupported constant expression: {expr!r}")
    try:
        return int(eval(cleaned, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception:
        fail_parse(f"cannot evaluate constant expression: {expr!r}")


def parse_scalar(text, name, path):
    m = re.search(
        r"inline\s+constexpr\s+\w+\s+" + re.escape(name) + r"\s*=\s*([^;]+);",
        text,
    )
    if m is None:
        fail_parse(f"constant {name} not found in {path}")
    return eval_cpp_int(m.group(1).strip())


def parse_enum(text, name, path):
    m = re.search(
        r"enum\s+class\s+" + re.escape(name) + r"\s*:\s*\w+\s*\{(.*?)\};",
        text,
        re.DOTALL,
    )
    if m is None:
        fail_parse(f"enum class {name} not found in {path}")
    body = re.sub(r"//[^\n]*", "", m.group(1))  # strip comments
    entries = {}
    for part in body.split(","):
        part = part.strip()
        if not part:
            continue
        em = re.fullmatch(r"(k\w+)\s*=\s*(\d+)", part)
        if em is None:
            fail_parse(f"{name} enumerator {part!r} in {path} must be 'kName = N'")
        entries[em.group(1)] = int(em.group(2))
    if not entries:
        fail_parse(f"enum class {name} in {path} parsed to zero enumerators")
    return entries


def extract(codec_path, wire_path):
    texts = {
        "codec": Path(codec_path).read_text(),
        "wire": Path(wire_path).read_text(),
    }
    paths = {"codec": codec_path, "wire": wire_path}
    lines = []
    for key, kind, ident in SCALARS:
        lines.append(f"{key} = {parse_scalar(texts[kind], ident, paths[kind])}")
    for enum_name, kind in ENUMS:
        for entry, value in sorted(
            parse_enum(texts[kind], enum_name, paths[kind]).items(),
            key=lambda kv: kv[1],
        ):
            lines.append(f"{enum_name}::{entry} = {value}")
    return lines


def parse_golden_lines(lines):
    out = {}
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.partition(" = ")
        if not value:
            fail_parse(f"malformed golden line: {line!r}")
        out[key] = value.strip()
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--codec", default=str(DEFAULT_CODEC))
    ap.add_argument("--wire", default=str(DEFAULT_WIRE))
    ap.add_argument("--golden", default=str(DEFAULT_GOLDEN))
    ap.add_argument(
        "--update",
        action="store_true",
        help="regenerate the golden from the current headers and exit",
    )
    args = ap.parse_args()

    current = extract(args.codec, args.wire)
    golden_path = Path(args.golden)

    if args.update:
        header = (
            "# Wire-ABI golden: the protocol constants deployed clients depend on.\n"
            "# Regenerate ONLY for a reviewed protocol change:\n"
            "#   python3 tools/lint/check_wire_abi.py --update\n"
            "# (workflow: docs/PROTOCOL.md, 'Wire-ABI golden' section)\n"
        )
        golden_path.write_text(header + "\n".join(current) + "\n")
        print(f"check_wire_abi: regenerated {golden_path}")
        return 0

    if not golden_path.exists():
        fail_parse(f"golden file missing: {golden_path} (run --update to create it)")

    want = parse_golden_lines(golden_path.read_text().splitlines())
    have = parse_golden_lines(current)

    problems = []
    for key in want:
        if key not in have:
            problems.append(
                f"REMOVED: {key} (golden says {key} = {want[key]}; removing or "
                f"renaming a wire constant breaks deployed clients)"
            )
        elif have[key] != want[key]:
            problems.append(
                f"CHANGED: {key} = {have[key]} but golden says {key} = {want[key]} "
                f"(renumbering breaks deployed clients)"
            )
    for key in have:
        if key not in want:
            problems.append(
                f"ADDED: {key} = {have[key]} not in golden (new wire surface "
                f"must be reviewed, then blessed with --update)"
            )

    if problems:
        print(f"check_wire_abi: wire ABI drifted from {golden_path}:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        print(
            "check_wire_abi: if this change is an intentional, reviewed protocol "
            "change, regenerate with: python3 tools/lint/check_wire_abi.py --update",
            file=sys.stderr,
        )
        return 1

    print(f"check_wire_abi: OK ({len(have)} constants match {golden_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
