#include "analysis/ground_truth.h"

#include <algorithm>

namespace ocasta {

GroundTruth GroundTruth::FromSchema(const AppSchema& schema) {
  GroundTruth truth;
  int next_id = 0;
  for (const SchemaGroup& group : schema.groups) {
    if (group.related && group.keys.size() > 1) {
      const int id = next_id++;
      for (const KeySpec& key : group.keys) {
        truth.group_of_[key.path] = id;
        truth.members_[id].push_back(key.path);
      }
    } else {
      // Independent keys (singles, noise, and every key of a coincidence
      // group) are their own singleton groups.
      for (const KeySpec& key : group.keys) {
        truth.group_of_[key.path] = next_id++;
      }
    }
  }
  for (const KeySpec& key : schema.readonly_keys) {
    truth.group_of_[key.path] = next_id++;
  }
  return truth;
}

int GroundTruth::GroupOf(const std::string& key) const {
  auto it = group_of_.find(key);
  if (it != group_of_.end()) return it->second;
  // Unknown keys hash to unique negative ids derived from the name, so two
  // distinct unknown keys never compare related.
  return -1 - static_cast<int>(std::hash<std::string>{}(key) % 1000003);
}

bool GroundTruth::AllRelated(const std::vector<std::string>& keys) const {
  if (keys.size() < 2) return true;
  const int id = GroupOf(keys.front());
  for (const std::string& key : keys) {
    if (GroupOf(key) != id) return false;
  }
  // Two unknown keys could collide on the hashed id only if equal strings.
  return id >= 0 || keys.size() == 1;
}

std::vector<std::string> GroundTruth::GroupMembers(const std::string& key) const {
  const int id = GroupOf(key);
  auto it = members_.find(id);
  return it == members_.end() ? std::vector<std::string>{} : it->second;
}

AccuracyReport EvaluateClusters(const std::string& app, const ClusterSet& clusters,
                                const TTKV& ttkv, const GroundTruth& truth) {
  AccuracyReport report;
  report.app = app;
  report.keys_accessed = ttkv.num_keys();
  report.total_clusters = clusters.size();

  for (size_t c = 0; c < clusters.size(); ++c) {
    const KeyCluster& cluster = clusters.cluster(c);
    if (cluster.size() < 2) continue;
    ++report.multi_clusters;

    std::vector<std::string> names;
    names.reserve(cluster.size());
    for (uint32_t id : cluster.keys) names.push_back(ttkv.key_name(id));

    ClusterJudgement judgement;
    judgement.cluster_index = c;
    if (!truth.AllRelated(names)) {
      judgement.verdict = ClusterVerdict::kOversized;
      ++report.oversized;
    } else {
      // Correct. Exact iff it contains every *modified* key of its group.
      ++report.correct_multi;
      judgement.verdict = ClusterVerdict::kExact;
      for (const std::string& member : truth.GroupMembers(names.front())) {
        if (std::find(names.begin(), names.end(), member) != names.end()) continue;
        if (!ttkv.contains(member)) continue;
        const VersionedRecord& record = ttkv.record(member);
        if (record.write_count + record.delete_count > 0) {
          judgement.verdict = ClusterVerdict::kUndersized;
          ++report.undersized;
          break;
        }
      }
    }
    report.judgements.push_back(judgement);
  }
  return report;
}

}  // namespace ocasta
