#include "analysis/stats.h"

#include <algorithm>
#include <cmath>

namespace ocasta {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = Mean(xs);
  double total = 0.0;
  for (double x : xs) total += (x - mean) * (x - mean);
  return std::sqrt(total / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace ocasta
