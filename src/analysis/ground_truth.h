// Ground-truth comparison for Ocasta's clusters.
//
// The paper judged each multi-key cluster by hand: "We conservatively
// consider a cluster as correctly identified if and only if there is a
// dependency relationship among every configuration setting of the
// cluster." Our schemas carry dependency ground truth, so the same
// judgement is computed: a cluster is correct iff all members belong to
// one related schema group; clusters mixing groups (or touching keys from
// `related == false` coincidence groups) are oversized; clusters that are
// strict subsets of their group's modified keys are undersized (but still
// correct under the paper's conservative definition).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "apps/schema.h"
#include "clustering/cluster_set.h"
#include "ttkv/ttkv.h"

namespace ocasta {

enum class ClusterVerdict : uint8_t {
  kExact = 0,       // Equals its group's modified keys.
  kUndersized = 1,  // Strict subset of one related group (still "correct").
  kOversized = 2,   // Spans several groups or touches unrelated keys.
};

class GroundTruth {
 public:
  // Builds the key → dependency-group map from a schema. Keys of unrelated
  // (coincidence) groups, noise keys and readonly keys each get their own
  // singleton group id.
  static GroundTruth FromSchema(const AppSchema& schema);

  // Group id for a key; unknown keys get a unique implicit id (-1 family),
  // never equal to another key's id.
  int GroupOf(const std::string& key) const;

  // True when every pair of keys is dependency-related (same group).
  bool AllRelated(const std::vector<std::string>& keys) const;

  // All keys of the group containing `key` (empty for independent keys).
  std::vector<std::string> GroupMembers(const std::string& key) const;

 private:
  std::map<std::string, int> group_of_;
  std::map<int, std::vector<std::string>> members_;
};

struct ClusterJudgement {
  size_t cluster_index = 0;
  ClusterVerdict verdict = ClusterVerdict::kExact;
};

// Table II-style accuracy summary for one application.
struct AccuracyReport {
  std::string app;
  size_t keys_accessed = 0;    // "#Keys": every key seen in the TTKV.
  size_t total_clusters = 0;   // Second number of "#Clusters".
  size_t multi_clusters = 0;   // First number of "#Clusters".
  size_t correct_multi = 0;    // Multi-key clusters judged correct.
  size_t oversized = 0;
  size_t undersized = 0;       // Correct-but-incomplete multi clusters.
  std::vector<ClusterJudgement> judgements;  // Multi-key clusters only.

  // Paper accuracy: correct multi / total multi (NaN-free: 0 when none).
  double accuracy() const {
    return multi_clusters == 0
               ? 0.0
               : static_cast<double>(correct_multi) / static_cast<double>(multi_clusters);
  }
};

// Judges every multi-key cluster of `clusters` against ground truth.
// `ttkv` provides key names and the set of modified keys (for exactness).
AccuracyReport EvaluateClusters(const std::string& app, const ClusterSet& clusters,
                                const TTKV& ttkv, const GroundTruth& truth);

}  // namespace ocasta
