// Small statistics helpers used by the bench harness.
#pragma once

#include <vector>

namespace ocasta {

double Mean(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
// Linear-interpolated percentile, p in [0, 100].
double Percentile(std::vector<double> xs, double p);

}  // namespace ocasta
