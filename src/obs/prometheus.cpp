#include "obs/prometheus.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>

namespace ocasta::obs {
namespace {

bool NameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool NameChar(char c) { return NameStartChar(c) || (c >= '0' && c <= '9'); }

bool LabelStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool LabelChar(char c) { return LabelStartChar(c) || (c >= '0' && c <= '9'); }

// Appends `{k="v",...}` (or nothing when empty) with sanitized/deduped
// label names and escaped values. `reserved` names (e.g. "quantile" on a
// summary sample) are dropped from the user labels; `extra_key`, when
// non-empty, is appended last and is assumed already valid.
void AppendLabels(std::string* out, const Labels& labels,
                  std::string_view reserved, std::string_view extra_key,
                  std::string_view extra_value) {
  std::set<std::string> seen;
  std::string body;
  for (const auto& [k, v] : labels) {
    std::string name = SanitizeLabelName(k);
    if (name == reserved || !seen.insert(name).second) continue;
    if (!body.empty()) body += ',';
    body += name;
    body += "=\"";
    body += EscapeLabelValue(v);
    body += '"';
  }
  if (!extra_key.empty()) {
    if (!body.empty()) body += ',';
    body += extra_key;
    body += "=\"";
    body += extra_value;
    body += '"';
  }
  if (body.empty()) return;
  *out += '{';
  *out += body;
  *out += '}';
}

void AppendTypeLine(std::string* out, std::set<std::string>* typed,
                    const std::string& family, std::string_view type) {
  if (!typed->insert(family).second) return;
  *out += "# TYPE ";
  *out += family;
  *out += ' ';
  *out += type;
  *out += '\n';
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += NameChar(c) ? c : '_';
  if (out.empty() || !NameStartChar(out[0])) out.insert(out.begin(), '_');
  return out;
}

std::string SanitizeLabelName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) out += LabelChar(c) ? c : '_';
  if (out.empty() || !LabelStartChar(out[0])) out.insert(out.begin(), '_');
  // "__"-prefixed label names are reserved for Prometheus internals.
  if (out.size() >= 2 && out[0] == '_' && out[1] == '_') out[0] = 'x';
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string FormatPrometheusValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string WritePrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> typed;

  for (const auto& c : snapshot.counters) {
    const std::string family = SanitizeMetricName(c.name);
    AppendTypeLine(&out, &typed, family, "counter");
    out += family;
    AppendLabels(&out, c.labels, /*reserved=*/"", "", "");
    out += ' ';
    out += FormatU64(c.value);
    out += '\n';
  }

  for (const auto& g : snapshot.gauges) {
    const std::string family = SanitizeMetricName(g.name);
    AppendTypeLine(&out, &typed, family, "gauge");
    out += family;
    AppendLabels(&out, g.labels, /*reserved=*/"", "", "");
    out += ' ';
    out += FormatI64(g.value);
    out += '\n';
  }

  for (const auto& h : snapshot.histograms) {
    const std::string family = SanitizeMetricName(h.name);
    AppendTypeLine(&out, &typed, family, "summary");
    const struct {
      const char* q;
      double v;
    } quantiles[] = {{"0.5", h.stats.p50},
                     {"0.9", h.stats.p90},
                     {"0.99", h.stats.p99},
                     {"0.999", h.stats.p999}};
    for (const auto& [q, v] : quantiles) {
      out += family;
      AppendLabels(&out, h.labels, /*reserved=*/"quantile", "quantile", q);
      out += ' ';
      out += FormatPrometheusValue(v);
      out += '\n';
    }
    out += family;
    out += "_sum";
    AppendLabels(&out, h.labels, /*reserved=*/"", "", "");
    out += ' ';
    out += FormatPrometheusValue(h.stats.sum);
    out += '\n';
    out += family;
    out += "_count";
    AppendLabels(&out, h.labels, /*reserved=*/"", "", "");
    out += ' ';
    out += FormatU64(h.stats.count);
    out += '\n';

    const std::string max_family = family + "_max";
    AppendTypeLine(&out, &typed, max_family, "gauge");
    out += max_family;
    AppendLabels(&out, h.labels, /*reserved=*/"", "", "");
    out += ' ';
    out += FormatPrometheusValue(h.stats.max);
    out += '\n';
  }

  return out;
}

}  // namespace ocasta::obs
