// Structured slow-op trace log.
//
// When the daemon runs with --slow-op-micros N, any request whose
// server-side latency (read-return to reply-queued) exceeds N emits ONE
// structured line through a rate-limited sink — per-request tracing for
// the tail without a collector:
//
//   slow_op op=PUT key=9c35d0a1e2b44f77 shard=3 bytes=153 conn=21
//       total_us=1834.2 queue_us=210.4 apply_us=96.0 wal_us=1502.1
//   (one line on the wire; wrapped here for width)
//
// (key is the FNV-1a hash of the key, not the key itself — slow-op lines
// may end up in shared logs and must not leak payloads; "-" for
// cross-shard ops. queue_us counts time the frame waited behind earlier
// frames of the same read batch; apply_us is engine time excluding WAL;
// wal_us is append + fsync wait.)
//
// Rate limiting is GCRA on a single atomic theoretical-arrival-time: at
// most `max_per_sec` lines per second with a one-second burst, lock-free
// on the emission path. Suppressed lines are counted (exported as the
// ocasta_slow_ops_suppressed gauge) so a flood is still visible.
//
// The timing breakdown crosses layers (event loop -> server -> engine ->
// WAL) without changing any interface: OpTrace is a thread_local the
// event loop arms before dispatching a frame; the server and the durable
// engine fill in their pieces iff it is armed. Off (no --slow-op-micros)
// every participating site is one thread_local bool load.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ocasta::obs {

// Per-thread scratch for one in-flight request's trace fields. Armed
// (active=true) by the event loop only when a SlowOpLog is configured.
struct OpTrace {
  bool active = false;
  const char* op = "?";
  bool has_key = false;
  uint64_t key_hash = 0;
  uint32_t shard = 0;
  double apply_us = 0.0;
  double wal_us = 0.0;

  void Reset() { *this = OpTrace{}; }

  static OpTrace& Current();
};

struct SlowOpRecord {
  const char* op = "?";
  bool has_key = false;
  uint64_t key_hash = 0;
  uint32_t shard = 0;
  size_t bytes = 0;  // Request frame payload size.
  int conn_fd = -1;
  double total_us = 0.0;
  double queue_us = 0.0;
  double apply_us = 0.0;
  double wal_us = 0.0;
};

class SlowOpLog {
 public:
  using Sink = std::function<void(const std::string& line)>;
  using NowFn = std::function<int64_t()>;  // Monotonic nanoseconds.

  // threshold_micros <= 0 disables the log (enabled() == false; callers
  // skip all tracing). Default sink writes one line to stderr; the now
  // function is injectable so the rate limiter is unit-testable.
  explicit SlowOpLog(double threshold_micros, double max_lines_per_sec = 10.0,
                     Sink sink = {}, NowFn now = {});

  bool enabled() const { return threshold_micros_ > 0; }
  double threshold_micros() const { return threshold_micros_; }

  // Formats and emits unless rate-limited; returns true when emitted.
  // Lock-free (one CAS loop on the limiter state).
  bool Log(const SlowOpRecord& rec);

  uint64_t logged() const { return logged_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

  static std::string Format(const SlowOpRecord& rec);

 private:
  bool Admit(int64_t now_ns);

  double threshold_micros_;
  int64_t emission_interval_ns_;  // 1e9 / max_lines_per_sec; 0 = unlimited.
  int64_t burst_ns_;              // One second's worth of tokens.
  Sink sink_;
  NowFn now_;
  std::atomic<int64_t> tat_{0};  // GCRA theoretical arrival time.
  std::atomic<uint64_t> logged_{0};
  std::atomic<uint64_t> suppressed_{0};
};

}  // namespace ocasta::obs
