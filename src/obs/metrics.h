// MetricsRegistry — named, labeled counters / gauges / latency histograms.
//
// Usage model: a component that wants instrumentation is handed an
// optional `MetricsRegistry*` (null = metrics off, and every
// instrumentation site collapses to one branch — no clock reads, no
// atomics). At construction time it resolves the instruments it needs:
//
//   obs::Counter& puts =
//       registry->GetCounter("ocasta_engine_ops_total", {{"op", "put"}});
//
// and on the hot path only touches the returned handle. The handles are
// pointer-stable for the registry's lifetime (instruments are never
// removed), so components cache raw pointers.
//
// Identity is (name, label set): Get* with the same name and the same
// label pairs (order-insensitive — labels are canonicalized by sorting
// on key) returns the SAME instrument, so two subsystems incrementing
// "ocasta_wal_records_total" share one counter. Requesting an existing
// name with a different instrument kind throws Error.
//
// Locking: registration and Snapshot() serialize on one ordered_mutex
// (lockdep rank kObsRegistryClass = 97 — above every engine/WAL/loop
// lock because LocalEngine answers METRICS while holding its engine
// mutex; nothing is ever acquired under it). The record path — Counter::
// Inc, Gauge::Set, LatencyHistogram::Record — never sees this mutex:
// it is purely relaxed atomics on pre-resolved handles.
//
// There is deliberately no global default registry: the daemon creates
// one in ServerOptions and threads it through engine / WAL / event loop,
// which keeps tests hermetic and makes "metrics off" a true null.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/lockdep.h"
#include "obs/histogram.h"

namespace ocasta::obs {

// Label pairs, canonicalized (sorted by key) inside the registry.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonic counter. Inc-only by contract; the exposition layer renders
// it as a Prometheus counter.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Point-in-time signed value (live connections, queue depth, ...).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  // Ratchets upward only — used for peaks (e.g. peak connections).
  void SetMax(int64_t v) {
    int64_t prev = v_.load(std::memory_order_relaxed);
    while (v > prev &&
           !v_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// A point-in-time copy of every instrument, sorted by (name, labels).
// This is the payload of the METRICS wire op (encoded by api/codec) and
// the input to the Prometheus text writer — plain data, no atomics.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    Labels labels;
    uint64_t value = 0;
    bool operator==(const CounterEntry&) const = default;
  };
  struct GaugeEntry {
    std::string name;
    Labels labels;
    int64_t value = 0;
    bool operator==(const GaugeEntry&) const = default;
  };
  struct HistogramEntry {
    std::string name;
    Labels labels;
    HistogramStats stats;
    bool operator==(const HistogramEntry&) const = default;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  bool operator==(const MetricsSnapshot&) const = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned references stay valid for the registry's
  // lifetime. Throws common::Error (via api error machinery) when the
  // name already exists as a different instrument kind.
  Counter& GetCounter(std::string_view name, const Labels& labels = {})
      OCASTA_EXCLUDES(mu_);
  Gauge& GetGauge(std::string_view name, const Labels& labels = {})
      OCASTA_EXCLUDES(mu_);
  LatencyHistogram& GetHistogram(std::string_view name,
                                 const Labels& labels = {})
      OCASTA_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const OCASTA_EXCLUDES(mu_);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    std::string name;
    Labels labels;  // Canonical (key-sorted).
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Instrument& GetOrCreate(std::string_view name, const Labels& labels,
                          Kind kind) OCASTA_EXCLUDES(mu_);

  mutable lockdep::ordered_mutex mu_{lockdep::kObsRegistryClass};
  // Keyed by name + '\x1f' + canonical labels; std::map keeps snapshots
  // sorted and never invalidates the unique_ptr targets.
  std::map<std::string, std::unique_ptr<Instrument>> instruments_
      OCASTA_GUARDED_BY(mu_);
};

}  // namespace ocasta::obs
