#include "obs/histogram.h"

#include <bit>
#include <vector>

namespace ocasta::obs {

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kSub) return static_cast<size_t>(value);
  // e = position of the top set bit (>= kSubBits here). The octave
  // [2^e, 2^(e+1)) maps to group e - kSubBits + 1; the next kSubBits bits
  // below the top bit select the sub-bucket.
  const int e = 63 - std::countl_zero(value);
  const int shift = e - static_cast<int>(kSubBits);
  const size_t sub = static_cast<size_t>(value >> shift) & (kSub - 1);
  return (static_cast<size_t>(e) - kSubBits + 1) * kSub + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  const size_t group = index / kSub;
  const size_t sub = index % kSub;
  if (group == 0) return sub;  // Exact buckets: value == index.
  const int shift = static_cast<int>(group) - 1;
  const uint64_t lower = (static_cast<uint64_t>(kSub) + sub) << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

size_t LatencyHistogram::ShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local const uint32_t id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}

HistogramStats LatencyHistogram::Snapshot() const {
  std::vector<uint64_t> merged(kBuckets, 0);
  HistogramStats stats;
  uint64_t sum = 0;
  uint64_t max = 0;
  for (const Shard& s : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      merged[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    sum += s.sum.load(std::memory_order_relaxed);
    const uint64_t m = s.max.load(std::memory_order_relaxed);
    if (m > max) max = m;
  }
  for (uint64_t c : merged) stats.count += c;
  stats.sum = static_cast<double>(sum);
  if (stats.count == 0) return stats;
  stats.max = static_cast<double>(max);

  // One cumulative walk finds all quantiles: the q-quantile is the value
  // at rank ceil(q * count) (1-based), reported as its bucket's upper
  // bound.
  struct Target {
    double q;
    double* out;
  };
  const Target targets[] = {{0.50, &stats.p50},
                            {0.90, &stats.p90},
                            {0.99, &stats.p99},
                            {0.999, &stats.p999}};
  size_t t = 0;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets && t < 4; ++i) {
    cumulative += merged[i];
    while (t < 4) {
      const auto rank = static_cast<uint64_t>(
          targets[t].q * static_cast<double>(stats.count) + 0.999999);
      if (cumulative < (rank == 0 ? 1 : rank)) break;
      *targets[t].out = static_cast<double>(BucketUpperBound(i));
      ++t;
    }
  }
  return stats;
}

}  // namespace ocasta::obs
