// Lock-free log-bucketed latency histogram (HDR-style).
//
// Design targets, in order:
//   1. Record() is safe from any number of threads with NO locks and NO
//      stronger-than-relaxed atomics — it must be cheap enough to sit on
//      the engine apply path and the event-loop frame path.
//   2. ~2 significant digits of value resolution across the full uint64
//      range. Buckets are logarithmic with kSub sub-buckets per octave,
//      so the relative width of any bucket is at most 1/kSub (3.125%).
//   3. Snapshot() never blocks recorders, and recorders never contend on
//      a single cache line: counts are striped across kShards per-thread
//      shards (thread id hashed to a shard) merged at read time.
//
// The bucket layout (kSubBits = 5, kSub = 32):
//   * values < 32 get one exact bucket each (indices 0..31);
//   * every octave [2^e, 2^(e+1)) for e >= 5 is split into 32 equal
//     sub-buckets of width 2^(e-5) (indices 32..1919).
// Total: (64 - 5 + 1) * 32 = 1920 buckets, 15 KiB of counters per shard.
//
// Percentiles are reported as the UPPER bound of the bucket holding the
// target rank, so the estimate is always >= the true order statistic and
// at most 3.125% above it. Values are unit-agnostic uint64s; by
// convention the instrumentation in this codebase records NANOSECONDS
// for latencies (metric names end in _ns) and plain counts for widths.
//
// Snapshot() is not a consistent cut: recorders may land between shard
// reads, so count/sum/max can each be "as of" slightly different
// instants. For monitoring this is the standard trade and is documented
// in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace ocasta::obs {

// The merged view a histogram reports. Quantiles and max are in the same
// unit the recorder used; sum is the exact sum of recorded values (mod
// 2^64, which at nanosecond scale wraps after ~584 years of recorded
// time).
struct HistogramStats {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;

  bool operator==(const HistogramStats&) const = default;
};

// Deterministic 1-in-kHotPathSamplePeriod gate for hot-path latency
// timing. On sub-microsecond paths (engine apply, event-loop frame) the
// two clock reads around the operation cost more than the operation's
// bucket add, so those call sites time only every Nth call and skip the
// clock entirely otherwise. Only the latency measurement is sampled —
// counters stay exact. Systematic sampling keeps quantile estimates
// unbiased for these op streams, and the FIRST call is always sampled so
// a single operation already yields a histogram point. One sampler per
// thread (or per single-threaded owner); it is not thread-safe.
inline constexpr uint32_t kHotPathSamplePeriod = 16;

class HotPathSampler {
 public:
  bool operator()() { return (tick_++ % kHotPathSamplePeriod) == 0; }

 private:
  uint32_t tick_ = 0;
};

class LatencyHistogram {
 public:
  static constexpr size_t kSubBits = 5;
  static constexpr size_t kSub = size_t{1} << kSubBits;          // 32
  static constexpr size_t kBuckets = (64 - kSubBits + 1) * kSub; // 1920
  static constexpr size_t kShards = 4;  // Power of two (shard index masks).

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Lock-free, wait-free except the (rare, bounded-retry) max CAS.
  void Record(uint64_t value) {
    Shard& s = shards_[ShardIndex()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t prev = s.max.load(std::memory_order_relaxed);
    while (value > prev &&
           !s.max.compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
    }
  }

  // Merges all shards and computes the stats. Safe concurrently with
  // Record(); see the header comment for the consistency caveat.
  HistogramStats Snapshot() const;

  // Bucket math, exposed for the boundary unit tests.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

 private:
  // Each shard on its own cache lines so recorders hashed to different
  // shards never false-share.
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };

  static size_t ShardIndex();

  std::array<Shard, kShards> shards_{};
};

}  // namespace ocasta::obs
