// Prometheus text exposition (format version 0.0.4) for MetricsSnapshot.
//
// Counters and gauges map directly. Histograms are exported as the
// `summary` type — pre-computed quantiles plus `_sum`/`_count` — rather
// than native `histogram` buckets: the internal layout is 1920 log
// buckets per instrument, which would bloat every scrape for no gain
// since quantiles are already exact to ~3% server-side. The bucket max
// rides along as a separate `<name>_max` gauge family.
//
// The writer is total: ANY snapshot — arbitrary bytes in names, label
// keys and values, NaN/Inf stats — produces output every line of which
// satisfies the exposition grammar. This is fuzz-enforced
// (fuzz/fuzz_metrics_expo.cpp):
//   * metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]*,
//   * label names to [a-zA-Z_][a-zA-Z0-9_]* (and deduplicated, keeping
//     the first occurrence, since duplicate label names in one sample
//     are rejected by real scrapers; `quantile` is reserved on summary
//     samples),
//   * label values are escaped (\ -> \\, " -> \", newline -> \n),
//   * non-finite doubles render as NaN / +Inf / -Inf.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ocasta::obs {

// Renders the whole snapshot, one `# TYPE` line per (sanitized) family.
std::string WritePrometheusText(const MetricsSnapshot& snapshot);

// Exposed for tests/fuzzing.
std::string SanitizeMetricName(std::string_view name);
std::string SanitizeLabelName(std::string_view name);
std::string EscapeLabelValue(std::string_view value);
std::string FormatPrometheusValue(double value);

}  // namespace ocasta::obs
