// MetricsHttpServer — a deliberately tiny HTTP/1.0-style listener whose
// only job is answering GET /metrics with Prometheus text.
//
// Why not on the main event loop: the event loop speaks the
// length-prefixed binary protocol and its framing/backpressure machinery
// is protocol-agnostic only above the frame layer; teaching it HTTP line
// framing for one endpoint would complicate the hot path that
// observability exists to measure. A scrape every 15s is one accept +
// one read + one write — a dedicated blocking thread is the simpler,
// strictly-isolated design (it shares nothing with the loop but the
// registry pointer, and the registry read path is lock-free for
// recorders).
//
// Scope (intentional):
//   * binds 127.0.0.1 only (like the daemon itself — exposing metrics
//     beyond the host is a reverse proxy's job);
//   * serial: one connection at a time, close after each response;
//   * bounded reads with a receive timeout so a stuck client cannot
//     wedge the thread past a few seconds;
//   * GET/HEAD on any path returns the metrics page (Prometheus itself
//     always scrapes /metrics); anything else gets 400/405.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace ocasta::obs {

class MetricsHttpServer {
 public:
  using RenderFn = std::function<std::string()>;

  // `render` produces the response body per scrape (typically
  // WritePrometheusText(registry->Snapshot())). port 0 = ephemeral.
  MetricsHttpServer(uint16_t port, RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  // Binds + listens + starts the serving thread. Throws common Error on
  // bind failure (port taken).
  void Start();

  // Idempotent; joins the serving thread.
  void Stop();

  // Port actually bound; valid after Start().
  uint16_t port() const { return port_; }

  uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void Serve();
  void HandleConn(int fd);

  RenderFn render_;
  uint16_t requested_port_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> scrapes_{0};
};

}  // namespace ocasta::obs
