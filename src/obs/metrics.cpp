#include "obs/metrics.h"

#include <algorithm>
#include <mutex>

#include "common/error.h"

namespace ocasta::obs {
namespace {

Labels Canonical(const Labels& labels) {
  Labels out = labels;
  std::sort(out.begin(), out.end());
  return out;
}

// '\x1f' (unit separator) cannot collide with printable metric names, so
// the flat key is injective over (name, canonical labels).
std::string InstrumentKey(std::string_view name, const Labels& canonical) {
  std::string key(name);
  for (const auto& [k, v] : canonical) {
    key += '\x1f';
    key += k;
    key += '\x1f';
    key += v;
  }
  return key;
}

}  // namespace

MetricsRegistry::Instrument& MetricsRegistry::GetOrCreate(
    std::string_view name, const Labels& labels, Kind kind) {
  Labels canonical = Canonical(labels);
  std::string key = InstrumentKey(name, canonical);
  const lockdep::guard lock(mu_);
  auto it = instruments_.find(key);
  if (it == instruments_.end()) {
    auto inst = std::make_unique<Instrument>();
    inst->name = std::string(name);
    inst->labels = std::move(canonical);
    inst->kind = kind;
    switch (kind) {
      case Kind::kCounter:
        inst->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst->histogram = std::make_unique<LatencyHistogram>();
        break;
    }
    it = instruments_.emplace(std::move(key), std::move(inst)).first;
  } else if (it->second->kind != kind) {
    throw Error("metric '" + std::string(name) +
                "' already registered as a different instrument kind");
  }
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return *GetOrCreate(name, labels, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return *GetOrCreate(name, labels, Kind::kGauge).gauge;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name,
                                                const Labels& labels) {
  return *GetOrCreate(name, labels, Kind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  const lockdep::guard lock(mu_);
  for (const auto& [key, inst] : instruments_) {
    switch (inst->kind) {
      case Kind::kCounter:
        snap.counters.push_back(
            {inst->name, inst->labels, inst->counter->value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({inst->name, inst->labels, inst->gauge->value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back(
            {inst->name, inst->labels, inst->histogram->Snapshot()});
        break;
    }
  }
  return snap;
}

}  // namespace ocasta::obs
