#include "obs/slow_log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace ocasta::obs {

OpTrace& OpTrace::Current() {
  thread_local OpTrace trace;
  return trace;
}

namespace {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void StderrSink(const std::string& line) {
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

SlowOpLog::SlowOpLog(double threshold_micros, double max_lines_per_sec,
                     Sink sink, NowFn now)
    : threshold_micros_(threshold_micros),
      emission_interval_ns_(
          max_lines_per_sec > 0
              ? static_cast<int64_t>(1e9 / max_lines_per_sec)
              : 0),
      burst_ns_(int64_t{1000000000}),
      sink_(sink ? std::move(sink) : Sink(StderrSink)),
      now_(now ? std::move(now) : NowFn(MonotonicNowNs)) {}

bool SlowOpLog::Admit(int64_t now_ns) {
  if (emission_interval_ns_ <= 0) return true;
  int64_t tat = tat_.load(std::memory_order_relaxed);
  for (;;) {
    const int64_t base = std::max(tat, now_ns);
    const int64_t new_tat = base + emission_interval_ns_;
    if (new_tat - now_ns > burst_ns_) return false;
    if (tat_.compare_exchange_weak(tat, new_tat, std::memory_order_relaxed)) {
      return true;
    }
  }
}

bool SlowOpLog::Log(const SlowOpRecord& rec) {
  if (!Admit(now_())) {
    suppressed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  logged_.fetch_add(1, std::memory_order_relaxed);
  sink_(Format(rec));
  return true;
}

std::string SlowOpLog::Format(const SlowOpRecord& rec) {
  char key[24];
  if (rec.has_key) {
    std::snprintf(key, sizeof(key), "%016" PRIx64, rec.key_hash);
  } else {
    key[0] = '-';
    key[1] = '\0';
  }
  char shard[16];
  if (rec.has_key) {
    std::snprintf(shard, sizeof(shard), "%" PRIu32, rec.shard);
  } else {
    shard[0] = '-';
    shard[1] = '\0';
  }
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "slow_op op=%s key=%s shard=%s bytes=%zu conn=%d "
                "total_us=%.1f queue_us=%.1f apply_us=%.1f wal_us=%.1f",
                rec.op != nullptr ? rec.op : "?", key, shard, rec.bytes,
                rec.conn_fd, rec.total_us, rec.queue_us, rec.apply_us,
                rec.wal_us);
  return buf;
}

}  // namespace ocasta::obs
