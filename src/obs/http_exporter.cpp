#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace ocasta::obs {
namespace {

constexpr size_t kMaxRequestBytes = 8192;

// The scrape response never merits partial-write handling subtleties:
// write until done or error.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpResponse(int status, const char* reason,
                         const std::string& body, bool include_body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out +=
      "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
      "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (include_body) out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(uint16_t port, RenderFn render)
    : render_(std::move(render)), requested_port_(port) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(ErrnoMessage("metrics socket", errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrnoMessage("metrics bind 127.0.0.1:" +
                                 std::to_string(requested_port_),
                             err));
  }
  if (::listen(listen_fd_, 16) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(ErrnoMessage("metrics listen", err));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  thread_ = std::thread([this] { Serve(); });
}

void MetricsHttpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks the accept(); the serving thread sees stopping_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void MetricsHttpServer::Serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_relaxed)) return;
      // EMFILE and friends: back off rather than spin.
      struct timespec ts = {0, 50 * 1000 * 1000};
      ::nanosleep(&ts, nullptr);
      continue;
    }
    HandleConn(fd);
    ::close(fd);
  }
}

void MetricsHttpServer::HandleConn(int fd) {
  // Bound how long a dribbling client can hold the (single) serving slot.
  struct timeval tv = {2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[2048];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // Timeout, reset, or EOF before a full request: drop it.
    }
    request.append(buf, static_cast<size_t>(n));
  }

  const size_t line_end = request.find("\r\n");
  const std::string line =
      request.substr(0, line_end == std::string::npos ? 0 : line_end);
  const bool is_get = line.rfind("GET ", 0) == 0;
  const bool is_head = line.rfind("HEAD ", 0) == 0;
  if (!is_get && !is_head) {
    SendAll(fd, HttpResponse(405, "Method Not Allowed", "method not allowed\n",
                             true));
  } else {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    SendAll(fd, HttpResponse(200, "OK", render_(), /*include_body=*/is_get));
  }
  ::shutdown(fd, SHUT_WR);
  // Drain briefly so the peer sees the full response before RST.
  while (::recv(fd, buf, sizeof(buf), 0) > 0) {
  }
}

}  // namespace ocasta::obs
