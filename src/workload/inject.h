// Configuration-error injection.
//
// The paper: "we simulate configuration errors by injecting a write into
// the trace at the point in time at which we want the error to occur, that
// changes the offending setting to the erroneous value. If the
// configuration error is caused by presence or absence of the offending
// setting, we insert or delete the setting in the trace."
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace ocasta {

// One corrupted key: a wrong value, or deletion when bad_value is nullopt.
struct Corruption {
  std::string key;
  std::optional<Value> bad_value;
};

struct InjectionSpec {
  std::string app;
  TimeMicros at = 0;
  std::vector<Corruption> corruptions;
  // Extra wrong writes appended after the injection (10-minute spacing),
  // simulating the user's own failed fix attempts (Figure 2b's parameter).
  int spurious_writes = 0;
};

// Inserts the erroneous events into the machine's trace (preserving time
// order) and recomputes the application's final live configuration.
void InjectError(MachineTrace& machine, const InjectionSpec& spec);

// Application configuration as of just before `t` (initial config plus all
// events with timestamp < t) — the state a correct fix must restore for
// the corrupted keys.
ConfigMap SnapshotAt(const MachineTrace& machine, const std::string& app, TimeMicros t);

}  // namespace ocasta
