#include "workload/inject.h"

#include "common/error.h"

namespace ocasta {

namespace {

AccessEvent MakeEvent(const MachineTrace& machine, const InjectionSpec& spec,
                      const Corruption& corruption, TimeMicros t) {
  AccessEvent event;
  event.timestamp = t;
  event.app = spec.app;
  event.store = machine.SchemaFor(spec.app).store;
  event.key = corruption.key;
  if (corruption.bad_value) {
    event.op = AccessOp::kWrite;
    event.value = *corruption.bad_value;
  } else {
    event.op = AccessOp::kDelete;
  }
  return event;
}

}  // namespace

void InjectError(MachineTrace& machine, const InjectionSpec& spec) {
  if (spec.corruptions.empty()) throw Error("injection needs at least one corruption");
  std::vector<AccessEvent> injected;
  TimeMicros t = spec.at;
  for (const Corruption& corruption : spec.corruptions) {
    injected.push_back(MakeEvent(machine, spec, corruption, t));
    t += Seconds(0.2);  // Within one burst/window, like a real mis-change.
  }
  // The user's failed fix attempts: rewrite the wrong values again, later.
  for (int s = 0; s < spec.spurious_writes; ++s) {
    TimeMicros when = spec.at + Minutes(10) * (s + 1);
    for (const Corruption& corruption : spec.corruptions) {
      if (!corruption.bad_value) continue;
      injected.push_back(MakeEvent(machine, spec, corruption, when));
      when += Seconds(0.2);
    }
  }

  machine.trace.InsertEvents(injected);
  machine.final_configs[spec.app] =
      ReplayToConfig(machine.initial_configs.at(spec.app), machine.trace, spec.app);
}

ConfigMap SnapshotAt(const MachineTrace& machine, const std::string& app, TimeMicros t) {
  return ReplayToConfig(machine.initial_configs.at(app),
                        machine.trace.FilterByTime(0, t), app);
}

}  // namespace ocasta
