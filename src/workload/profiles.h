// Machine profiles reproducing the paper's Table I deployments.
//
// The paper collected traces from 5 Windows desktops and 24 Linux lab
// machines (aggregated to 4 Linux users). Each profile parameterises the
// usage simulator to land in the same regime as one Table I row: trace
// length, hosted applications, session intensity, read volume, write
// volume, and total key population (including OS background churn beyond
// the 11 studied applications).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "configstore/config_store.h"

namespace ocasta {

struct MachineProfile {
  std::string name;           // Table I row name ("Windows 7", "Linux-1", ...).
  int days = 30;
  std::vector<std::string> apps;  // Table II application names hosted here.

  double sessions_per_day = 6.0;
  // Read volume: expected reads of each application key per session
  // (registry apps are read constantly; file-backed apps only on load).
  double reads_per_key_per_session = 3.0;
  // Scales every group's changes_per_day (low-activity machines like
  // Linux-3 see few configuration changes).
  double config_activity_scale = 1.0;

  // OS-background key population (registry/GConf churn outside the studied
  // applications): total keys and how many of them are frequently written.
  size_t background_keys = 0;
  size_t background_churn_keys = 0;
  double background_reads_per_key_per_session = 0.3;

  StoreKind background_store = StoreKind::kRegistry;
  uint64_t seed = 1;
};

// The nine Table I machines, in paper order.
std::vector<MachineProfile> Table1Profiles();

// Profile by Table I row name; throws Error when unknown.
MachineProfile ProfileByName(const std::string& name);

}  // namespace ocasta
