// The desktop-usage simulator.
//
// Substitutes for the paper's 18-84 day deployments on real desktops: it
// drives each machine's applications through their configuration stores —
// registry/GConf accesses through the interception layer, file-backed
// configs through the flush-diff logger — over simulated days of sessions,
// producing a trace with the same statistical structure the paper's
// clustering consumes:
//   - dependency groups written together in sub-second bursts,
//   - occasional partial updates (undersized-cluster source),
//   - settings-dialog bursts touching several groups within the 1-second
//     timestamp granularity (oversized-cluster source),
//   - frequent non-configuration churn (MRU rotations, window geometry),
//   - rare software-update sweeps rewriting many keys at once,
//   - read volumes matching Table I (recorded as bulk counters).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "apps/schema.h"
#include "logger/recorder.h"
#include "logger/trace.h"
#include "ttkv/ttkv.h"
#include "workload/profiles.h"

namespace ocasta {

// Everything one deployment produces.
struct MachineTrace {
  MachineProfile profile;
  std::vector<AppSchema> schemas;  // Hosted applications (plus "System").
  TraceLog trace;                  // Time-ordered writes/deletes (+ rare reads).
  std::map<std::string, ConfigMap> initial_configs;
  std::map<std::string, ConfigMap> final_configs;
  // Bulk read counters per app per key (traces contain millions of reads;
  // they are not stored as individual events).
  std::map<std::string, std::map<std::string, uint64_t>> read_counts;
  TimeMicros end_time = 0;

  const AppSchema& SchemaFor(const std::string& app) const;
};

// Simulates one machine's deployment.
MachineTrace GenerateMachineTrace(const MachineProfile& profile);

// Same, with explicit application schemas (unit tests use small custom
// apps; the default overload loads the catalog apps named by the profile).
MachineTrace GenerateMachineTrace(const MachineProfile& profile,
                                  std::vector<AppSchema> schemas);

// Rebuilds one application's TTKV from a machine trace: write/delete events
// recorded at (by default) second granularity plus bulk read counters.
TTKV BuildAppTtkv(const MachineTrace& machine, const std::string& app, bool quantize = true);

// Machine-wide TTKV across all applications (the Table I "TTKV" row).
TTKV BuildMachineTtkv(const MachineTrace& machine, bool quantize = true);

// Per-application TTKV aggregated across machines, as the paper aggregates
// per-user histories. Machines are shifted onto disjoint time ranges so
// cross-machine writes can never fall into one co-modification window.
TTKV BuildAppTtkvAcrossMachines(const std::vector<const MachineTrace*>& machines,
                                const std::string& app, bool quantize = true);

// Applies an application's write/delete events on top of an initial
// configuration (used to materialise post-injection live state).
ConfigMap ReplayToConfig(const ConfigMap& initial, const TraceLog& trace,
                         const std::string& app);

}  // namespace ocasta
