#include "workload/keydist.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ocasta {

KeyDist KeyDistByName(const std::string& name) {
  if (name == "uniform") return KeyDist::kUniform;
  if (name == "zipf") return KeyDist::kZipf;
  throw Error("unknown key distribution: " + name + " (want uniform|zipf)");
}

const char* KeyDistName(KeyDist dist) {
  return dist == KeyDist::kUniform ? "uniform" : "zipf";
}

KeyChooser::KeyChooser(KeyDist dist, size_t num_keys, double theta)
    : dist_(dist), num_keys_(num_keys) {
  if (num_keys == 0) throw Error("KeyChooser needs at least one key");
  if (dist_ == KeyDist::kZipf) {
    if (theta <= 0) throw Error("zipf theta must be positive");
    cdf_.resize(num_keys);
    double total = 0.0;
    for (size_t rank = 0; rank < num_keys; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank + 1), theta);
      cdf_[rank] = total;
    }
    for (double& c : cdf_) c /= total;
  }
}

size_t KeyChooser::Next(Rng& rng) const {
  if (dist_ == KeyDist::kUniform) return rng.next_below(num_keys_);
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return std::min(static_cast<size_t>(it - cdf_.begin()), num_keys_ - 1);
}

}  // namespace ocasta
