// Key-choice distributions for load generation.
//
// The load-generator bench picks which key each simulated client touches
// next. Uniform choice models the spread-out churn of desktop traces;
// Zipf(theta) models the skewed popularity real KV front-ends see (a small
// set of hot settings absorbing most traffic). Draws come from the shared
// deterministic Rng so runs are reproducible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ocasta {

enum class KeyDist : uint8_t {
  kUniform = 0,
  kZipf = 1,
};

// "uniform" | "zipf"; throws Error otherwise.
KeyDist KeyDistByName(const std::string& name);
const char* KeyDistName(KeyDist dist);

class KeyChooser {
 public:
  // For kZipf, `theta` > 0 is the skew exponent (weights 1/rank^theta;
  // 0.99 is the YCSB default). Ignored for kUniform.
  KeyChooser(KeyDist dist, size_t num_keys, double theta = 0.99);

  size_t num_keys() const { return num_keys_; }

  // Next key index in [0, num_keys).
  size_t Next(Rng& rng) const;

 private:
  KeyDist dist_;
  size_t num_keys_;
  std::vector<double> cdf_;  // Zipf only: cumulative weights, normalized.
};

}  // namespace ocasta
