#include "workload/profiles.h"

#include "apps/catalog.h"
#include "common/error.h"

namespace ocasta {

std::vector<MachineProfile> Table1Profiles() {
  std::vector<MachineProfile> profiles;

  {  // Windows 7: 42 days, 6.76M reads, 67.72K writes, 4,611 keys.
    MachineProfile m;
    m.name = "Windows 7";
    m.days = 42;
    m.apps = {kOutlook, kWord, kInternetExplorer};
    m.sessions_per_day = 8;
    m.reads_per_key_per_session = 12;
    m.background_keys = 4200;
    m.background_churn_keys = 65;
    m.background_reads_per_key_per_session = 3.5;
    m.seed = 1071;
    profiles.push_back(m);
  }
  {  // Windows Vista: 53 days, 3.46M reads, 20.5K writes, 14,673 keys.
    MachineProfile m;
    m.name = "Windows Vista";
    m.days = 53;
    m.apps = {kExplorer};
    m.sessions_per_day = 5;
    m.reads_per_key_per_session = 10;
    m.background_keys = 14300;
    m.background_churn_keys = 26;
    m.background_reads_per_key_per_session = 0.9;
    m.seed = 2053;
    profiles.push_back(m);
  }
  {  // Windows Vista-2: 18 days, 15.08M reads, 224.64K writes, 1,123 keys.
    MachineProfile m;
    m.name = "Windows Vista-2";
    m.days = 18;
    m.apps = {kMediaPlayer};
    m.sessions_per_day = 10;
    m.reads_per_key_per_session = 40;
    m.background_keys = 950;
    m.background_churn_keys = 410;
    m.background_reads_per_key_per_session = 80;
    m.seed = 3018;
    profiles.push_back(m);
  }
  {  // Windows XP: 25 days, 22.80M reads, 311.9K writes, 14,667 keys.
    MachineProfile m;
    m.name = "Windows XP";
    m.days = 25;
    m.apps = {kMediaPlayer, kPaint, kExplorer};
    m.sessions_per_day = 10;
    m.reads_per_key_per_session = 30;
    m.background_keys = 14100;
    m.background_churn_keys = 410;
    m.background_reads_per_key_per_session = 6;
    m.seed = 4025;
    profiles.push_back(m);
  }
  {  // Windows XP-2: 32 days, 26.76M reads, 268.96K writes, 19,501 keys.
    MachineProfile m;
    m.name = "Windows XP-2";
    m.days = 32;
    m.apps = {kExplorer};
    m.sessions_per_day = 9;
    m.reads_per_key_per_session = 25;
    m.background_keys = 19200;
    m.background_churn_keys = 310;
    m.background_reads_per_key_per_session = 4.5;
    m.seed = 5032;
    profiles.push_back(m);
  }
  {  // Linux-1: 25 days, 91.52K reads, 3.34K writes, 1,660 keys (GConf).
    MachineProfile m;
    m.name = "Linux-1";
    m.days = 25;
    m.apps = {kEvolution, kEyeOfGnome, kGnomeEdit};
    m.sessions_per_day = 5;
    m.reads_per_key_per_session = 2.2;
    m.background_keys = 1460;
    m.background_churn_keys = 9;
    m.background_reads_per_key_per_session = 0.3;
    m.background_store = StoreKind::kGconf;
    m.seed = 6025;
    profiles.push_back(m);
  }
  {  // Linux-2: 84 days, 8.15K reads, 0.48K writes, 35 keys (Chrome files).
    MachineProfile m;
    m.name = "Linux-2";
    m.days = 84;
    m.apps = {kChrome};
    m.sessions_per_day = 2;
    m.reads_per_key_per_session = 1.4;
    m.config_activity_scale = 0.8;
    m.background_keys = 0;
    m.background_store = StoreKind::kGconf;
    m.seed = 7084;
    profiles.push_back(m);
  }
  {  // Linux-3: 46 days, 52.41K reads, 0.44K writes, 706 keys (Acrobat file).
    MachineProfile m;
    m.name = "Linux-3";
    m.days = 46;
    m.apps = {kAcrobat};
    m.sessions_per_day = 2;
    m.reads_per_key_per_session = 0.76;
    m.config_activity_scale = 0.04;  // Light user: few configuration changes.
    m.background_keys = 0;
    m.background_store = StoreKind::kGconf;
    m.seed = 8046;
    profiles.push_back(m);
  }
  {  // Linux-4: 64 days, 507.07K reads, 5.43K writes, 751 keys (Acrobat file).
    MachineProfile m;
    m.name = "Linux-4";
    m.days = 64;
    m.apps = {kAcrobat};
    m.sessions_per_day = 4;
    m.reads_per_key_per_session = 2.6;
    m.config_activity_scale = 1.0;
    m.background_keys = 0;
    m.background_store = StoreKind::kGconf;
    m.seed = 9064;
    profiles.push_back(m);
  }
  return profiles;
}

MachineProfile ProfileByName(const std::string& name) {
  for (MachineProfile& profile : Table1Profiles()) {
    if (profile.name == name) return profile;
  }
  throw Error("unknown machine profile: " + name);
}

}  // namespace ocasta
