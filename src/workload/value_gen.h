// Draws fresh values for configuration keys during trace generation.
#pragma once

#include <optional>

#include "apps/schema.h"
#include "common/rng.h"
#include "ttkv/value.h"

namespace ocasta {

// Produces a value from the key's domain that differs from `current`
// whenever the domain has at least two elements (a user "changing" a
// setting picks a different value).
Value NextValue(Rng& rng, const KeySpec& spec, const std::optional<Value>& current);

}  // namespace ocasta
