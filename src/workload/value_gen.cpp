#include "workload/value_gen.h"

#include <algorithm>

namespace ocasta {

// GCC 12's -Wmaybe-uninitialized misfires on the variant inside
// std::optional<Value> at -O2 (GCC PR105562); `current` is checked before
// every dereference below.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

Value NextValue(Rng& rng, const KeySpec& spec, const std::optional<Value>& current) {
  switch (spec.type) {
    case ValueType::kBool: {
      if (current && current->type() == ValueType::kBool) return Value(!current->as_bool());
      return Value(rng.next_bool(0.5));
    }
    case ValueType::kInt: {
      if (spec.int_max <= spec.int_min) return Value(spec.int_min);
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Value v(rng.next_range(spec.int_min, spec.int_max));
        if (!current || v != *current) return v;
      }
      return Value(spec.int_min);  // Degenerate domain; allow a repeat.
    }
    case ValueType::kReal: {
      return Value(static_cast<double>(rng.next_range(spec.int_min, spec.int_max)) +
                   rng.next_double());
    }
    case ValueType::kString: {
      if (spec.choices.empty()) return Value("value" + std::to_string(rng.next_below(1000)));
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Value v(spec.choices[rng.next_below(spec.choices.size())]);
        if (!current || v != *current) return v;
      }
      return Value(spec.choices.front());
    }
    case ValueType::kStringList: {
      // A fresh ordered selection from the pool.
      std::vector<std::string> pool = spec.choices;
      for (size_t i = pool.size(); i > 1; --i) {
        std::swap(pool[i - 1], pool[rng.next_below(i)]);
      }
      const size_t max_len = std::min<size_t>(pool.size(), 6);
      const size_t len = max_len == 0 ? 0 : 1 + rng.next_below(max_len);
      pool.resize(len);
      return Value(std::move(pool));
    }
    case ValueType::kNone: return Value();
  }
  return Value();
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace ocasta
