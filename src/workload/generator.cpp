#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "configstore/file_config_store.h"
#include "workload/value_gen.h"
#include "configstore/gconf_store.h"
#include "configstore/intercepting_store.h"
#include "configstore/registry_store.h"
#include "logger/flush_diff.h"

namespace ocasta {

namespace {

// Per-application live state during generation.
struct AppRuntime {
  const AppSchema* schema = nullptr;
  std::unique_ptr<ConfigStore> backing;
  std::unique_ptr<InterceptingStore> intercepted;   // Registry/GConf apps.
  std::unique_ptr<FlushDiffLogger> flush_logger;    // File apps.
  ConfigStore* view = nullptr;  // What the application writes through.
  Rng rng{0};
};

enum class EventKind : uint8_t {
  kFullChange,   // User changes a whole group (or a partial subset).
  kRotation,     // High-rate solo activity (MRU rotate / reorder / noise).
  kSwUpdate,     // Software update sweeping many keys.
};

struct ScheduledEvent {
  TimeMicros t = 0;
  size_t app_index = 0;
  size_t group_index = 0;  // Unused for kSwUpdate.
  EventKind kind = EventKind::kFullChange;
};

class Generator {
 public:
  Generator(const MachineProfile& profile, std::vector<AppSchema> schemas)
      : profile_(profile), rng_(profile.seed) {
    machine_.profile = profile;
    machine_.schemas = std::move(schemas);
    machine_.end_time = Days(profile.days);
  }

  MachineTrace Run() {
    SetUpRuntimes();
    ScheduleSessionsAndReads();
    ScheduleEvents();
    ExecuteEvents();
    for (auto& rt : runtimes_) {
      machine_.final_configs[rt.schema->name] = rt.backing->Snapshot();
    }
    return std::move(machine_);
  }

 private:
  void SetUpRuntimes() {
    for (const AppSchema& schema : machine_.schemas) {
      AppRuntime rt;
      rt.schema = &schema;
      rt.rng = rng_.fork();
      switch (schema.store) {
        case StoreKind::kRegistry: rt.backing = std::make_unique<RegistryStore>(); break;
        case StoreKind::kGconf: rt.backing = std::make_unique<GconfStore>(); break;
        case StoreKind::kFile:
          rt.backing = std::make_unique<FileConfigStore>(schema.file_format);
          break;
      }
      // Install defaults silently: the pre-deployment state is not traced.
      const ConfigMap defaults = schema.DefaultConfig();
      rt.backing->RestoreSnapshot(defaults);
      machine_.initial_configs[schema.name] = defaults;

      if (schema.store == StoreKind::kFile) {
        auto* file_store = static_cast<FileConfigStore*>(rt.backing.get());
        file_store->Flush();  // Seed the virtual file before observing.
        rt.flush_logger = std::make_unique<FlushDiffLogger>(schema.name, schema.file_format,
                                                            clock_, machine_.trace);
        rt.flush_logger->Attach(*file_store);
        rt.view = file_store;
      } else {
        rt.intercepted = std::make_unique<InterceptingStore>(*rt.backing, schema.name, clock_,
                                                             &machine_.trace);
        rt.view = rt.intercepted.get();
      }
      runtimes_.push_back(std::move(rt));
    }
  }

  // Session plan: per day, session start times shared by all applications.
  void ScheduleSessionsAndReads() {
    sessions_.resize(static_cast<size_t>(profile_.days));
    for (int day = 0; day < profile_.days; ++day) {
      const int count = std::max<int>(
          1, static_cast<int>(std::lround(rng_.next_normal(profile_.sessions_per_day,
                                                           profile_.sessions_per_day / 4.0))));
      for (int s = 0; s < count; ++s) {
        const TimeMicros start =
            Days(day) + Hours(8) + static_cast<TimeMicros>(rng_.next_double() * Hours(13));
        sessions_[static_cast<size_t>(day)].push_back(start);
      }
      std::sort(sessions_[static_cast<size_t>(day)].begin(),
                sessions_[static_cast<size_t>(day)].end());
    }

    // Bulk read accounting: every session loads/reads the configuration.
    for (auto& rt : runtimes_) {
      const bool is_background = rt.schema->name == "System";
      double rpk = profile_.reads_per_key_per_session;
      if (is_background) rpk = profile_.background_reads_per_key_per_session;
      if (rt.schema->store == StoreKind::kFile) rpk = std::min(rpk, 2.0);
      auto& counts = machine_.read_counts[rt.schema->name];
      size_t total_sessions = 0;
      for (const auto& day_sessions : sessions_) total_sessions += day_sessions.size();
      auto add_reads = [&](const std::string& path) {
        const double expected = rpk * static_cast<double>(total_sessions);
        const uint64_t base = static_cast<uint64_t>(expected);
        const double frac = expected - static_cast<double>(base);
        counts[path] = base + (rt.rng.next_bool(frac) ? 1 : 0);
      };
      for (const SchemaGroup& group : *&rt.schema->groups) {
        for (const KeySpec& key : group.keys) add_reads(key.path);
      }
      for (const KeySpec& key : rt.schema->readonly_keys) add_reads(key.path);
    }
  }

  TimeMicros RandomSessionTime(int day, Rng& rng) {
    const auto& day_sessions = sessions_[static_cast<size_t>(day)];
    const TimeMicros start = day_sessions[rng.next_below(day_sessions.size())];
    return start + static_cast<TimeMicros>(rng.next_double() * Hours(1.5));
  }

  void ScheduleEvents() {
    for (size_t a = 0; a < runtimes_.size(); ++a) {
      AppRuntime& rt = runtimes_[a];
      const AppSchema& schema = *rt.schema;
      std::vector<size_t> change_counts(schema.groups.size(), 0);

      for (size_t g = 0; g < schema.groups.size(); ++g) {
        const SchemaGroup& group = schema.groups[g];
        // User-initiated configuration changes.
        const double p = group.changes_per_day * profile_.config_activity_scale;
        for (int day = 0; day < profile_.days; ++day) {
          if (p > 0 && rt.rng.next_bool(std::min(p, 1.0))) {
            ScheduleChange(a, g, RandomSessionTime(day, rt.rng), rt);
            ++change_counts[g];
          }
        }
        // High-rate solo activity, every session.
        if (group.rotations_per_session > 0) {
          for (int day = 0; day < profile_.days; ++day) {
            for (TimeMicros session_start : sessions_[static_cast<size_t>(day)]) {
              const int n = PoissonDraw(rt.rng, group.rotations_per_session);
              for (int i = 0; i < n; ++i) {
                events_.push_back(
                    {session_start + static_cast<TimeMicros>(rt.rng.next_double() * Hours(1.5)),
                     a, g, EventKind::kRotation});
              }
            }
          }
        }
      }

      // Guaranteed minimum change counts (scenario preconditions). Forced
      // changes land in the earlier part of the trace so the keys have
      // history *before* the repair evaluation's 14-day injection window —
      // the paper's "offending setting(s) have been modified in our traces"
      // restriction.
      const int early_days = std::max(1, profile_.days - 15);
      for (size_t g = 0; g < schema.groups.size(); ++g) {
        const auto want = static_cast<size_t>(std::ceil(schema.groups[g].min_changes_per_trace));
        while (change_counts[g] < want) {
          const int day = static_cast<int>(rt.rng.next_below(static_cast<uint64_t>(early_days)));
          ScheduleChange(a, g, RandomSessionTime(day, rt.rng), rt);
          ++change_counts[g];
        }
      }

      // Software updates.
      const int updates = static_cast<int>(std::lround(schema.sw_updates_per_trace));
      for (int u = 0; u < updates; ++u) {
        const int day = static_cast<int>(rt.rng.next_below(static_cast<uint64_t>(profile_.days)));
        events_.push_back({RandomSessionTime(day, rt.rng), a, 0, EventKind::kSwUpdate});
      }
    }
    std::stable_sort(events_.begin(), events_.end(),
                     [](const ScheduledEvent& x, const ScheduledEvent& y) { return x.t < y.t; });
  }

  // Schedules a full-group change; with dialog_burst_prob, pulls additional
  // groups into the same sub-second burst (the oversized-cluster source).
  void ScheduleChange(size_t app_index, size_t group_index, TimeMicros t, AppRuntime& rt) {
    events_.push_back({t, app_index, group_index, EventKind::kFullChange});
    const AppSchema& schema = *rt.schema;
    if (schema.dialog_burst_prob > 0 && rt.rng.next_bool(schema.dialog_burst_prob) &&
        schema.groups.size() > 1) {
      const int extra =
          1 + static_cast<int>(rt.rng.next_below(
                  static_cast<uint64_t>(std::max(1, schema.dialog_burst_max_groups - 1))));
      for (int i = 0; i < extra; ++i) {
        const size_t other = rt.rng.next_below(schema.groups.size());
        if (other == group_index) continue;
        if (schema.groups[other].rotations_per_session > 0) continue;  // Not dialog settings.
        events_.push_back({t + static_cast<TimeMicros>(rt.rng.next_double() * Seconds(0.8)),
                           app_index, other, EventKind::kFullChange});
      }
    }
  }

  static int PoissonDraw(Rng& rng, double mean) {
    // Knuth's method; means here are small (< 10).
    const double limit = std::exp(-mean);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.next_double();
    } while (p > limit);
    return k - 1;
  }

  void ExecuteEvents() {
    for (const ScheduledEvent& event : events_) {
      clock_.advance_to(event.t);
      AppRuntime& rt = runtimes_[event.app_index];
      switch (event.kind) {
        case EventKind::kFullChange: {
          const SchemaGroup& group = rt.schema->groups[event.group_index];
          ApplyFullChange(rt, group);
          ApplySectionRewrite(rt, group);
          break;
        }
        case EventKind::kRotation: ApplyRotation(rt, rt.schema->groups[event.group_index]); break;
        case EventKind::kSwUpdate: ApplySwUpdate(rt); break;
      }
    }
  }

  // When the changed group belongs to a write section, the application
  // rewrites the section's other groups too, spread over a couple of
  // seconds (sub-window gaps, so 1-second-window clustering merges them).
  void ApplySectionRewrite(AppRuntime& rt, const SchemaGroup& changed) {
    for (const auto& section : rt.schema->write_sections) {
      bool contains = false;
      for (const std::string& name : section) contains |= (name == changed.name);
      if (!contains) continue;
      for (const std::string& name : section) {
        if (name == changed.name) continue;
        const SchemaGroup* mate = rt.schema->FindGroup(name);
        if (mate == nullptr) throw Error("write section names unknown group: " + name);
        clock_.advance(static_cast<TimeMicros>(Seconds(0.3) + rt.rng.next_double() * Seconds(0.5)));
        for (const KeySpec& key : mate->keys) WriteFresh(rt, key);
      }
      if (rt.schema->store == StoreKind::kFile) {
        static_cast<FileConfigStore*>(rt.backing.get())->Flush();
      }
      return;  // Groups belong to at most one section.
    }
  }

  void WriteFresh(AppRuntime& rt, const KeySpec& key) {
    std::optional<Value> current = rt.backing->Read(key.path);
    rt.view->Write(key.path, NextValue(rt.rng, key, current));
  }

  void AdvanceSpread(const SchemaGroup& group, AppRuntime& rt) {
    if (group.keys.size() > 1) {
      clock_.advance(static_cast<TimeMicros>(
          rt.rng.next_double() * Seconds(group.spread_seconds) /
          static_cast<double>(group.keys.size())));
    }
  }

  void ApplyFullChange(AppRuntime& rt, const SchemaGroup& group) {
    switch (group.kind) {
      case GroupKind::kUniform: {
        std::vector<size_t> indices(group.keys.size());
        for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
        if (group.partial_update_prob > 0 && group.keys.size() > 1 &&
            rt.rng.next_bool(group.partial_update_prob)) {
          // Partial update: keep a random strict subset (>= 1 key).
          for (size_t i = indices.size(); i > 1; --i) {
            std::swap(indices[i - 1], indices[rt.rng.next_below(i)]);
          }
          indices.resize(1 + rt.rng.next_below(group.keys.size() - 1));
          std::sort(indices.begin(), indices.end());
        }
        for (size_t i : indices) {
          WriteFresh(rt, group.keys[i]);
          AdvanceSpread(group, rt);
        }
        break;
      }
      case GroupKind::kMruList: {
        // Resize: new max-count value, rewrite the surviving items, delete
        // the rest (MS Word trims Item keys beyond Max Display).
        const KeySpec& dominant = group.keys[0];
        const auto item_count = static_cast<int64_t>(group.keys.size()) - 1;
        const int64_t lo = std::max<int64_t>(1, item_count / 4);
        const int64_t new_max = rt.rng.next_range(lo, item_count);
        rt.view->Write(dominant.path, Value(new_max));
        for (int64_t i = 1; i <= item_count; ++i) {
          const KeySpec& item = group.keys[static_cast<size_t>(i)];
          AdvanceSpread(group, rt);
          if (i <= new_max) {
            WriteFresh(rt, item);
          } else {
            rt.view->Remove(item.path);
          }
        }
        break;
      }
      case GroupKind::kMasterList: {
        // Add/remove: rewrite the master list and 1-2 member entries.
        WriteFresh(rt, group.keys[0]);
        const size_t members = group.keys.size() - 1;
        const size_t touched = 1 + rt.rng.next_below(std::min<size_t>(2, members));
        for (size_t i = 0; i < touched; ++i) {
          AdvanceSpread(group, rt);
          WriteFresh(rt, group.keys[1 + rt.rng.next_below(members)]);
        }
        break;
      }
    }
    if (rt.schema->store == StoreKind::kFile) {
      static_cast<FileConfigStore*>(rt.backing.get())->Flush();
    }
  }

  void ApplyRotation(AppRuntime& rt, const SchemaGroup& group) {
    switch (group.kind) {
      case GroupKind::kUniform: {
        // Noise key churn.
        for (const KeySpec& key : group.keys) WriteFresh(rt, key);
        break;
      }
      case GroupKind::kMruList: {
        // Opening a document shifts a prefix of the list; the dominant
        // Max Display key is untouched.
        const KeySpec& dominant = group.keys[0];
        const auto current = rt.backing->Read(dominant.path);
        const int64_t max_items = current && current->type() == ValueType::kInt
                                      ? current->as_int()
                                      : static_cast<int64_t>(group.keys.size()) - 1;
        const int64_t live = std::min<int64_t>(max_items, static_cast<int64_t>(group.keys.size()) - 1);
        if (live < 1) break;
        const int64_t prefix = 1 + static_cast<int64_t>(rt.rng.next_below(
                                       static_cast<uint64_t>(std::min<int64_t>(live, 4))));
        for (int64_t i = 1; i <= prefix; ++i) {
          WriteFresh(rt, group.keys[static_cast<size_t>(i)]);
          AdvanceSpread(group, rt);
        }
        break;
      }
      case GroupKind::kMasterList: {
        // Reordering rewrites the master key only.
        WriteFresh(rt, group.keys[0]);
        break;
      }
    }
    if (rt.schema->store == StoreKind::kFile) {
      static_cast<FileConfigStore*>(rt.backing.get())->Flush();
    }
  }

  void ApplySwUpdate(AppRuntime& rt) {
    // Rewrites ~30% of all writable keys in a burst of a few seconds.
    for (const SchemaGroup& group : rt.schema->groups) {
      for (const KeySpec& key : group.keys) {
        if (!rt.rng.next_bool(0.3)) continue;
        WriteFresh(rt, key);
        clock_.advance(static_cast<TimeMicros>(rt.rng.next_double() * Seconds(0.05)));
      }
    }
    if (rt.schema->store == StoreKind::kFile) {
      static_cast<FileConfigStore*>(rt.backing.get())->Flush();
    }
  }

  const MachineProfile& profile_;
  Rng rng_;
  SimClock clock_;
  MachineTrace machine_;
  std::vector<AppRuntime> runtimes_;
  std::vector<std::vector<TimeMicros>> sessions_;
  std::vector<ScheduledEvent> events_;
};

}  // namespace

const AppSchema& MachineTrace::SchemaFor(const std::string& app) const {
  for (const AppSchema& schema : schemas) {
    if (schema.name == app) return schema;
  }
  throw Error("machine trace does not host application: " + app);
}

MachineTrace GenerateMachineTrace(const MachineProfile& profile,
                                  std::vector<AppSchema> schemas) {
  Generator generator(profile, std::move(schemas));
  return generator.Run();
}

MachineTrace GenerateMachineTrace(const MachineProfile& profile) {
  std::vector<AppSchema> schemas;
  for (const std::string& app : profile.apps) schemas.push_back(AppSchemaByName(app));
  if (profile.background_keys > 0) {
    schemas.push_back(BuildSystemBackground(profile.background_store, profile.background_keys,
                                            profile.background_churn_keys));
  }
  return GenerateMachineTrace(profile, std::move(schemas));
}

TTKV BuildAppTtkv(const MachineTrace& machine, const std::string& app, bool quantize) {
  TTKV ttkv;
  TtkvRecorder recorder(ttkv, quantize);
  for (const AccessEvent& event : machine.trace.events()) {
    if (event.app == app) recorder.OnAccess(event);
  }
  auto it = machine.read_counts.find(app);
  if (it != machine.read_counts.end()) {
    for (const auto& [key, count] : it->second) ttkv.record_reads(key, count);
  }
  return ttkv;
}

TTKV BuildMachineTtkv(const MachineTrace& machine, bool quantize) {
  TTKV ttkv;
  TtkvRecorder recorder(ttkv, quantize);
  for (const AccessEvent& event : machine.trace.events()) recorder.OnAccess(event);
  for (const auto& [app, counts] : machine.read_counts) {
    for (const auto& [key, count] : counts) ttkv.record_reads(key, count);
  }
  return ttkv;
}

TTKV BuildAppTtkvAcrossMachines(const std::vector<const MachineTrace*>& machines,
                                const std::string& app, bool quantize) {
  TTKV ttkv;
  TtkvRecorder recorder(ttkv, quantize);
  TimeMicros offset = 0;
  for (const MachineTrace* machine : machines) {
    for (const AccessEvent& event : machine->trace.events()) {
      if (event.app != app) continue;
      AccessEvent shifted = event;
      shifted.timestamp += offset;
      recorder.OnAccess(shifted);
    }
    auto it = machine->read_counts.find(app);
    if (it != machine->read_counts.end()) {
      for (const auto& [key, count] : it->second) ttkv.record_reads(key, count);
    }
    offset += machine->end_time + Days(1000);
  }
  return ttkv;
}

ConfigMap ReplayToConfig(const ConfigMap& initial, const TraceLog& trace,
                         const std::string& app) {
  ConfigMap state = initial;
  for (const AccessEvent& event : trace.events()) {
    if (event.app != app) continue;
    switch (event.op) {
      case AccessOp::kRead: break;
      case AccessOp::kWrite: state[event.key] = event.value; break;
      case AccessOp::kDelete: state.erase(event.key); break;
    }
  }
  return state;
}

}  // namespace ocasta
