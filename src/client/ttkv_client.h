// TtkvClient — the client library for the ocastad daemon.
//
// One client owns one TCP connection and is synchronous: every RPC sends a
// request frame and blocks for the reply. Connecting performs HELLO version
// negotiation (the daemon answers with the highest protocol version both
// sides speak; see protocol_version()). A transport failure (daemon
// restarted, connection reset) triggers one transparent reconnect + retry
// before surfacing WireError; server-reported failures (bad key, malformed
// request) surface as StoreError and are never retried.
//
// All request/reply byte layouts live in api/codec.h — this class carries
// no per-op encode/decode logic. Apply() is the generic entry point
// (api::RemoteEngine is a thin adapter over it); the typed methods are
// conveniences that unwrap the matching Result alternative. The *Batch
// calls ship one BatchCmd as a single BATCH frame, amortizing a round trip
// AND the daemon's shard locking over the whole batch — the intended fast
// path for bulk recording.
//
// Not thread-safe: use one TtkvClient per thread (see bench_loadgen).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/command.h"
#include "clustering/hac.h"
#include "server/wire.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {

class TtkvClient {
 public:
  // Connects lazily on the first RPC (or explicitly via Connect()).
  TtkvClient(std::string host, uint16_t port);
  ~TtkvClient();

  TtkvClient(const TtkvClient&) = delete;
  TtkvClient& operator=(const TtkvClient&) = delete;

  // Idempotent; throws WireError when the daemon is down and StoreError
  // when it rejects our protocol version.
  void Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Protocol version negotiated by the last Connect(); 0 before then.
  uint32_t protocol_version() const { return protocol_version_; }

  // Generic RPC: one Command in, one Result out. Command-level failures
  // come back as ErrorResult; transport failures throw WireError after the
  // transparent reconnect.
  api::Result Apply(const api::Command& cmd);

  // Ships `cmds` as one BATCH frame (encoded straight from the span, no
  // BatchCmd copy) and returns the per-command results in order. A reply
  // that is not a well-formed BATCH result of matching size throws
  // WireError; a wholesale ErrorResult (batch rejected) is returned as
  // that error at every index.
  std::vector<api::Result> ApplyBatch(std::span<const api::Command> cmds);

  // --- Typed RPCs (ErrorResult raised as StoreError) ------------------------
  void Ping();
  void Put(const std::string& key, const Value& value, TimeMicros t = 0);
  bool Delete(const std::string& key, TimeMicros t = 0, bool force = false);
  std::optional<Value> Get(const std::string& key);
  std::optional<Value> GetAt(const std::string& key, TimeMicros t);
  std::optional<VersionedRecord> History(const std::string& key);
  EngineStats Stats();
  std::vector<std::string> ListKeys(const std::string& prefix = "");
  TTKV Snapshot();
  uint64_t Compact(TimeMicros horizon);
  std::vector<NamedCluster> ClusterNow(double threshold_correlation,
                                       Linkage linkage = Linkage::kComplete);
  void Shutdown();  // Asks the daemon to stop; the connection dies with it.

  // --- Single-frame batches -------------------------------------------------
  void PutBatch(const std::vector<std::pair<std::string, Value>>& entries, TimeMicros t = 0);
  std::vector<std::optional<Value>> GetBatch(const std::vector<std::string>& keys);

 private:
  // Sends one request frame and reads the reply frame. Reconnects +
  // retries once on transport failure.
  std::string Rpc(const std::string& request);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  FrameBuffer in_;  // Buffered reply reader: one recv per frame, not two.
  uint32_t protocol_version_ = 0;
};

}  // namespace ocasta
