// TtkvClient — the client library for the ocastad daemon.
//
// One client owns one TCP connection and is synchronous: every RPC sends a
// request frame and blocks for the reply. Connecting performs HELLO version
// negotiation (the daemon answers with the highest protocol version both
// sides speak; see protocol_version()). Transport-failure policy: reads
// transparently reconnect + retry once; mutations retry only when the
// failure provably predates the request frame reaching the wire (refused
// connect, or the pre-send staleness probe detecting a restarted daemon) —
// a mutation whose frame was sent but whose reply never came surfaces
// WireError, because re-sending could apply it twice. Server-reported
// failures (bad key, malformed request) surface as StoreError and are
// never retried. A NOT_LEADER reply from a follower daemon transparently
// re-routes the RPC to the advertised leader (bounded hops).
//
// All request/reply byte layouts live in api/codec.h — this class carries
// no per-op encode/decode logic. Apply() is the generic entry point
// (api::RemoteEngine is a thin adapter over it); the typed methods are
// conveniences that unwrap the matching Result alternative. The *Batch
// calls ship one BatchCmd as a single BATCH frame, amortizing a round trip
// AND the daemon's shard locking over the whole batch — the intended fast
// path for bulk recording.
//
// Not thread-safe: use one TtkvClient per thread (see bench_loadgen).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/command.h"
#include "clustering/hac.h"
#include "server/wire.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {

class TtkvClient {
 public:
  // Connects lazily on the first RPC (or explicitly via Connect()).
  TtkvClient(std::string host, uint16_t port);
  ~TtkvClient();

  TtkvClient(const TtkvClient&) = delete;
  TtkvClient& operator=(const TtkvClient&) = delete;

  // Idempotent; throws WireError when the daemon is down and StoreError
  // when it rejects our protocol version.
  void Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Protocol version negotiated by the last Connect(); 0 before then.
  uint32_t protocol_version() const { return protocol_version_; }

  // Generic RPC: one Command in, one Result out. Command-level failures
  // come back as ErrorResult; transport failures throw WireError after the
  // transparent reconnect.
  api::Result Apply(const api::Command& cmd);

  // Apply without following NOT_LEADER redirects: the raw reply from the
  // addressed daemon, NotLeaderResult included. For role introspection
  // (ocasta_cli replstat) and failover tests.
  api::Result ApplyRaw(const api::Command& cmd);

  // Ships `cmds` as one BATCH frame (encoded straight from the span, no
  // BatchCmd copy) and returns the per-command results in order. A reply
  // that is not a well-formed BATCH result of matching size throws
  // WireError; a wholesale ErrorResult (batch rejected) is returned as
  // that error at every index.
  std::vector<api::Result> ApplyBatch(std::span<const api::Command> cmds);

  // --- Typed RPCs (ErrorResult raised as StoreError) ------------------------
  void Ping();
  void Put(const std::string& key, const Value& value, TimeMicros t = 0);
  bool Delete(const std::string& key, TimeMicros t = 0, bool force = false);
  std::optional<Value> Get(const std::string& key);
  std::optional<Value> GetAt(const std::string& key, TimeMicros t);
  std::optional<VersionedRecord> History(const std::string& key);
  EngineStats Stats();
  std::vector<std::string> ListKeys(const std::string& prefix = "");
  TTKV Snapshot();
  uint64_t Compact(TimeMicros horizon);
  std::vector<NamedCluster> ClusterNow(double threshold_correlation,
                                       Linkage linkage = Linkage::kComplete);
  void Shutdown();  // Asks the daemon to stop; the connection dies with it.

  // --- Replication (docs/REPLICATION.md) ------------------------------------
  // Flips a follower daemon into a leader (stops its pull loop).
  void Promote();
  // One raw REPLICATE round trip: follower progress report + log tail (or
  // snapshot). max_records == 0 is a status probe that returns only the
  // daemon's last LSN (ocasta_cli replstat uses this to pick the most
  // caught-up follower before promoting).
  api::ReplicateResult Replicate(const std::string& follower_id, uint64_t since_lsn,
                                 uint32_t max_records);

  // --- Single-frame batches -------------------------------------------------
  void PutBatch(const std::vector<std::pair<std::string, Value>>& entries, TimeMicros t = 0);
  std::vector<std::optional<Value>> GetBatch(const std::vector<std::string>& keys);

 private:
  // Sends one request frame and reads the reply frame. Transport-failure
  // policy: idempotent requests reconnect + retry once; non-idempotent
  // (mutating) requests retry only when the failure provably predates the
  // send — once the frame reached the wire, ambiguity surfaces as
  // WireError instead of risking a double-apply (exactly-once from the
  // client's side; see the regression tests in client_retry_test.cpp).
  std::string Rpc(const std::string& request, bool idempotent);
  // Redirect target of a NOT_LEADER reply: reconnect there.
  void FollowLeader(const api::NotLeaderResult& redirect);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  FrameBuffer in_;  // Buffered reply reader: one recv per frame, not two.
  uint32_t protocol_version_ = 0;
};

}  // namespace ocasta
