// TtkvClient — the client library for the ocastad daemon.
//
// One client owns one TCP connection and is synchronous: every RPC sends a
// request frame and blocks for the reply. A transport failure (daemon
// restarted, connection reset) triggers one transparent reconnect + retry
// before surfacing WireError; server-reported failures (bad key, malformed
// request) surface as StoreError and are never retried.
//
// The *Batch calls pipeline: all request frames are written back-to-back
// and the replies are read afterwards, amortizing a round trip over the
// whole batch — the intended fast path for bulk recording.
//
// Not thread-safe: use one TtkvClient per thread (see bench_loadgen).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "clustering/hac.h"
#include "server/sharded_ttkv.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {

class TtkvClient {
 public:
  // Connects lazily on the first RPC (or explicitly via Connect()).
  TtkvClient(std::string host, uint16_t port);
  ~TtkvClient();

  TtkvClient(const TtkvClient&) = delete;
  TtkvClient& operator=(const TtkvClient&) = delete;

  void Connect();  // Idempotent; throws WireError when the daemon is down.
  void Close();
  bool connected() const { return fd_ >= 0; }

  // --- Single-op RPCs -------------------------------------------------------
  void Ping();
  void Put(const std::string& key, const Value& value, TimeMicros t = 0);
  bool Delete(const std::string& key, TimeMicros t = 0);
  std::optional<Value> Get(const std::string& key);
  std::optional<Value> GetAt(const std::string& key, TimeMicros t);
  std::optional<VersionedRecord> History(const std::string& key);
  EngineStats Stats();
  std::vector<std::string> ListKeys(const std::string& prefix = "");
  TTKV Snapshot();
  uint64_t Compact(TimeMicros horizon);
  std::vector<NamedCluster> ClusterNow(double threshold_correlation,
                                       Linkage linkage = Linkage::kComplete);
  void Shutdown();  // Asks the daemon to stop; the connection dies with it.

  // --- Pipelined batches ----------------------------------------------------
  void PutBatch(const std::vector<std::pair<std::string, Value>>& entries, TimeMicros t = 0);
  std::vector<std::optional<Value>> GetBatch(const std::vector<std::string>& keys);

 private:
  // Sends one request and reads its reply body (status byte consumed;
  // kStatusErr raised as StoreError). Reconnects + retries once on
  // transport failure.
  std::string Rpc(const std::string& request);

  // Pipelined core: sends every request, then reads every reply. Retries
  // the whole batch once on transport failure.
  std::vector<std::string> RpcPipelined(const std::vector<std::string>& requests);

  std::string host_;
  uint16_t port_;
  int fd_ = -1;
};

}  // namespace ocasta
