#include "client/ttkv_client.h"

#include <poll.h>
#include <unistd.h>

#include "api/codec.h"
#include "server/wire.h"

namespace ocasta {

namespace {

// NOT_LEADER redirects followed per RPC before giving up (covers a
// follower chain mid-reconfiguration without looping forever when two
// daemons point at each other).
constexpr int kMaxLeaderHops = 4;

// Unwraps a typed reply; the daemon's ErrorResult becomes StoreError.
template <typename T>
T Take(api::Result result, const char* what) {
  if (auto* err = std::get_if<api::ErrorResult>(&result.op)) {
    throw StoreError("ocastad: " + err->message);
  }
  if (auto* redirect = std::get_if<api::NotLeaderResult>(&result.op)) {
    // Unresolved after kMaxLeaderHops (or a typed RPC the caller routed to
    // a follower on purpose): a server-side rejection, not a wire fault.
    throw StoreError("ocastad: not the leader; leader is " + redirect->leader_host + ":" +
                     std::to_string(redirect->leader_port));
  }
  if (auto* typed = std::get_if<T>(&result.op)) return std::move(*typed);
  throw WireError(std::string("unexpected reply type for ") + what);
}

// True when a REUSED connection still looks usable: no pending EOF, error,
// or unsolicited bytes. A daemon that restarted since our last RPC has
// FIN'd the old socket, which this 0-timeout poll sees — so staleness is
// detected BEFORE a request frame is committed to the wire, which is what
// lets mutations keep their never-hit-the-wire retry (see Rpc).
bool ConnectionSeemsAlive(int fd) {
  pollfd pfd{fd, POLLIN, 0};
  const int r = ::poll(&pfd, 1, 0);
  if (r < 0) return false;
  if (r == 0) return true;  // Quiet socket: as alive as TCP can promise.
  // Readable with no RPC outstanding means EOF or protocol garbage; either
  // way the connection is done.
  return false;
}

}  // namespace

TtkvClient::TtkvClient(std::string host, uint16_t port) : host_(std::move(host)), port_(port) {}

TtkvClient::~TtkvClient() { Close(); }

void TtkvClient::Connect() {
  if (fd_ >= 0) return;
  fd_ = ConnectTcp(host_, port_);
  try {
    // HELLO before anything else: agree on the protocol version while the
    // connection is otherwise idle. A v1 daemon (which predates HELLO)
    // would answer with an error reply, surfaced here as StoreError.
    SendFrame(fd_, api::EncodeHello(api::kProtocolVersion));
    const auto reply = in_.Recv(fd_);
    if (!reply.has_value()) throw WireError("daemon closed the connection during HELLO");
    protocol_version_ = api::DecodeHelloReply(*reply);
    if (protocol_version_ < api::kMinProtocolVersion) {
      throw WireError("daemon negotiated unsupported protocol version " +
                      std::to_string(protocol_version_));
    }
  } catch (...) {
    Close();
    throw;
  }
}

void TtkvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  in_.Reset();  // Buffered bytes belong to the dead connection.
  protocol_version_ = 0;
}

std::string TtkvClient::Rpc(const std::string& request, bool idempotent) {
  // A request the framing layer can never ship (e.g. a giant BATCH) is a
  // deterministic client-side failure: surface it without tearing down a
  // healthy connection or spending the reconnect-once budget on it.
  if (request.size() > kMaxFrameBytes) {
    throw WireError("request exceeds kMaxFrameBytes; split the batch");
  }
  for (int attempt = 0;; ++attempt) {
    // Exactly-once discipline for mutations: once the request frame has
    // started onto the wire, the daemon may have applied it even though
    // the reply never arrived — transparently re-sending would record the
    // mutation twice. So non-idempotent requests only retry failures from
    // BEFORE the send (refused connect, or the staleness probe above
    // catching a restarted daemon); after that the ambiguity is surfaced
    // as WireError and the caller decides. Reads retry unconditionally —
    // re-asking is harmless.
    bool reached_wire = false;
    try {
      if (fd_ >= 0 && !ConnectionSeemsAlive(fd_)) Close();
      Connect();
      reached_wire = true;
      SendFrame(fd_, request);
      auto reply = in_.Recv(fd_);
      if (!reply.has_value()) throw WireError("daemon closed the connection");
      return std::move(*reply);
    } catch (const WireError&) {
      Close();
      if (attempt >= 1) throw;
      if (reached_wire && !idempotent) throw;
    }
  }
}

api::Result TtkvClient::ApplyRaw(const api::Command& cmd) {
  return api::DecodeResult(Rpc(api::EncodeCommand(cmd), !api::IsMutating(cmd)));
}

api::Result TtkvClient::Apply(const api::Command& cmd) {
  const bool idempotent = !api::IsMutating(cmd);
  api::Result result = api::DecodeResult(Rpc(api::EncodeCommand(cmd), idempotent));
  for (int hops = 0; hops < kMaxLeaderHops; ++hops) {
    const auto* redirect = std::get_if<api::NotLeaderResult>(&result.op);
    if (redirect == nullptr) return result;
    // Follower failover: re-send at the advertised leader. Safe even for
    // mutations — the follower applied nothing before redirecting.
    FollowLeader(*redirect);
    result = api::DecodeResult(Rpc(api::EncodeCommand(cmd), idempotent));
  }
  return result;  // Still NOT_LEADER: Take()/the caller surfaces it.
}

std::vector<api::Result> TtkvClient::ApplyBatch(std::span<const api::Command> cmds) {
  bool idempotent = true;
  for (const api::Command& cmd : cmds) idempotent &= !api::IsMutating(cmd);
  const std::string request = api::EncodeBatchRequest(cmds);
  api::Result reply = api::DecodeResult(Rpc(request, idempotent));
  for (int hops = 0;
       hops < kMaxLeaderHops && std::holds_alternative<api::NotLeaderResult>(reply.op);
       ++hops) {
    FollowLeader(std::get<api::NotLeaderResult>(reply.op));
    reply = api::DecodeResult(Rpc(request, idempotent));
  }
  if (auto* redirect = std::get_if<api::NotLeaderResult>(&reply.op)) {
    throw StoreError("ocastad: not the leader; leader is " + redirect->leader_host + ":" +
                     std::to_string(redirect->leader_port));
  }
  if (auto* err = std::get_if<api::ErrorResult>(&reply.op)) {
    // The daemon rejected the batch wholesale (e.g. nesting too deep):
    // every command failed the same way.
    return std::vector<api::Result>(cmds.size(), api::Result(*err));
  }
  auto* batch = std::get_if<api::BatchResult>(&reply.op);
  if (batch == nullptr || batch->results.size() != cmds.size()) {
    throw WireError("malformed BATCH reply");
  }
  return std::move(batch->results);
}

void TtkvClient::FollowLeader(const api::NotLeaderResult& redirect) {
  if (redirect.leader_host.empty() || redirect.leader_port == 0) {
    throw StoreError("ocastad: daemon is a follower but advertises no leader address");
  }
  Close();
  host_ = redirect.leader_host;
  port_ = static_cast<uint16_t>(redirect.leader_port);
}

void TtkvClient::Ping() { Take<api::OkResult>(Apply(api::PingCmd{}), "PING"); }

void TtkvClient::Put(const std::string& key, const Value& value, TimeMicros t) {
  Take<api::OkResult>(Apply(api::PutCmd{key, value, t}), "PUT");
}

bool TtkvClient::Delete(const std::string& key, TimeMicros t, bool force) {
  return Take<api::ExistedResult>(Apply(api::DeleteCmd{key, t, force}), "DELETE").existed;
}

std::optional<Value> TtkvClient::Get(const std::string& key) {
  return Take<api::ValueResult>(Apply(api::GetCmd{key}), "GET").value;
}

std::optional<Value> TtkvClient::GetAt(const std::string& key, TimeMicros t) {
  return Take<api::ValueResult>(Apply(api::GetAtCmd{key, t}), "GET_AT").value;
}

std::optional<VersionedRecord> TtkvClient::History(const std::string& key) {
  return Take<api::HistoryResult>(Apply(api::HistoryCmd{key}), "HISTORY").record;
}

EngineStats TtkvClient::Stats() {
  return Take<api::StatsResult>(Apply(api::StatsCmd{}), "STATS").stats;
}

std::vector<std::string> TtkvClient::ListKeys(const std::string& prefix) {
  return Take<api::KeysResult>(Apply(api::ListKeysCmd{prefix}), "LIST_KEYS").keys;
}

TTKV TtkvClient::Snapshot() {
  return Take<api::SnapshotResult>(Apply(api::SnapshotCmd{}), "SNAPSHOT").snapshot;
}

uint64_t TtkvClient::Compact(TimeMicros horizon) {
  return Take<api::CompactResult>(Apply(api::CompactCmd{horizon}), "COMPACT").versions_dropped;
}

std::vector<NamedCluster> TtkvClient::ClusterNow(double threshold_correlation,
                                                 Linkage linkage) {
  return Take<api::ClustersResult>(Apply(api::ClusterNowCmd{threshold_correlation, linkage}),
                                   "CLUSTER_NOW")
      .clusters;
}

void TtkvClient::Shutdown() {
  Take<api::OkResult>(Apply(api::ShutdownCmd{}), "SHUTDOWN");
  Close();
}

void TtkvClient::Promote() { Take<api::OkResult>(Apply(api::PromoteCmd{}), "PROMOTE"); }

api::ReplicateResult TtkvClient::Replicate(const std::string& follower_id, uint64_t since_lsn,
                                           uint32_t max_records) {
  return Take<api::ReplicateResult>(
      Apply(api::ReplicateCmd{follower_id, since_lsn, max_records}), "REPLICATE");
}

void TtkvClient::PutBatch(const std::vector<std::pair<std::string, Value>>& entries,
                          TimeMicros t) {
  std::vector<api::Command> cmds;
  cmds.reserve(entries.size());
  for (const auto& [key, value] : entries) cmds.push_back(api::PutCmd{key, value, t});
  for (api::Result& result : ApplyBatch(cmds)) Take<api::OkResult>(std::move(result), "PUT");
}

std::vector<std::optional<Value>> TtkvClient::GetBatch(const std::vector<std::string>& keys) {
  std::vector<api::Command> cmds;
  cmds.reserve(keys.size());
  for (const std::string& key : keys) cmds.push_back(api::GetCmd{key});
  std::vector<api::Result> results = ApplyBatch(cmds);
  std::vector<std::optional<Value>> values;
  values.reserve(results.size());
  for (api::Result& result : results) {
    values.push_back(Take<api::ValueResult>(std::move(result), "GET").value);
  }
  return values;
}

}  // namespace ocasta
