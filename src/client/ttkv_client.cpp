#include "client/ttkv_client.h"

#include <unistd.h>

#include "server/wire.h"
#include "ttkv/serialize.h"

namespace ocasta {

namespace {

// Consumes the status byte; server-reported errors become StoreError.
std::string CheckReply(std::string reply) {
  BinaryReader r(reply);
  const uint8_t status = r.u8();
  if (status == kStatusOk) return reply.substr(1);
  if (status == kStatusErr) throw StoreError("ocastad: " + r.str());
  throw WireError("malformed reply status");
}

std::string EncodePut(const std::string& key, const Value& value, TimeMicros t) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kPut));
  w.str(key);
  w.i64(t);
  w.value(value);
  return w.take();
}

std::string EncodeKeyOnly(Op op, const std::string& key) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(op));
  w.str(key);
  return w.take();
}

std::optional<Value> DecodeOptionalValue(const std::string& body) {
  BinaryReader r(body);
  if (r.u8() == 0) return std::nullopt;
  return r.value();
}

}  // namespace

TtkvClient::TtkvClient(std::string host, uint16_t port) : host_(std::move(host)), port_(port) {}

TtkvClient::~TtkvClient() { Close(); }

void TtkvClient::Connect() {
  if (fd_ >= 0) return;
  fd_ = ConnectTcp(host_, port_);
}

void TtkvClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::vector<std::string> TtkvClient::RpcPipelined(const std::vector<std::string>& requests) {
  for (int attempt = 0;; ++attempt) {
    try {
      Connect();
      for (const std::string& request : requests) SendFrame(fd_, request);
      std::vector<std::string> replies;
      replies.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        auto reply = RecvFrame(fd_);
        if (!reply.has_value()) throw WireError("daemon closed the connection");
        replies.push_back(std::move(*reply));
      }
      return replies;
    } catch (const WireError&) {
      // Stale or broken connection: reconnect once and retry the batch.
      // (A retried PUT that already reached the daemon records a duplicate
      // version — acceptable for a recorder, same as the paper's at-least-
      // once logging.)
      Close();
      if (attempt >= 1) throw;
    }
  }
}

std::string TtkvClient::Rpc(const std::string& request) {
  return CheckReply(std::move(RpcPipelined({request}).front()));
}

void TtkvClient::Ping() {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kPing));
  Rpc(w.take());
}

void TtkvClient::Put(const std::string& key, const Value& value, TimeMicros t) {
  Rpc(EncodePut(key, value, t));
}

bool TtkvClient::Delete(const std::string& key, TimeMicros t) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kDelete));
  w.str(key);
  w.i64(t);
  const std::string body = Rpc(w.take());
  BinaryReader r(body);
  return r.u8() != 0;
}

std::optional<Value> TtkvClient::Get(const std::string& key) {
  return DecodeOptionalValue(Rpc(EncodeKeyOnly(Op::kGet, key)));
}

std::optional<Value> TtkvClient::GetAt(const std::string& key, TimeMicros t) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kGetAt));
  w.str(key);
  w.i64(t);
  return DecodeOptionalValue(Rpc(w.take()));
}

std::optional<VersionedRecord> TtkvClient::History(const std::string& key) {
  const std::string body = Rpc(EncodeKeyOnly(Op::kHistory, key));
  BinaryReader r(body);
  if (r.u8() == 0) return std::nullopt;
  VersionedRecord rec;
  rec.key = key;
  rec.write_count = r.u64();
  rec.delete_count = r.u64();
  rec.read_count = r.u64();
  const uint32_t n = r.u32();
  rec.versions.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Version v;
    v.timestamp = r.i64();
    v.is_delete = r.u8() != 0;
    v.value = r.value();
    rec.versions.push_back(std::move(v));
  }
  return rec;
}

EngineStats TtkvClient::Stats() {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kStats));
  const std::string body = Rpc(w.take());
  BinaryReader r(body);
  EngineStats stats;
  stats.ttkv.reads = r.u64();
  stats.ttkv.writes = r.u64();
  stats.ttkv.deletes = r.u64();
  stats.ttkv.num_keys = r.u64();
  stats.ttkv.size_bytes = r.u64();
  stats.num_shards = r.u32();
  stats.puts = r.u64();
  stats.gets = r.u64();
  stats.deletes = r.u64();
  r.u64();  // connections_served; not part of EngineStats.
  return stats;
}

std::vector<std::string> TtkvClient::ListKeys(const std::string& prefix) {
  const std::string body = Rpc(EncodeKeyOnly(Op::kListKeys, prefix));
  BinaryReader r(body);
  const uint32_t n = r.u32();
  std::vector<std::string> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) keys.push_back(r.str());
  return keys;
}

TTKV TtkvClient::Snapshot() {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kSnapshot));
  const std::string body = Rpc(w.take());
  BinaryReader r(body);
  return TTKV::Deserialize(r.str());
}

uint64_t TtkvClient::Compact(TimeMicros horizon) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kCompact));
  w.i64(horizon);
  const std::string body = Rpc(w.take());
  BinaryReader r(body);
  return r.u64();
}

std::vector<NamedCluster> TtkvClient::ClusterNow(double threshold_correlation, Linkage linkage) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kClusterNow));
  w.f64(threshold_correlation);
  uint8_t code = 0;
  switch (linkage) {
    case Linkage::kComplete: code = 0; break;
    case Linkage::kSingle: code = 1; break;
    case Linkage::kAverage: code = 2; break;
  }
  w.u8(code);
  const std::string body = Rpc(w.take());
  BinaryReader r(body);
  const uint32_t n = r.u32();
  std::vector<NamedCluster> clusters;
  clusters.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    NamedCluster cluster;
    cluster.version_count = r.u64();
    cluster.last_modified = r.i64();
    const uint32_t m = r.u32();
    cluster.keys.reserve(m);
    for (uint32_t j = 0; j < m; ++j) cluster.keys.push_back(r.str());
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

void TtkvClient::Shutdown() {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(Op::kShutdown));
  Rpc(w.take());
  Close();
}

void TtkvClient::PutBatch(const std::vector<std::pair<std::string, Value>>& entries,
                          TimeMicros t) {
  std::vector<std::string> requests;
  requests.reserve(entries.size());
  for (const auto& [key, value] : entries) requests.push_back(EncodePut(key, value, t));
  for (std::string& reply : RpcPipelined(requests)) CheckReply(std::move(reply));
}

std::vector<std::optional<Value>> TtkvClient::GetBatch(const std::vector<std::string>& keys) {
  std::vector<std::string> requests;
  requests.reserve(keys.size());
  for (const std::string& key : keys) requests.push_back(EncodeKeyOnly(Op::kGet, key));
  std::vector<std::optional<Value>> values;
  values.reserve(keys.size());
  for (std::string& reply : RpcPipelined(requests)) {
    values.push_back(DecodeOptionalValue(CheckReply(std::move(reply))));
  }
  return values;
}

}  // namespace ocasta
