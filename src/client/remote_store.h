// RemoteStore — a ConfigStore backed by any api::Engine.
//
// Plugs a TTKV engine into everything built on ConfigStore: the
// interception decorator, the flush-diff logger, and the repair sandbox
// all work against the daemon (api::RemoteEngine), the sharded in-process
// engine, or a plain LocalEngine unchanged — the way the paper's recorders
// all talk to one shared Redis server. Current state is the engine's
// latest live values; Remove tombstones (history is preserved engine-side,
// and the non-force DeleteCmd policy applies: removing an absent key
// records nothing).
#pragma once

#include "api/engine.h"
#include "configstore/config_store.h"

namespace ocasta {

class RemoteStore final : public ConfigStore {
 public:
  // `engine` must outlive this store. `kind` declares which store the
  // engine is standing in for (key syntax of the recorded application).
  explicit RemoteStore(api::Engine& engine, StoreKind kind = StoreKind::kGconf)
      : engine_(engine), kind_(kind) {}

  std::optional<Value> Read(const std::string& key) override {
    return api::Get(engine_, key);
  }
  void Write(const std::string& key, Value value) override {
    api::Put(engine_, key, value);
  }
  bool Remove(const std::string& key) override { return api::Delete(engine_, key); }
  std::vector<std::string> ListKeys(const std::string& prefix) const override {
    return api::ListKeys(engine_, prefix);
  }
  StoreKind kind() const override { return kind_; }

  // Live key → latest value, from one merged engine snapshot.
  ConfigMap Snapshot() const override;

  // Diff-based restore: writes keys that differ, tombstones live keys not
  // in `state`. The whole diff ships as ONE BatchCmd — a single frame on
  // the remote backend — though the restore is still not atomic versus
  // concurrent writers (neither is the paper's rollback, which replays
  // individual store writes).
  void RestoreSnapshot(const ConfigMap& state) override;

 private:
  api::Engine& engine_;
  StoreKind kind_;
};

}  // namespace ocasta
