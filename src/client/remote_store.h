// RemoteStore — a ConfigStore backed by the ocastad daemon.
//
// Plugs the network daemon into everything built on ConfigStore: the
// interception decorator, the flush-diff logger, and the repair sandbox all
// work against a remote TTKV unchanged, the way the paper's recorders all
// talk to one shared Redis server. Current state is the daemon's latest
// live values; Remove tombstones (history is preserved daemon-side).
#pragma once

#include "client/ttkv_client.h"
#include "configstore/config_store.h"

namespace ocasta {

class RemoteStore final : public ConfigStore {
 public:
  // `client` must outlive this store. `kind` declares which store the
  // daemon is standing in for (key syntax of the recorded application).
  explicit RemoteStore(TtkvClient& client, StoreKind kind = StoreKind::kGconf)
      : client_(client), kind_(kind) {}

  std::optional<Value> Read(const std::string& key) override { return client_.Get(key); }
  void Write(const std::string& key, Value value) override { client_.Put(key, value); }
  bool Remove(const std::string& key) override { return client_.Delete(key); }
  std::vector<std::string> ListKeys(const std::string& prefix) const override {
    return client_.ListKeys(prefix);
  }
  StoreKind kind() const override { return kind_; }

  // Live key → latest value, from one merged daemon snapshot.
  ConfigMap Snapshot() const override;

  // Diff-based restore: writes keys that differ, tombstones live keys not
  // in `state`. Each step is one RPC; the restore is not atomic (neither is
  // the paper's rollback, which replays individual store writes).
  void RestoreSnapshot(const ConfigMap& state) override;

 private:
  TtkvClient& client_;
  StoreKind kind_;
};

}  // namespace ocasta
