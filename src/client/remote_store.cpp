#include "client/remote_store.h"

namespace ocasta {

ConfigMap RemoteStore::Snapshot() const {
  const TTKV ttkv = api::Snapshot(engine_);
  ConfigMap state;
  for (const std::string& key : ttkv.key_names()) {
    std::optional<Value> value = ttkv.latest(key);
    if (value.has_value()) state.emplace(key, std::move(*value));
  }
  return state;
}

void RemoteStore::RestoreSnapshot(const ConfigMap& state) {
  const ConfigMap current = Snapshot();
  api::BatchCmd batch;
  for (const auto& [key, value] : current) {
    if (state.count(key) == 0) batch.commands.push_back(api::DeleteCmd{key});
  }
  for (const auto& [key, value] : state) {
    const auto it = current.find(key);
    if (it == current.end() || !(it->second == value)) {
      batch.commands.push_back(api::PutCmd{key, value});
    }
  }
  if (batch.commands.empty()) return;
  for (api::Result& result : api::Expect<api::BatchResult>(
           engine_.Apply(std::move(batch)), "RESTORE_SNAPSHOT").results) {
    if (auto* err = std::get_if<api::ErrorResult>(&result.op)) {
      throw StoreError("RestoreSnapshot: " + err->message);
    }
  }
}

}  // namespace ocasta
