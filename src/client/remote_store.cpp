#include "client/remote_store.h"

namespace ocasta {

ConfigMap RemoteStore::Snapshot() const {
  const TTKV ttkv = client_.Snapshot();
  ConfigMap state;
  for (const std::string& key : ttkv.key_names()) {
    std::optional<Value> value = ttkv.latest(key);
    if (value.has_value()) state.emplace(key, std::move(*value));
  }
  return state;
}

void RemoteStore::RestoreSnapshot(const ConfigMap& state) {
  const ConfigMap current = Snapshot();
  for (const auto& [key, value] : current) {
    if (state.count(key) == 0) client_.Delete(key);
  }
  for (const auto& [key, value] : state) {
    const auto it = current.find(key);
    if (it == current.end() || !(it->second == value)) client_.Put(key, value);
  }
}

}  // namespace ocasta
