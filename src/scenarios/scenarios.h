// The 16 real-world configuration errors of the paper's Table III.
//
// Each scenario binds an application on a Table I machine, the keys the
// error corrupts (wrong value, or insertion/deletion), and the keys whose
// pre-error values must be restored for the symptom to disappear. Errors
// needing more than one key restored together (#2, #4, #6, #7, #9) are the
// ones the no-clustering baseline cannot fix.
#pragma once

#include <string>
#include <vector>

#include "ttkv/value.h"

namespace ocasta {

// How one key is corrupted. The concrete bad value is derived from the
// key's good value at injection time (e.g. a flipped toggle), so scenarios
// stay valid for any generated trace.
struct CorruptionSpec {
  enum class Kind : uint8_t {
    kFlipBool = 0,   // Toggle the boolean.
    kSetValue = 1,   // Overwrite with `value`.
    kDelete = 2,     // Remove the key.
  };
  std::string key;
  Kind kind = Kind::kFlipBool;
  Value value = {};  // For kSetValue.
};

struct ErrorScenario {
  int id = 0;
  std::string machine;  // Table I profile name.
  std::string app;      // Table II application name.
  std::string logger;   // "Registry" / "GConf" / "File" (Table III column).
  std::string description;
  std::vector<CorruptionSpec> corruptions;
  // Keys that must be back at their pre-error values for the symptom to
  // disappear. |required_keys| > 1 defeats single-key rollback.
  std::vector<std::string> required_keys;
  // Non-default parameters the paper needed for this error (errors #2, #4
  // were only fixable after tuning threshold/window).
  bool needs_tuning = false;
  double tuned_threshold = 2.0;
  double tuned_window_seconds = 1.0;
};

// All 16 errors, in Table III order.
std::vector<ErrorScenario> AllScenarios();

// Scenario by id (1-16); throws Error for unknown ids.
ErrorScenario ScenarioById(int id);

}  // namespace ocasta
