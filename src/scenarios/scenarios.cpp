#include "scenarios/scenarios.h"

#include "apps/catalog.h"
#include "common/error.h"

namespace ocasta {

namespace {

CorruptionSpec Flip(std::string key) {
  return CorruptionSpec{
      .key = std::move(key), .kind = CorruptionSpec::Kind::kFlipBool, .value = Value()};
}
CorruptionSpec Set(std::string key, Value value) {
  return CorruptionSpec{
      .key = std::move(key), .kind = CorruptionSpec::Kind::kSetValue, .value = std::move(value)};
}
CorruptionSpec Del(std::string key) {
  return CorruptionSpec{
      .key = std::move(key), .kind = CorruptionSpec::Kind::kDelete, .value = Value()};
}

const char* kOutlookPrefs = "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Outlook\\Preferences";
const char* kWordRoot = "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Word";
const char* kIeExt = "HKEY_CURRENT_USER\\Software\\Microsoft\\Internet Explorer\\Ext";
const char* kExplorerRoot =
    "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\Explorer";
const char* kWmpPrefs = "HKEY_CURRENT_USER\\Software\\Microsoft\\MediaPlayer\\Preferences";
const char* kPaintRoot = "HKEY_CURRENT_USER\\Software\\Microsoft\\Paint";

}  // namespace

std::vector<ErrorScenario> AllScenarios() {
  std::vector<ErrorScenario> scenarios;

  {  // 1. Outlook: Navigation Panel unusable.
    ErrorScenario s;
    s.id = 1;
    s.machine = "Windows 7";
    s.app = kOutlook;
    s.logger = "Registry";
    s.description = "User is unable to use Navigation Panel.";
    s.corruptions = {Flip(std::string(kOutlookPrefs) + "\\NavPaneVisible")};
    s.required_keys = {std::string(kOutlookPrefs) + "\\NavPaneVisible"};
    scenarios.push_back(std::move(s));
  }
  {  // 2. Word: recently accessed documents list lost. The offending change
     // shrank Max Display and deleted the extra Item settings (Figure 1a);
     // undoing it needs the dominant key and the deleted items together.
    ErrorScenario s;
    s.id = 2;
    s.machine = "Windows 7";
    s.app = kWord;
    s.logger = "Registry";
    s.description = "User loses the list of recently accessed documents.";
    s.corruptions.push_back(Set(std::string(kWordRoot) + "\\Options\\Max Display", Value(1)));
    for (int i = 2; i <= 17; ++i) {
      s.corruptions.push_back(
          Del(std::string(kWordRoot) + "\\File MRU\\Item " + std::to_string(i)));
    }
    s.required_keys = {std::string(kWordRoot) + "\\Options\\Max Display",
                       std::string(kWordRoot) + "\\File MRU\\Item 2",
                       std::string(kWordRoot) + "\\File MRU\\Item 3"};
    s.needs_tuning = true;  // Default threshold leaves Max Display unclustered.
    s.tuned_threshold = 1.0;
    s.tuned_window_seconds = 30.0;
    scenarios.push_back(std::move(s));
  }
  {  // 3. IE: add-on dialog always pops up.
    ErrorScenario s;
    s.id = 3;
    s.machine = "Windows 7";
    s.app = kInternetExplorer;
    s.logger = "Registry";
    s.description = "Dialog to disable add-ons always pops up.";
    s.corruptions = {Flip(std::string(kIeExt) + "\\DisableAddonLoadTimePerformanceNotifications")};
    s.required_keys = {std::string(kIeExt) + "\\DisableAddonLoadTimePerformanceNotifications"};
    scenarios.push_back(std::move(s));
  }
  {  // 4. Explorer: "Open with" menu broken for .flv. The master list and a
     // member entry must be restored together.
    ErrorScenario s;
    s.id = 4;
    s.machine = "Windows Vista";
    s.app = kExplorer;
    s.logger = "Registry";
    s.description =
        "\"Open with\" menu does not show installed applications that can open .flv file.";
    const std::string base = std::string(kExplorerRoot) + "\\FileExts\\.flv\\OpenWithList";
    s.corruptions = {Set(base + "\\MRUList", Value("misconfigured")), Del(base + "\\b")};
    s.required_keys = {base + "\\MRUList", base + "\\b"};
    s.needs_tuning = true;  // The list key changes without its members.
    s.tuned_threshold = 1.0;
    s.tuned_window_seconds = 1.0;
    scenarios.push_back(std::move(s));
  }
  {  // 5. WMP: captions not shown.
    ErrorScenario s;
    s.id = 5;
    s.machine = "Windows XP";
    s.app = kMediaPlayer;
    s.logger = "Registry";
    s.description = "Caption is not shown while playing video.";
    s.corruptions = {Flip(std::string(kWmpPrefs) + "\\CaptionsOn")};
    s.required_keys = {std::string(kWmpPrefs) + "\\CaptionsOn"};
    scenarios.push_back(std::move(s));
  }
  {  // 6. Paint: text toolbar does not pop up (visibility + position).
    ErrorScenario s;
    s.id = 6;
    s.machine = "Windows XP";
    s.app = kPaint;
    s.logger = "Registry";
    s.description = "Text tool bar does not pop up automatically when entering text.";
    s.corruptions = {Flip(std::string(kPaintRoot) + "\\View\\ShowTextTool"),
                     Set(std::string(kPaintRoot) + "\\Text\\ToolbarX", Value(-3000))};
    s.required_keys = {std::string(kPaintRoot) + "\\View\\ShowTextTool",
                       std::string(kPaintRoot) + "\\Text\\ToolbarX"};
    scenarios.push_back(std::move(s));
  }
  {  // 7. Explorer: image files always open maximized (state + placement).
    ErrorScenario s;
    s.id = 7;
    s.machine = "Windows XP";
    s.app = kExplorer;
    s.logger = "Registry";
    s.description = "Image files are always opened in a maximized window.";
    s.corruptions = {Flip(std::string(kExplorerRoot) + "\\ImagePreview\\Maximized"),
                     Set(std::string(kExplorerRoot) + "\\ImagePreview\\Placement",
                         Value("misconfigured"))};
    s.required_keys = {std::string(kExplorerRoot) + "\\ImagePreview\\Maximized",
                       std::string(kExplorerRoot) + "\\ImagePreview\\Placement"};
    scenarios.push_back(std::move(s));
  }
  {  // 8. Evolution: starts in offline mode.
    ErrorScenario s;
    s.id = 8;
    s.machine = "Linux-1";
    s.app = kEvolution;
    s.logger = "GConf";
    s.description = "Evolution Mail starts in offline mode unexpectedly.";
    s.corruptions = {Flip("/apps/evolution/shell/start_offline")};
    s.required_keys = {"/apps/evolution/shell/start_offline"};
    scenarios.push_back(std::move(s));
  }
  {  // 9. Evolution: read mail not marked automatically (Figure 1c pair).
    ErrorScenario s;
    s.id = 9;
    s.machine = "Linux-1";
    s.app = kEvolution;
    s.logger = "GConf";
    s.description = "Evolution Mail does not mark read mail automatically.";
    s.corruptions = {Flip("/apps/evolution/mail/display/mark_seen"),
                     Set("/apps/evolution/mail/display/mark_seen_timeout", Value(999999))};
    s.required_keys = {"/apps/evolution/mail/display/mark_seen",
                       "/apps/evolution/mail/display/mark_seen_timeout"};
    scenarios.push_back(std::move(s));
  }
  {  // 10. Evolution: replies not composed at the top.
    ErrorScenario s;
    s.id = 10;
    s.machine = "Linux-1";
    s.app = kEvolution;
    s.logger = "GConf";
    s.description = "Evolution Mail does not start a reply at the top of an e-mail.";
    s.corruptions = {Set("/apps/evolution/mail/composer/reply_style", Value("misconfigured"))};
    s.required_keys = {"/apps/evolution/mail/composer/reply_style"};
    scenarios.push_back(std::move(s));
  }
  {  // 11. Eye of GNOME: printing disabled.
    ErrorScenario s;
    s.id = 11;
    s.machine = "Linux-1";
    s.app = kEyeOfGnome;
    s.logger = "GConf";
    s.description = "User is unable to print image files.";
    s.corruptions = {Flip("/apps/eog/ui/can_print")};
    s.required_keys = {"/apps/eog/ui/can_print"};
    scenarios.push_back(std::move(s));
  }
  {  // 12. GNOME Edit: saving disabled.
    ErrorScenario s;
    s.id = 12;
    s.machine = "Linux-1";
    s.app = kGnomeEdit;
    s.logger = "GConf";
    s.description = "User is unable to save any document.";
    s.corruptions = {Flip("/apps/gedit-2/preferences/editor/save/can_save")};
    s.required_keys = {"/apps/gedit-2/preferences/editor/save/can_save"};
    scenarios.push_back(std::move(s));
  }
  {  // 13. Chrome: bookmark bar missing.
    ErrorScenario s;
    s.id = 13;
    s.machine = "Linux-2";
    s.app = kChrome;
    s.logger = "File";
    s.description = "Bookmark bar is missing.";
    s.corruptions = {Flip("bookmark_bar/show_on_all_tabs")};
    s.required_keys = {"bookmark_bar/show_on_all_tabs"};
    scenarios.push_back(std::move(s));
  }
  {  // 14. Chrome: home button missing.
    ErrorScenario s;
    s.id = 14;
    s.machine = "Linux-2";
    s.app = kChrome;
    s.logger = "File";
    s.description = "Home button is missing from the tool bar.";
    s.corruptions = {Flip("browser/show_home_button")};
    s.required_keys = {"browser/show_home_button"};
    scenarios.push_back(std::move(s));
  }
  {  // 15. Acrobat: menu bar disappears.
    ErrorScenario s;
    s.id = 15;
    s.machine = "Linux-3";
    s.app = kAcrobat;
    s.logger = "File";
    s.description = "Menu bar disappears for certain PDF document.";
    s.corruptions = {Flip("Originals/ShowMenuBar")};
    s.required_keys = {"Originals/ShowMenuBar"};
    scenarios.push_back(std::move(s));
  }
  {  // 16. Acrobat: find box missing.
    ErrorScenario s;
    s.id = 16;
    s.machine = "Linux-4";
    s.app = kAcrobat;
    s.logger = "File";
    s.description = "Find box is missing from the tool bar.";
    s.corruptions = {Flip("Toolbars/ShowFindBox")};
    s.required_keys = {"Toolbars/ShowFindBox"};
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

ErrorScenario ScenarioById(int id) {
  for (ErrorScenario& scenario : AllScenarios()) {
    if (scenario.id == id) return scenario;
  }
  throw Error("unknown scenario id: " + std::to_string(id));
}

}  // namespace ocasta
