// Scenario harness: runs one Table III error end-to-end.
//
// Pipeline (mirroring Section VI-B of the paper):
//   1. take a generated machine trace;
//   2. capture the application's good state 14 days before the trace ends;
//   3. inject the erroneous writes/deletions (plus optional spurious
//      fix-attempt writes) into the trace;
//   4. rebuild the application's TTKV from the trace and cluster it;
//   5. run the repair search (Ocasta, and the NoClust single-key baseline)
//      with the user's start bound at the injection time.
#pragma once

#include <optional>

#include "clustering/engine.h"
#include "repair/search.h"
#include "scenarios/scenarios.h"
#include "workload/generator.h"
#include "workload/inject.h"

namespace ocasta {

struct ScenarioRunOptions {
  double injection_days_before_end = 14.0;
  int spurious_writes = 0;
  SearchStrategy strategy = SearchStrategy::kDfs;
  ClusteringParams params;  // Window 1 s, threshold 2, complete linkage.
  // Search start bound in days before trace end; defaults to the injection
  // time (the user knows roughly when the error appeared).
  std::optional<double> start_days_before_end;
  // Apply the scenario's tuned threshold/window when it needs tuning
  // (the paper's remediation for errors #2 and #4).
  bool use_tuned_params = false;
  CostModel cost;
};

struct ScenarioRun {
  ErrorScenario scenario;
  ClusteringParams params_used;
  RepairOutcome ocasta;
  RepairOutcome noclust;
  size_t offending_cluster_size = 0;  // Size of the cluster whose rollback fixed it.
  double average_multi_cluster_size = 0;
  size_t total_clusters = 0;
};

// Runs a scenario against a copy of `machine` (which must host the
// scenario's application — typically generated from the scenario's Table I
// profile).
ScenarioRun RunScenario(const MachineTrace& machine, const ErrorScenario& scenario,
                        const ScenarioRunOptions& options);

// Resolves each corruption spec against the good state: flips read the
// current value; deletions of absent keys are dropped.
std::vector<Corruption> ResolveCorruptions(const std::vector<CorruptionSpec>& specs,
                                           const ConfigMap& good_state);

// Oracle requirements for a scenario: every required key must render with
// its good-state display value.
std::vector<RequiredKeyOracle::Requirement> OracleRequirements(const ErrorScenario& scenario,
                                                               const ConfigMap& good_state);

}  // namespace ocasta
