#include "scenarios/harness.h"

#include <set>

#include "common/error.h"

namespace ocasta {

std::vector<Corruption> ResolveCorruptions(const std::vector<CorruptionSpec>& specs,
                                           const ConfigMap& good_state) {
  std::vector<Corruption> corruptions;
  for (const CorruptionSpec& spec : specs) {
    auto it = good_state.find(spec.key);
    switch (spec.kind) {
      case CorruptionSpec::Kind::kFlipBool: {
        const bool good = it != good_state.end() && it->second.type() == ValueType::kBool
                              ? it->second.as_bool()
                              : true;
        corruptions.push_back({spec.key, Value(!good)});
        break;
      }
      case CorruptionSpec::Kind::kSetValue: {
        if (it != good_state.end() && it->second == spec.value) {
          throw Error("scenario bad value equals the good value for " + spec.key);
        }
        corruptions.push_back({spec.key, spec.value});
        break;
      }
      case CorruptionSpec::Kind::kDelete: {
        if (it == good_state.end()) continue;  // Already absent; no event.
        corruptions.push_back({spec.key, std::nullopt});
        break;
      }
    }
  }
  if (corruptions.empty()) throw Error("scenario resolved to no corruptions");
  return corruptions;
}

std::vector<RequiredKeyOracle::Requirement> OracleRequirements(const ErrorScenario& scenario,
                                                               const ConfigMap& good_state) {
  std::vector<RequiredKeyOracle::Requirement> requirements;
  for (const std::string& key : scenario.required_keys) {
    auto it = good_state.find(key);
    requirements.push_back(
        {key, it == good_state.end() ? std::string("<unset>") : it->second.ToDisplay()});
  }
  return requirements;
}

ScenarioRun RunScenario(const MachineTrace& machine, const ErrorScenario& scenario,
                        const ScenarioRunOptions& options) {
  MachineTrace run_machine = machine;  // Injection mutates the trace.
  const AppSchema& schema = run_machine.SchemaFor(scenario.app);

  const TimeMicros t_inj =
      run_machine.end_time - Days(options.injection_days_before_end);
  const ConfigMap good_state = SnapshotAt(run_machine, scenario.app, t_inj);

  const std::vector<Corruption> corruptions =
      ResolveCorruptions(scenario.corruptions, good_state);

  // The corruption must persist to the end of the trace, so later
  // legitimate writes to the broken setting group are dropped — the user
  // has stopped (re)configuring a feature that is visibly broken. Removing
  // the *whole group's* later events (not just the corrupted keys') keeps
  // the group's always-modified-together correlation intact; stripping only
  // the corrupted keys would make their partners appear independently
  // modified and artificially split the cluster.
  std::set<std::string> frozen_keys;
  for (const Corruption& corruption : corruptions) {
    frozen_keys.insert(corruption.key);
    for (const SchemaGroup& group : schema.groups) {
      for (const KeySpec& key : group.keys) {
        if (key.path != corruption.key) continue;
        for (const KeySpec& member : group.keys) frozen_keys.insert(member.path);
      }
    }
  }
  run_machine.trace.RemoveEventsForKeys(scenario.app, frozen_keys, t_inj);

  // Ocasta clustered while the application was healthy: the cluster set
  // comes from the pre-injection history. (Including the injected partial
  // write itself would dilute every touched pair below the
  // always-modified-together threshold and artificially split the
  // offending cluster.)
  const TTKV ttkv_clean = BuildAppTtkv(run_machine, scenario.app);

  ClusteringParams params = options.params;
  if (options.use_tuned_params && scenario.needs_tuning) {
    params.threshold_correlation = scenario.tuned_threshold;
    params.window_seconds = scenario.tuned_window_seconds;
  }
  const ClusterSet clean_clusters = ClusterKeys(ttkv_clean, params);

  InjectionSpec injection;
  injection.app = scenario.app;
  injection.at = t_inj;
  injection.corruptions = corruptions;
  injection.spurious_writes = options.spurious_writes;
  InjectError(run_machine, injection);

  const TTKV ttkv = BuildAppTtkv(run_machine, scenario.app);
  const ClusterSet clusters =
      RemapClusters(clean_clusters, ttkv_clean, ttkv, params.window_seconds);

  const ConfigMap current_state = run_machine.final_configs.at(scenario.app);
  const RequiredKeyOracle oracle(OracleRequirements(scenario, good_state));
  const Trial trial{scenario.app, [schema](ConfigStore& store) {
                      return RenderApp(schema, store);
                    }};

  RepairConfig config;
  config.strategy = options.strategy;
  config.start_time =
      run_machine.end_time -
      Days(options.start_days_before_end.value_or(options.injection_days_before_end));
  config.window_seconds = params.window_seconds;
  config.cost = options.cost;

  ScenarioRun run;
  run.scenario = scenario;
  run.params_used = params;
  run.average_multi_cluster_size = clusters.average_multi_cluster_size();
  run.total_clusters = clusters.size();

  {
    RepairController controller(ttkv, clusters, current_state, schema.store, trial, oracle);
    run.ocasta = controller.Run(config);
    if (run.ocasta.fixed) {
      run.offending_cluster_size = clusters.cluster(run.ocasta.offending_cluster).size();
    }
  }
  {
    const ClusterSet singles = SingletonClusters(ttkv);
    RepairController controller(ttkv, singles, current_state, schema.store, trial, oracle);
    run.noclust = controller.Run(config);
  }
  return run;
}

}  // namespace ocasta
