#include "api/local_engine.h"

#include <algorithm>
#include <chrono>

#include "clustering/engine.h"
#include "common/error.h"
#include "common/strings.h"

namespace ocasta::api {

LocalEngine::LocalEngine(Options options) : options_(options) {}

LocalEngine::LocalEngine(TTKV initial, Options options)
    : ttkv_(std::move(initial)), options_(options) {}

TimeMicros LocalEngine::StampNowLocked() {
  const int64_t wall = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  clock_ = std::max(wall, clock_ + 1);
  return clock_;
}

Result LocalEngine::Apply(const Command& cmd) {
  std::lock_guard<lockdep::ordered_mutex> lock(mu_);
  ++lock_acquisitions_;
  return ApplyLocked(cmd);
}

std::vector<Result> LocalEngine::ApplyBatch(std::span<const Command> cmds) {
  std::lock_guard<lockdep::ordered_mutex> lock(mu_);
  ++lock_acquisitions_;
  std::vector<Result> results;
  results.reserve(cmds.size());
  for (const Command& cmd : cmds) results.push_back(ApplyLocked(cmd));
  return results;
}

Result LocalEngine::ApplyLocked(const Command& cmd) {
  struct Dispatcher {
    LocalEngine& self;

    Result operator()(const PingCmd&) { return OkResult{}; }

    Result operator()(const PutCmd& cmd) {
      if (cmd.key.empty()) throw StoreError("empty key");
      const TimeMicros t = cmd.timestamp == 0 ? self.StampNowLocked() : cmd.timestamp;
      self.ttkv_.record_write_clamped(cmd.key, cmd.value, t);
      ++self.puts_;
      return OkResult{};
    }

    Result operator()(const DeleteCmd& cmd) {
      if (cmd.key.empty()) throw StoreError("empty key");
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      const bool existed = rec != nullptr && rec->latest().has_value();
      if (!existed && !cmd.force) return ExistedResult{false};
      const TimeMicros t = cmd.timestamp == 0 ? self.StampNowLocked() : cmd.timestamp;
      self.ttkv_.record_delete_clamped(cmd.key, t);
      ++self.deletes_;
      return ExistedResult{existed};
    }

    Result operator()(const GetCmd& cmd) {
      ++self.gets_;
      return ValueResult{self.ttkv_.read_latest(cmd.key)};
    }

    Result operator()(const GetAtCmd& cmd) {
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      ValueResult res;
      if (rec != nullptr) res.value = rec->value_at(cmd.timestamp);
      return res;
    }

    Result operator()(const HistoryCmd& cmd) {
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      if (rec == nullptr) return HistoryResult{};
      return HistoryResult{*rec};
    }

    Result operator()(const ListKeysCmd& cmd) {
      KeysResult res;
      for (uint32_t id = 0; id < self.ttkv_.num_keys(); ++id) {
        const VersionedRecord& rec = self.ttkv_.record(id);
        if (StartsWith(rec.key, cmd.prefix) && rec.latest().has_value()) {
          res.keys.push_back(rec.key);
        }
      }
      std::sort(res.keys.begin(), res.keys.end());
      return res;
    }

    Result operator()(const StatsCmd&) {
      StatsResult res;
      res.stats.ttkv = self.ttkv_.stats();
      res.stats.num_shards = 1;
      res.stats.puts = self.puts_;
      res.stats.gets = self.gets_;
      res.stats.deletes = self.deletes_;
      res.stats.lock_acquisitions = self.lock_acquisitions_;
      // One plain mutex: every acquisition is exclusive.
      res.stats.write_lock_acquisitions = self.lock_acquisitions_;
      return res;
    }

    Result operator()(const SnapshotCmd&) { return SnapshotResult{self.ttkv_}; }

    Result operator()(const CompactCmd& cmd) {
      return CompactResult{self.ttkv_.CompactBefore(cmd.horizon)};
    }

    Result operator()(const ClusterNowCmd& cmd) {
      ClusteringParams params;
      params.window_seconds = self.options_.cluster_window_seconds;
      params.threshold_correlation = cmd.threshold_correlation;
      params.linkage = cmd.linkage;
      const ClusterSet set = ClusterKeys(self.ttkv_, params);
      ClustersResult res;
      res.clusters.reserve(set.size());
      for (const KeyCluster& cluster : set.clusters()) {
        NamedCluster named;
        named.version_count = cluster.version_count;
        named.last_modified = cluster.last_modified;
        named.keys.reserve(cluster.keys.size());
        for (uint32_t id : cluster.keys) named.keys.push_back(self.ttkv_.key_name(id));
        res.clusters.push_back(std::move(named));
      }
      return res;
    }

    Result operator()(const ShutdownCmd&) { return OkResult{}; }

    Result operator()(const BatchCmd& cmd) {
      BatchResult res;
      res.results.reserve(cmd.commands.size());
      for (const Command& sub : cmd.commands) res.results.push_back(self.ApplyLocked(sub));
      return res;
    }
  };

  try {
    return std::visit(Dispatcher{*this}, cmd.op);
  } catch (const Error& e) {
    return ErrorResult{e.what()};
  }
}

}  // namespace ocasta::api
