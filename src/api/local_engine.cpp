#include "api/local_engine.h"

#include <algorithm>
#include <chrono>

#include "clustering/engine.h"
#include "common/error.h"
#include "common/strings.h"

namespace ocasta::api {

LocalEngine::LocalEngine(Options options) : options_(options) {
  // Same metric names + labels as ShardedTtkv, so dashboards are
  // backend-agnostic (docs/OBSERVABILITY.md).
  if (obs::MetricsRegistry* m = options_.metrics) {
    ctr_puts_ = &m->GetCounter("ocasta_engine_ops_total", {{"op", "put"}});
    ctr_gets_ = &m->GetCounter("ocasta_engine_ops_total", {{"op", "get"}});
    ctr_deletes_ = &m->GetCounter("ocasta_engine_ops_total", {{"op", "delete"}});
    auto hist = [m](const char* op) {
      return &m->GetHistogram("ocasta_engine_apply_ns", {{"op", op}});
    };
    op_hist_[CommandOp(PutCmd{}).index()] = hist("put");
    op_hist_[CommandOp(GetCmd{}).index()] = hist("get");
    op_hist_[CommandOp(DeleteCmd{}).index()] = hist("delete");
    op_hist_[CommandOp(GetAtCmd{}).index()] = hist("get_at");
    op_hist_[CommandOp(HistoryCmd{}).index()] = hist("history");
    batch_hist_ = &m->GetHistogram("ocasta_engine_batch_commands");
  }
}

LocalEngine::LocalEngine(TTKV initial, Options options)
    : LocalEngine(options) {
  ttkv_ = std::move(initial);
}

TimeMicros LocalEngine::StampNowLocked() {
  const int64_t wall = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  clock_ = std::max(wall, clock_ + 1);
  return clock_;
}

Result LocalEngine::Apply(const Command& cmd) {
  const lockdep::guard lock(mu_);
  ++lock_acquisitions_;
  return ApplyTimedLocked(cmd);
}

std::vector<Result> LocalEngine::ApplyBatch(std::span<const Command> cmds) {
  const lockdep::guard lock(mu_);
  ++lock_acquisitions_;
  if (batch_hist_ != nullptr) batch_hist_->Record(cmds.size());
  std::vector<Result> results;
  results.reserve(cmds.size());
  for (const Command& cmd : cmds) results.push_back(ApplyTimedLocked(cmd));
  return results;
}

Result LocalEngine::ApplyTimedLocked(const Command& cmd) {
  obs::LatencyHistogram* h = op_hist_[cmd.op.index()];
  // Clock reads dominate the cost of timing a sub-microsecond apply, so
  // latency is sampled (1-in-N); the op counters inside ApplyLocked stay
  // exact.
  thread_local obs::HotPathSampler sample;
  if (h == nullptr || !sample()) return ApplyLocked(cmd);
  const auto t0 = std::chrono::steady_clock::now();
  Result res = ApplyLocked(cmd);
  h->Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
  return res;
}

Result LocalEngine::ApplyLocked(const Command& cmd) {
  struct Dispatcher {
    LocalEngine& self;

    Result operator()(const PingCmd&) OCASTA_REQUIRES(self.mu_) { return OkResult{}; }

    Result operator()(const PutCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      if (cmd.key.empty()) throw StoreError("empty key");
      const TimeMicros t = cmd.timestamp == 0 ? self.StampNowLocked() : cmd.timestamp;
      self.ttkv_.record_write_clamped(cmd.key, cmd.value, t);
      ++self.puts_;
      if (self.ctr_puts_ != nullptr) self.ctr_puts_->Inc();
      return OkResult{};
    }

    Result operator()(const DeleteCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      if (cmd.key.empty()) throw StoreError("empty key");
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      const bool existed = rec != nullptr && rec->latest().has_value();
      if (!existed && !cmd.force) return ExistedResult{false};
      const TimeMicros t = cmd.timestamp == 0 ? self.StampNowLocked() : cmd.timestamp;
      self.ttkv_.record_delete_clamped(cmd.key, t);
      ++self.deletes_;
      if (self.ctr_deletes_ != nullptr) self.ctr_deletes_->Inc();
      return ExistedResult{existed};
    }

    Result operator()(const GetCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      ++self.gets_;
      if (self.ctr_gets_ != nullptr) self.ctr_gets_->Inc();
      return ValueResult{self.ttkv_.read_latest(cmd.key)};
    }

    Result operator()(const GetAtCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      ValueResult res;
      if (rec != nullptr) res.value = rec->value_at(cmd.timestamp);
      return res;
    }

    Result operator()(const HistoryCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      const VersionedRecord* rec = self.ttkv_.find(cmd.key);
      if (rec == nullptr) return HistoryResult{};
      return HistoryResult{*rec};
    }

    Result operator()(const ListKeysCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      KeysResult res;
      for (uint32_t id = 0; id < self.ttkv_.num_keys(); ++id) {
        const VersionedRecord& rec = self.ttkv_.record(id);
        if (StartsWith(rec.key, cmd.prefix) && rec.latest().has_value()) {
          res.keys.push_back(rec.key);
        }
      }
      std::sort(res.keys.begin(), res.keys.end());
      return res;
    }

    Result operator()(const StatsCmd&) OCASTA_REQUIRES(self.mu_) {
      StatsResult res;
      res.stats.ttkv = self.ttkv_.stats();
      res.stats.num_shards = 1;
      res.stats.puts = self.puts_;
      res.stats.gets = self.gets_;
      res.stats.deletes = self.deletes_;
      res.stats.lock_acquisitions = self.lock_acquisitions_;
      // One plain mutex: every acquisition is exclusive.
      res.stats.write_lock_acquisitions = self.lock_acquisitions_;
      return res;
    }

    Result operator()(const SnapshotCmd&) OCASTA_REQUIRES(self.mu_) { return SnapshotResult{self.ttkv_}; }

    Result operator()(const CompactCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      return CompactResult{self.ttkv_.CompactBefore(cmd.horizon)};
    }

    Result operator()(const ClusterNowCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      ClusteringParams params;
      params.window_seconds = self.options_.cluster_window_seconds;
      params.threshold_correlation = cmd.threshold_correlation;
      params.linkage = cmd.linkage;
      const ClusterSet set = ClusterKeys(self.ttkv_, params);
      ClustersResult res;
      res.clusters.reserve(set.size());
      for (const KeyCluster& cluster : set.clusters()) {
        NamedCluster named;
        named.version_count = cluster.version_count;
        named.last_modified = cluster.last_modified;
        named.keys.reserve(cluster.keys.size());
        for (uint32_t id : cluster.keys) named.keys.push_back(self.ttkv_.key_name(id));
        res.clusters.push_back(std::move(named));
      }
      return res;
    }

    Result operator()(const ShutdownCmd&) OCASTA_REQUIRES(self.mu_) { return OkResult{}; }

    Result operator()(const BatchCmd& cmd) OCASTA_REQUIRES(self.mu_) {
      if (self.batch_hist_ != nullptr) self.batch_hist_->Record(cmd.commands.size());
      BatchResult res;
      res.results.reserve(cmd.commands.size());
      for (const Command& sub : cmd.commands) res.results.push_back(self.ApplyTimedLocked(sub));
      return res;
    }

    // Runs under mu_ (rank 30); the registry mutex ranks above it, so the
    // snapshot here is lock-order clean.
    Result operator()(const MetricsCmd&) OCASTA_REQUIRES(self.mu_) {
      MetricsResult res;
      if (self.options_.metrics != nullptr) res.snapshot = self.options_.metrics->Snapshot();
      return res;
    }

    // Replication is a daemon-level protocol between durable nodes; the
    // in-process engine has no WAL to serve or role to flip.
    Result operator()(const ReplicateCmd&) OCASTA_REQUIRES(self.mu_) {
      return ErrorResult{"REPLICATE requires a durable daemon (--data-dir)"};
    }
    Result operator()(const PromoteCmd&) OCASTA_REQUIRES(self.mu_) {
      return ErrorResult{"PROMOTE requires a daemon started as a follower"};
    }
  };

  try {
    return std::visit(Dispatcher{*this}, cmd.op);
  } catch (const Error& e) {
    return ErrorResult{e.what()};
  }
}

}  // namespace ocasta::api
