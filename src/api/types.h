// Engine-level result types shared by every TTKV backend (local, sharded,
// remote). These used to live in server/sharded_ttkv.h; they moved here so
// the api layer is the root of the dependency graph: backends include api,
// never the other way around.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "ttkv/ttkv.h"

namespace ocasta {

// Cross-shard aggregate statistics (TtkvStats plus engine counters).
struct EngineStats {
  TtkvStats ttkv;
  size_t num_shards = 0;
  // Op totals since engine construction. Freshness contract: counts are
  // kept in relaxed atomics and, on the sharded engine, flushed once per
  // command run rather than per command — so a STATS racing in-flight
  // traffic may miss ops still inside their run (each op is missing for
  // at most one run, never lost). On a QUIESCED engine (every prior Apply
  // returned, none in flight) the totals are exact and equal the
  // ocasta_engine_ops_total{op=...} metrics counters, which increment at
  // the same flush sites (asserted by ObsEngine.QuiescedStatsMatch).
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  // Shard-lock acquisitions since engine construction, total and split by
  // mode. The batched Apply path exists to push the total down: N
  // single-key commands cost N lock acquisitions applied one by one, but
  // at most num_shards when grouped into one BatchCmd (see bench_loadgen
  // --suite). Since the shared_mutex conversion, GET/GET_AT/HISTORY and
  // read-only batch groups take SHARED (reader) locks — concurrent readers
  // of one shard no longer serialize — while writes take exclusive locks;
  // the split shows which mode a workload actually exercises.
  uint64_t lock_acquisitions = 0;        // = read + write.
  uint64_t read_lock_acquisitions = 0;   // Shared-mode grabs.
  uint64_t write_lock_acquisitions = 0;  // Exclusive-mode grabs.
};

// ClusterNow output: clusters reference keys by name because the tracker's
// dense ids are engine-internal.
struct NamedCluster {
  std::vector<std::string> keys;
  uint64_t version_count = 0;
  TimeMicros last_modified = 0;
};

}  // namespace ocasta
