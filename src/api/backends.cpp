#include "api/backends.h"

#include "api/local_engine.h"
#include "api/remote_engine.h"
#include "common/error.h"
#include "server/sharded_ttkv.h"

namespace ocasta::api {

std::unique_ptr<Engine> MakeEngine(const BackendOptions& options) {
  if (options.backend == "local") {
    return std::make_unique<LocalEngine>(
        LocalEngine::Options{.cluster_window_seconds = options.cluster_window_seconds});
  }
  if (options.backend == "sharded") {
    return std::make_unique<ShardedTtkv>(options.num_shards, options.cluster_window_seconds);
  }
  if (options.backend == "remote") {
    return std::make_unique<RemoteEngine>(options.host, options.port);
  }
  throw Error("unknown backend: " + options.backend + " (expected local|sharded|remote)");
}

}  // namespace ocasta::api
