#include "api/backends.h"

#include "api/local_engine.h"
#include "api/remote_engine.h"
#include "common/error.h"
#include "persist/durable_engine.h"
#include "server/sharded_ttkv.h"

namespace ocasta::api {

namespace {

// Builds the in-process engine the durable decorator wraps — from recovered
// state when a snapshot/log exists, from the empty TTKV on first boot.
persist::DurableEngine::InnerFactory InnerFactoryFor(const BackendOptions& options) {
  if (options.backend == "local") {
    return [options](TTKV recovered) -> std::unique_ptr<Engine> {
      return std::make_unique<LocalEngine>(
          std::move(recovered),
          LocalEngine::Options{.cluster_window_seconds = options.cluster_window_seconds,
                               .metrics = options.metrics});
    };
  }
  return [options](TTKV recovered) -> std::unique_ptr<Engine> {
    auto engine = std::make_unique<ShardedTtkv>(options.num_shards,
                                                options.cluster_window_seconds, options.metrics);
    engine->ImportSnapshot(recovered);
    return engine;
  };
}

}  // namespace

std::unique_ptr<Engine> MakeEngine(const BackendOptions& options) {
  if (options.backend != "local" && options.backend != "sharded" &&
      options.backend != "remote") {
    throw Error("unknown backend: " + options.backend + " (expected local|sharded|remote)");
  }
  if (!options.data_dir.empty()) {
    if (options.backend == "remote") {
      throw Error("--data-dir requires a local or sharded backend "
                  "(the daemon owns durability for remote clients)");
    }
    persist::DurableOptions durable;
    durable.wal.fsync = persist::FsyncPolicyByName(options.fsync);
    durable.wal.segment_bytes = options.wal_segment_bytes;
    durable.wal.metrics = options.metrics;
    durable.checkpoint_wal_bytes = options.checkpoint_wal_bytes;
    durable.checkpoint_interval_seconds = options.checkpoint_interval_seconds;
    durable.commit_gate = options.commit_gate;
    return std::make_unique<persist::DurableEngine>(options.data_dir,
                                                    InnerFactoryFor(options), durable);
  }
  if (options.backend == "local") {
    return std::make_unique<LocalEngine>(
        LocalEngine::Options{.cluster_window_seconds = options.cluster_window_seconds,
                             .metrics = options.metrics});
  }
  if (options.backend == "sharded") {
    return std::make_unique<ShardedTtkv>(options.num_shards, options.cluster_window_seconds,
                                         options.metrics);
  }
  return std::make_unique<RemoteEngine>(options.host, options.port);
}

}  // namespace ocasta::api
