// The typed Command/Result vocabulary of the TTKV engine API.
//
// Every operation the system supports — locally against one TTKV, against
// the sharded in-process engine, or remotely over the ocastad wire protocol
// — is one Command alternative, and every reply is one Result alternative.
// Backends implement api::Engine (engine.h) over this vocabulary, and the
// wire protocol is generated from it (codec.h), so adding an op means
// adding one struct here plus one codec entry instead of touching the
// server, the client, and every tool separately.
//
// BatchCmd is first-class: a batch of commands travels as ONE wire frame
// and backends may execute it with grouped locking (see
// ShardedTtkv::ApplyBatch). Batches are not transactions — each contained
// command succeeds or fails independently, and its Result lands at the
// same index in the BatchResult.
#pragma once

#include <concepts>
#include <cstdint>
#include <optional>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "api/types.h"
#include "clustering/hac.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta::api {

struct Command;

// --- Commands ---------------------------------------------------------------

// Liveness probe; replies OkResult.
struct PingCmd {};

// Records a write. timestamp == 0 means "backend-assigned": the engine
// stamps the op from a monotonicized wall clock. Explicit timestamps are
// clamped per key to be non-decreasing.
struct PutCmd {
  std::string key;
  Value value;
  TimeMicros timestamp = 0;
};

// Tombstones a key. The `force` bit makes the suppression policy explicit:
//   force == false (default): absent or already-tombstoned keys are
//     skipped — nothing is recorded, ExistedResult{false} comes back — so
//     churny blind deletes cannot bloat the store (ShardedTtkv's historic
//     behavior).
//   force == true: the tombstone is recorded unconditionally, even for a
//     key the engine has never seen (TTKV::record_delete's historic
//     behavior — trace replay needs every event, suppressed or not).
// ExistedResult reports whether a live value was tombstoned, under either
// policy.
struct DeleteCmd {
  std::string key;
  TimeMicros timestamp = 0;
  bool force = false;
};

// Latest live value; counts a read against the key (Table I accounting).
struct GetCmd {
  std::string key;
};

// Value as of `timestamp` (time travel); does not count a read.
struct GetAtCmd {
  std::string key;
  TimeMicros timestamp = 0;
};

// Full version history of one key, tombstones included.
struct HistoryCmd {
  std::string key;
};

// Keys with a live value matching `prefix`, sorted. Empty prefix = all.
struct ListKeysCmd {
  std::string prefix;
};

struct StatsCmd {};

// Full store contents as one merged TTKV.
struct SnapshotCmd {};

// Drops history older than `horizon` (see TTKV::CompactBefore).
struct CompactCmd {
  TimeMicros horizon = 0;
};

// Clusters all keys observed so far by co-modification.
struct ClusterNowCmd {
  double threshold_correlation = 2.0;
  Linkage linkage = Linkage::kComplete;
};

// Asks a daemon to stop. In-process engines treat it as a no-op (OkResult);
// the server recognizes it at the top level of a request — inside a batch
// it does nothing.
struct ShutdownCmd {};

// A sequence of commands applied as one unit (one wire frame, grouped
// shard locking). Not transactional: per-command Results, in order.
struct BatchCmd {
  std::vector<Command> commands;
};

// Process-wide metrics snapshot (docs/OBSERVABILITY.md): every counter /
// gauge / latency histogram registered in the serving process's
// obs::MetricsRegistry. Engines running without a registry reply with an
// empty snapshot rather than an error, so probes are always safe.
struct MetricsCmd {};

// (v5) One replication pull: "send me WAL records after since_lsn". The
// serving daemon replies with a ReplicateResult carrying either a run of
// log records starting at since_lsn + 1, or — when its log no longer
// reaches back that far — a full snapshot to bootstrap from. since_lsn is
// also the follower's durability acknowledgement: everything at or below
// it is appended AND fsynced on the follower, which is what quorum acks
// count (docs/REPLICATION.md). Only the durable daemon serves this;
// in-process engines reply ErrorResult.
struct ReplicateCmd {
  std::string follower_id;   // Stable identity for quorum tracking ("" = probe only).
  uint64_t since_lsn = 0;    // Highest LSN durably applied by the follower.
  uint32_t max_records = 0;  // Per-pull record cap; 0 = server default.
};

// (v5) Flips a follower daemon into the leader role: it stops pulling and
// starts accepting mutations at the next LSN of the replicated stream.
// Idempotent; a daemon that is already a leader replies OK.
struct PromoteCmd {};

using CommandOp =
    std::variant<PingCmd, PutCmd, DeleteCmd, GetCmd, GetAtCmd, HistoryCmd, ListKeysCmd,
                 StatsCmd, SnapshotCmd, CompactCmd, ClusterNowCmd, ShutdownCmd, BatchCmd,
                 MetricsCmd, ReplicateCmd, PromoteCmd>;

// Wrapper (rather than a bare variant alias) so BatchCmd can hold
// std::vector<Command> recursively. Implicitly constructible from any
// alternative: `api::Command cmd = api::PutCmd{...};`.
struct Command {
  CommandOp op;

  Command() = default;
  template <typename T>
    requires(!std::same_as<std::remove_cvref_t<T>, Command> &&
             std::constructible_from<CommandOp, T &&>)
  Command(T&& alternative) : op(std::forward<T>(alternative)) {}  // NOLINT(google-explicit-constructor)
};

// Short display name of a command's op ("PUT", "BATCH", ...).
const char* CommandName(const Command& cmd);

// The key a single-key command addresses, or nullptr for keyless /
// cross-shard ops. Used by the slow-op trace to attribute a request to a
// key hash + shard without re-decoding the frame.
const std::string* CommandKey(const Command& cmd);

// True when applying the command can change engine state: Put, Delete,
// Compact, or a Batch containing one (recursively). This is the shared
// definition of "must be logged / must go to the leader / must not be
// blindly retried": the durable engine WALs exactly these, a follower
// rejects exactly these with NotLeaderResult, and TtkvClient refuses to
// auto-resend exactly these once their request frame may have reached a
// server.
bool IsMutating(const Command& cmd);

// --- Results ----------------------------------------------------------------

struct Result;

struct OkResult {};  // Ping, Put, Shutdown.

// A command the backend rejected (malformed, empty key, engine error).
// Backends report per-command failures as ErrorResult instead of throwing,
// so one bad command inside a batch cannot abort its siblings; transport
// failures (WireError) still throw.
struct ErrorResult {
  std::string message;
};

struct ExistedResult {  // Delete.
  bool existed = false;
};

struct ValueResult {  // Get, GetAt. nullopt = absent/tombstoned.
  std::optional<Value> value;
};

struct HistoryResult {  // History. nullopt = key never recorded.
  std::optional<VersionedRecord> record;
};

struct KeysResult {  // ListKeys.
  std::vector<std::string> keys;
};

struct StatsResult {  // Stats.
  EngineStats stats;
};

struct SnapshotResult {  // Snapshot.
  TTKV snapshot;
};

struct CompactResult {  // Compact.
  uint64_t versions_dropped = 0;
};

struct ClustersResult {  // ClusterNow.
  std::vector<NamedCluster> clusters;
};

struct BatchResult {  // Batch: one Result per command, same order.
  std::vector<Result> results;
};

struct MetricsResult {  // Metrics. Empty snapshot = metrics not enabled.
  obs::MetricsSnapshot snapshot;
};

// (v5) A follower daemon's rejection of a mutating command, carrying the
// leader's address so clients can fail over without configuration.
// leader_host may be empty when the follower was started without knowing a
// client-reachable leader address.
struct NotLeaderResult {
  std::string leader_host;
  uint32_t leader_port = 0;
};

// (v5) One replication pull's worth of log, answered by a durable daemon.
// Exactly one of the two payloads is meaningful:
//   snapshot_lsn == 0 — `records` is a contiguous LSN run starting at the
//     request's since_lsn + 1 (possibly empty when the follower is caught
//     up). Each payload is the codec-encoded Command byte-identical to the
//     leader's WAL record, so applying it is indistinguishable from WAL
//     replay.
//   snapshot_lsn != 0 — the leader's log no longer reaches back to
//     since_lsn (checkpoint truncation); `snapshot` holds a durable
//     snapshot image (persist::EncodeDurableSnapshot format) covering
//     everything through snapshot_lsn. The follower must reseed from it.
struct ReplicateResult {
  struct Entry {
    uint64_t lsn = 0;
    std::string payload;  // Codec-encoded Command, exactly as logged.
  };
  uint64_t leader_lsn = 0;  // Serving daemon's last written LSN (lag = leader_lsn - applied).
  bool follower = false;    // True when the serving daemon is itself tailing a leader.
  uint64_t snapshot_lsn = 0;
  std::string snapshot;
  std::vector<Entry> records;
};

using ResultOp =
    std::variant<OkResult, ErrorResult, ExistedResult, ValueResult, HistoryResult, KeysResult,
                 StatsResult, SnapshotResult, CompactResult, ClustersResult, BatchResult,
                 MetricsResult, NotLeaderResult, ReplicateResult>;

struct Result {
  ResultOp op;

  Result() = default;
  template <typename T>
    requires(!std::same_as<std::remove_cvref_t<T>, Result> &&
             std::constructible_from<ResultOp, T &&>)
  Result(T&& alternative) : op(std::forward<T>(alternative)) {}  // NOLINT(google-explicit-constructor)
};

inline bool IsError(const Result& result) {
  return std::holds_alternative<ErrorResult>(result.op);
}

}  // namespace ocasta::api
