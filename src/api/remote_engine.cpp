#include "api/remote_engine.h"

namespace ocasta::api {

RemoteEngine::RemoteEngine(std::string host, uint16_t port)
    : owned_(std::make_unique<TtkvClient>(std::move(host), port)), client_(owned_.get()) {}

std::vector<Result> RemoteEngine::ApplyBatch(std::span<const Command> cmds) {
  return client_->ApplyBatch(cmds);
}

}  // namespace ocasta::api
