// The abstract TTKV engine interface every backend implements.
//
// Three implementations ship today:
//   LocalEngine   (api/local_engine.h)  — one in-process TTKV + a mutex.
//   ShardedTtkv   (server/sharded_ttkv.h) — N mutex-striped shards; the
//                                        engine behind the ocastad daemon.
//   RemoteEngine  (api/remote_engine.h) — a TtkvClient speaking protocol v3.
// All of them answer the same Command vocabulary, so the CLI, the benches,
// RemoteStore, and every future layer (async server, replication, caching)
// are written once against Engine and pick a backend at runtime
// (api/backends.h).
#pragma once

#include <span>
#include <vector>

#include "api/command.h"
#include "common/error.h"

namespace ocasta::api {

class Engine {
 public:
  virtual ~Engine() = default;

  // Applies one command. Command-level failures come back as ErrorResult;
  // only infrastructure failures (lost connection, protocol corruption)
  // throw.
  virtual Result Apply(const Command& cmd) = 0;

  // Applies a sequence of commands, one Result per command in order. The
  // base implementation loops Apply; backends override it with a real fast
  // path (ShardedTtkv groups commands by shard and locks each shard once,
  // RemoteEngine ships the whole span as a single BATCH frame).
  virtual std::vector<Result> ApplyBatch(std::span<const Command> cmds);

  // Stable backend identifier ("local", "sharded", "remote").
  virtual const char* backend_name() const = 0;
};

// --- Typed conveniences over Engine::Apply ----------------------------------
// Each helper unwraps the matching Result alternative; an ErrorResult is
// raised as StoreError, any other mismatch as Error (a backend bug or a
// corrupted reply).

void Ping(Engine& engine);
void Put(Engine& engine, const std::string& key, const Value& value, TimeMicros t = 0);
bool Delete(Engine& engine, const std::string& key, TimeMicros t = 0, bool force = false);
std::optional<Value> Get(Engine& engine, const std::string& key);
std::optional<Value> GetAt(Engine& engine, const std::string& key, TimeMicros t);
std::optional<VersionedRecord> History(Engine& engine, const std::string& key);
std::vector<std::string> ListKeys(Engine& engine, const std::string& prefix = "");
EngineStats Stats(Engine& engine);
TTKV Snapshot(Engine& engine);
uint64_t Compact(Engine& engine, TimeMicros horizon);
std::vector<NamedCluster> ClusterNow(Engine& engine, double threshold_correlation,
                                     Linkage linkage = Linkage::kComplete);
void Shutdown(Engine& engine);
obs::MetricsSnapshot Metrics(Engine& engine);

// Unwraps Result as T. ErrorResult → StoreError; wrong alternative → Error.
template <typename T>
T Expect(Result result, const char* what) {
  if (auto* err = std::get_if<ErrorResult>(&result.op)) {
    throw StoreError(std::string(what) + ": " + err->message);
  }
  if (auto* typed = std::get_if<T>(&result.op)) return std::move(*typed);
  throw Error(std::string("unexpected result type for ") + what);
}

}  // namespace ocasta::api
