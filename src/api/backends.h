// Runtime backend selection: one factory mapping a --backend flag to an
// api::Engine implementation, so the CLI, the benches, and embedding code
// pick local / sharded / remote without compile-time knowledge of any of
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/engine.h"

namespace ocasta::api {

struct BackendOptions {
  std::string backend = "remote";  // "local" | "sharded" | "remote".

  // sharded backend.
  size_t num_shards = 8;

  // local + sharded backends.
  double cluster_window_seconds = 1.0;

  // remote backend.
  std::string host = "127.0.0.1";
  uint16_t port = 7341;
};

// Throws Error on an unknown backend name.
std::unique_ptr<Engine> MakeEngine(const BackendOptions& options);

}  // namespace ocasta::api
