// Runtime backend selection: one factory mapping a --backend flag to an
// api::Engine implementation, so the CLI, the benches, and embedding code
// pick local / sharded / remote without compile-time knowledge of any of
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "api/engine.h"
#include "obs/metrics.h"

namespace ocasta::api {

struct BackendOptions {
  std::string backend = "remote";  // "local" | "sharded" | "remote".

  // sharded backend.
  size_t num_shards = 8;

  // local + sharded backends.
  double cluster_window_seconds = 1.0;

  // remote backend.
  std::string host = "127.0.0.1";
  uint16_t port = 7341;

  // Durability (local + sharded backends). A non-empty data_dir wraps the
  // engine in persist::DurableEngine: write-ahead logged, crash-recovered
  // from <data_dir>/snap-*.ttkv + wal-*.log. The remote backend rejects it
  // — durability lives in the daemon, not the client.
  std::string data_dir = "";
  std::string fsync = "batch";  // "off" | "batch" | "always".
  size_t wal_segment_bytes = 64u << 20;
  uint64_t checkpoint_wal_bytes = 64u << 20;
  double checkpoint_interval_seconds = 0.0;
  // Passed through to DurableOptions::commit_gate (replication quorum
  // acks); only meaningful with a data_dir.
  std::function<void(uint64_t lsn)> commit_gate;

  // Optional instrumentation for the local/sharded engine AND (when
  // durable) the WAL; must outlive the engine. Null = metrics off. The
  // remote backend ignores it — the daemon owns its own registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// Throws Error on an unknown backend name, an unknown fsync policy, or
// --data-dir combined with the remote backend.
std::unique_ptr<Engine> MakeEngine(const BackendOptions& options);

}  // namespace ocasta::api
