// Protocol v4 codec: the single place Commands and Results are encoded to
// and decoded from wire payloads. The server decodes requests and encodes
// replies through these functions; TtkvClient does the reverse — neither
// side carries per-op byte layouts of its own. docs/PROTOCOL.md is the
// byte-level specification generated from this table.
//
// A request payload is a u8 op tag + the command body (or a HELLO, handled
// by the dedicated functions below because version negotiation happens
// before generic dispatch). A reply payload is a u8 result tag + the
// result body. All primitives use the BinaryWriter/BinaryReader layout of
// the TTKV snapshot format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "api/command.h"

namespace ocasta::api {

// Protocol generation spoken by this build. v1 was the hand-rolled 12-op
// protocol without HELLO/BATCH/force-delete; v2 was the first codec-
// generated version; v3 extends the STATS reply with the read/write
// shard-lock split (an incompatible layout change, so v3 is the oldest
// version this codec accepts); v4 adds the METRICS op + reply (purely
// additive — a v3 peer that never sends METRICS interoperates unchanged,
// so kMinProtocolVersion stays 3); v5 adds replication: REPLICATE and
// PROMOTE ops plus the NOT_LEADER and REPLICATE result tags (again purely
// additive — kMinProtocolVersion stays 3).
inline constexpr uint32_t kProtocolVersion = 5;
inline constexpr uint32_t kMinProtocolVersion = 3;

// Nested-batch depth cap: deeper batches are refused on encode (Error) and
// decode (ParseError) so corrupt or hostile frames cannot recurse the
// stack away. The top-level command sits at depth 0.
inline constexpr size_t kMaxBatchDepth = 8;

// Request op tags. Values 1-12 match protocol v1 for the ops it had.
enum class OpTag : uint8_t {
  kPing = 1,
  kPut = 2,
  kDelete = 3,
  kGet = 4,
  kGetAt = 5,
  kHistory = 6,
  kStats = 7,
  kListKeys = 8,
  kSnapshot = 9,
  kCompact = 10,
  kClusterNow = 11,
  kShutdown = 12,
  kHello = 13,
  kBatch = 14,
  kMetrics = 15,  // v4.
  kReplicate = 16,  // v5.
  kPromote = 17,    // v5.
};

// Reply result tags. kOk/kError keep v1's 0/1 status-byte values.
enum class ResultTag : uint8_t {
  kOk = 0,
  kError = 1,
  kExisted = 2,
  kValue = 3,
  kHistory = 4,
  kKeys = 5,
  kStats = 6,
  kSnapshot = 7,
  kCompact = 8,
  kClusters = 9,
  kBatch = 10,
  kHello = 11,  // HELLO replies only; never produced by EncodeResult.
  kMetrics = 12,  // v4.
  kNotLeader = 13,  // v5.
  kReplicate = 14,  // v5.
};

// --- Commands and Results ---------------------------------------------------

std::string EncodeCommand(const Command& cmd);

// Decodes a full request payload. Throws ParseError on an unknown tag, a
// truncated body, trailing bytes, or an over-deep batch.
Command DecodeCommand(std::string_view payload);

// Encodes a span of commands as one BATCH request without materializing a
// BatchCmd (the zero-copy path for Engine::ApplyBatch over the wire).
// Byte-identical to EncodeCommand(BatchCmd{commands}).
std::string EncodeBatchRequest(std::span<const Command> commands);

// Cheap single-byte peek: could this request payload be a mutation? Over-
// approximates on purpose — any BATCH answers true without decoding it
// (the batch MAY contain a Put/Delete/Compact), and garbage that merely
// starts with a mutating tag answers true too. The event loop uses this to
// route requests that might block on the replication commit gate off the
// loop thread, where a false positive costs one thread hop and a false
// negative would stall every connection sharing the loop; full decoding
// here would double-parse every frame.
bool MightMutate(std::string_view request_payload);

std::string EncodeResult(const Result& result);

// Decodes a full reply payload; same failure contract as DecodeCommand.
Result DecodeResult(std::string_view payload);

// --- HELLO version negotiation ----------------------------------------------
// The first request on a connection may be HELLO carrying the client's
// protocol version; the server answers with min(client, server), or an
// ErrorResult when the client is older than kMinProtocolVersion.

bool IsHelloRequest(std::string_view payload);
std::string EncodeHello(uint32_t version);
uint32_t DecodeHello(std::string_view payload);
std::string EncodeHelloReply(uint32_t version);

// Throws StoreError when the reply is an ErrorResult (version rejected),
// ParseError when it is not a well-formed HELLO reply.
uint32_t DecodeHelloReply(std::string_view payload);

}  // namespace ocasta::api
