// RemoteEngine — the api::Engine over a TtkvClient speaking protocol v3.
//
// Apply encodes one Command into one request frame and decodes the reply;
// ApplyBatch wraps the span in a BatchCmd so the whole batch travels as a
// single BATCH frame and runs through the daemon's grouped-locking fast
// path (one round trip, at most num_shards lock acquisitions server-side).
// Transport failures throw WireError after the client's one transparent
// reconnect; command-level failures come back as ErrorResult like every
// other backend.
//
// Not thread-safe (one connection): use one RemoteEngine per thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/engine.h"
#include "client/ttkv_client.h"

namespace ocasta::api {

class RemoteEngine final : public Engine {
 public:
  // Owns its connection; connects lazily on the first Apply.
  RemoteEngine(std::string host, uint16_t port);

  // Borrows an existing client, which must outlive this engine.
  explicit RemoteEngine(TtkvClient& client) : client_(&client) {}

  Result Apply(const Command& cmd) override { return client_->Apply(cmd); }
  std::vector<Result> ApplyBatch(std::span<const Command> cmds) override;
  const char* backend_name() const override { return "remote"; }

  TtkvClient& client() { return *client_; }

 private:
  std::unique_ptr<TtkvClient> owned_;
  TtkvClient* client_ = nullptr;
};

}  // namespace ocasta::api
