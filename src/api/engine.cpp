#include "api/engine.h"

#include "common/error.h"

namespace ocasta::api {

std::vector<Result> Engine::ApplyBatch(std::span<const Command> cmds) {
  std::vector<Result> results;
  results.reserve(cmds.size());
  for (const Command& cmd : cmds) results.push_back(Apply(cmd));
  return results;
}

const char* CommandName(const Command& cmd) {
  struct Namer {
    const char* operator()(const PingCmd&) const { return "PING"; }
    const char* operator()(const PutCmd&) const { return "PUT"; }
    const char* operator()(const DeleteCmd&) const { return "DELETE"; }
    const char* operator()(const GetCmd&) const { return "GET"; }
    const char* operator()(const GetAtCmd&) const { return "GET_AT"; }
    const char* operator()(const HistoryCmd&) const { return "HISTORY"; }
    const char* operator()(const ListKeysCmd&) const { return "LIST_KEYS"; }
    const char* operator()(const StatsCmd&) const { return "STATS"; }
    const char* operator()(const SnapshotCmd&) const { return "SNAPSHOT"; }
    const char* operator()(const CompactCmd&) const { return "COMPACT"; }
    const char* operator()(const ClusterNowCmd&) const { return "CLUSTER_NOW"; }
    const char* operator()(const ShutdownCmd&) const { return "SHUTDOWN"; }
    const char* operator()(const BatchCmd&) const { return "BATCH"; }
    const char* operator()(const MetricsCmd&) const { return "METRICS"; }
    const char* operator()(const ReplicateCmd&) const { return "REPLICATE"; }
    const char* operator()(const PromoteCmd&) const { return "PROMOTE"; }
  };
  return std::visit(Namer{}, cmd.op);
}

bool IsMutating(const Command& cmd) {
  if (std::holds_alternative<PutCmd>(cmd.op) || std::holds_alternative<DeleteCmd>(cmd.op) ||
      std::holds_alternative<CompactCmd>(cmd.op)) {
    return true;
  }
  if (const auto* batch = std::get_if<BatchCmd>(&cmd.op)) {
    for (const Command& sub : batch->commands) {
      if (IsMutating(sub)) return true;
    }
  }
  return false;
}

const std::string* CommandKey(const Command& cmd) {
  return std::visit(
      [](const auto& c) -> const std::string* {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, PutCmd> || std::is_same_v<T, DeleteCmd> ||
                      std::is_same_v<T, GetCmd> || std::is_same_v<T, GetAtCmd> ||
                      std::is_same_v<T, HistoryCmd>) {
          return &c.key;
        } else {
          return nullptr;
        }
      },
      cmd.op);
}

void Ping(Engine& engine) { Expect<OkResult>(engine.Apply(PingCmd{}), "PING"); }

void Put(Engine& engine, const std::string& key, const Value& value, TimeMicros t) {
  Expect<OkResult>(engine.Apply(PutCmd{key, value, t}), "PUT");
}

bool Delete(Engine& engine, const std::string& key, TimeMicros t, bool force) {
  return Expect<ExistedResult>(engine.Apply(DeleteCmd{key, t, force}), "DELETE").existed;
}

std::optional<Value> Get(Engine& engine, const std::string& key) {
  return Expect<ValueResult>(engine.Apply(GetCmd{key}), "GET").value;
}

std::optional<Value> GetAt(Engine& engine, const std::string& key, TimeMicros t) {
  return Expect<ValueResult>(engine.Apply(GetAtCmd{key, t}), "GET_AT").value;
}

std::optional<VersionedRecord> History(Engine& engine, const std::string& key) {
  return Expect<HistoryResult>(engine.Apply(HistoryCmd{key}), "HISTORY").record;
}

std::vector<std::string> ListKeys(Engine& engine, const std::string& prefix) {
  return Expect<KeysResult>(engine.Apply(ListKeysCmd{prefix}), "LIST_KEYS").keys;
}

EngineStats Stats(Engine& engine) {
  return Expect<StatsResult>(engine.Apply(StatsCmd{}), "STATS").stats;
}

TTKV Snapshot(Engine& engine) {
  return Expect<SnapshotResult>(engine.Apply(SnapshotCmd{}), "SNAPSHOT").snapshot;
}

uint64_t Compact(Engine& engine, TimeMicros horizon) {
  return Expect<CompactResult>(engine.Apply(CompactCmd{horizon}), "COMPACT").versions_dropped;
}

std::vector<NamedCluster> ClusterNow(Engine& engine, double threshold_correlation,
                                     Linkage linkage) {
  return Expect<ClustersResult>(engine.Apply(ClusterNowCmd{threshold_correlation, linkage}),
                                "CLUSTER_NOW")
      .clusters;
}

void Shutdown(Engine& engine) { Expect<OkResult>(engine.Apply(ShutdownCmd{}), "SHUTDOWN"); }

obs::MetricsSnapshot Metrics(Engine& engine) {
  return Expect<MetricsResult>(engine.Apply(MetricsCmd{}), "METRICS").snapshot;
}

}  // namespace ocasta::api
