#include "api/codec.h"

#include <algorithm>

#include "common/error.h"
#include "ttkv/serialize.h"

namespace ocasta::api {

namespace {

Linkage LinkageFromWire(uint8_t code) {
  switch (code) {
    case 0: return Linkage::kComplete;
    case 1: return Linkage::kSingle;
    case 2: return Linkage::kAverage;
  }
  throw ParseError("unknown linkage code");
}

uint8_t LinkageToWire(Linkage linkage) {
  switch (linkage) {
    case Linkage::kComplete: return 0;
    case Linkage::kSingle: return 1;
    case Linkage::kAverage: return 2;
  }
  throw Error("unknown linkage");
}

// Reserve guard for untrusted counts: never pre-allocate more entries than
// the remaining payload could possibly encode (each entry costs >= 1 byte),
// so a corrupt count fails on a truncated read instead of a giant reserve.
size_t SafeReserve(uint32_t count, const BinaryReader& r) {
  return std::min<size_t>(count, r.remaining());
}

void EncodeCommandTo(BinaryWriter& w, const Command& cmd, size_t depth);
Command DecodeCommandFrom(BinaryReader& r, size_t depth);
void EncodeResultTo(BinaryWriter& w, const Result& result, size_t depth);
Result DecodeResultFrom(BinaryReader& r, size_t depth);

// MetricsSnapshot label lists share one layout on the wire: u32 count,
// then key/value string pairs.
void EncodeLabels(BinaryWriter& w, const obs::Labels& labels) {
  w.u32(static_cast<uint32_t>(labels.size()));
  for (const auto& [key, value] : labels) {
    w.str(key);
    w.str(value);
  }
}

obs::Labels DecodeLabels(BinaryReader& r) {
  const uint32_t n = r.u32();
  obs::Labels labels;
  labels.reserve(SafeReserve(n, r));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    labels.emplace_back(std::move(key), std::move(value));
  }
  return labels;
}

struct CommandEncoder {
  BinaryWriter& w;
  size_t depth;

  void operator()(const PingCmd&) { w.u8(static_cast<uint8_t>(OpTag::kPing)); }
  void operator()(const PutCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kPut));
    w.str(cmd.key);
    w.i64(cmd.timestamp);
    w.value(cmd.value);
  }
  void operator()(const DeleteCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kDelete));
    w.str(cmd.key);
    w.i64(cmd.timestamp);
    w.u8(cmd.force ? 1 : 0);
  }
  void operator()(const GetCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kGet));
    w.str(cmd.key);
  }
  void operator()(const GetAtCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kGetAt));
    w.str(cmd.key);
    w.i64(cmd.timestamp);
  }
  void operator()(const HistoryCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kHistory));
    w.str(cmd.key);
  }
  void operator()(const ListKeysCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kListKeys));
    w.str(cmd.prefix);
  }
  void operator()(const StatsCmd&) { w.u8(static_cast<uint8_t>(OpTag::kStats)); }
  void operator()(const SnapshotCmd&) { w.u8(static_cast<uint8_t>(OpTag::kSnapshot)); }
  void operator()(const CompactCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kCompact));
    w.i64(cmd.horizon);
  }
  void operator()(const ClusterNowCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kClusterNow));
    w.f64(cmd.threshold_correlation);
    w.u8(LinkageToWire(cmd.linkage));
  }
  void operator()(const ShutdownCmd&) { w.u8(static_cast<uint8_t>(OpTag::kShutdown)); }
  void operator()(const MetricsCmd&) { w.u8(static_cast<uint8_t>(OpTag::kMetrics)); }
  void operator()(const ReplicateCmd& cmd) {
    w.u8(static_cast<uint8_t>(OpTag::kReplicate));
    w.str(cmd.follower_id);
    w.u64(cmd.since_lsn);
    w.u32(cmd.max_records);
  }
  void operator()(const PromoteCmd&) { w.u8(static_cast<uint8_t>(OpTag::kPromote)); }
  void operator()(const BatchCmd& cmd) {
    if (depth >= kMaxBatchDepth) throw Error("batch nesting exceeds kMaxBatchDepth");
    w.u8(static_cast<uint8_t>(OpTag::kBatch));
    w.u32(static_cast<uint32_t>(cmd.commands.size()));
    for (const Command& sub : cmd.commands) EncodeCommandTo(w, sub, depth + 1);
  }
};

void EncodeCommandTo(BinaryWriter& w, const Command& cmd, size_t depth) {
  std::visit(CommandEncoder{w, depth}, cmd.op);
}

Command DecodeCommandFrom(BinaryReader& r, size_t depth) {
  const auto tag = static_cast<OpTag>(r.u8());
  switch (tag) {
    case OpTag::kPing: return PingCmd{};
    case OpTag::kPut: {
      PutCmd cmd;
      cmd.key = r.str();
      cmd.timestamp = r.i64();
      cmd.value = r.value();
      return cmd;
    }
    case OpTag::kDelete: {
      DeleteCmd cmd;
      cmd.key = r.str();
      cmd.timestamp = r.i64();
      cmd.force = r.u8() != 0;
      return cmd;
    }
    case OpTag::kGet: return GetCmd{r.str()};
    case OpTag::kGetAt: {
      GetAtCmd cmd;
      cmd.key = r.str();
      cmd.timestamp = r.i64();
      return cmd;
    }
    case OpTag::kHistory: return HistoryCmd{r.str()};
    case OpTag::kListKeys: return ListKeysCmd{r.str()};
    case OpTag::kStats: return StatsCmd{};
    case OpTag::kSnapshot: return SnapshotCmd{};
    case OpTag::kCompact: return CompactCmd{r.i64()};
    case OpTag::kClusterNow: {
      ClusterNowCmd cmd;
      cmd.threshold_correlation = r.f64();
      cmd.linkage = LinkageFromWire(r.u8());
      return cmd;
    }
    case OpTag::kShutdown: return ShutdownCmd{};
    case OpTag::kMetrics: return MetricsCmd{};
    case OpTag::kReplicate: {
      ReplicateCmd cmd;
      cmd.follower_id = r.str();
      cmd.since_lsn = r.u64();
      cmd.max_records = r.u32();
      return cmd;
    }
    case OpTag::kPromote: return PromoteCmd{};
    case OpTag::kBatch: {
      if (depth >= kMaxBatchDepth) throw ParseError("batch nesting exceeds kMaxBatchDepth");
      const uint32_t count = r.u32();
      BatchCmd cmd;
      cmd.commands.reserve(SafeReserve(count, r));
      for (uint32_t i = 0; i < count; ++i) {
        cmd.commands.push_back(DecodeCommandFrom(r, depth + 1));
      }
      return cmd;
    }
    case OpTag::kHello:
      // HELLO is connection-level; it never appears inside generic
      // dispatch (the server peeks for it before DecodeCommand).
      throw ParseError("HELLO is not a dispatchable command");
  }
  throw ParseError("unknown op tag " + std::to_string(static_cast<int>(tag)));
}

struct ResultEncoder {
  BinaryWriter& w;
  size_t depth;

  void operator()(const OkResult&) { w.u8(static_cast<uint8_t>(ResultTag::kOk)); }
  void operator()(const ErrorResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kError));
    w.str(res.message);
  }
  void operator()(const ExistedResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kExisted));
    w.u8(res.existed ? 1 : 0);
  }
  void operator()(const ValueResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kValue));
    w.u8(res.value.has_value() ? 1 : 0);
    if (res.value.has_value()) w.value(*res.value);
  }
  void operator()(const HistoryResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kHistory));
    w.u8(res.record.has_value() ? 1 : 0);
    if (!res.record.has_value()) return;
    const VersionedRecord& rec = *res.record;
    w.str(rec.key);
    w.u64(rec.write_count);
    w.u64(rec.delete_count);
    w.u64(rec.read_count);
    w.u32(static_cast<uint32_t>(rec.versions.size()));
    for (const Version& v : rec.versions) {
      w.i64(v.timestamp);
      w.u8(v.is_delete ? 1 : 0);
      w.value(v.value);
    }
  }
  void operator()(const KeysResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kKeys));
    w.u32(static_cast<uint32_t>(res.keys.size()));
    for (const std::string& key : res.keys) w.str(key);
  }
  void operator()(const StatsResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kStats));
    const EngineStats& s = res.stats;
    w.u64(s.ttkv.reads);
    w.u64(s.ttkv.writes);
    w.u64(s.ttkv.deletes);
    w.u64(s.ttkv.num_keys);
    w.u64(s.ttkv.size_bytes);
    w.u32(static_cast<uint32_t>(s.num_shards));
    w.u64(s.puts);
    w.u64(s.gets);
    w.u64(s.deletes);
    w.u64(s.lock_acquisitions);
    w.u64(s.read_lock_acquisitions);
    w.u64(s.write_lock_acquisitions);
  }
  void operator()(const SnapshotResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kSnapshot));
    w.str(res.snapshot.Serialize());
  }
  void operator()(const CompactResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kCompact));
    w.u64(res.versions_dropped);
  }
  void operator()(const ClustersResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kClusters));
    w.u32(static_cast<uint32_t>(res.clusters.size()));
    for (const NamedCluster& cluster : res.clusters) {
      w.u64(cluster.version_count);
      w.i64(cluster.last_modified);
      w.u32(static_cast<uint32_t>(cluster.keys.size()));
      for (const std::string& key : cluster.keys) w.str(key);
    }
  }
  void operator()(const BatchResult& res) {
    if (depth >= kMaxBatchDepth) throw Error("batch nesting exceeds kMaxBatchDepth");
    w.u8(static_cast<uint8_t>(ResultTag::kBatch));
    w.u32(static_cast<uint32_t>(res.results.size()));
    for (const Result& sub : res.results) EncodeResultTo(w, sub, depth + 1);
  }
  void operator()(const MetricsResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kMetrics));
    const obs::MetricsSnapshot& s = res.snapshot;
    w.u32(static_cast<uint32_t>(s.counters.size()));
    for (const auto& c : s.counters) {
      w.str(c.name);
      EncodeLabels(w, c.labels);
      w.u64(c.value);
    }
    w.u32(static_cast<uint32_t>(s.gauges.size()));
    for (const auto& g : s.gauges) {
      w.str(g.name);
      EncodeLabels(w, g.labels);
      w.i64(g.value);
    }
    w.u32(static_cast<uint32_t>(s.histograms.size()));
    for (const auto& h : s.histograms) {
      w.str(h.name);
      EncodeLabels(w, h.labels);
      w.u64(h.stats.count);
      w.f64(h.stats.sum);
      w.f64(h.stats.p50);
      w.f64(h.stats.p90);
      w.f64(h.stats.p99);
      w.f64(h.stats.p999);
      w.f64(h.stats.max);
    }
  }

  void operator()(const NotLeaderResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kNotLeader));
    w.str(res.leader_host);
    w.u32(res.leader_port);
  }
  void operator()(const ReplicateResult& res) {
    w.u8(static_cast<uint8_t>(ResultTag::kReplicate));
    w.u64(res.leader_lsn);
    w.u8(res.follower ? 1 : 0);
    w.u8(res.snapshot_lsn != 0 ? 1 : 0);
    if (res.snapshot_lsn != 0) {
      w.u64(res.snapshot_lsn);
      w.str(res.snapshot);
      return;
    }
    w.u32(static_cast<uint32_t>(res.records.size()));
    for (const ReplicateResult::Entry& entry : res.records) {
      w.u64(entry.lsn);
      w.str(entry.payload);
    }
  }
};

void EncodeResultTo(BinaryWriter& w, const Result& result, size_t depth) {
  std::visit(ResultEncoder{w, depth}, result.op);
}

Result DecodeResultFrom(BinaryReader& r, size_t depth) {
  const auto tag = static_cast<ResultTag>(r.u8());
  switch (tag) {
    case ResultTag::kOk: return OkResult{};
    case ResultTag::kError: return ErrorResult{r.str()};
    case ResultTag::kExisted: return ExistedResult{r.u8() != 0};
    case ResultTag::kValue: {
      ValueResult res;
      if (r.u8() != 0) res.value = r.value();
      return res;
    }
    case ResultTag::kHistory: {
      HistoryResult res;
      if (r.u8() == 0) return res;
      VersionedRecord rec;
      rec.key = r.str();
      rec.write_count = r.u64();
      rec.delete_count = r.u64();
      rec.read_count = r.u64();
      const uint32_t n = r.u32();
      rec.versions.reserve(SafeReserve(n, r));
      for (uint32_t i = 0; i < n; ++i) {
        Version v;
        v.timestamp = r.i64();
        v.is_delete = r.u8() != 0;
        v.value = r.value();
        rec.versions.push_back(std::move(v));
      }
      res.record = std::move(rec);
      return res;
    }
    case ResultTag::kKeys: {
      KeysResult res;
      const uint32_t n = r.u32();
      res.keys.reserve(SafeReserve(n, r));
      for (uint32_t i = 0; i < n; ++i) res.keys.push_back(r.str());
      return res;
    }
    case ResultTag::kStats: {
      StatsResult res;
      EngineStats& s = res.stats;
      s.ttkv.reads = r.u64();
      s.ttkv.writes = r.u64();
      s.ttkv.deletes = r.u64();
      s.ttkv.num_keys = r.u64();
      s.ttkv.size_bytes = r.u64();
      s.num_shards = r.u32();
      s.puts = r.u64();
      s.gets = r.u64();
      s.deletes = r.u64();
      s.lock_acquisitions = r.u64();
      s.read_lock_acquisitions = r.u64();
      s.write_lock_acquisitions = r.u64();
      return res;
    }
    case ResultTag::kSnapshot: return SnapshotResult{TTKV::Deserialize(r.str())};
    case ResultTag::kCompact: return CompactResult{r.u64()};
    case ResultTag::kClusters: {
      ClustersResult res;
      const uint32_t n = r.u32();
      res.clusters.reserve(SafeReserve(n, r));
      for (uint32_t i = 0; i < n; ++i) {
        NamedCluster cluster;
        cluster.version_count = r.u64();
        cluster.last_modified = r.i64();
        const uint32_t m = r.u32();
        cluster.keys.reserve(SafeReserve(m, r));
        for (uint32_t j = 0; j < m; ++j) cluster.keys.push_back(r.str());
        res.clusters.push_back(std::move(cluster));
      }
      return res;
    }
    case ResultTag::kBatch: {
      if (depth >= kMaxBatchDepth) throw ParseError("batch nesting exceeds kMaxBatchDepth");
      const uint32_t n = r.u32();
      BatchResult res;
      res.results.reserve(SafeReserve(n, r));
      for (uint32_t i = 0; i < n; ++i) res.results.push_back(DecodeResultFrom(r, depth + 1));
      return res;
    }
    case ResultTag::kMetrics: {
      MetricsResult res;
      obs::MetricsSnapshot& s = res.snapshot;
      const uint32_t nc = r.u32();
      s.counters.reserve(SafeReserve(nc, r));
      for (uint32_t i = 0; i < nc; ++i) {
        obs::MetricsSnapshot::CounterEntry c;
        c.name = r.str();
        c.labels = DecodeLabels(r);
        c.value = r.u64();
        s.counters.push_back(std::move(c));
      }
      const uint32_t ng = r.u32();
      s.gauges.reserve(SafeReserve(ng, r));
      for (uint32_t i = 0; i < ng; ++i) {
        obs::MetricsSnapshot::GaugeEntry g;
        g.name = r.str();
        g.labels = DecodeLabels(r);
        g.value = r.i64();
        s.gauges.push_back(std::move(g));
      }
      const uint32_t nh = r.u32();
      s.histograms.reserve(SafeReserve(nh, r));
      for (uint32_t i = 0; i < nh; ++i) {
        obs::MetricsSnapshot::HistogramEntry h;
        h.name = r.str();
        h.labels = DecodeLabels(r);
        h.stats.count = r.u64();
        h.stats.sum = r.f64();
        h.stats.p50 = r.f64();
        h.stats.p90 = r.f64();
        h.stats.p99 = r.f64();
        h.stats.p999 = r.f64();
        h.stats.max = r.f64();
        s.histograms.push_back(std::move(h));
      }
      return res;
    }
    case ResultTag::kNotLeader: {
      NotLeaderResult res;
      res.leader_host = r.str();
      res.leader_port = r.u32();
      return res;
    }
    case ResultTag::kReplicate: {
      ReplicateResult res;
      res.leader_lsn = r.u64();
      res.follower = r.u8() != 0;
      if (r.u8() != 0) {
        res.snapshot_lsn = r.u64();
        if (res.snapshot_lsn == 0) throw ParseError("REPLICATE snapshot with lsn 0");
        res.snapshot = r.str();
        return res;
      }
      const uint32_t n = r.u32();
      res.records.reserve(SafeReserve(n, r));
      for (uint32_t i = 0; i < n; ++i) {
        ReplicateResult::Entry entry;
        entry.lsn = r.u64();
        entry.payload = r.str();
        res.records.push_back(std::move(entry));
      }
      return res;
    }
    case ResultTag::kHello:
      throw ParseError("HELLO reply outside version negotiation");
  }
  throw ParseError("unknown result tag " + std::to_string(static_cast<int>(tag)));
}

}  // namespace

std::string EncodeCommand(const Command& cmd) {
  BinaryWriter w;
  EncodeCommandTo(w, cmd, 0);
  return w.take();
}

std::string EncodeBatchRequest(std::span<const Command> commands) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(OpTag::kBatch));
  w.u32(static_cast<uint32_t>(commands.size()));
  for (const Command& cmd : commands) EncodeCommandTo(w, cmd, 1);
  return w.take();
}

Command DecodeCommand(std::string_view payload) {
  BinaryReader r(payload);
  Command cmd = DecodeCommandFrom(r, 0);
  if (!r.at_end()) {
    throw ParseError(std::string("trailing bytes after ") + CommandName(cmd) + " request");
  }
  return cmd;
}

std::string EncodeResult(const Result& result) {
  BinaryWriter w;
  EncodeResultTo(w, result, 0);
  return w.take();
}

Result DecodeResult(std::string_view payload) {
  BinaryReader r(payload);
  Result result = DecodeResultFrom(r, 0);
  if (!r.at_end()) throw ParseError("trailing bytes after reply");
  return result;
}

bool MightMutate(std::string_view request_payload) {
  if (request_payload.empty()) return false;
  switch (static_cast<OpTag>(static_cast<uint8_t>(request_payload[0]))) {
    case OpTag::kPut:
    case OpTag::kDelete:
    case OpTag::kCompact:
    case OpTag::kBatch:
      return true;
    default:
      return false;
  }
}

bool IsHelloRequest(std::string_view payload) {
  return !payload.empty() && static_cast<uint8_t>(payload[0]) == static_cast<uint8_t>(OpTag::kHello);
}

std::string EncodeHello(uint32_t version) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(OpTag::kHello));
  w.u32(version);
  return w.take();
}

uint32_t DecodeHello(std::string_view payload) {
  BinaryReader r(payload);
  if (static_cast<OpTag>(r.u8()) != OpTag::kHello) throw ParseError("not a HELLO request");
  const uint32_t version = r.u32();
  if (!r.at_end()) throw ParseError("trailing bytes after HELLO request");
  return version;
}

std::string EncodeHelloReply(uint32_t version) {
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(ResultTag::kHello));
  w.u32(version);
  return w.take();
}

uint32_t DecodeHelloReply(std::string_view payload) {
  BinaryReader r(payload);
  const auto tag = static_cast<ResultTag>(r.u8());
  if (tag == ResultTag::kError) throw StoreError("ocastad: " + r.str());
  if (tag != ResultTag::kHello) throw ParseError("malformed HELLO reply");
  const uint32_t version = r.u32();
  if (!r.at_end()) throw ParseError("trailing bytes after HELLO reply");
  return version;
}

}  // namespace ocasta::api
