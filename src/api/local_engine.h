// LocalEngine — the in-process api::Engine over one TTKV.
//
// The thinnest backend: a single TTKV guarded by one mutex, matching the
// paper's one-store-per-recorder deployment. It answers the full Command
// vocabulary — ClusterNow runs the offline clustering pipeline over the
// store's write history (there is no online tracker at this scale), and
// ShutdownCmd is a no-op. ApplyBatch takes the mutex once for the whole
// batch, the single-shard analog of ShardedTtkv's grouped locking.
#pragma once

#include <cstdint>
#include <mutex>

#include "api/engine.h"
#include "common/lockdep.h"
#include "ttkv/ttkv.h"

namespace ocasta::api {

class LocalEngine final : public Engine {
 public:
  struct Options {
    // Co-modification window for ClusterNowCmd (see ClusteringParams).
    double cluster_window_seconds = 1.0;
  };

  LocalEngine() : LocalEngine(Options{}) {}
  explicit LocalEngine(Options options);
  // Adopts an existing store, e.g. a deserialized snapshot for trace replay.
  explicit LocalEngine(TTKV initial) : LocalEngine(std::move(initial), Options{}) {}
  LocalEngine(TTKV initial, Options options);

  Result Apply(const Command& cmd) override;
  std::vector<Result> ApplyBatch(std::span<const Command> cmds) override;
  const char* backend_name() const override { return "local"; }

 private:
  // Dispatches one command with mu_ held. Never throws: command-level
  // failures come back as ErrorResult.
  Result ApplyLocked(const Command& cmd);

  // Monotonicized wall-clock stamp for timestamp == 0 ops; mu_ held.
  TimeMicros StampNowLocked();

  mutable lockdep::ordered_mutex mu_{lockdep::kLocalEngineClass};
  TTKV ttkv_;
  Options options_;
  int64_t clock_ = 0;
  uint64_t puts_ = 0;
  uint64_t gets_ = 0;
  uint64_t deletes_ = 0;
  uint64_t lock_acquisitions_ = 0;
};

}  // namespace ocasta::api
