// LocalEngine — the in-process api::Engine over one TTKV.
//
// The thinnest backend: a single TTKV guarded by one mutex, matching the
// paper's one-store-per-recorder deployment. It answers the full Command
// vocabulary — ClusterNow runs the offline clustering pipeline over the
// store's write history (there is no online tracker at this scale), and
// ShutdownCmd is a no-op. ApplyBatch takes the mutex once for the whole
// batch, the single-shard analog of ShardedTtkv's grouped locking.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <variant>

#include "api/engine.h"
#include "common/lockdep.h"
#include "obs/metrics.h"
#include "ttkv/ttkv.h"

namespace ocasta::api {

class LocalEngine final : public Engine {
 public:
  struct Options {
    // Co-modification window for ClusterNowCmd (see ClusteringParams).
    double cluster_window_seconds = 1.0;
    // Optional instrumentation (docs/OBSERVABILITY.md). Null = metrics
    // off: no clock reads, no atomics on the apply path. The registry
    // must outlive the engine.
    obs::MetricsRegistry* metrics = nullptr;
  };

  LocalEngine() : LocalEngine(Options{}) {}
  explicit LocalEngine(Options options);
  // Adopts an existing store, e.g. a deserialized snapshot for trace replay.
  explicit LocalEngine(TTKV initial) : LocalEngine(std::move(initial), Options{}) {}
  LocalEngine(TTKV initial, Options options);

  Result Apply(const Command& cmd) override OCASTA_EXCLUDES(mu_);
  std::vector<Result> ApplyBatch(std::span<const Command> cmds) override
      OCASTA_EXCLUDES(mu_);
  const char* backend_name() const override { return "local"; }

 private:
  // Dispatches one command with mu_ held. Never throws: command-level
  // failures come back as ErrorResult.
  Result ApplyLocked(const Command& cmd) OCASTA_REQUIRES(mu_);

  // ApplyLocked wrapped in a latency measurement when a histogram is
  // registered for this op kind (null otherwise — one array load + branch).
  Result ApplyTimedLocked(const Command& cmd) OCASTA_REQUIRES(mu_);

  // Monotonicized wall-clock stamp for timestamp == 0 ops; mu_ held.
  TimeMicros StampNowLocked() OCASTA_REQUIRES(mu_);

  mutable lockdep::ordered_mutex mu_{lockdep::kLocalEngineClass};
  TTKV ttkv_ OCASTA_GUARDED_BY(mu_);
  Options options_;
  int64_t clock_ OCASTA_GUARDED_BY(mu_) = 0;
  uint64_t puts_ OCASTA_GUARDED_BY(mu_) = 0;
  uint64_t gets_ OCASTA_GUARDED_BY(mu_) = 0;
  uint64_t deletes_ OCASTA_GUARDED_BY(mu_) = 0;
  uint64_t lock_acquisitions_ OCASTA_GUARDED_BY(mu_) = 0;

  // Pre-resolved instrument handles; all null when Options::metrics is
  // null. The histogram array is indexed by CommandOp variant index so
  // the timed path is branch + fetch_add, no lookup.
  obs::Counter* ctr_puts_ = nullptr;
  obs::Counter* ctr_gets_ = nullptr;
  obs::Counter* ctr_deletes_ = nullptr;
  std::array<obs::LatencyHistogram*, std::variant_size_v<CommandOp>> op_hist_{};
  obs::LatencyHistogram* batch_hist_ = nullptr;
};

}  // namespace ocasta::api
