#include "replica/follower.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "api/command.h"
#include "client/ttkv_client.h"
#include "common/error.h"
#include "persist/wal.h"

namespace ocasta::replica {

namespace {

// Mirrors DurableEngine's snapshot naming (snap-<lsn>.ttkv, zero-padded so
// lexicographic order is LSN order).
std::string SnapshotName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.ttkv", static_cast<unsigned long long>(lsn));
  return buf;
}

// Highest LSN embedded in a snap-*.ttkv filename (0 = none). Bootstrap only
// needs the anchor the engine's recovery would pick, and recovery prefers
// the newest snapshot; a corrupt newest snapshot makes the anchor
// optimistic, which at worst triggers a live resync halt and a second
// bootstrap — never silent divergence, because ApplyReplicated rejects any
// LSN gap.
uint64_t NewestSnapshotLsn(const std::string& dir) {
  uint64_t newest = 0;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.starts_with("snap-") && name.ends_with(".ttkv")) {
      newest = std::max<uint64_t>(newest, std::strtoull(name.c_str() + 5, nullptr, 10));
    }
  }
  ::closedir(d);
  return newest;
}

// Deletes every WAL segment and snapshot (plus orphaned .tmp files) so the
// leader's snapshot becomes the sole local history. Local state diverged
// from the leader's timeline (or fell off its retained log), so none of it
// may survive into the reseeded store.
void WipeDataDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.starts_with("snap-") || name.starts_with("wal-")) doomed.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    const std::string path = dir + "/" + name;
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw Error("cannot wipe follower data dir: " + path + ": " + ErrnoString(errno));
    }
  }
  persist::FsyncDir(dir);
}

// tmp + fsync + rename + dir fsync, same discipline as
// DurableEngine::WriteSnapshotFile: a half-written bootstrap snapshot must
// never be loadable.
void WriteSnapshotAtomically(const std::string& dir, uint64_t lsn, const std::string& bytes) {
  const std::string path = dir + "/" + SnapshotName(lsn);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("cannot create bootstrap snapshot: " + tmp + ": " + ErrnoString(errno));
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw Error("bootstrap snapshot write failed: " + tmp + ": " + ErrnoString(errno));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw Error("bootstrap snapshot fsync failed: " + tmp + ": " + ErrnoString(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("bootstrap snapshot rename failed: " + path + ": " + ErrnoString(errno));
  }
  persist::FsyncDir(dir);
}

// One REPLICATE round trip; throws on transport failure or a leader-side
// error (e.g. the leader is itself a follower, or not durable).
api::ReplicateResult PullOnce(TtkvClient& client, const FollowerOptions& options,
                              uint64_t since_lsn) {
  api::Command pull;
  pull.op = api::ReplicateCmd{options.follower_id, since_lsn, options.max_records_per_pull};
  api::Result reply = client.Apply(pull);
  if (const auto* err = std::get_if<api::ErrorResult>(&reply.op)) {
    throw StoreError("leader refused REPLICATE: " + err->message);
  }
  auto* rep = std::get_if<api::ReplicateResult>(&reply.op);
  if (rep == nullptr) throw WireError("unexpected reply type to REPLICATE");
  return std::move(*rep);
}

}  // namespace

void BootstrapFromLeader(const std::string& data_dir, const FollowerOptions& options) {
  if (::mkdir(data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error("cannot create data dir: " + data_dir + ": " + ErrnoString(errno));
  }
  // The anchor DurableEngine recovery will resume from: everything at or
  // below it is (claimed) locally durable, so the leader's log must reach
  // anchor + 1 for an incremental catch-up to be safe.
  const persist::WalScan scan = persist::Wal::Scan(data_dir);
  const uint64_t anchor = std::max(scan.last_lsn, NewestSnapshotLsn(data_dir));

  TtkvClient client(options.leader_host, options.leader_port);
  const api::ReplicateResult probe = PullOnce(client, options, anchor);
  if (probe.snapshot_lsn == 0) return;  // Log reachable: recover locally, tail the rest.

  // The leader shipped a snapshot: local history is stale or divergent.
  // Replace it wholesale; recovery then boots from the leader's image
  // exactly as the leader itself would.
  WipeDataDir(data_dir);
  WriteSnapshotAtomically(data_dir, probe.snapshot_lsn, probe.snapshot);
}

Follower::Follower(persist::DurableEngine& engine, FollowerOptions options)
    : engine_(engine), options_(std::move(options)) {}

Follower::~Follower() { Stop(); }

void Follower::Start() {
  const lockdep::guard lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  applied_lsn_.store(engine_.wal().last_lsn(), std::memory_order_relaxed);
  thread_ = std::thread(&Follower::PullLoop, this);
}

void Follower::Stop() {
  // Claim the join under the lock so concurrent Stop() calls (PROMOTE
  // racing shutdown) cannot double-join; latecomers return immediately.
  std::thread doomed;
  {
    const lockdep::guard lock(mu_);
    stopping_ = true;
    if (!started_) return;
    started_ = false;
    doomed = std::move(thread_);
  }
  cv_.notify_all();
  if (doomed.joinable()) doomed.join();
}

std::string Follower::last_error() const {
  const lockdep::guard lock(mu_);
  return last_error_;
}

void Follower::SetError(const std::string& message) {
  const lockdep::guard lock(mu_);
  last_error_ = message;
}

bool Follower::SleepFor(double seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  lockdep::relock_guard lock(mu_);
  while (!stopping_) {
    if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
  }
  return !stopping_;
}

void Follower::PullLoop() {
  TtkvClient client(options_.leader_host, options_.leader_port);
  for (;;) {
    {
      const lockdep::guard lock(mu_);
      if (stopping_) return;
    }
    try {
      const uint64_t cursor = engine_.wal().last_lsn();
      api::ReplicateResult reply = PullOnce(client, options_, cursor);
      if (reply.snapshot_lsn != 0) {
        // The leader truncated its log past our cursor while we were
        // running. Installing a snapshot under a live engine is not
        // possible (recovery is construction-time), so halt and demand a
        // restart — bootstrap will install it.
        resync_required_.store(true, std::memory_order_relaxed);
        SetError("leader log no longer reaches lsn " + std::to_string(cursor + 1) +
                 " (leader at " + std::to_string(reply.leader_lsn) +
                 "); restart this follower to re-bootstrap from a snapshot");
        return;
      }
      if (!reply.records.empty()) {
        std::vector<persist::WalRecord> records;
        records.reserve(reply.records.size());
        for (api::ReplicateResult::Entry& e : reply.records) {
          records.push_back(persist::WalRecord{e.lsn, std::move(e.payload)});
        }
        engine_.ApplyReplicated(records);
        applied_lsn_.store(engine_.wal().last_lsn(), std::memory_order_relaxed);
        SetError("");
        continue;  // Behind: drain the backlog without idling.
      }
      applied_lsn_.store(engine_.wal().last_lsn(), std::memory_order_relaxed);
      SetError("");
      if (!SleepFor(options_.poll_interval_seconds)) return;
    } catch (const Error& e) {
      // Transport hiccup, leader restart, or a stream gap: back off and
      // re-pull. The cursor is re-read from the WAL each round, so a
      // half-applied batch resumes exactly where the flush stopped.
      SetError(e.what());
      client.Close();
      if (!SleepFor(options_.retry_backoff_seconds)) return;
    }
  }
}

}  // namespace ocasta::replica
