#include "replica/replication_hub.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/error.h"

namespace ocasta::replica {

ReplicationHub::ReplicationHub(HubOptions options) : options_(options) {
  if (obs::MetricsRegistry* m = options_.metrics) {
    lag_gauge_ = &m->GetGauge("ocasta_replication_lag_records");
    followers_gauge_ = &m->GetGauge("ocasta_replication_followers");
    ack_wait_hist_ = &m->GetHistogram("ocasta_replication_quorum_wait_ns");
    timeouts_ctr_ = &m->GetCounter("ocasta_replication_quorum_timeouts_total");
  }
}

uint64_t ReplicationHub::QuorumAckedLocked() const {
  if (acked_.size() < options_.quorum_followers || options_.quorum_followers == 0) {
    return options_.quorum_followers == 0 ? UINT64_MAX : 0;
  }
  // The quorum LSN is the N-th highest ack: that many followers hold
  // everything at or below it.
  std::vector<uint64_t> lsns;
  lsns.reserve(acked_.size());
  for (const auto& [id, lsn] : acked_) lsns.push_back(lsn);
  std::nth_element(lsns.begin(), lsns.begin() + (options_.quorum_followers - 1), lsns.end(),
                   std::greater<uint64_t>());
  return lsns[options_.quorum_followers - 1];
}

void ReplicationHub::OnFollowerAck(const std::string& follower_id, uint64_t acked_lsn,
                                   uint64_t leader_lsn) {
  if (follower_id.empty()) return;  // Anonymous probe: no quorum standing.
  uint64_t max_lag = 0;
  size_t followers = 0;
  {
    const lockdep::guard lock(mu_);
    uint64_t& slot = acked_[follower_id];
    // Acks deliberately do NOT ratchet: a follower that re-bootstrapped
    // (lower cursor) held the old data durably only in its past life — be
    // conservative and track the lower value, which can only delay quorum,
    // never lie about durability.
    slot = acked_lsn;
    followers = acked_.size();
    for (const auto& [id, lsn] : acked_) {
      max_lag = std::max(max_lag, leader_lsn > lsn ? leader_lsn - lsn : 0);
    }
  }
  if (lag_gauge_ != nullptr) lag_gauge_->Set(static_cast<int64_t>(max_lag));
  if (followers_gauge_ != nullptr) followers_gauge_->Set(static_cast<int64_t>(followers));
  cv_.notify_all();
}

void ReplicationHub::Abort() {
  {
    const lockdep::guard lock(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

uint64_t ReplicationHub::QuorumAckedLsn() const {
  const lockdep::guard lock(mu_);
  return QuorumAckedLocked();
}

size_t ReplicationHub::follower_count() const {
  const lockdep::guard lock(mu_);
  return acked_.size();
}

void ReplicationHub::WaitQuorum(uint64_t lsn) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(options_.ack_timeout_seconds));
  {
    lockdep::relock_guard lock(mu_);
    while (QuorumAckedLocked() < lsn) {
      if (aborted_) {
        throw Error("replication hub shutting down before lsn " + std::to_string(lsn) +
                    " reached quorum; the write is durable on the leader but NOT replicated");
      }
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
          QuorumAckedLocked() < lsn) {
        const size_t followers = acked_.size();
        lock.unlock();
        if (timeouts_ctr_ != nullptr) timeouts_ctr_->Inc();
        throw Error("quorum not reached for lsn " + std::to_string(lsn) + " within " +
                    std::to_string(options_.ack_timeout_seconds) + "s (" +
                    std::to_string(followers) + " followers known, " +
                    std::to_string(options_.quorum_followers) +
                    " acks required); the write is durable on the leader but NOT replicated");
      }
    }
  }
  if (ack_wait_hist_ != nullptr) {
    ack_wait_hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             t0)
            .count()));
  }
}

}  // namespace ocasta::replica
