// ReplicationHub — leader-side follower progress and quorum accounting.
//
// Replication is PULL-based (docs/REPLICATION.md): a follower repeatedly
// sends REPLICATE(follower_id, since_lsn) and the leader streams log
// records off its Wal segments (Wal::ReadFrom). since_lsn is the
// follower's durability acknowledgement — everything at or below it is
// appended and fsynced on the follower — so the pull cursor doubles as
// the ack stream, and the hub is nothing but a map from follower id to
// the highest LSN it has acked.
//
// Under --acks quorum the DurableEngine's commit gate calls WaitQuorum
// after its own WAL flush: the mutation's ack is withheld until
// `quorum_followers` followers cover its LSN, or the wait times out and
// the write is reported failed (durable locally, not replicated — the
// ambiguity docs/REPLICATION.md spells out).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/lockdep.h"
#include "common/thread_safety.h"
#include "obs/metrics.h"

namespace ocasta::replica {

struct HubOptions {
  // Followers (excluding the leader) whose ack a mutation must collect
  // before it is acknowledged under --acks quorum.
  size_t quorum_followers = 1;
  // WaitQuorum gives up after this long and throws Error.
  double ack_timeout_seconds = 5.0;
  // Optional instrumentation: replication lag gauge, quorum ack-wait
  // histogram, follower count gauge, timeout counter. Must outlive the
  // hub. Null = off.
  obs::MetricsRegistry* metrics = nullptr;
};

class ReplicationHub {
 public:
  explicit ReplicationHub(HubOptions options);

  // Records follower progress from a REPLICATE pull, and refreshes the
  // lag gauge against `leader_lsn` (the serving WAL's last LSN).
  void OnFollowerAck(const std::string& follower_id, uint64_t acked_lsn,
                     uint64_t leader_lsn) OCASTA_EXCLUDES(mu_);

  // Highest LSN acked by at least quorum_followers followers (0 when
  // fewer followers have ever pulled).
  uint64_t QuorumAckedLsn() const OCASTA_EXCLUDES(mu_);

  // Blocks until QuorumAckedLsn() >= lsn; throws Error after
  // ack_timeout_seconds. This is the commit gate body for --acks quorum.
  void WaitQuorum(uint64_t lsn) OCASTA_EXCLUDES(mu_);

  // Shutdown hook: wakes every WaitQuorum waiter and makes current and
  // future waits throw immediately, so a daemon stopping mid-gate does not
  // hang for the full ack timeout. Irreversible.
  void Abort() OCASTA_EXCLUDES(mu_);

  size_t follower_count() const OCASTA_EXCLUDES(mu_);

 private:
  uint64_t QuorumAckedLocked() const OCASTA_REQUIRES(mu_);

  const HubOptions options_;
  mutable lockdep::ordered_mutex mu_{lockdep::kReplicationHubClass};
  lockdep::condvar cv_;
  // follower id -> highest durably-acked LSN. Followers never vanish: a
  // dead follower simply stops advancing, which stalls quorum — exactly
  // the honest behavior (see docs/REPLICATION.md on what quorum does NOT
  // guarantee).
  std::map<std::string, uint64_t> acked_ OCASTA_GUARDED_BY(mu_);
  bool aborted_ OCASTA_GUARDED_BY(mu_) = false;

  obs::Gauge* lag_gauge_ = nullptr;        // ocasta_replication_lag_records
  obs::Gauge* followers_gauge_ = nullptr;  // ocasta_replication_followers
  obs::LatencyHistogram* ack_wait_hist_ = nullptr;  // ocasta_replication_quorum_wait_ns
  obs::Counter* timeouts_ctr_ = nullptr;   // ocasta_replication_quorum_timeouts_total
};

}  // namespace ocasta::replica
