// Follower — pull-based WAL shipping from a leader daemon.
//
// A follower is an ordinary durable daemon whose mutations come from the
// leader's log instead of from clients. Bootstrap runs BEFORE the engine
// is constructed: BootstrapFromLeader probes the leader with the local
// recovery anchor; if the leader's log still reaches it, the local dir is
// kept as-is, otherwise the dir is wiped and reseeded with the leader's
// newest snapshot (an encoded DurableSnapshot, so op-counter totals ride
// along). Normal DurableEngine recovery then loads that state, and the
// Follower pull thread takes over: it repeatedly sends
// REPLICATE(follower_id, since_lsn = local wal last_lsn) and feeds the
// returned records through DurableEngine::ApplyReplicated — append + apply
// at the leader's exact LSNs, so a promoted follower is byte-equivalent to
// the leader recovering from its own disk.
//
// since_lsn doubles as the durability ack (ApplyReplicated returns after
// the local flush), which is what --acks quorum on the leader waits for.
//
// If the leader answers a LIVE pull with a snapshot (its log was truncated
// past our cursor — the follower fell hopelessly behind), the pull loop
// halts with resync_required(): restarting the follower re-runs bootstrap,
// which installs the snapshot. See docs/REPLICATION.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "common/lockdep.h"
#include "common/thread_safety.h"
#include "persist/durable_engine.h"

namespace ocasta::replica {

struct FollowerOptions {
  std::string leader_host = "127.0.0.1";
  uint16_t leader_port = 0;
  // Stable identity for quorum accounting on the leader. Empty = anonymous
  // (the leader serves the stream but grants no quorum standing).
  std::string follower_id;
  // Idle delay between pulls once caught up. While behind, the loop pulls
  // back-to-back with no delay.
  double poll_interval_seconds = 0.02;
  // Delay before retrying after a transport or stream error.
  double retry_backoff_seconds = 0.2;
  // Record-count cap per REPLICATE request (the leader also applies its
  // own byte cap).
  uint32_t max_records_per_pull = 4096;
};

// Pre-engine bootstrap: decides whether the local data dir can catch up
// from the leader's log, and if not, wipes it and installs the leader's
// snapshot so DurableEngine recovery boots from the leader's state.
// Throws Error when the leader is unreachable or refuses replication.
void BootstrapFromLeader(const std::string& data_dir, const FollowerOptions& options);

class Follower {
 public:
  // `engine` must outlive the Follower; Stop() is called on destruction.
  Follower(persist::DurableEngine& engine, FollowerOptions options);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  void Start();
  // Idempotent; joins the pull thread. Promotion calls this, after which
  // the engine is an ordinary leader-capable durable engine.
  void Stop();

  // Highest leader LSN durably applied locally (0 before the first pull).
  uint64_t applied_lsn() const { return applied_lsn_.load(std::memory_order_relaxed); }

  // True when the leader's log no longer reaches our cursor: the pull loop
  // has halted and a restart (re-bootstrap) is required.
  bool resync_required() const { return resync_required_.load(std::memory_order_relaxed); }

  // Last pull error ("" when healthy); for STATUS surfaces and logs.
  std::string last_error() const OCASTA_EXCLUDES(mu_);

 private:
  void PullLoop();
  // Interruptible sleep; returns false when Stop() was requested.
  bool SleepFor(double seconds) OCASTA_EXCLUDES(mu_);
  void SetError(const std::string& message) OCASTA_EXCLUDES(mu_);

  persist::DurableEngine& engine_;
  const FollowerOptions options_;

  mutable lockdep::ordered_mutex mu_{lockdep::kReplicaFollowerClass};
  lockdep::condvar cv_;
  std::thread thread_ OCASTA_GUARDED_BY(mu_);
  bool stopping_ OCASTA_GUARDED_BY(mu_) = false;
  bool started_ OCASTA_GUARDED_BY(mu_) = false;
  std::string last_error_ OCASTA_GUARDED_BY(mu_);

  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<bool> resync_required_{false};
};

}  // namespace ocasta::replica
