#include "logger/recorder.h"

#include "logger/trace.h"

namespace ocasta {

namespace {

void Record(TTKV& store, const AccessEvent& event, bool quantize) {
  const TimeMicros t = quantize ? QuantizeToSecond(event.timestamp) : event.timestamp;
  switch (event.op) {
    case AccessOp::kRead: store.record_read(event.key, t); break;
    case AccessOp::kWrite: store.record_write(event.key, event.value, t); break;
    case AccessOp::kDelete: store.record_delete(event.key, t); break;
  }
}

}  // namespace

void TtkvRecorder::OnAccess(const AccessEvent& event) { Record(store_, event, quantize_); }

void PerAppRecorder::OnAccess(const AccessEvent& event) {
  Record(stores_[event.app], event, quantize_);
}

TTKV& PerAppRecorder::StoreFor(const std::string& app) { return stores_[app]; }

const TTKV* PerAppRecorder::FindStore(const std::string& app) const {
  auto it = stores_.find(app);
  return it == stores_.end() ? nullptr : &it->second;
}

std::vector<std::string> PerAppRecorder::AppNames() const {
  std::vector<std::string> names;
  names.reserve(stores_.size());
  for (const auto& [name, store] : stores_) names.push_back(name);
  return names;
}

void ReplayTrace(const TraceLog& trace, AccessSink& sink) {
  for (const AccessEvent& event : trace.events()) sink.OnAccess(event);
}

}  // namespace ocasta
