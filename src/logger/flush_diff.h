// Flush-diff logger for file-backed configuration stores.
//
// Applications with their own config files read the whole file into memory
// and flush it back wholesale, so per-key writes cannot be hooked the way
// registry/GConf calls can. The paper's answer — and this class — is to
// diff the file before and after each flush and emit the inferred per-key
// writes and deletions. Consequences faithfully reproduced:
//  - several modifications to one key between flushes collapse into one
//    observed write;
//  - all keys changed in one flush share a timestamp (the flush time).
#pragma once

#include <string>

#include "configstore/access_event.h"
#include "configstore/file_config_store.h"

namespace ocasta {

class FlushDiffLogger {
 public:
  // `clock` and `sink` must outlive this logger. Call Attach to hook a
  // store's flush notifications.
  FlushDiffLogger(std::string app_name, ConfigFormat format, const SimClock& clock,
                  AccessSink& sink)
      : app_(std::move(app_name)), codec_(&CodecFor(format)), clock_(clock), sink_(sink) {}

  // Registers this logger as `store`'s flush observer. The store must use
  // the same format this logger was constructed with.
  void Attach(FileConfigStore& store);

  // Diff two file texts and emit events (callable directly in tests).
  void OnFlush(const std::string& before_text, const std::string& after_text);

 private:
  std::string app_;
  const FormatCodec* codec_;
  const SimClock& clock_;
  AccessSink& sink_;
};

}  // namespace ocasta
