#include "logger/flush_diff.h"

#include "common/error.h"

namespace ocasta {

void FlushDiffLogger::Attach(FileConfigStore& store) {
  if (store.format() != codec_->format()) {
    throw StoreError("flush-diff logger format does not match the store's format");
  }
  store.set_flush_observer(
      [this](const std::string& before, const std::string& after) { OnFlush(before, after); });
}

void FlushDiffLogger::OnFlush(const std::string& before_text, const std::string& after_text) {
  const ConfigMap before = before_text.empty() ? ConfigMap{} : codec_->Parse(before_text);
  const ConfigMap after = after_text.empty() ? ConfigMap{} : codec_->Parse(after_text);
  for (const ConfigDelta& delta : DiffConfigMaps(before, after)) {
    AccessEvent event;
    event.timestamp = clock_.now();
    event.app = app_;
    event.store = StoreKind::kFile;
    event.key = delta.key;
    if (delta.kind == ConfigDelta::Kind::kWrite) {
      event.op = AccessOp::kWrite;
      event.value = delta.value;
    } else {
      event.op = AccessOp::kDelete;
    }
    sink_.OnAccess(event);
  }
}

}  // namespace ocasta
