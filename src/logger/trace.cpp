#include "logger/trace.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <set>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

void TraceLog::InsertEvents(std::vector<AccessEvent> new_events) {
  std::stable_sort(new_events.begin(), new_events.end(),
                   [](const AccessEvent& a, const AccessEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  std::vector<AccessEvent> merged;
  merged.reserve(events_.size() + new_events.size());
  auto it = events_.begin();
  for (AccessEvent& event : new_events) {
    while (it != events_.end() && it->timestamp <= event.timestamp) {
      merged.push_back(std::move(*it));
      ++it;
    }
    merged.push_back(std::move(event));
  }
  merged.insert(merged.end(), std::make_move_iterator(it),
                std::make_move_iterator(events_.end()));
  events_ = std::move(merged);
}

void TraceLog::RemoveEventsForKeys(const std::string& app, const std::set<std::string>& keys,
                                   TimeMicros after) {
  std::erase_if(events_, [&](const AccessEvent& event) {
    return event.timestamp >= after && event.app == app && keys.count(event.key) != 0;
  });
}

TraceLog TraceLog::FilterByApp(const std::string& app) const {
  TraceLog out;
  for (const AccessEvent& event : events_) {
    if (event.app == app) out.events_.push_back(event);
  }
  return out;
}

TraceLog TraceLog::FilterByTime(TimeMicros begin, TimeMicros end) const {
  TraceLog out;
  for (const AccessEvent& event : events_) {
    if (event.timestamp >= begin && event.timestamp < end) out.events_.push_back(event);
  }
  return out;
}

std::vector<std::string> TraceLog::AppNames() const {
  std::set<std::string> names;
  for (const AccessEvent& event : events_) names.insert(event.app);
  return {names.begin(), names.end()};
}

TraceStats TraceLog::Stats() const {
  TraceStats stats;
  std::set<std::string> keys;
  TimeMicros first = 0;
  TimeMicros last = 0;
  bool any = false;
  for (const AccessEvent& event : events_) {
    if (!any) {
      first = last = event.timestamp;
      any = true;
    } else {
      if (event.timestamp < first) first = event.timestamp;
      if (event.timestamp > last) last = event.timestamp;
    }
    keys.insert(event.key);
    switch (event.op) {
      case AccessOp::kRead: ++stats.reads; break;
      case AccessOp::kWrite: ++stats.writes; break;
      case AccessOp::kDelete:
        ++stats.writes;  // Table I folds deletions into the write count.
        ++stats.deletes;
        break;
    }
  }
  stats.num_keys = keys.size();
  stats.days = any ? static_cast<double>(last - first) / static_cast<double>(kMicrosPerDay) : 0.0;
  return stats;
}

std::string TraceLog::ToText() const {
  std::string out;
  for (const AccessEvent& e : events_) {
    out += std::to_string(e.timestamp);
    out += '\t';
    out += EscapeField(e.app, '\t');
    out += '\t';
    out += std::to_string(static_cast<int>(e.store));
    out += '\t';
    out += std::to_string(static_cast<int>(e.op));
    out += '\t';
    out += EscapeField(e.key, '\t');
    out += '\t';
    out += std::to_string(static_cast<int>(e.value.type()));
    out += '\t';
    out += EscapeField(e.value.ToDisplay(), '\t');
    out += '\n';
  }
  return out;
}

TraceLog TraceLog::ParseText(const std::string& text) {
  TraceLog log;
  size_t line_no = 0;
  for (const std::string& line : Split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 7) {
      throw ParseError("trace line needs 7 tab-separated fields", line_no, 1);
    }
    AccessEvent event;
    event.timestamp = std::strtoll(fields[0].c_str(), nullptr, 10);
    event.app = UnescapeField(fields[1], '\t');
    event.store = static_cast<StoreKind>(std::strtol(fields[2].c_str(), nullptr, 10));
    event.op = static_cast<AccessOp>(std::strtol(fields[3].c_str(), nullptr, 10));
    event.key = UnescapeField(fields[4], '\t');
    const auto type = static_cast<ValueType>(std::strtol(fields[5].c_str(), nullptr, 10));
    event.value = Value::ParseDisplay(type, UnescapeField(fields[6], '\t'));
    log.events_.push_back(std::move(event));
  }
  return log;
}

}  // namespace ocasta
