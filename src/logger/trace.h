// Trace log: an ordered record of observed configuration accesses.
//
// The deployment phase of the paper produces per-machine traces of reads,
// writes and deletions (Table I). TraceLog is the in-memory and on-disk
// representation of such a trace.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "configstore/access_event.h"

namespace ocasta {

// Summary statistics matching the paper's Table I columns.
struct TraceStats {
  double days = 0;        // Span of the trace in days.
  uint64_t reads = 0;
  uint64_t writes = 0;    // Writes + deletions, as Table I counts them.
  uint64_t deletes = 0;
  size_t num_keys = 0;    // Distinct keys accessed.

  friend bool operator==(const TraceStats&, const TraceStats&) = default;
};

class TraceLog final : public AccessSink {
 public:
  void OnAccess(const AccessEvent& event) override { events_.push_back(event); }

  const std::vector<AccessEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  // Inserts events while preserving global timestamp order (each event
  // lands after all existing events with timestamp <= its own). Used by
  // error injection.
  void InsertEvents(std::vector<AccessEvent> events);

  // Drops an application's events touching any of `keys` at or after
  // `after` (scenario harness: a corruption must persist to trace end).
  void RemoveEventsForKeys(const std::string& app, const std::set<std::string>& keys,
                           TimeMicros after);

  // Events for one application, preserving order.
  TraceLog FilterByApp(const std::string& app) const;

  // Events in [begin, end).
  TraceLog FilterByTime(TimeMicros begin, TimeMicros end) const;

  std::vector<std::string> AppNames() const;

  TraceStats Stats() const;

  // Tab-separated text form, one event per line (fields are escaped).
  // Round-trips exactly through ParseText.
  std::string ToText() const;
  static TraceLog ParseText(const std::string& text);

 private:
  std::vector<AccessEvent> events_;
};

// Forwards each event to several sinks (e.g. a TraceLog and a TtkvRecorder),
// mirroring how the paper's logger feeds both its log and the TTKV.
class TeeSink final : public AccessSink {
 public:
  explicit TeeSink(std::vector<AccessSink*> sinks) : sinks_(std::move(sinks)) {}
  void OnAccess(const AccessEvent& event) override {
    for (AccessSink* sink : sinks_) sink->OnAccess(event);
  }

 private:
  std::vector<AccessSink*> sinks_;
};

}  // namespace ocasta
