// Recorders: access-event sinks that populate TTKV stores.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "configstore/access_event.h"
#include "ttkv/ttkv.h"

namespace ocasta {

// Feeds one TTKV. Timestamps are quantised to whole seconds by default,
// reproducing the paper's trace-collection limitation ("the trace collection
// infrastructure only records the update time of configuration settings to
// the precision of the nearest second") — the root cause of its oversized
// clusters and the Figure 3a artifact.
class TtkvRecorder final : public AccessSink {
 public:
  explicit TtkvRecorder(TTKV& store, bool quantize_to_seconds = true)
      : store_(store), quantize_(quantize_to_seconds) {}

  void OnAccess(const AccessEvent& event) override;

 private:
  TTKV& store_;
  bool quantize_;
};

// Maintains one TTKV per application, as Ocasta clusters per application.
class PerAppRecorder final : public AccessSink {
 public:
  explicit PerAppRecorder(bool quantize_to_seconds = true) : quantize_(quantize_to_seconds) {}

  void OnAccess(const AccessEvent& event) override;

  // TTKV for an application; creates an empty one for unknown names.
  TTKV& StoreFor(const std::string& app);
  const TTKV* FindStore(const std::string& app) const;
  std::vector<std::string> AppNames() const;

 private:
  std::map<std::string, TTKV> stores_;
  bool quantize_;
};

// Replays a recorded trace into a sink (e.g. to rebuild TTKVs from a saved
// trace file).
void ReplayTrace(const class TraceLog& trace, AccessSink& sink);

}  // namespace ocasta
