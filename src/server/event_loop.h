// EventLoop — one epoll worker thread of the ocastad daemon.
//
// Each worker multiplexes hundreds of nonblocking connections over a single
// epoll descriptor (the memcached accept/worker shape): the acceptor thread
// hands fresh sockets over via a mutex-protected queue plus an eventfd
// wakeup, and from then on the connection lives entirely on its worker —
// its buffers are touched by exactly one thread, so the per-connection
// state needs no locks.
//
// Per readiness wakeup the worker drains whatever the kernel has buffered
// (one read() can carry MANY pipelined request frames), dispatches every
// complete frame through the server's handler, coalesces the replies, and
// flushes them with a single scatter-gather sendmsg (the writev path) —
// request count per syscall is what the event-loop rewrite buys over the
// old thread-per-connection server. Partial writes park the remainder in a
// per-connection output queue and re-arm EPOLLOUT.
//
// Overload and lifecycle policy:
//   * write-buffer backpressure — a client that pipelines a huge burst but
//     stops reading accumulates replies server-side; past the high
//     watermark the worker stops parsing (and reading) its input until the
//     queue drains below the low watermark, bounding per-conn memory;
//   * idle timeout — connections with no traffic for idle_timeout seconds
//     are closed by a periodic sweep (0 disables);
//   * half-close — a client may shut down its write side after a pipelined
//     burst; buffered requests still execute and every reply is flushed
//     before the connection closes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/lockdep.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"

namespace ocasta {

// Pre-resolved instrument handles for the event loop's internals, shared by
// every worker (the instruments are thread-safe; per-worker labels would
// multiply cardinality without aiding dashboards). All-null = metrics off:
// the loop performs no clock reads or metric atomics beyond its existing
// telemetry counters.
struct LoopMetrics {
  obs::LatencyHistogram* frame_ns = nullptr;        // ocasta_loop_frame_ns
  obs::LatencyHistogram* dispatch_width = nullptr;  // ocasta_loop_dispatch_width
  obs::Counter* bytes_in = nullptr;                 // ocasta_loop_bytes_in_total
  obs::Counter* bytes_out = nullptr;                // ocasta_loop_bytes_out_total
  obs::Counter* backpressure_pauses = nullptr;      // ocasta_loop_backpressure_pauses_total
  obs::Gauge* conns_live = nullptr;                 // ocasta_loop_connections_live
};

struct EventLoopOptions {
  double idle_timeout_seconds = 300.0;  // 0 = connections never idle out.
  // Backpressure watermarks on the per-connection reply queue.
  size_t write_high_watermark = 8u << 20;
  size_t write_low_watermark = 1u << 20;
  size_t read_chunk_bytes = 64u << 10;  // recv() size per readiness event.
  LoopMetrics metrics;
  // Non-null + enabled() arms per-frame OpTrace tracing and emits slow-op
  // lines for frames whose decode-to-reply latency exceeds its threshold.
  obs::SlowOpLog* slow_log = nullptr;
  // Requests matching this predicate are dispatched on a short-lived side
  // thread instead of the loop thread, parking ONLY their own connection
  // until the reply is posted back (further frames from that connection
  // wait; every other connection keeps flowing). This exists for handlers
  // that can legitimately BLOCK — the replication quorum commit gate waits
  // for follower acks, and those acks arrive as REPLICATE requests that
  // may be multiplexed onto the same loop: dispatched inline, the gate
  // would starve the very pulls it is waiting for. Null = everything runs
  // inline. The predicate must be cheap (it runs on every frame) and may
  // over-approximate (api::MightMutate).
  std::function<bool(std::string_view)> offload;
};

class EventLoop {
 public:
  // Dispatches one request payload into one reply payload; returns true
  // when the request asked for server shutdown (TtkvServer::HandleRequest).
  // The view aliases the connection's input buffer and dies with the call.
  using Handler = std::function<bool(std::string_view, std::string*)>;

  // Invoked (from a worker thread) when a client SHUTDOWN op is seen, after
  // its reply has been flushed. Must be safe to call from any thread.
  using ShutdownFn = std::function<void()>;

  // `open_conns` is the server-wide open-connection gauge (shared with the
  // acceptor's --max-conns admission check); the loop decrements it as
  // connections close.
  EventLoop(EventLoopOptions options, Handler handler, ShutdownFn request_shutdown,
            std::atomic<int64_t>* open_conns);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  void Start();

  // Signals the loop to exit (idempotent, any thread). Join() reaps it.
  void RequestStop();
  void Join();

  // Hands a fresh connection to this worker. The fd must already be
  // nonblocking; the loop owns it from this point on.
  void AddConnection(int fd) OCASTA_EXCLUDES(pending_mu_);

  // Telemetry.
  uint64_t frames_dispatched() const { return frames_dispatched_.load(std::memory_order_relaxed); }
  uint64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }
  uint64_t idle_closed() const { return idle_closed_.load(std::memory_order_relaxed); }

 private:
  // Conn state is THREAD-CONFINED, not lock-guarded: after AddConnection's
  // handoff (through pending_mu_), a connection's buffers are touched only
  // by this loop's worker thread, so the analysis has nothing to check —
  // TSan covers the confinement claim itself.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;  // Unique per accepted connection: fds are reused, ids are not.
    std::string in;     // Received-but-unparsed bytes; pos is the parse cursor.
    size_t pos = 0;
    std::deque<std::string> out;  // Framed replies awaiting the socket.
    size_t out_head_sent = 0;     // Bytes of out.front() already written.
    size_t out_bytes = 0;         // Total queued reply bytes (backpressure gauge).
    bool want_write = false;      // EPOLLOUT armed.
    bool paused = false;          // EPOLLIN dropped: write queue over high water.
    bool peer_eof = false;        // Client half-closed; flush then close.
    // An offloaded request is in flight on a side thread: parsing is
    // paused (reply order!) and the conn is exempt from close-on-eof and
    // the idle sweep until the reply lands.
    bool offload_inflight = false;
    std::chrono::steady_clock::time_point last_active;
  };

  // Reply posted back by an offload worker, keyed by (fd, conn id) so a
  // connection that died mid-offload (fd possibly reused) drops its reply
  // instead of corrupting a stranger's stream.
  struct OffloadDone {
    uint64_t seq = 0;  // Key into offload_threads_ for reaping.
    int fd = -1;
    uint64_t conn_id = 0;
    std::string reply;
    bool shutdown_requested = false;
  };

  void Run();
  void RegisterPending() OCASTA_EXCLUDES(pending_mu_);
  // Parse + dispatch + flush until no further progress can be made.
  // Returns false when the connection was closed.
  bool ProcessConn(Conn* conn);
  // Dispatches every complete frame in `in` (respecting backpressure).
  // Returns false when the connection must close (protocol violation).
  bool ParseFrames(Conn* conn);
  // True when a full frame sits unparsed in `in` (length prefix sane and
  // its payload fully buffered).
  static bool HasCompleteFrame(const Conn& conn);
  // Frames `reply` onto the conn's output queue (shared by the inline and
  // offload dispatch paths).
  void AppendReply(Conn* conn, const std::string& reply);
  // Hands `request` to a side thread; pauses the conn's parsing until the
  // reply comes back through DrainOffloadDone (loop thread, wake_fd_).
  void StartOffload(Conn* conn, std::string request) OCASTA_EXCLUDES(offload_mu_);
  // Applies queued offload replies and reaps their worker threads.
  void DrainOffloadDone() OCASTA_EXCLUDES(offload_mu_);
  // Scatter-gather flush of the reply queue; arms/disarms EPOLLOUT.
  // Returns false on a dead socket.
  bool FlushOut(Conn* conn);
  // Best-effort synchronous flush, bounded by `deadline` — used for the
  // SHUTDOWN reply and the stop-time drain (which shares ONE deadline
  // across all connections).
  void FlushBlocking(Conn* conn, std::chrono::steady_clock::time_point deadline);
  void UpdateInterest(Conn* conn);
  void CloseConn(Conn* conn);
  void SweepIdle();
  // Every open_conns_ decrement goes through here so the obs gauge mirror
  // can never drift from the acceptor's admission counter.
  void DecOpenConns();

  EventLoopOptions options_;
  Handler handler_;
  ShutdownFn request_shutdown_;
  std::atomic<int64_t>* open_conns_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: new connections queued or stop requested.
  std::thread thread_;
  std::atomic<bool> stop_{false};

  lockdep::ordered_mutex pending_mu_{lockdep::kEventLoopPendingClass};  // Leaf.
  std::vector<int> pending_fds_ OCASTA_GUARDED_BY(pending_mu_);
  // Set by the loop's final drain so late handoffs self-close.
  bool drained_ OCASTA_GUARDED_BY(pending_mu_) = false;

  // Offload plumbing. Workers push completions under offload_mu_ and wake
  // the loop; the loop applies them and joins the (already-exiting) worker.
  // offload_threads_ is loop-thread-only (plus the post-Join destructor).
  lockdep::ordered_mutex offload_mu_{lockdep::kEventLoopOffloadClass};
  lockdep::condvar offload_cv_;
  std::vector<OffloadDone> offload_done_ OCASTA_GUARDED_BY(offload_mu_);
  size_t offload_inflight_count_ OCASTA_GUARDED_BY(offload_mu_) = 0;
  std::unordered_map<uint64_t, std::thread> offload_threads_;
  uint64_t next_offload_seq_ = 1;  // Loop thread only.
  uint64_t next_conn_id_ = 1;      // Loop thread only.

  // Conns are touched only by the loop thread.
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::vector<char> read_scratch_;  // Shared recv landing zone (loop thread only).
  std::chrono::steady_clock::time_point last_sweep_;
  // When ProcessConn started on the current connection (loop thread only).
  // A slow-op line's queue_us is measured from here: how long the frame
  // waited behind earlier frames of the same read batch.
  std::chrono::steady_clock::time_point batch_start_;

  // 1-in-N gate for frame_ns timing (loop thread only; see ParseFrames).
  obs::HotPathSampler frame_sampler_;

  std::atomic<uint64_t> frames_dispatched_{0};
  std::atomic<uint64_t> wakeups_{0};
  std::atomic<uint64_t> idle_closed_{0};
};

}  // namespace ocasta
