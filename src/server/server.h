// ocastad — the TTKV network daemon.
//
// An epoll event-loop TCP server exposing an api::Engine over the
// length-prefixed binary protocol in wire.h: one acceptor thread plus
// --io-threads worker event loops (server/event_loop.h), each multiplexing
// its share of the nonblocking connections (distributed round-robin — the
// memcached accept/worker model). Pipelining is first-class: a worker
// dispatches every complete frame a single read() delivers and flushes the
// coalesced replies with one scatter-gather write; replies always come
// back in request order per connection.
//
// Admission and lifecycle policy: connections beyond --max-conns receive a
// graceful overload error reply and are closed; connections idle longer
// than the idle timeout are swept. Shutdown is graceful from either side:
// Stop() from the embedding process, or the SHUTDOWN op from any client
// (its reply is flushed before the daemon stops). Every worker is joined
// before Wait()/Stop() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "common/lockdep.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "persist/durable_engine.h"
#include "replica/follower.h"
#include "replica/replication_hub.h"
#include "server/event_loop.h"

namespace ocasta {

struct ServerOptions {
  uint16_t port = 0;  // 0 = pick an ephemeral port (see TtkvServer::port()).
  size_t num_shards = 8;
  double cluster_window_seconds = 1.0;

  // Durability. Empty data_dir = the historic in-memory daemon; non-empty
  // wraps the sharded engine in a write-ahead-logged, crash-recovering
  // persist::DurableEngine rooted at this directory (acked => durable under
  // fsync "batch"/"always"; see docs/DURABILITY.md).
  std::string data_dir = "";
  std::string fsync = "batch";  // "off" | "batch" | "always".
  double checkpoint_interval_seconds = 0.0;  // 0 = size-triggered only.

  // Replication (docs/REPLICATION.md). A non-empty follow_host starts this
  // daemon as a FOLLOWER of the leader at follow_host:follow_port: it
  // bootstraps from the leader (installing its snapshot when the local dir
  // is empty or stale), tails the leader's WAL, serves reads, and answers
  // mutations with NOT_LEADER carrying the leader's address. Requires
  // data_dir (a follower IS a durable daemon; its log is the leader's).
  std::string follow_host = "";
  uint16_t follow_port = 0;
  // Stable identity for quorum accounting on the leader. Empty = derived
  // from data_dir (stable across restarts, which is what quorum needs).
  std::string follower_id = "";
  // Leader-side ack level: "leader" acks a mutation after the local WAL
  // flush; "quorum" additionally blocks the ack until quorum_followers
  // followers have durably acked its LSN, failing the request after
  // quorum_timeout_seconds (the write stays durable locally — see
  // docs/REPLICATION.md on this ambiguity).
  std::string acks = "leader";  // "leader" | "quorum".
  size_t quorum_followers = 1;
  double quorum_timeout_seconds = 5.0;

  // Event-loop sizing and overload policy (docs/SERVER.md).
  size_t io_threads = 1;   // Worker event loops; 0 = one per hardware thread (capped).
  size_t max_conns = 1024; // Open-connection cap; 0 = unlimited. Excess
                           // connections get an error reply, then close.
  double idle_timeout_seconds = 300.0;  // 0 = connections never idle out.

  // Observability (docs/OBSERVABILITY.md). A registry turns on engine, WAL,
  // and event-loop instrumentation plus the METRICS wire op; metrics_port
  // additionally serves Prometheus text on 127.0.0.1:<metrics_port> (0 = no
  // HTTP listener). Setting only metrics_port auto-creates a registry.
  std::shared_ptr<obs::MetricsRegistry> metrics = nullptr;
  uint16_t metrics_port = 0;
  // Slow-op trace log (obs/slow_log.h): a request slower than this many
  // microseconds server-side emits one structured line (0 = off), at most
  // slow_op_log_per_sec lines per second.
  double slow_op_micros = 0.0;
  double slow_op_log_per_sec = 10.0;
};

class TtkvServer {
 public:
  explicit TtkvServer(ServerOptions options = {});
  ~TtkvServer();

  TtkvServer(const TtkvServer&) = delete;
  TtkvServer& operator=(const TtkvServer&) = delete;

  // Binds, listens, starts the workers and the accept loop. Throws
  // WireError when the port is taken.
  void Start();

  // Requests shutdown (idempotent) and blocks until every thread is joined.
  void Stop();

  // Blocks until the server stops (Stop() or a client SHUTDOWN op).
  void Wait() OCASTA_EXCLUDES(join_mu_);

  // Port actually bound; valid after Start().
  uint16_t port() const { return port_; }

  // Direct engine access for embedding (benches, tests). The concrete type
  // is ShardedTtkv, wrapped in a persist::DurableEngine when
  // ServerOptions::data_dir is set.
  api::Engine& engine() { return *engine_; }

  // Replication introspection (null/false outside the relevant modes).
  bool is_follower() const { return is_follower_.load(std::memory_order_acquire); }
  replica::Follower* follower() { return follower_.get(); }
  replica::ReplicationHub* replication_hub() { return hub_.get(); }

  // Lifetime totals.
  uint64_t connections_served() const { return connections_.load(); }
  uint64_t overload_rejections() const { return overload_rejections_.load(); }
  int64_t open_connections() const { return open_conns_.load(); }
  size_t io_threads() const { return loops_.size(); }

  // Aggregated worker telemetry: how well the event loops amortize wakeups
  // (frames per wakeup is the pipelining win the rewrite exists for).
  uint64_t frames_dispatched() const;
  uint64_t loop_wakeups() const;
  uint64_t idle_closed() const;

  // Observability accessors; null/0 when not configured.
  obs::MetricsRegistry* metrics() { return options_.metrics.get(); }
  // Port the Prometheus listener actually bound (ephemeral resolution);
  // valid after Start(), 0 when no listener was requested.
  uint16_t metrics_port() const;
  obs::SlowOpLog* slow_log() { return slow_log_.get(); }

 private:
  void AcceptLoop();

  // Dispatches one request payload; always produces a reply payload.
  // Returns true when the request asked for server shutdown. Called
  // concurrently from every worker.
  bool HandleRequest(std::string_view request, std::string* reply);

  // REPLICATE: ack the follower's cursor into the hub, then serve the log
  // tail from since_lsn + 1 — or a full snapshot when the log no longer
  // reaches it. max_records == 0 is a pure status probe (leader_lsn only).
  api::Result ServeReplicate(const api::ReplicateCmd& cmd);

  // PROMOTE: stop tailing the leader and start accepting mutations.
  api::Result Promote();

  void RequestStop();

  ServerOptions options_;
  // Declared before engine_: the engine's commit gate (quorum acks) calls
  // into the hub, so the engine must be destroyed first.
  std::unique_ptr<replica::ReplicationHub> hub_;
  std::unique_ptr<api::Engine> engine_;
  // The engine itself when durable (replication source/sink); else null.
  persist::DurableEngine* durable_ = nullptr;
  // Declared after engine_: the pull thread applies into the engine, so it
  // must stop and be destroyed before the engine goes away.
  std::unique_ptr<replica::Follower> follower_;
  std::atomic<bool> is_follower_{false};

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> overload_rejections_{0};
  std::atomic<int64_t> open_conns_{0};

  std::vector<std::unique_ptr<EventLoop>> loops_;
  size_t next_loop_ = 0;  // Round-robin cursor; accept thread only.

  // Observability plumbing (all empty/null when metrics are off). The
  // loop-metric handles are resolved once in the constructor and shared by
  // every worker; the slow-op mirrors are gauges refreshed lazily at export
  // time (both export paths go through RefreshExportGauges).
  std::unique_ptr<obs::SlowOpLog> slow_log_;
  std::unique_ptr<obs::MetricsHttpServer> metrics_http_;
  LoopMetrics loop_metrics_;
  obs::Counter* ctr_connections_ = nullptr;  // ocasta_server_connections_total
  obs::Counter* ctr_overload_ = nullptr;     // ocasta_server_overload_rejections_total
  obs::Gauge* conns_live_ = nullptr;         // ocasta_loop_connections_live (accept side)
  obs::Gauge* conns_peak_ = nullptr;         // ocasta_loop_connections_peak
  obs::Gauge* slow_logged_ = nullptr;        // ocasta_slow_ops_logged
  obs::Gauge* slow_suppressed_ = nullptr;    // ocasta_slow_ops_suppressed
  void RefreshExportGauges();

  // Serializes Wait()/Stop() joiners (lockdep leaf-ish: worker joins
  // happen under it, but no other lock is ever acquired by the joiner).
  // A capability with no guarded fields: it exists to make concurrent
  // Wait() calls block instead of double-joining, not to guard data —
  // listen_fd_ teardown is ordered by the join itself.
  lockdep::ordered_mutex join_mu_{lockdep::kServerJoinClass};
};

}  // namespace ocasta
