// ocastad — the TTKV network daemon.
//
// A TCP server exposing a ShardedTtkv over the length-prefixed binary
// protocol in wire.h: a thread-per-connection accept loop (the paper's
// Redis backend is likewise a standalone server shared by all recorders),
// synchronous request/reply per connection, and pipelining-friendly framing
// (clients may write any number of requests before reading replies; replies
// come back in request order).
//
// Shutdown is graceful from either side: Stop() from the embedding process,
// or the SHUTDOWN op from any client. Both close the listening socket and
// then shut down every open connection so blocked reads drain; every
// connection thread is joined before Wait()/Stop() returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "api/engine.h"

namespace ocasta {

struct ServerOptions {
  uint16_t port = 0;  // 0 = pick an ephemeral port (see TtkvServer::port()).
  size_t num_shards = 8;
  double cluster_window_seconds = 1.0;

  // Durability. Empty data_dir = the historic in-memory daemon; non-empty
  // wraps the sharded engine in a write-ahead-logged, crash-recovering
  // persist::DurableEngine rooted at this directory (acked => durable under
  // fsync "batch"/"always"; see docs/DURABILITY.md).
  std::string data_dir = "";
  std::string fsync = "batch";  // "off" | "batch" | "always".
  double checkpoint_interval_seconds = 0.0;  // 0 = size-triggered only.
};

class TtkvServer {
 public:
  explicit TtkvServer(ServerOptions options = {});
  ~TtkvServer();

  TtkvServer(const TtkvServer&) = delete;
  TtkvServer& operator=(const TtkvServer&) = delete;

  // Binds, listens, and starts the accept loop. Throws WireError when the
  // port is taken.
  void Start();

  // Requests shutdown (idempotent) and blocks until every thread is joined.
  void Stop();

  // Blocks until the server stops (Stop() or a client SHUTDOWN op).
  void Wait();

  // Port actually bound; valid after Start().
  uint16_t port() const { return port_; }

  // Direct engine access for embedding (benches, tests). The concrete type
  // is ShardedTtkv, wrapped in a persist::DurableEngine when
  // ServerOptions::data_dir is set.
  api::Engine& engine() { return *engine_; }

  uint64_t connections_served() const { return connections_.load(); }

 private:
  struct Conn {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void Serve(int fd, Conn* conn);

  // Joins and discards connections whose handler has finished, so a
  // long-running daemon under connection churn does not accumulate
  // unjoined threads. Called from the accept thread only.
  void ReapFinishedConns();

  // Dispatches one request payload; always produces a reply payload.
  // Returns true when the request asked for server shutdown.
  bool HandleRequest(const std::string& request, std::string* reply);

  void RequestStop();

  ServerOptions options_;
  std::unique_ptr<api::Engine> engine_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_{0};

  std::mutex conn_mu_;                // Guards conn_fds_.
  std::unordered_set<int> conn_fds_;  // Open connection sockets.
  std::vector<std::unique_ptr<Conn>> conns_;  // Touched only by the accept thread.

  std::mutex join_mu_;  // Serializes Wait()/Stop() joiners.
};

}  // namespace ocasta
