#include "server/event_loop.h"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.h"
#include "server/wire.h"

namespace ocasta {

namespace {

// Iovec fan-out per sendmsg. Enough to coalesce a deep pipeline's replies
// into one syscall without building an IOV_MAX-sized array every flush.
constexpr size_t kMaxIov = 64;

// How often the idle sweep runs (also the epoll_wait timeout, so a quiet
// worker wakes at this cadence).
constexpr auto kSweepInterval = std::chrono::milliseconds(500);

}  // namespace

EventLoop::EventLoop(EventLoopOptions options, Handler handler, ShutdownFn request_shutdown,
                     std::atomic<int64_t>* open_conns)
    : options_(options),
      handler_(std::move(handler)),
      request_shutdown_(std::move(request_shutdown)),
      open_conns_(open_conns) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw Error(ErrnoMessage("epoll_create1", errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw Error(ErrnoMessage("eventfd", errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    const std::string msg = ErrnoMessage("epoll_ctl(wake)", errno);
    ::close(wake_fd_);
    ::close(epoll_fd_);
    throw Error(msg);
  }
}

EventLoop::~EventLoop() {
  RequestStop();
  Join();
  // Offload workers may still be inside the handler (e.g. a quorum gate
  // riding out its timeout — TtkvServer aborts the hub on stop, so this is
  // normally instant). They reference this object, so reap every one
  // before any member is torn down.
  for (auto& [seq, thread] : offload_threads_) thread.join();
  offload_threads_.clear();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::Start() {
  read_scratch_.resize(options_.read_chunk_bytes);
  last_sweep_ = std::chrono::steady_clock::now();
  thread_ = std::thread(&EventLoop::Run, this);
}

void EventLoop::RequestStop() {
  if (stop_.exchange(true)) return;
  const uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to do.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::AddConnection(int fd) {
  {
    const lockdep::guard lock(pending_mu_);
    if (!drained_) {
      pending_fds_.push_back(fd);
      const uint64_t one = 1;
      [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
      return;
    }
  }
  // The loop already ran its final drain (shutdown raced the handoff):
  // nobody will ever pick this fd up, so close it here or leak it.
  ::close(fd);
  DecOpenConns();
}

void EventLoop::DecOpenConns() {
  open_conns_->fetch_sub(1, std::memory_order_relaxed);
  if (options_.metrics.conns_live != nullptr) options_.metrics.conns_live->Add(-1);
}

void EventLoop::RegisterPending() {
  std::vector<int> fds;
  {
    const lockdep::guard lock(pending_mu_);
    fds.swap(pending_fds_);
  }
  for (int fd : fds) {
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      DecOpenConns();
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_active = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      DecOpenConns();
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

void EventLoop::Run() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents,
                               static_cast<int>(kSweepInterval.count()));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: nothing sane left to do.
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t frames_before = frames_dispatched_.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        RegisterPending();
        DrainOffloadDone();
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // Closed earlier this wakeup.
      Conn* conn = it->second.get();
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConn(conn);
        continue;
      }
      if (!ProcessConn(conn)) continue;  // Connection closed.
    }
    // Frames served per readiness wakeup — the syscall-amortization factor
    // the event-loop design exists for. Timer-only wakeups (n == 0) are
    // excluded so the idle sweep cadence doesn't drown the distribution.
    if (options_.metrics.dispatch_width != nullptr && n > 0) {
      options_.metrics.dispatch_width->Record(
          frames_dispatched_.load(std::memory_order_relaxed) - frames_before);
    }
    if (stop_.load(std::memory_order_acquire)) break;
    const auto now = std::chrono::steady_clock::now();
    if (options_.idle_timeout_seconds > 0 && now - last_sweep_ >= kSweepInterval) {
      last_sweep_ = now;
      SweepIdle();
    }
  }
  // Drain: register (and immediately close) anything still queued, then
  // drop every live connection. Pending replies are flushed best-effort so
  // a client that raced shutdown still sees answers to dispatched requests.
  // `drained_` closes the handoff race: once set (under pending_mu_), an
  // AddConnection that lost the race closes its fd itself instead of
  // queueing onto a loop that will never run again.
  {
    const lockdep::guard lock(pending_mu_);
    drained_ = true;
  }
  RegisterPending();
  // Give in-flight offloaded requests a bounded chance to complete so
  // their replies make the final flush (the hub abort on server stop makes
  // gated handlers return promptly; the deadline covers everything else).
  {
    const auto offload_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
    lockdep::relock_guard lock(offload_mu_);
    while (offload_inflight_count_ > 0 &&
           offload_cv_.wait_until(lock, offload_deadline) != std::cv_status::timeout) {
    }
  }
  DrainOffloadDone();
  // ONE deadline shared by the whole drain, not per connection: hundreds
  // of parked slow readers must not turn shutdown into minutes.
  const auto drain_deadline = std::chrono::steady_clock::now() + std::chrono::seconds(1);
  for (auto& [fd, conn] : conns_) {
    FlushBlocking(conn.get(), drain_deadline);
    ::close(conn->fd);
    DecOpenConns();
  }
  conns_.clear();
}

bool EventLoop::ProcessConn(Conn* conn) {
  conn->last_active = std::chrono::steady_clock::now();
  batch_start_ = conn->last_active;

  // Flush first: an EPOLLOUT wakeup (or a readable socket whose replies
  // were parked) wants queue space before new frames are parsed.
  if (!FlushOut(conn)) {
    CloseConn(conn);
    return false;
  }

  bool made_progress = true;
  int reads_left = 4;  // Fairness cap; level-triggered epoll re-notifies.
  while (made_progress) {
    made_progress = false;

    // Read whatever the kernel has (one chunk; level-triggered epoll
    // re-arms if more is waiting). Skipped while paused or half-closed.
    // recv lands in the loop-wide scratch buffer and only the bytes that
    // actually arrived are appended — resizing `in` by the chunk size
    // first would zero-fill 64 KiB per read, which dominated the per-op
    // cost in profiling.
    if (!conn->paused && !conn->peer_eof && reads_left > 0) {
      --reads_left;
      ssize_t n;
      do {
        n = ::recv(conn->fd, read_scratch_.data(), read_scratch_.size(), 0);
      } while (n < 0 && errno == EINTR);
      if (n < 0) {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          CloseConn(conn);
          return false;
        }
      } else if (n == 0) {
        conn->peer_eof = true;  // Half-close: run buffered frames, flush, close.
        UpdateInterest(conn);
      } else {
        conn->in.append(read_scratch_.data(), static_cast<size_t>(n));
        if (options_.metrics.bytes_in != nullptr) {
          options_.metrics.bytes_in->Inc(static_cast<uint64_t>(n));
        }
        // Only come back for more when the read filled the whole chunk —
        // a short read means the kernel buffer is drained, and retrying
        // would just burn a syscall on EAGAIN (level-triggered epoll
        // re-notifies if more arrives anyway).
        made_progress = static_cast<size_t>(n) == read_scratch_.size();
      }
    }

    if (!ParseFrames(conn)) {
      CloseConn(conn);
      return false;
    }
    if (!FlushOut(conn)) {
      CloseConn(conn);
      return false;
    }

    // Backpressure accounting. Resuming re-enters the loop so frames
    // buffered while paused are dispatched without waiting for new input.
    if (!conn->paused && conn->out_bytes >= options_.write_high_watermark) {
      conn->paused = true;
      if (options_.metrics.backpressure_pauses != nullptr) {
        options_.metrics.backpressure_pauses->Inc();
      }
      UpdateInterest(conn);
    } else if (conn->paused && conn->out_bytes <= options_.write_low_watermark) {
      conn->paused = false;
      UpdateInterest(conn);
      made_progress = true;
    }
    // ParseFrames may have stopped at the high watermark and FlushOut then
    // drained the queue without ever hitting EAGAIN (fast reader): the
    // leftover frames live in userspace, so no epoll event will ever
    // re-deliver them — re-enter the loop and keep parsing. Not while an
    // offloaded reply is pending: its completion re-runs ProcessConn, and
    // spinning here until then would peg the loop.
    if (!conn->offload_inflight && conn->out_bytes < options_.write_high_watermark &&
        HasCompleteFrame(*conn)) {
      made_progress = true;
    }
    if (stop_.load(std::memory_order_relaxed)) break;
  }

  if (conn->peer_eof && conn->out.empty() && !conn->offload_inflight) {
    // Every buffered frame has been dispatched and every reply flushed; a
    // partial frame left behind can never complete (mid-frame EOF), so the
    // half-closed peer got everything it had coming.
    CloseConn(conn);
    return false;
  }
  return true;
}

bool EventLoop::HasCompleteFrame(const Conn& conn) {
  const size_t avail = conn.in.size() - conn.pos;
  if (avail < kFrameHeaderBytes) return false;
  const uint32_t len = ReadFrameHeader(conn.in.data() + conn.pos);
  return len <= kMaxFrameBytes && avail - kFrameHeaderBytes >= len;
}

bool EventLoop::ParseFrames(Conn* conn) {
  obs::SlowOpLog* slog = options_.slow_log;
  const bool tracing = slog != nullptr && slog->enabled();
  const bool have_frame_ns = options_.metrics.frame_ns != nullptr;
  while (conn->out_bytes < options_.write_high_watermark) {
    // An offloaded request owns the next reply slot: later frames must
    // wait for it or replies would leave out of order.
    if (conn->offload_inflight) break;
    const size_t avail = conn->in.size() - conn->pos;
    if (avail < kFrameHeaderBytes) break;
    const uint32_t len = ReadFrameHeader(conn->in.data() + conn->pos);
    if (len > kMaxFrameBytes) return false;  // Garbage length prefix: drop the conn.
    if (avail - kFrameHeaderBytes < len) {
      // Reserve for the rest of the frame so a multi-MB payload arriving in
      // chunks doesn't re-grow the buffer chunk by chunk.
      conn->in.reserve(conn->pos + kFrameHeaderBytes + len);
      break;
    }
    const std::string_view request(conn->in.data() + conn->pos + kFrameHeaderBytes, len);
    conn->pos += kFrameHeaderBytes + static_cast<size_t>(len);

    // A request that might block (quorum-gated mutation) leaves the loop
    // thread: dispatching it inline would stall every connection sharing
    // this loop — including the REPLICATE pulls whose acks open the gate.
    if (options_.offload && options_.offload(request)) {
      StartOffload(conn, std::string(request));
      break;
    }

    std::string reply;
    obs::OpTrace& trace = obs::OpTrace::Current();
    if (tracing) {
      trace.Reset();
      trace.active = true;  // Server + engine + WAL fill their pieces.
    }
    // Frame latency is sampled (1-in-N, obs::HotPathSampler): a pipelined
    // frame is sub-microsecond, so always-on clock reads would tax the
    // loop more than dispatch does. Slow-op tracing must see EVERY frame
    // (a sampled trace would miss the outliers it exists to catch), so
    // enabling it forces full timing — acceptable for an opt-in
    // diagnostic.
    const bool sampled = have_frame_ns && frame_sampler_();
    const bool timing = tracing || sampled;
    const auto t0 = timing ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
    const bool shutdown_requested = handler_(request, &reply);
    if (timing) {
      const auto t1 = std::chrono::steady_clock::now();
      if (sampled) {
        options_.metrics.frame_ns->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
      }
      if (tracing) {
        // total_us starts at batch_start_, not t0: a frame that sat behind
        // earlier frames of the same read batch was already "slow" from the
        // client's point of view, and queue_us says how much of that was
        // the wait.
        const double total_us =
            std::chrono::duration<double, std::micro>(t1 - batch_start_).count();
        if (total_us >= slog->threshold_micros()) {
          obs::SlowOpRecord rec;
          rec.op = trace.op;
          rec.has_key = trace.has_key;
          rec.key_hash = trace.key_hash;
          rec.shard = trace.shard;
          rec.bytes = request.size();
          rec.conn_fd = conn->fd;
          rec.total_us = total_us;
          rec.queue_us =
              std::chrono::duration<double, std::micro>(t0 - batch_start_).count();
          rec.apply_us = trace.apply_us;
          rec.wal_us = trace.wal_us;
          slog->Log(rec);
        }
        trace.active = false;
      }
    }
    frames_dispatched_.fetch_add(1, std::memory_order_relaxed);

    AppendReply(conn, reply);

    if (shutdown_requested) {
      // The reply must reach the client before the daemon dies (the client
      // blocks on it), and stop_ is about to cut every loop short.
      FlushBlocking(conn, std::chrono::steady_clock::now() + std::chrono::seconds(1));
      request_shutdown_();
      return true;
    }
  }
  // Compact the consumed prefix once per cycle (not per frame).
  if (conn->pos == conn->in.size()) {
    conn->in.clear();
    conn->pos = 0;
    // A one-off multi-MB frame should not pin its buffer forever.
    if (conn->in.capacity() > (1u << 20)) conn->in.shrink_to_fit();
  } else if (conn->pos >= (64u << 10)) {
    conn->in.erase(0, conn->pos);
    conn->pos = 0;
  }
  return true;
}

void EventLoop::AppendReply(Conn* conn, const std::string& reply) {
  // Frame the reply (length prefix + payload). Small replies coalesce
  // into the queue's tail string so a deep pipeline's worth of replies
  // becomes a handful of iovecs (and allocations), not one per frame.
  if (conn->out.empty() || conn->out.back().size() >= (16u << 10)) {
    conn->out.emplace_back();
    conn->out.back().reserve(kFrameHeaderBytes + reply.size());
  }
  std::string& framed = conn->out.back();
  AppendFrameHeader(framed, static_cast<uint32_t>(reply.size()));
  framed.append(reply);
  conn->out_bytes += kFrameHeaderBytes + reply.size();
}

void EventLoop::StartOffload(Conn* conn, std::string request) {
  conn->offload_inflight = true;
  const uint64_t seq = next_offload_seq_++;
  const int fd = conn->fd;
  const uint64_t conn_id = conn->id;
  {
    const lockdep::guard lock(offload_mu_);
    ++offload_inflight_count_;
  }
  // One short-lived thread per offloaded request: these are rare (quorum-
  // gated mutations), and a pool would serialize unrelated connections'
  // gates behind each other. The thread's last act is the wake_fd_ write;
  // the loop joins it from DrainOffloadDone, so no thread outlives the
  // loop object (the destructor reaps stragglers).
  offload_threads_.emplace(seq, std::thread([this, seq, fd, conn_id,
                                             request = std::move(request)] {
    OffloadDone done;
    done.seq = seq;
    done.fd = fd;
    done.conn_id = conn_id;
    done.shutdown_requested = handler_(request, &done.reply);
    {
      const lockdep::guard lock(offload_mu_);
      offload_done_.push_back(std::move(done));
      --offload_inflight_count_;
    }
    offload_cv_.notify_all();
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }));
}

void EventLoop::DrainOffloadDone() {
  std::vector<OffloadDone> done;
  {
    const lockdep::guard lock(offload_mu_);
    done.swap(offload_done_);
  }
  for (OffloadDone& d : done) {
    // Reap the worker; it queued this record on its way out, so the join
    // is (at most) the tail of its exit path.
    const auto worker = offload_threads_.find(d.seq);
    if (worker != offload_threads_.end()) {
      worker->second.join();
      offload_threads_.erase(worker);
    }
    const auto it = conns_.find(d.fd);
    if (it == conns_.end() || it->second->id != d.conn_id) continue;  // Conn died mid-flight.
    Conn* conn = it->second.get();
    conn->offload_inflight = false;
    frames_dispatched_.fetch_add(1, std::memory_order_relaxed);
    AppendReply(conn, d.reply);
    if (d.shutdown_requested) {
      FlushBlocking(conn, std::chrono::steady_clock::now() + std::chrono::seconds(1));
      request_shutdown_();
      continue;
    }
    // Resume the connection: frames buffered behind the offloaded one are
    // parsed now, and the reply queue is flushed.
    ProcessConn(conn);
  }
}

bool EventLoop::FlushOut(Conn* conn) {
  while (!conn->out.empty()) {
    iovec iov[kMaxIov];
    size_t niov = 0;
    size_t offset = conn->out_head_sent;
    for (const std::string& framed : conn->out) {
      if (niov == kMaxIov) break;
      iov[niov].iov_base = const_cast<char*>(framed.data()) + offset;
      iov[niov].iov_len = framed.size() - offset;
      ++niov;
      offset = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = niov;
    ssize_t n;
    do {
      n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->want_write) {
          conn->want_write = true;
          UpdateInterest(conn);
        }
        return true;
      }
      return false;  // EPIPE / ECONNRESET: client is gone.
    }
    size_t sent = static_cast<size_t>(n);
    if (options_.metrics.bytes_out != nullptr) options_.metrics.bytes_out->Inc(sent);
    conn->out_bytes -= sent;
    while (sent > 0) {
      const size_t head_left = conn->out.front().size() - conn->out_head_sent;
      if (sent >= head_left) {
        sent -= head_left;
        conn->out.pop_front();
        conn->out_head_sent = 0;
      } else {
        conn->out_head_sent += sent;
        sent = 0;
      }
    }
  }
  if (conn->want_write) {
    conn->want_write = false;
    UpdateInterest(conn);
  }
  return true;
}

void EventLoop::FlushBlocking(Conn* conn,
                              std::chrono::steady_clock::time_point deadline) {
  // Bounded by the caller's deadline: a stuck client cannot wedge shutdown.
  while (!conn->out.empty()) {
    if (!FlushOut(conn)) return;
    if (conn->out.empty()) return;
    if (std::chrono::steady_clock::now() >= deadline) return;
    pollfd pfd{conn->fd, POLLOUT, 0};
    ::poll(&pfd, 1, 50);
  }
}

void EventLoop::UpdateInterest(Conn* conn) {
  epoll_event ev{};
  ev.events = 0;
  if (!conn->paused && !conn->peer_eof) ev.events |= EPOLLIN;
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void EventLoop::CloseConn(Conn* conn) {
  const int fd = conn->fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(fd);
  DecOpenConns();
}

void EventLoop::SweepIdle() {
  const auto now = std::chrono::steady_clock::now();
  const auto limit = std::chrono::duration<double>(options_.idle_timeout_seconds);
  std::vector<int> idle;
  for (const auto& [fd, conn] : conns_) {
    // A conn waiting on an offloaded reply is busy, not idle — the gate it
    // is blocked on may legitimately outlast the idle timeout.
    if (conn->offload_inflight) continue;
    if (now - conn->last_active > limit) idle.push_back(fd);
  }
  for (int fd : idle) {
    const auto it = conns_.find(fd);
    if (it != conns_.end()) {
      idle_closed_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(it->second.get());
    }
  }
}

}  // namespace ocasta
