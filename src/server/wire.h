// The ocastad wire protocol: framing, op codes, and POSIX socket helpers
// shared by the server and the client library. See docs/PROTOCOL.md for the
// byte-level specification.
//
// Every message (request or reply) is one frame: a little-endian u32 payload
// length followed by the payload. Request payloads start with a u8 op code;
// reply payloads start with a u8 status (kOk / kErr). All integers, strings
// and values reuse the BinaryWriter/BinaryReader layout of the TTKV
// snapshot format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"

namespace ocasta {

enum class Op : uint8_t {
  kPing = 1,
  kPut = 2,
  kDelete = 3,
  kGet = 4,
  kGetAt = 5,
  kHistory = 6,
  kStats = 7,
  kListKeys = 8,
  kSnapshot = 9,
  kCompact = 10,
  kClusterNow = 11,
  kShutdown = 12,
};

const char* OpName(Op op);

inline constexpr uint8_t kStatusOk = 0;
inline constexpr uint8_t kStatusErr = 1;

// Upper bound on a single frame. Large enough for a multi-MB TTKV snapshot
// reply (Table I sizes), small enough that a garbage length prefix fails
// immediately instead of allocating gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

// Raised for transport-level failures (peer gone, short read, oversized
// frame). Server-reported errors surface as StoreError instead.
class WireError : public Error {
 public:
  using Error::Error;
};

// Writes one length-prefixed frame; throws WireError on I/O failure.
void SendFrame(int fd, std::string_view payload);

// Reads one frame. nullopt on clean EOF at a frame boundary; throws
// WireError on mid-frame EOF, I/O failure, or an oversized length prefix.
std::optional<std::string> RecvFrame(int fd);

// Binds and listens on 127.0.0.1:port (0 = ephemeral); returns the fd.
int ListenLoopback(uint16_t port, int backlog = 128);

// Port a listening socket is actually bound to.
uint16_t BoundPort(int fd);

// Connects to host:port; throws WireError when the peer is unreachable.
int ConnectTcp(const std::string& host, uint16_t port);

}  // namespace ocasta
