// The ocastad wire transport: framing and POSIX socket helpers shared by
// the server and the client library. This layer is payload-agnostic — op
// tags, bodies, and replies are the api/codec.h layer; see docs/PROTOCOL.md
// for the byte-level specification.
//
// Every message (request or reply) is one frame: a little-endian u32
// payload length followed by the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"

namespace ocasta {

// Upper bound on a single frame. Large enough for a multi-MB TTKV snapshot
// reply (Table I sizes), small enough that a garbage length prefix fails
// immediately instead of allocating gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

// The 4-byte little-endian length prefix, encoded/decoded in exactly one
// place: every framing site (blocking helpers, FrameBuffer, the server
// event loop, the bench driver) goes through these two.
inline constexpr size_t kFrameHeaderBytes = 4;

inline void AppendFrameHeader(std::string& out, uint32_t payload_len) {
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    out.push_back(static_cast<char>((payload_len >> (8 * i)) & 0xff));
  }
}

// `data` must point at kFrameHeaderBytes readable bytes.
inline uint32_t ReadFrameHeader(const char* data) {
  uint32_t len = 0;
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(data[i])) << (8 * i);
  }
  return len;
}

// Raised for transport-level failures (peer gone, short read, oversized
// frame). Server-reported errors surface as StoreError instead.
class WireError : public Error {
 public:
  using Error::Error;
};

// Writes one length-prefixed frame; throws WireError on I/O failure.
void SendFrame(int fd, std::string_view payload);

// Reads one frame. nullopt on clean EOF at a frame boundary; throws
// WireError on mid-frame EOF, I/O failure, or an oversized length prefix.
std::optional<std::string> RecvFrame(int fd);

// Buffered frame reader for a blocking socket. Each kernel recv() lands in
// an internal buffer, so the common case costs ONE syscall per frame
// (header + payload arrive together) instead of RecvFrame's two — and a
// pipelined burst of replies can surface many frames from a single recv.
// Same contract as RecvFrame: nullopt on clean EOF at a frame boundary,
// WireError on mid-frame EOF / I/O failure / oversized prefix.
class FrameBuffer {
 public:
  std::optional<std::string> Recv(int fd);

  // Drops buffered bytes — required when the fd is replaced (reconnect).
  void Reset();

 private:
  std::string buf_;
  size_t pos_ = 0;
};

// Binds and listens on 127.0.0.1:port (0 = ephemeral); returns the fd.
int ListenLoopback(uint16_t port, int backlog = 128);

// Port a listening socket is actually bound to.
uint16_t BoundPort(int fd);

// Connects to host:port; throws WireError when the peer is unreachable.
int ConnectTcp(const std::string& host, uint16_t port);

}  // namespace ocasta
