// The ocastad wire transport: framing and POSIX socket helpers shared by
// the server and the client library. This layer is payload-agnostic — op
// tags, bodies, and replies are the api/codec.h layer; see docs/PROTOCOL.md
// for the byte-level specification.
//
// Every message (request or reply) is one frame: a little-endian u32
// payload length followed by the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/error.h"

namespace ocasta {

// Upper bound on a single frame. Large enough for a multi-MB TTKV snapshot
// reply (Table I sizes), small enough that a garbage length prefix fails
// immediately instead of allocating gigabytes.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

// Raised for transport-level failures (peer gone, short read, oversized
// frame). Server-reported errors surface as StoreError instead.
class WireError : public Error {
 public:
  using Error::Error;
};

// Writes one length-prefixed frame; throws WireError on I/O failure.
void SendFrame(int fd, std::string_view payload);

// Reads one frame. nullopt on clean EOF at a frame boundary; throws
// WireError on mid-frame EOF, I/O failure, or an oversized length prefix.
std::optional<std::string> RecvFrame(int fd);

// Binds and listens on 127.0.0.1:port (0 = ephemeral); returns the fd.
int ListenLoopback(uint16_t port, int backlog = 128);

// Port a listening socket is actually bound to.
uint16_t BoundPort(int fd);

// Connects to host:port; throws WireError when the peer is unreachable.
int ConnectTcp(const std::string& host, uint16_t port);

}  // namespace ocasta
