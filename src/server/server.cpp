#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "api/backends.h"
#include "api/codec.h"
#include "common/hash.h"
#include "obs/prometheus.h"
#include "server/wire.h"

namespace ocasta {

namespace {

// Runs before the engine is constructed: requesting a Prometheus listener
// without supplying a registry implies one (the listener would have nothing
// to serve otherwise, and the engine needs the registry at construction).
ServerOptions NormalizeOptions(ServerOptions options) {
  if (options.metrics == nullptr && options.metrics_port != 0) {
    options.metrics = std::make_shared<obs::MetricsRegistry>();
  }
  if (options.acks != "leader" && options.acks != "quorum") {
    throw Error("unknown acks level: " + options.acks + " (expected leader|quorum)");
  }
  if (!options.follow_host.empty() && options.data_dir.empty()) {
    throw Error("--follow requires --data-dir (a follower replicates the leader's log to disk)");
  }
  if (options.follower_id.empty()) options.follower_id = "follower@" + options.data_dir;
  if (options.acks == "quorum" && !options.data_dir.empty()) {
    // A quorum-gated mutation BLOCKS its event-loop worker until followers
    // ack — with one worker the followers' REPLICATE pulls could never be
    // dispatched and every gated write would time out. Keep at least one
    // worker free for the replication stream; deployments should size
    // --io-threads past their expected concurrent mutators (see
    // docs/REPLICATION.md).
    options.io_threads = std::max<size_t>(options.io_threads == 0 ? 8 : options.io_threads, 2);
  }
  return options;
}

bool IsFollowerMode(const ServerOptions& options) { return !options.follow_host.empty(); }

replica::FollowerOptions FollowerOptionsFor(const ServerOptions& options) {
  replica::FollowerOptions fopts;
  fopts.leader_host = options.follow_host;
  fopts.leader_port = options.follow_port;
  fopts.follower_id = options.follower_id;
  return fopts;
}

// The daemon always runs the sharded engine; a data_dir wraps it in the
// durable decorator via the same factory the CLI uses.
std::unique_ptr<api::Engine> MakeServerEngine(const ServerOptions& options,
                                              replica::ReplicationHub* hub) {
  api::BackendOptions backend;
  backend.backend = "sharded";
  backend.num_shards = options.num_shards;
  backend.cluster_window_seconds = options.cluster_window_seconds;
  backend.data_dir = options.data_dir;
  backend.fsync = options.fsync;
  backend.checkpoint_interval_seconds = options.checkpoint_interval_seconds;
  backend.metrics = options.metrics.get();
  if (hub != nullptr && options.acks == "quorum") {
    // The quorum commit gate: the engine withholds a mutation's ack until
    // enough followers cover its LSN. Followers never gate — their
    // "mutations" arrive via ApplyReplicated, which bypasses Apply (a
    // promoted follower starts gating only because its own acks option
    // said so).
    backend.commit_gate = [hub](uint64_t lsn) { hub->WaitQuorum(lsn); };
  }
  return api::MakeEngine(backend);
}

size_t ResolveIoThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  // One loop handles hundreds of connections; more than 8 loops only helps
  // when the engine itself scales past that.
  return std::clamp<size_t>(hw, 1, 8);
}

}  // namespace

TtkvServer::TtkvServer(ServerOptions options) : options_(NormalizeOptions(std::move(options))) {
  if (IsFollowerMode(options_)) {
    // Before the engine exists: decide whether the local dir can catch up
    // from the leader's log, reseeding it from the leader's snapshot when
    // not. Normal DurableEngine recovery below then loads that state.
    replica::BootstrapFromLeader(options_.data_dir, FollowerOptionsFor(options_));
  }
  if (!options_.data_dir.empty()) {
    replica::HubOptions hub;
    hub.quorum_followers = options_.quorum_followers;
    hub.ack_timeout_seconds = options_.quorum_timeout_seconds;
    hub.metrics = options_.metrics.get();
    hub_ = std::make_unique<replica::ReplicationHub>(hub);
  }
  engine_ = MakeServerEngine(options_, hub_.get());
  durable_ = dynamic_cast<persist::DurableEngine*>(engine_.get());
  if (IsFollowerMode(options_)) {
    is_follower_.store(true, std::memory_order_release);
    follower_ = std::make_unique<replica::Follower>(*durable_, FollowerOptionsFor(options_));
  }
  if (options_.slow_op_micros > 0) {
    slow_log_ = std::make_unique<obs::SlowOpLog>(options_.slow_op_micros,
                                                 options_.slow_op_log_per_sec);
  }
  if (obs::MetricsRegistry* m = options_.metrics.get()) {
    loop_metrics_.frame_ns = &m->GetHistogram("ocasta_loop_frame_ns");
    loop_metrics_.dispatch_width = &m->GetHistogram("ocasta_loop_dispatch_width");
    loop_metrics_.bytes_in = &m->GetCounter("ocasta_loop_bytes_in_total");
    loop_metrics_.bytes_out = &m->GetCounter("ocasta_loop_bytes_out_total");
    loop_metrics_.backpressure_pauses =
        &m->GetCounter("ocasta_loop_backpressure_pauses_total");
    loop_metrics_.conns_live = &m->GetGauge("ocasta_loop_connections_live");
    ctr_connections_ = &m->GetCounter("ocasta_server_connections_total");
    ctr_overload_ = &m->GetCounter("ocasta_server_overload_rejections_total");
    conns_live_ = loop_metrics_.conns_live;
    conns_peak_ = &m->GetGauge("ocasta_loop_connections_peak");
    if (slow_log_ != nullptr) {
      slow_logged_ = &m->GetGauge("ocasta_slow_ops_logged");
      slow_suppressed_ = &m->GetGauge("ocasta_slow_ops_suppressed");
    }
  }
}

TtkvServer::~TtkvServer() { Stop(); }

void TtkvServer::Start() {
  if (started_.exchange(true)) throw Error("TtkvServer already started");
  // Backlog sized for connection storms (bench --connections opens hundreds
  // at once); the kernel clamps to net.core.somaxconn.
  const int backlog = options_.max_conns == 0
                          ? 1024
                          : static_cast<int>(std::min<size_t>(options_.max_conns, 4096));
  listen_fd_ = ListenLoopback(options_.port, backlog);
  port_ = BoundPort(listen_fd_);

  EventLoopOptions loop_options;
  loop_options.idle_timeout_seconds = options_.idle_timeout_seconds;
  loop_options.metrics = loop_metrics_;
  loop_options.slow_log = slow_log_.get();
  if (hub_ != nullptr && options_.acks == "quorum") {
    // Quorum-gated mutations BLOCK waiting for follower acks, and the acks
    // arrive as REPLICATE requests that may share the same event loop —
    // dispatched inline, the gate would starve its own acks. Route anything
    // that might hit the gate to a side thread so only its connection
    // parks. MightMutate over-approximates (any BATCH, a mutation bound
    // for NOT_LEADER rejection); those cost one thread hop, not liveness.
    loop_options.offload = [](std::string_view request) { return api::MightMutate(request); };
  }
  const size_t io_threads = ResolveIoThreads(options_.io_threads);
  loops_.reserve(io_threads);
  for (size_t i = 0; i < io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(
        loop_options,
        [this](std::string_view request, std::string* reply) {
          return HandleRequest(request, reply);
        },
        [this] { RequestStop(); }, &open_conns_));
  }
  for (const auto& loop : loops_) loop->Start();
  if (options_.metrics_port != 0) {
    metrics_http_ = std::make_unique<obs::MetricsHttpServer>(
        options_.metrics_port, [this] {
          RefreshExportGauges();
          return obs::WritePrometheusText(options_.metrics->Snapshot());
        });
    metrics_http_->Start();
  }
  accept_thread_ = std::thread(&TtkvServer::AcceptLoop, this);
  if (follower_ != nullptr) follower_->Start();
}

uint16_t TtkvServer::metrics_port() const {
  return metrics_http_ != nullptr ? metrics_http_->port() : 0;
}

void TtkvServer::RefreshExportGauges() {
  if (slow_log_ == nullptr || slow_logged_ == nullptr) return;
  slow_logged_->Set(static_cast<int64_t>(slow_log_->logged()));
  slow_suppressed_->Set(static_cast<int64_t>(slow_log_->suppressed()));
}

void TtkvServer::RequestStop() {
  if (stopping_.exchange(true)) return;
  // Release quorum gates first: a mutation parked on WaitQuorum would
  // otherwise hold its offload worker (and the client) for the full ack
  // timeout while the rest of the daemon is tearing down.
  if (hub_ != nullptr) hub_->Abort();
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (const auto& loop : loops_) loop->RequestStop();
}

void TtkvServer::Stop() {
  if (!started_.load()) return;
  RequestStop();
  Wait();
}

void TtkvServer::Wait() {
  const lockdep::guard lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  for (const auto& loop : loops_) loop->Join();
  // After the joins: the accept join only returns once stop was requested,
  // so a Wait()-ing daemon keeps tailing its leader until then.
  if (follower_ != nullptr) follower_->Stop();
  if (metrics_http_ != nullptr) metrics_http_->Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TtkvServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (fd limits, socket buffers) must not
      // kill a long-running daemon: back off briefly and keep accepting.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // Listening socket gone or fatal error: stop accepting.
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    // Replies are small frames; without NODELAY, Nagle + delayed ACK stalls
    // pipelined batches by tens of milliseconds.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    if (options_.max_conns != 0 &&
        open_conns_.load(std::memory_order_relaxed) >=
            static_cast<int64_t>(options_.max_conns)) {
      // Graceful overload: tell the client why before closing, instead of a
      // silent RST. The socket is fresh (empty send buffer), so this small
      // blocking send cannot stall the acceptor.
      overload_rejections_.fetch_add(1, std::memory_order_relaxed);
      if (ctr_overload_ != nullptr) ctr_overload_->Inc();
      try {
        SendFrame(fd, api::EncodeResult(api::ErrorResult{
                          "server over --max-conns connection limit; retry later"}));
      } catch (const Error&) {
        // Client vanished mid-rejection; nothing to salvage.
      }
      ::shutdown(fd, SHUT_WR);  // Push the reply out before the close.
      // Drain whatever the client already sent (a real client HELLOs right
      // after connect): close()ing with unread bytes in the receive queue
      // makes Linux send RST, which can discard the reply we just queued.
      // Bounded so a hostile client cannot stall the acceptor.
      pollfd pfd{fd, POLLIN, 0};
      for (int spins = 0; spins < 4 && ::poll(&pfd, 1, 50) > 0; ++spins) {
        char sink[4096];
        const ssize_t drained = ::recv(fd, sink, sizeof(sink), 0);
        if (drained <= 0) break;  // EOF (client saw our FIN) or error.
      }
      ::close(fd);
      continue;
    }

    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
      ::close(fd);
      continue;
    }
    connections_.fetch_add(1);
    const int64_t now_open = open_conns_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (ctr_connections_ != nullptr) {
      ctr_connections_->Inc();
      conns_live_->Add(1);
      conns_peak_->SetMax(now_open);
    }
    loops_[next_loop_]->AddConnection(fd);
    next_loop_ = (next_loop_ + 1) % loops_.size();
  }
}

uint64_t TtkvServer::frames_dispatched() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->frames_dispatched();
  return total;
}

uint64_t TtkvServer::loop_wakeups() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->wakeups();
  return total;
}

uint64_t TtkvServer::idle_closed() const {
  uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->idle_closed();
  return total;
}

api::Result TtkvServer::ServeReplicate(const api::ReplicateCmd& cmd) {
  if (durable_ == nullptr) {
    return api::ErrorResult{"REPLICATE requires a durable daemon (--data-dir)"};
  }
  persist::Wal& wal = durable_->wal();
  const uint64_t leader_lsn = wal.last_lsn();
  if (hub_ != nullptr) {
    // since_lsn doubles as the follower's durability ack. Clamp to our own
    // log: a cursor from a divergent timeline must not inflate quorum.
    hub_->OnFollowerAck(cmd.follower_id, std::min(cmd.since_lsn, leader_lsn), leader_lsn);
  }
  api::ReplicateResult res;
  res.leader_lsn = leader_lsn;
  res.follower = is_follower_.load(std::memory_order_acquire);
  if (cmd.max_records == 0) return res;  // Status probe (ocasta_cli replstat).

  // Cap the reply: a cold follower catches up over many pulls, each
  // bounded in records and bytes so one REPLICATE cannot monopolize a
  // worker or balloon a frame.
  constexpr size_t kMaxReplyBytes = 4u << 20;
  const size_t max_records = std::min<size_t>(cmd.max_records, 65536);
  persist::WalTail tail = wal.ReadFrom(cmd.since_lsn + 1, max_records, kMaxReplyBytes);
  if (tail.reachable) {
    res.records.reserve(tail.records.size());
    for (persist::WalRecord& r : tail.records) {
      res.records.push_back(api::ReplicateResult::Entry{r.lsn, std::move(r.payload)});
    }
    return res;
  }
  // The log no longer reaches the cursor (checkpoint truncation, or the
  // follower is from another timeline): bootstrap it with a snapshot.
  persist::DurableEngine::SnapshotImage image = durable_->CaptureSnapshot();
  if (image.lsn == 0) {
    return api::ErrorResult{"follower cursor " + std::to_string(cmd.since_lsn) +
                            " is ahead of an empty leader log; wipe the follower data dir"};
  }
  res.leader_lsn = std::max(leader_lsn, image.lsn);
  res.snapshot_lsn = image.lsn;
  res.snapshot = std::move(image.bytes);
  return res;
}

api::Result TtkvServer::Promote() {
  if (!is_follower_.load(std::memory_order_acquire)) {
    // Idempotent: a failover script that retries PROMOTE after a dropped
    // reply must not see its (already effective) promotion fail.
    return api::OkResult{};
  }
  // Stop pulling first, then flip the role: after the flip every worker
  // sees a leader-capable engine whose log ends exactly where the dead
  // leader's shipped history ended.
  follower_->Stop();
  is_follower_.store(false, std::memory_order_release);
  return api::OkResult{};
}

bool TtkvServer::HandleRequest(std::string_view request, std::string* reply) {
  // Thin decode → Apply → encode shim: the codec owns every byte layout and
  // the engine owns every operation. The only server-side concerns are
  // HELLO version negotiation and recognizing a top-level SHUTDOWN.
  bool shutdown_requested = false;
  try {
    if (api::IsHelloRequest(request)) {
      if (obs::OpTrace::Current().active) obs::OpTrace::Current().op = "HELLO";
      const uint32_t client_version = api::DecodeHello(request);
      if (client_version < api::kMinProtocolVersion) {
        *reply = api::EncodeResult(api::ErrorResult{
            "unsupported protocol version " + std::to_string(client_version) +
            " (daemon speaks " + std::to_string(api::kMinProtocolVersion) + ".." +
            std::to_string(api::kProtocolVersion) + ")"});
        return false;
      }
      *reply = api::EncodeHelloReply(std::min(client_version, api::kProtocolVersion));
      return false;
    }
    const api::Command cmd = api::DecodeCommand(request);
    shutdown_requested = std::holds_alternative<api::ShutdownCmd>(cmd.op);
    if (std::holds_alternative<api::MetricsCmd>(cmd.op)) RefreshExportGauges();
    // Replication control plane (docs/REPLICATION.md): handled here, not in
    // the engine — the stream is served off the WAL and the role flip is
    // server state.
    if (const auto* rep = std::get_if<api::ReplicateCmd>(&cmd.op)) {
      if (obs::OpTrace::Current().active) obs::OpTrace::Current().op = "REPLICATE";
      *reply = api::EncodeResult(ServeReplicate(*rep));
      return false;
    }
    if (std::holds_alternative<api::PromoteCmd>(cmd.op)) {
      *reply = api::EncodeResult(Promote());
      return false;
    }
    if (is_follower_.load(std::memory_order_acquire) && api::IsMutating(cmd)) {
      // Typed redirect, not an error string: clients fail over on it.
      *reply = api::EncodeResult(
          api::NotLeaderResult{options_.follow_host, options_.follow_port});
      return false;
    }
    obs::OpTrace& trace = obs::OpTrace::Current();
    if (trace.active) {
      // Identify the op for the slow-op line before dispatch; the engine
      // and WAL fill in their timing pieces underneath.
      trace.op = api::CommandName(cmd);
      if (const std::string* key = api::CommandKey(cmd)) {
        trace.has_key = true;
        trace.key_hash = Fnv1a(*key);
        trace.shard = static_cast<uint32_t>(trace.key_hash % options_.num_shards);
      }
      const auto t0 = std::chrono::steady_clock::now();
      *reply = api::EncodeResult(engine_->Apply(cmd));
      const double engine_us = std::chrono::duration<double, std::micro>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
      // apply_us is engine time excluding the WAL's share (append + group-
      // commit wait), which DurableEngine accumulated into wal_us.
      trace.apply_us = std::max(0.0, engine_us - trace.wal_us);
    } else {
      *reply = api::EncodeResult(engine_->Apply(cmd));
    }
  } catch (const Error& e) {
    shutdown_requested = false;
    *reply = api::EncodeResult(api::ErrorResult{e.what()});
  }
  return shutdown_requested;
}

}  // namespace ocasta
