#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "server/wire.h"
#include "ttkv/serialize.h"

namespace ocasta {

namespace {

Linkage LinkageFromWire(uint8_t code) {
  switch (code) {
    case 0: return Linkage::kComplete;
    case 1: return Linkage::kSingle;
    case 2: return Linkage::kAverage;
  }
  throw ParseError("unknown linkage code");
}

void WriteError(BinaryWriter* w, const std::string& message) {
  w->u8(kStatusErr);
  w->str(message);
}

}  // namespace

TtkvServer::TtkvServer(ServerOptions options)
    : options_(options), engine_(options.num_shards, options.cluster_window_seconds) {}

TtkvServer::~TtkvServer() { Stop(); }

void TtkvServer::Start() {
  if (started_.exchange(true)) throw Error("TtkvServer already started");
  listen_fd_ = ListenLoopback(options_.port);
  port_ = BoundPort(listen_fd_);
  accept_thread_ = std::thread(&TtkvServer::AcceptLoop, this);
}

void TtkvServer::RequestStop() {
  if (!stopping_.exchange(true)) ::shutdown(listen_fd_, SHUT_RDWR);
}

void TtkvServer::Stop() {
  if (!started_.load()) return;
  RequestStop();
  Wait();
}

void TtkvServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TtkvServer::ReapFinishedConns() {
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    conn->thread.join();
    return true;
  });
}

void TtkvServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (fd limits, socket buffers) must not
      // kill a long-running daemon: back off briefly and keep accepting.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        ReapFinishedConns();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // Listening socket gone or fatal error: stop accepting.
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    // Replies are small frames; without NODELAY, Nagle + delayed ACK stalls
    // pipelined batches by tens of milliseconds.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    ReapFinishedConns();
    conns_.push_back(std::make_unique<Conn>());
    conns_.back()->thread = std::thread(&TtkvServer::Serve, this, fd, conns_.back().get());
  }
  // Drain: wake every blocked connection read, then join all handlers.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (const std::unique_ptr<Conn>& conn : conns_) conn->thread.join();
  conns_.clear();
}

void TtkvServer::Serve(int fd, Conn* conn) {
  bool shutdown_requested = false;
  try {
    while (auto request = RecvFrame(fd)) {
      std::string reply;
      shutdown_requested = HandleRequest(*request, &reply);
      SendFrame(fd, reply);
      if (shutdown_requested) break;
    }
  } catch (const Error&) {
    // Transport failure or unframeable garbage: drop the connection. The
    // engine is untouched mid-request, so other clients are unaffected.
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
  if (shutdown_requested) RequestStop();
  conn->done.store(true, std::memory_order_release);
}

bool TtkvServer::HandleRequest(const std::string& request, std::string* reply) {
  BinaryWriter w;
  bool shutdown_requested = false;
  try {
    BinaryReader r(request);
    const Op op = static_cast<Op>(r.u8());
    switch (op) {
      case Op::kPing: {
        w.u8(kStatusOk);
        break;
      }
      case Op::kPut: {
        const std::string key = r.str();
        const TimeMicros t = r.i64();
        Value value = r.value();
        engine_.Put(key, std::move(value), t);
        w.u8(kStatusOk);
        break;
      }
      case Op::kDelete: {
        const std::string key = r.str();
        const TimeMicros t = r.i64();
        const bool existed = engine_.Delete(key, t);
        w.u8(kStatusOk);
        w.u8(existed ? 1 : 0);
        break;
      }
      case Op::kGet: {
        const std::optional<Value> value = engine_.Get(r.str());
        w.u8(kStatusOk);
        w.u8(value.has_value() ? 1 : 0);
        if (value.has_value()) w.value(*value);
        break;
      }
      case Op::kGetAt: {
        const std::string key = r.str();
        const TimeMicros t = r.i64();
        const std::optional<Value> value = engine_.GetAt(key, t);
        w.u8(kStatusOk);
        w.u8(value.has_value() ? 1 : 0);
        if (value.has_value()) w.value(*value);
        break;
      }
      case Op::kHistory: {
        const std::optional<VersionedRecord> rec = engine_.History(r.str());
        w.u8(kStatusOk);
        w.u8(rec.has_value() ? 1 : 0);
        if (rec.has_value()) {
          w.u64(rec->write_count);
          w.u64(rec->delete_count);
          w.u64(rec->read_count);
          w.u32(static_cast<uint32_t>(rec->versions.size()));
          for (const Version& v : rec->versions) {
            w.i64(v.timestamp);
            w.u8(v.is_delete ? 1 : 0);
            w.value(v.value);
          }
        }
        break;
      }
      case Op::kStats: {
        const EngineStats stats = engine_.Stats();
        w.u8(kStatusOk);
        w.u64(stats.ttkv.reads);
        w.u64(stats.ttkv.writes);
        w.u64(stats.ttkv.deletes);
        w.u64(stats.ttkv.num_keys);
        w.u64(stats.ttkv.size_bytes);
        w.u32(static_cast<uint32_t>(stats.num_shards));
        w.u64(stats.puts);
        w.u64(stats.gets);
        w.u64(stats.deletes);
        w.u64(connections_.load());
        break;
      }
      case Op::kListKeys: {
        const std::vector<std::string> keys = engine_.ListKeys(r.str());
        w.u8(kStatusOk);
        w.u32(static_cast<uint32_t>(keys.size()));
        for (const std::string& key : keys) w.str(key);
        break;
      }
      case Op::kSnapshot: {
        const std::string bytes = engine_.Snapshot().Serialize();
        w.u8(kStatusOk);
        w.str(bytes);
        break;
      }
      case Op::kCompact: {
        const TimeMicros horizon = r.i64();
        w.u8(kStatusOk);
        w.u64(engine_.CompactBefore(horizon));
        break;
      }
      case Op::kClusterNow: {
        const double threshold = r.f64();
        const Linkage linkage = LinkageFromWire(r.u8());
        const std::vector<NamedCluster> clusters = engine_.ClusterNow(threshold, linkage);
        w.u8(kStatusOk);
        w.u32(static_cast<uint32_t>(clusters.size()));
        for (const NamedCluster& cluster : clusters) {
          w.u64(cluster.version_count);
          w.i64(cluster.last_modified);
          w.u32(static_cast<uint32_t>(cluster.keys.size()));
          for (const std::string& key : cluster.keys) w.str(key);
        }
        break;
      }
      case Op::kShutdown: {
        w.u8(kStatusOk);
        shutdown_requested = true;
        break;
      }
      default: {
        WriteError(&w, "unknown op code " + std::to_string(static_cast<int>(op)));
        break;
      }
    }
    if (!shutdown_requested && !r.at_end()) {
      // Trailing bytes mean the client framed the request wrong; surface it.
      w = BinaryWriter();
      WriteError(&w, std::string("trailing bytes after ") + OpName(op) + " request");
    }
  } catch (const Error& e) {
    w = BinaryWriter();
    WriteError(&w, e.what());
  }
  *reply = w.take();
  return shutdown_requested;
}

}  // namespace ocasta
