#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>

#include "api/backends.h"
#include "api/codec.h"
#include "server/wire.h"

namespace ocasta {

namespace {

// The daemon always runs the sharded engine; a data_dir wraps it in the
// durable decorator via the same factory the CLI uses.
std::unique_ptr<api::Engine> MakeServerEngine(const ServerOptions& options) {
  api::BackendOptions backend;
  backend.backend = "sharded";
  backend.num_shards = options.num_shards;
  backend.cluster_window_seconds = options.cluster_window_seconds;
  backend.data_dir = options.data_dir;
  backend.fsync = options.fsync;
  backend.checkpoint_interval_seconds = options.checkpoint_interval_seconds;
  return api::MakeEngine(backend);
}

}  // namespace

TtkvServer::TtkvServer(ServerOptions options)
    : options_(std::move(options)), engine_(MakeServerEngine(options_)) {}

TtkvServer::~TtkvServer() { Stop(); }

void TtkvServer::Start() {
  if (started_.exchange(true)) throw Error("TtkvServer already started");
  listen_fd_ = ListenLoopback(options_.port);
  port_ = BoundPort(listen_fd_);
  accept_thread_ = std::thread(&TtkvServer::AcceptLoop, this);
}

void TtkvServer::RequestStop() {
  if (!stopping_.exchange(true)) ::shutdown(listen_fd_, SHUT_RDWR);
}

void TtkvServer::Stop() {
  if (!started_.load()) return;
  RequestStop();
  Wait();
}

void TtkvServer::Wait() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TtkvServer::ReapFinishedConns() {
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    conn->thread.join();
    return true;
  });
}

void TtkvServer::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Transient resource exhaustion (fd limits, socket buffers) must not
      // kill a long-running daemon: back off briefly and keep accepting.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        ReapFinishedConns();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // Listening socket gone or fatal error: stop accepting.
    }
    if (stopping_.load()) {
      ::close(fd);
      continue;
    }
    // Replies are small frames; without NODELAY, Nagle + delayed ACK stalls
    // pipelined batches by tens of milliseconds.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    ReapFinishedConns();
    conns_.push_back(std::make_unique<Conn>());
    conns_.back()->thread = std::thread(&TtkvServer::Serve, this, fd, conns_.back().get());
  }
  // Drain: wake every blocked connection read, then join all handlers.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (const std::unique_ptr<Conn>& conn : conns_) conn->thread.join();
  conns_.clear();
}

void TtkvServer::Serve(int fd, Conn* conn) {
  bool shutdown_requested = false;
  try {
    while (auto request = RecvFrame(fd)) {
      std::string reply;
      shutdown_requested = HandleRequest(*request, &reply);
      SendFrame(fd, reply);
      if (shutdown_requested) break;
    }
  } catch (const Error&) {
    // Transport failure or unframeable garbage: drop the connection. The
    // engine is untouched mid-request, so other clients are unaffected.
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
  if (shutdown_requested) RequestStop();
  conn->done.store(true, std::memory_order_release);
}

bool TtkvServer::HandleRequest(const std::string& request, std::string* reply) {
  // Thin decode → Apply → encode shim: the codec owns every byte layout and
  // the engine owns every operation. The only server-side concerns are
  // HELLO version negotiation and recognizing a top-level SHUTDOWN.
  bool shutdown_requested = false;
  try {
    if (api::IsHelloRequest(request)) {
      const uint32_t client_version = api::DecodeHello(request);
      if (client_version < api::kMinProtocolVersion) {
        *reply = api::EncodeResult(api::ErrorResult{
            "unsupported protocol version " + std::to_string(client_version) +
            " (daemon speaks " + std::to_string(api::kMinProtocolVersion) + ".." +
            std::to_string(api::kProtocolVersion) + ")"});
        return false;
      }
      *reply = api::EncodeHelloReply(std::min(client_version, api::kProtocolVersion));
      return false;
    }
    const api::Command cmd = api::DecodeCommand(request);
    shutdown_requested = std::holds_alternative<api::ShutdownCmd>(cmd.op);
    *reply = api::EncodeResult(engine_->Apply(cmd));
  } catch (const Error& e) {
    shutdown_requested = false;
    *reply = api::EncodeResult(api::ErrorResult{e.what()});
  }
  return shutdown_requested;
}

}  // namespace ocasta
