#include "server/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ocasta {

namespace {

std::string Errno(const std::string& what) {
  return ErrnoMessage(what, errno);
}

void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(Errno("send"));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

// Returns bytes read; stops early only on EOF.
size_t ReadUpTo(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(Errno("recv"));
    }
    if (n == 0) break;  // EOF.
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

void SendFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) throw WireError("frame exceeds kMaxFrameBytes");
  // One send for the common small-frame case keeps the op off Nagle's radar.
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrameHeader(frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  WriteAll(fd, frame.data(), frame.size());
}

std::optional<std::string> RecvFrame(int fd) {
  char header[kFrameHeaderBytes];
  const size_t got = ReadUpTo(fd, header, kFrameHeaderBytes);
  if (got == 0) return std::nullopt;  // Clean EOF between frames.
  if (got < kFrameHeaderBytes) throw WireError("connection closed mid-frame");
  const uint32_t len = ReadFrameHeader(header);
  if (len > kMaxFrameBytes) throw WireError("frame length exceeds kMaxFrameBytes");
  std::string payload(len, '\0');
  if (ReadUpTo(fd, payload.data(), len) < len) throw WireError("connection closed mid-frame");
  return payload;
}

std::optional<std::string> FrameBuffer::Recv(int fd) {
  char scratch[16 << 10];
  for (;;) {
    const size_t avail = buf_.size() - pos_;
    if (avail >= kFrameHeaderBytes) {
      const uint32_t len = ReadFrameHeader(buf_.data() + pos_);
      if (len > kMaxFrameBytes) throw WireError("frame length exceeds kMaxFrameBytes");
      if (avail - kFrameHeaderBytes >= len) {
        std::string payload = buf_.substr(pos_ + kFrameHeaderBytes, len);
        pos_ += kFrameHeaderBytes + static_cast<size_t>(len);
        if (pos_ == buf_.size()) {
          buf_.clear();
          pos_ = 0;
          if (buf_.capacity() > (1u << 20)) buf_.shrink_to_fit();
        }
        return payload;
      }
      buf_.reserve(pos_ + kFrameHeaderBytes + len);
    }
    ssize_t n;
    do {
      n = ::recv(fd, scratch, sizeof(scratch), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw WireError(Errno("recv"));
    if (n == 0) {
      if (avail == 0) return std::nullopt;  // Clean EOF between frames.
      throw WireError("connection closed mid-frame");
    }
    // Compact lazily: only when the consumed prefix is what stops the
    // buffer from being cleared outright.
    if (pos_ > 0 && pos_ == buf_.size()) {
      buf_.clear();
      pos_ = 0;
    }
    buf_.append(scratch, static_cast<size_t>(n));
  }
}

void FrameBuffer::Reset() {
  buf_.clear();
  pos_ = 0;
}

int ListenLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = Errno("bind");
    ::close(fd);
    throw WireError(msg);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string msg = Errno("listen");
    ::close(fd);
    throw WireError(msg);
  }
  return fd;
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw WireError(Errno("getsockname"));
  }
  return ntohs(addr.sin_port);
}

int ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw WireError("invalid host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    // A signal can interrupt connect() after the SYN is in flight; the
    // attempt continues in the kernel. Retrying connect() would return
    // EALREADY/EISCONN, so the portable recovery is to wait for
    // writability and read SO_ERROR (POSIX: connect, EINTR).
    bool connected = false;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      int rc;
      do {
        rc = ::poll(&pfd, 1, /*timeout_ms=*/10000);
      } while (rc < 0 && errno == EINTR);
      int so_error = 0;
      socklen_t len = sizeof(so_error);
      if (rc > 0 &&
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) == 0 && so_error == 0) {
        connected = true;
      } else if (so_error != 0) {
        errno = so_error;
      }
    }
    if (!connected) {
      const std::string msg = Errno("connect to " + host + ":" + std::to_string(port));
      ::close(fd);
      throw WireError(msg);
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ocasta
