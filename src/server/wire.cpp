#include "server/wire.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ocasta {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(Errno("send"));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

// Returns bytes read; stops early only on EOF.
size_t ReadUpTo(int fd, char* data, size_t len) {
  size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw WireError(Errno("recv"));
    }
    if (n == 0) break;  // EOF.
    got += static_cast<size_t>(n);
  }
  return got;
}

}  // namespace

void SendFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) throw WireError("frame exceeds kMaxFrameBytes");
  char header[4];
  const auto len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  // One send for the common small-frame case keeps the op off Nagle's radar.
  std::string frame;
  frame.reserve(4 + payload.size());
  frame.append(header, 4);
  frame.append(payload);
  WriteAll(fd, frame.data(), frame.size());
}

std::optional<std::string> RecvFrame(int fd) {
  char header[4];
  const size_t got = ReadUpTo(fd, header, 4);
  if (got == 0) return std::nullopt;  // Clean EOF between frames.
  if (got < 4) throw WireError("connection closed mid-frame");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  if (len > kMaxFrameBytes) throw WireError("frame length exceeds kMaxFrameBytes");
  std::string payload(len, '\0');
  if (ReadUpTo(fd, payload.data(), len) < len) throw WireError("connection closed mid-frame");
  return payload;
}

int ListenLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError(Errno("socket"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = Errno("bind");
    ::close(fd);
    throw WireError(msg);
  }
  if (::listen(fd, backlog) < 0) {
    const std::string msg = Errno("listen");
    ::close(fd);
    throw WireError(msg);
  }
  return fd;
}

uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw WireError(Errno("getsockname"));
  }
  return ntohs(addr.sin_port);
}

int ConnectTcp(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw WireError(Errno("socket"));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw WireError("invalid host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string msg = Errno("connect to " + host + ":" + std::to_string(port));
    ::close(fd);
    throw WireError(msg);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ocasta
