// The sharded, thread-safe TTKV engine behind the ocastad daemon.
//
// The paper's TTKV runs inside one Redis server and serves many recorders
// at once; the in-process TTKV is single-threaded. This engine bridges the
// two: N independent TTKV shards (keys hashed with FNV-1a), each guarded by
// its own std::shared_mutex, so writers to different shards never contend
// AND readers of the same shard don't either: GET/GET_AT/HISTORY (and
// read-only batch groups) take shared locks, writes take exclusive ones.
// GET's read accounting happens under the shared lock with relaxed atomic
// increments (TTKV::read_latest_shared); everything that reads those
// counters non-atomically (STATS, SNAPSHOT, serialization) takes the
// exclusive lock. EngineStats reports read and write lock acquisitions
// separately. A separate mutex-striped OnlineClusterTracker observes every
// write/delete so the daemon can answer CLUSTER_NOW queries without
// replaying history.
//
// ShardedTtkv implements api::Engine natively. Single-key commands lock
// their shard once; ApplyBatch is the batched fast path: consecutive
// single-key commands are grouped by shard and each shard is locked ONCE
// for its whole group, so a batch of K commands costs at most num_shards
// lock acquisitions instead of K (shard_lock_acquisitions() and
// EngineStats::lock_acquisitions expose the count; bench_loadgen --suite
// measures the win). Grouping preserves per-key order — equal keys hash to
// the same shard and apply in batch order — but not cross-key order
// between shards; cross-shard commands (STATS, SNAPSHOT, ...) act as
// barriers within a batch.
//
// Timestamps: callers may supply explicit microsecond timestamps (trace
// replay, deterministic tests) or pass 0 to have the engine stamp the
// operation from a monotonicized wall clock. Because concurrent writers
// race between stamping and applying, timestamps are clamped per key to be
// non-decreasing (equal timestamps are legal in TTKV — the paper's traces
// are second-quantized anyway).
//
// Clustering: writes append a small pending event to their own shard (no
// cross-shard lock on the write path); the shared tracker is fed lazily —
// on CLUSTER_NOW, or when a shard's buffer fills — by merging all pending
// events in timestamp order under the tracker lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "api/types.h"
#include "clustering/online.h"
#include "common/lockdep.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {

class ShardedTtkv final : public api::Engine {
 public:
  // `metrics` (optional, must outlive the engine) turns on per-op apply
  // latency histograms, batch-size histograms, and op counters
  // (docs/OBSERVABILITY.md). Null = off: the apply path performs no clock
  // reads or metric atomics.
  explicit ShardedTtkv(size_t num_shards = 8, double cluster_window_seconds = 1.0,
                       obs::MetricsRegistry* metrics = nullptr);

  // --- api::Engine ----------------------------------------------------------
  api::Result Apply(const api::Command& cmd) override;
  std::vector<api::Result> ApplyBatch(std::span<const api::Command> cmds) override;
  const char* backend_name() const override { return "sharded"; }

  size_t num_shards() const { return shards_.size(); }
  size_t shard_of(const std::string& key) const;

  // Shard-lock acquisitions since construction (batching telemetry);
  // total = shared + exclusive.
  uint64_t shard_lock_acquisitions() const {
    return read_lock_acquisitions_.load(std::memory_order_relaxed) +
           write_lock_acquisitions_.load(std::memory_order_relaxed);
  }
  uint64_t read_lock_acquisitions() const {
    return read_lock_acquisitions_.load(std::memory_order_relaxed);
  }
  uint64_t write_lock_acquisitions() const {
    return write_lock_acquisitions_.load(std::memory_order_relaxed);
  }

  // --- Writes (t == 0 → engine-assigned monotonic wall-clock stamp) --------
  void Put(const std::string& key, Value value, TimeMicros t = 0);

  // Tombstones `key` and returns true when it had a live value. By default
  // absent or already-tombstoned keys return false without recording
  // anything (so churny blind deletes cannot bloat the store); force = true
  // records the tombstone unconditionally, matching TTKV::record_delete
  // (see api::DeleteCmd for the policy rationale).
  bool Delete(const std::string& key, TimeMicros t = 0, bool force = false);

  // --- Reads ----------------------------------------------------------------
  // Counts a read against the key's record (Table I accounting), like the
  // interception layer does.
  std::optional<Value> Get(const std::string& key);
  std::optional<Value> GetAt(const std::string& key, TimeMicros t) const;

  // Full history of one key; nullopt when the key was never written.
  std::optional<VersionedRecord> History(const std::string& key) const;

  // Keys with a live (non-tombstoned) value matching `prefix`, sorted.
  std::vector<std::string> ListKeys(const std::string& prefix) const;

  EngineStats Stats() const;

  // Merged single-TTKV snapshot of all shards, records sorted by key so the
  // result is independent of shard count. Shards are locked one at a time:
  // the snapshot is per-shard consistent, not a global point-in-time cut.
  TTKV Snapshot() const;

  // TTKV::CompactBefore across every shard; returns total versions dropped.
  size_t CompactBefore(TimeMicros horizon);

  // Splits a merged snapshot back into shards — the inverse of Snapshot(),
  // used by crash recovery (persist/durable_engine.h) and shard-count
  // migration. Every record lands in its key's shard, and the engine clock
  // advances past the newest restored timestamp so fresh engine-assigned
  // stamps never collide with restored history. The keys must be new to
  // this engine (throws StoreError otherwise), so restore into a fresh
  // instance.
  void ImportSnapshot(const TTKV& snapshot);

  // Clusters all keys observed so far (see OnlineClusterTracker).
  std::vector<NamedCluster> ClusterNow(double threshold_correlation,
                                       Linkage linkage = Linkage::kComplete) const;

 private:
  // A write/delete awaiting the shared cluster tracker (values are not
  // needed for co-modification analysis).
  struct PendingEvent {
    TimeMicros timestamp = 0;
    bool is_delete = false;
    std::string key;
  };

  struct Shard {
    // Lock order (enforced by lockdep): tracker_mu_ may be held while
    // taking a shard mutex (DrainTracker's sweep); the reverse — taking
    // tracker_mu_ under a shard mutex — is a rank violation.
    mutable lockdep::ordered_shared_mutex mu{lockdep::kShardClass};
    TTKV ttkv OCASTA_GUARDED_BY(mu);
    mutable std::vector<PendingEvent> pending OCASTA_GUARDED_BY(mu);
  };

  // Count a shard-lock acquisition and hand back the shard's mutex for a
  // lockdep guard to take. Every shard lock in this engine goes through
  // these two so the lock telemetry stays honest; OCASTA_RETURN_CAPABILITY
  // teaches the analysis the returned mutex IS shard.mu, so a guard built
  // on the return value counts as holding shard.mu. Shared locks are legal
  // only for operations whose TTKV access is read-only or
  // atomic-counter-only (see read_latest_shared).
  lockdep::ordered_shared_mutex& WriteLock(const Shard& shard) const
      OCASTA_RETURN_CAPABILITY(shard.mu);
  lockdep::ordered_shared_mutex& ReadLock(const Shard& shard) const
      OCASTA_RETURN_CAPABILITY(shard.mu);

  TimeMicros StampNow();

  // Batched analog of StampNow: reserves `count` consecutive stamps with
  // ONE CAS on the shared clock and returns the first. The per-op CAS is a
  // contended hot spot under multi-client load; a batch pays it once.
  TimeMicros StampBlock(size_t count);

  // Engine op counters accumulated during a batch and flushed with one
  // atomic add per counter per run (instead of one contended RMW per op).
  struct OpCounts {
    uint64_t puts = 0;
    uint64_t gets = 0;
    uint64_t deletes = 0;
  };
  void FlushCounts(const OpCounts& counts);

  // --- Cores that assume the shard mutex is held ---------------------------
  // Return true when the shard's pending buffer crossed the drain
  // threshold (the caller drains after releasing the lock).
  bool PutLocked(Shard& shard, const std::string& key, Value value, TimeMicros t)
      OCASTA_REQUIRES(shard.mu);
  struct DeleteOutcome {
    bool existed = false;
    bool recorded = false;
    bool need_drain = false;
  };
  DeleteOutcome DeleteLocked(Shard& shard, const std::string& key, TimeMicros t, bool force)
      OCASTA_REQUIRES(shard.mu);

  // Applies one mutating single-key command (Put/Delete) to its shard with
  // the shard mutex held exclusively; never throws. `need_drain` is OR-ed
  // and op counters accumulate into `counts` (the caller flushes).
  // `assigned_stamp` is the pre-reserved stamp for a timestamp-0 write (0 =
  // reserve one now via StampNow).
  api::Result ApplyWriteLocked(Shard& shard, const api::Command& cmd, bool* need_drain,
                               TimeMicros assigned_stamp, OpCounts* counts)
      OCASTA_REQUIRES(shard.mu);

  // Applies one read command (Get/GetAt/History) with the shard mutex held
  // at least shared (an exclusive hold satisfies it too — mixed batch
  // groups run reads under the exclusive lock); never throws.
  api::Result ApplyReadLocked(Shard& shard, const api::Command& cmd, OpCounts* counts)
      OCASTA_REQUIRES_SHARED(shard.mu);

  // One grouped single-key command of a batch: its shard, its index in the
  // batch, and its pre-reserved engine stamp. During collection `stamp` is
  // a flag (1 = the command needs an engine-assigned timestamp); the flush
  // rewrites it with the reserved stamp. `is_read` propagates shared-lock
  // eligibility so an all-reads shard group can take the shared lock.
  struct RunEntry {
    uint32_t shard = 0;
    uint32_t index = 0;
    TimeMicros stamp = 0;
    bool is_read = false;
  };

  // Apply one shard's group of a batch run with its mutex held (ApplyBatch
  // takes the lock once per group — the batching win). The exclusive
  // flavor dispatches each entry on is_read; the shared flavor is
  // reads-only by construction.
  void ApplyGroupExclusive(Shard& shard, std::span<const RunEntry> entries,
                           std::span<const api::Command> cmds,
                           std::vector<api::Result>* results, bool* need_drain,
                           OpCounts* counts) OCASTA_REQUIRES(shard.mu);
  void ApplyGroupShared(Shard& shard, std::span<const RunEntry> entries,
                        std::span<const api::Command> cmds,
                        std::vector<api::Result>* results, OpCounts* counts)
      OCASTA_REQUIRES_SHARED(shard.mu);

  // Moves every shard's pending events into the tracker, merged in
  // timestamp order. Takes tracker_mu_ then each shard mutex in turn;
  // writers never hold a shard mutex while taking tracker_mu_. This
  // ordering is machine-checked: lockdep ranks kTrackerClass below
  // kShardClass, so the inverted acquisition aborts in debug builds
  // (tests/lockdep_test.cpp proves it does).
  void DrainTracker() const OCASTA_EXCLUDES(tracker_mu_);

  std::vector<std::unique_ptr<Shard>> shards_;

  // Monotonicized wall clock shared by all shards.
  std::atomic<int64_t> clock_{0};

  std::atomic<uint64_t> puts_{0};
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> deletes_{0};
  mutable std::atomic<uint64_t> read_lock_acquisitions_{0};
  mutable std::atomic<uint64_t> write_lock_acquisitions_{0};

  // Optional instrumentation; all pointers null when metrics are off. The
  // obs op counters are incremented at exactly the sites that bump
  // puts_/gets_/deletes_, so in a quiesced engine
  // ocasta_engine_ops_total{op=...} equals the EngineStats counters (this
  // equality is tested). The histogram array is indexed by CommandOp
  // variant index.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* ctr_puts_ = nullptr;
  obs::Counter* ctr_gets_ = nullptr;
  obs::Counter* ctr_deletes_ = nullptr;
  std::array<obs::LatencyHistogram*, std::variant_size_v<api::CommandOp>> op_hist_{};
  obs::LatencyHistogram* batch_hist_ = nullptr;

  mutable lockdep::ordered_mutex tracker_mu_{lockdep::kTrackerClass};
  mutable OnlineClusterTracker tracker_ OCASTA_GUARDED_BY(tracker_mu_);
  mutable TimeMicros tracker_last_ OCASTA_GUARDED_BY(tracker_mu_) = 0;
};

}  // namespace ocasta
