// The sharded, thread-safe TTKV engine behind the ocastad daemon.
//
// The paper's TTKV runs inside one Redis server and serves many recorders
// at once; the in-process TTKV is single-threaded. This engine bridges the
// two: N independent TTKV shards (keys hashed with FNV-1a), each guarded by
// its own mutex, so writers to different shards never contend. A separate
// mutex-striped OnlineClusterTracker observes every write/delete so the
// daemon can answer CLUSTER_NOW queries without replaying history.
//
// Timestamps: callers may supply explicit microsecond timestamps (trace
// replay, deterministic tests) or pass 0 to have the engine stamp the
// operation from a monotonicized wall clock. Because concurrent writers
// race between stamping and applying, timestamps are clamped per key to be
// non-decreasing (equal timestamps are legal in TTKV — the paper's traces
// are second-quantized anyway).
//
// Clustering: writes append a small pending event to their own shard (no
// cross-shard lock on the write path); the shared tracker is fed lazily —
// on CLUSTER_NOW, or when a shard's buffer fills — by merging all pending
// events in timestamp order under the tracker lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "clustering/online.h"
#include "common/time.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {

// Cross-shard aggregate statistics (TtkvStats plus engine counters).
struct EngineStats {
  TtkvStats ttkv;
  size_t num_shards = 0;
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
};

// ClusterNow output: clusters reference keys by name because the tracker's
// dense ids are engine-internal.
struct NamedCluster {
  std::vector<std::string> keys;
  uint64_t version_count = 0;
  TimeMicros last_modified = 0;
};

class ShardedTtkv {
 public:
  explicit ShardedTtkv(size_t num_shards = 8, double cluster_window_seconds = 1.0);

  size_t num_shards() const { return shards_.size(); }
  size_t shard_of(const std::string& key) const;

  // --- Writes (t == 0 → engine-assigned monotonic wall-clock stamp) --------
  void Put(const std::string& key, Value value, TimeMicros t = 0);

  // Tombstones `key` and returns true when it had a live value; absent or
  // already-deleted keys return false without recording anything (so churny
  // blind deletes cannot bloat the store).
  bool Delete(const std::string& key, TimeMicros t = 0);

  // --- Reads ----------------------------------------------------------------
  // Counts a read against the key's record (Table I accounting), like the
  // interception layer does.
  std::optional<Value> Get(const std::string& key);
  std::optional<Value> GetAt(const std::string& key, TimeMicros t) const;

  // Full history of one key; nullopt when the key was never written.
  std::optional<VersionedRecord> History(const std::string& key) const;

  // Keys with a live (non-tombstoned) value matching `prefix`, sorted.
  std::vector<std::string> ListKeys(const std::string& prefix) const;

  EngineStats Stats() const;

  // Merged single-TTKV snapshot of all shards, records sorted by key so the
  // result is independent of shard count. Shards are locked one at a time:
  // the snapshot is per-shard consistent, not a global point-in-time cut.
  TTKV Snapshot() const;

  // TTKV::CompactBefore across every shard; returns total versions dropped.
  size_t CompactBefore(TimeMicros horizon);

  // Clusters all keys observed so far (see OnlineClusterTracker).
  std::vector<NamedCluster> ClusterNow(double threshold_correlation,
                                       Linkage linkage = Linkage::kComplete) const;

 private:
  // A write/delete awaiting the shared cluster tracker (values are not
  // needed for co-modification analysis).
  struct PendingEvent {
    TimeMicros timestamp = 0;
    bool is_delete = false;
    std::string key;
  };

  struct Shard {
    mutable std::mutex mu;
    TTKV ttkv;                                  // Guarded by mu.
    mutable std::vector<PendingEvent> pending;  // Guarded by mu.
  };

  TimeMicros StampNow();

  // Moves every shard's pending events into the tracker, merged in
  // timestamp order. Takes tracker_mu_ then each shard mutex in turn;
  // writers never hold a shard mutex while taking tracker_mu_.
  void DrainTracker() const;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Monotonicized wall clock shared by all shards.
  std::atomic<int64_t> clock_{0};

  std::atomic<uint64_t> puts_{0};
  std::atomic<uint64_t> gets_{0};
  std::atomic<uint64_t> deletes_{0};

  mutable std::mutex tracker_mu_;
  mutable OnlineClusterTracker tracker_;   // Guarded by tracker_mu_.
  mutable TimeMicros tracker_last_ = 0;    // Guarded by tracker_mu_.
};

}  // namespace ocasta
