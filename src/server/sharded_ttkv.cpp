#include "server/sharded_ttkv.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"

namespace ocasta {

ShardedTtkv::ShardedTtkv(size_t num_shards, double cluster_window_seconds,
                         obs::MetricsRegistry* metrics)
    : metrics_(metrics), tracker_(cluster_window_seconds, /*quantize_to_seconds=*/false) {
  if (num_shards == 0) throw Error("ShardedTtkv needs at least one shard");
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
  // Same metric names + labels as LocalEngine (docs/OBSERVABILITY.md).
  if (metrics_ != nullptr) {
    ctr_puts_ = &metrics_->GetCounter("ocasta_engine_ops_total", {{"op", "put"}});
    ctr_gets_ = &metrics_->GetCounter("ocasta_engine_ops_total", {{"op", "get"}});
    ctr_deletes_ = &metrics_->GetCounter("ocasta_engine_ops_total", {{"op", "delete"}});
    auto hist = [this](const char* op) {
      return &metrics_->GetHistogram("ocasta_engine_apply_ns", {{"op", op}});
    };
    op_hist_[api::CommandOp(api::PutCmd{}).index()] = hist("put");
    op_hist_[api::CommandOp(api::GetCmd{}).index()] = hist("get");
    op_hist_[api::CommandOp(api::DeleteCmd{}).index()] = hist("delete");
    op_hist_[api::CommandOp(api::GetAtCmd{}).index()] = hist("get_at");
    op_hist_[api::CommandOp(api::HistoryCmd{}).index()] = hist("history");
    batch_hist_ = &metrics_->GetHistogram("ocasta_engine_batch_commands");
  }
}

size_t ShardedTtkv::shard_of(const std::string& key) const {
  return Fnv1a(key) % shards_.size();
}

lockdep::ordered_shared_mutex& ShardedTtkv::WriteLock(const Shard& shard) const {
  write_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return shard.mu;
}

lockdep::ordered_shared_mutex& ShardedTtkv::ReadLock(const Shard& shard) const {
  read_lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return shard.mu;
}

TimeMicros ShardedTtkv::StampNow() { return StampBlock(1); }

TimeMicros ShardedTtkv::StampBlock(size_t count) {
  const int64_t wall = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  const auto span = static_cast<int64_t>(count);
  int64_t prev = clock_.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = std::max(wall, prev + 1) + span - 1;
  } while (!clock_.compare_exchange_weak(prev, next, std::memory_order_relaxed));
  return next - span + 1;
}

void ShardedTtkv::FlushCounts(const OpCounts& counts) {
  if (counts.puts != 0) {
    puts_.fetch_add(counts.puts, std::memory_order_relaxed);
    if (ctr_puts_ != nullptr) ctr_puts_->Inc(counts.puts);
  }
  if (counts.gets != 0) {
    gets_.fetch_add(counts.gets, std::memory_order_relaxed);
    if (ctr_gets_ != nullptr) ctr_gets_->Inc(counts.gets);
  }
  if (counts.deletes != 0) {
    deletes_.fetch_add(counts.deletes, std::memory_order_relaxed);
    if (ctr_deletes_ != nullptr) ctr_deletes_->Inc(counts.deletes);
  }
}

namespace {

// Per-shard pending-event cap: beyond this the writing thread triggers a
// global drain so an un-queried daemon's buffers stay bounded.
constexpr size_t kPendingDrainThreshold = 8192;

// Shard routing key + stamp need of a single-key command, resolved with a
// single variant inspection; key == nullptr for cross-shard commands. The
// ONE table defining "single-key command" — Apply and ApplyBatch both
// route through it. `is_read` marks commands eligible for a SHARED shard
// lock (no TTKV mutation beyond atomic read counters).
struct KeyInfo {
  const std::string* key = nullptr;
  bool needs_stamp = false;
  bool is_read = false;
};

KeyInfo KeyInfoOf(const api::Command& cmd) {
  if (const auto* put = std::get_if<api::PutCmd>(&cmd.op)) {
    return {&put->key, put->timestamp == 0, false};
  }
  if (const auto* del = std::get_if<api::DeleteCmd>(&cmd.op)) {
    return {&del->key, del->timestamp == 0, false};
  }
  if (const auto* get = std::get_if<api::GetCmd>(&cmd.op)) return {&get->key, false, true};
  if (const auto* get_at = std::get_if<api::GetAtCmd>(&cmd.op)) {
    return {&get_at->key, false, true};
  }
  if (const auto* history = std::get_if<api::HistoryCmd>(&cmd.op)) {
    return {&history->key, false, true};
  }
  return {};
}

// Copies a record under a SHARED lock: read_count may be concurrently
// bumped by read_latest_shared's atomic increment, so it is loaded
// atomically instead of through the (racy) default copy constructor.
VersionedRecord CopyRecordShared(const VersionedRecord& rec) {
  VersionedRecord out;
  out.key = rec.key;
  out.versions = rec.versions;
  out.write_count = rec.write_count;
  out.delete_count = rec.delete_count;
  out.read_count = std::atomic_ref<uint64_t>(const_cast<VersionedRecord&>(rec).read_count)
                       .load(std::memory_order_relaxed);
  return out;
}

}  // namespace

void ShardedTtkv::DrainTracker() const {
  const lockdep::guard tracker_lock(tracker_mu_);
  std::vector<PendingEvent> events;
  for (const auto& shard : shards_) {
    const lockdep::writer_guard lock(WriteLock(*shard));
    if (events.empty()) {
      events = std::move(shard->pending);
    } else {
      events.insert(events.end(), std::make_move_iterator(shard->pending.begin()),
                    std::make_move_iterator(shard->pending.end()));
    }
    shard->pending.clear();
  }
  // Deterministic global order: by timestamp, keys break ties.
  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                                       : a.key < b.key;
                   });
  for (PendingEvent& event : events) {
    // Clamp across drains: a write stamped before an earlier drain's newest
    // event must not move the tracker backwards.
    const TimeMicros t = event.timestamp < tracker_last_ ? tracker_last_ : event.timestamp;
    tracker_last_ = t;
    tracker_.OnAccess(AccessEvent{.timestamp = t,
                                  .app = "ocastad",
                                  .store = StoreKind::kGconf,
                                  .op = event.is_delete ? AccessOp::kDelete : AccessOp::kWrite,
                                  .key = std::move(event.key),
                                  .value = Value()});
  }
}

bool ShardedTtkv::PutLocked(Shard& shard, const std::string& key, Value value, TimeMicros t) {
  // The clamped write resolves the key's record once; explicit timestamps
  // older than the key's newest version are clamped up (concurrent writers
  // race between stamping and locking, and TTKV only needs per-key order).
  const TimeMicros applied = shard.ttkv.record_write_clamped(key, std::move(value), t);
  shard.pending.push_back(PendingEvent{.timestamp = applied, .is_delete = false, .key = key});
  return shard.pending.size() >= kPendingDrainThreshold;
}

ShardedTtkv::DeleteOutcome ShardedTtkv::DeleteLocked(Shard& shard, const std::string& key,
                                                     TimeMicros t, bool force) {
  DeleteOutcome out;
  const VersionedRecord* rec = shard.ttkv.find(key);
  out.existed = rec != nullptr && rec->latest().has_value();
  out.recorded = out.existed || force;
  if (!out.recorded) return out;
  const TimeMicros applied = shard.ttkv.record_delete_clamped(key, t);
  shard.pending.push_back(PendingEvent{.timestamp = applied, .is_delete = true, .key = key});
  out.need_drain = shard.pending.size() >= kPendingDrainThreshold;
  return out;
}

void ShardedTtkv::Put(const std::string& key, Value value, TimeMicros t) {
  if (key.empty()) throw StoreError("empty key");
  if (t == 0) t = StampNow();
  Shard& shard = *shards_[shard_of(key)];
  bool need_drain;
  {
    const lockdep::writer_guard lock(WriteLock(shard));
    need_drain = PutLocked(shard, key, std::move(value), t);
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  if (ctr_puts_ != nullptr) ctr_puts_->Inc();
  if (need_drain) DrainTracker();
}

bool ShardedTtkv::Delete(const std::string& key, TimeMicros t, bool force) {
  if (key.empty()) throw StoreError("empty key");
  if (t == 0) t = StampNow();
  Shard& shard = *shards_[shard_of(key)];
  DeleteOutcome out;
  {
    const lockdep::writer_guard lock(WriteLock(shard));
    out = DeleteLocked(shard, key, t, force);
  }
  if (out.recorded) {
    deletes_.fetch_add(1, std::memory_order_relaxed);
    if (ctr_deletes_ != nullptr) ctr_deletes_->Inc();
  }
  if (out.need_drain) DrainTracker();
  return out.existed;
}

std::optional<Value> ShardedTtkv::Get(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  const lockdep::reader_guard lock(ReadLock(shard));
  gets_.fetch_add(1, std::memory_order_relaxed);
  if (ctr_gets_ != nullptr) ctr_gets_->Inc();
  return shard.ttkv.read_latest_shared(key);
}

std::optional<Value> ShardedTtkv::GetAt(const std::string& key, TimeMicros t) const {
  const Shard& shard = *shards_[shard_of(key)];
  const lockdep::reader_guard lock(ReadLock(shard));
  const VersionedRecord* rec = shard.ttkv.find(key);
  if (rec == nullptr) return std::nullopt;
  return rec->value_at(t);
}

std::optional<VersionedRecord> ShardedTtkv::History(const std::string& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  const lockdep::reader_guard lock(ReadLock(shard));
  const VersionedRecord* rec = shard.ttkv.find(key);
  if (rec == nullptr) return std::nullopt;
  return CopyRecordShared(*rec);
}

std::vector<std::string> ShardedTtkv::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    const lockdep::writer_guard lock(WriteLock(*shard));
    for (uint32_t id = 0; id < shard->ttkv.num_keys(); ++id) {
      const VersionedRecord& rec = shard->ttkv.record(id);
      if (StartsWith(rec.key, prefix) && rec.latest().has_value()) keys.push_back(rec.key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

EngineStats ShardedTtkv::Stats() const {
  EngineStats out;
  out.num_shards = shards_.size();
  out.puts = puts_.load(std::memory_order_relaxed);
  out.gets = gets_.load(std::memory_order_relaxed);
  out.deletes = deletes_.load(std::memory_order_relaxed);
  out.read_lock_acquisitions = read_lock_acquisitions();
  out.write_lock_acquisitions = write_lock_acquisitions();
  out.lock_acquisitions = out.read_lock_acquisitions + out.write_lock_acquisitions;
  for (const auto& shard : shards_) {
    const lockdep::writer_guard lock(WriteLock(*shard));
    const TtkvStats s = shard->ttkv.stats();
    out.ttkv.reads += s.reads;
    out.ttkv.writes += s.writes;
    out.ttkv.deletes += s.deletes;
    out.ttkv.num_keys += s.num_keys;
    out.ttkv.size_bytes += s.size_bytes;
  }
  return out;
}

TTKV ShardedTtkv::Snapshot() const {
  std::vector<VersionedRecord> records;
  for (const auto& shard : shards_) {
    const lockdep::writer_guard lock(WriteLock(*shard));
    for (uint32_t id = 0; id < shard->ttkv.num_keys(); ++id) {
      records.push_back(shard->ttkv.record(id));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const VersionedRecord& a, const VersionedRecord& b) { return a.key < b.key; });
  TTKV merged;
  for (VersionedRecord& rec : records) merged.ImportRecord(std::move(rec));
  return merged;
}

void ShardedTtkv::ImportSnapshot(const TTKV& snapshot) {
  // Group records by shard and lock each shard ONCE — the same shape as
  // ApplyBatch's grouped locking, and it keeps the lock_acquisitions
  // telemetry from starting N high on a freshly recovered engine.
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  TimeMicros newest = 0;
  for (uint32_t id = 0; id < snapshot.num_keys(); ++id) {
    const VersionedRecord& rec = snapshot.record(id);
    by_shard[shard_of(rec.key)].push_back(id);
    newest = std::max(newest, rec.last_modified());
  }
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    const lockdep::writer_guard lock(WriteLock(shard));
    for (uint32_t id : by_shard[s]) shard.ttkv.ImportRecord(snapshot.record(id));
  }
  int64_t prev = clock_.load(std::memory_order_relaxed);
  while (prev < newest && !clock_.compare_exchange_weak(prev, newest, std::memory_order_relaxed)) {
  }
}

size_t ShardedTtkv::CompactBefore(TimeMicros horizon) {
  size_t dropped = 0;
  for (const auto& shard : shards_) {
    const lockdep::writer_guard lock(WriteLock(*shard));
    dropped += shard->ttkv.CompactBefore(horizon);
  }
  return dropped;
}

std::vector<NamedCluster> ShardedTtkv::ClusterNow(double threshold_correlation,
                                                  Linkage linkage) const {
  DrainTracker();
  const lockdep::guard lock(tracker_mu_);
  const ClusterSet set = tracker_.ClusterNow(threshold_correlation, linkage);
  std::vector<NamedCluster> out;
  out.reserve(set.size());
  for (const KeyCluster& cluster : set.clusters()) {
    NamedCluster named;
    named.version_count = cluster.version_count;
    named.last_modified = cluster.last_modified;
    named.keys.reserve(cluster.keys.size());
    for (uint32_t id : cluster.keys) named.keys.push_back(tracker_.key_names()[id]);
    out.push_back(std::move(named));
  }
  return out;
}

// --- api::Engine ------------------------------------------------------------

api::Result ShardedTtkv::ApplyWriteLocked(Shard& shard, const api::Command& cmd,
                                          bool* need_drain, TimeMicros assigned_stamp,
                                          OpCounts* counts) {
  try {
    if (const auto* put = std::get_if<api::PutCmd>(&cmd.op)) {
      if (put->key.empty()) throw StoreError("empty key");
      const TimeMicros t = put->timestamp != 0 ? put->timestamp
                           : assigned_stamp != 0 ? assigned_stamp
                                                 : StampNow();
      *need_drain |= PutLocked(shard, put->key, put->value, t);
      ++counts->puts;
      return api::OkResult{};
    }
    if (const auto* del = std::get_if<api::DeleteCmd>(&cmd.op)) {
      if (del->key.empty()) throw StoreError("empty key");
      const TimeMicros t = del->timestamp != 0 ? del->timestamp
                           : assigned_stamp != 0 ? assigned_stamp
                                                 : StampNow();
      const DeleteOutcome out = DeleteLocked(shard, del->key, t, del->force);
      *need_drain |= out.need_drain;
      if (out.recorded) ++counts->deletes;
      return api::ExistedResult{out.existed};
    }
    throw Error("ApplyWriteLocked on a non-mutating command");
  } catch (const Error& e) {
    return api::ErrorResult{e.what()};
  }
}

api::Result ShardedTtkv::ApplyReadLocked(Shard& shard, const api::Command& cmd,
                                         OpCounts* counts) {
  try {
    if (const auto* get = std::get_if<api::GetCmd>(&cmd.op)) {
      ++counts->gets;
      // Safe under shared OR exclusive locks (atomic read accounting).
      return api::ValueResult{shard.ttkv.read_latest_shared(get->key)};
    }
    if (const auto* get_at = std::get_if<api::GetAtCmd>(&cmd.op)) {
      const VersionedRecord* rec = shard.ttkv.find(get_at->key);
      api::ValueResult res;
      if (rec != nullptr) res.value = rec->value_at(get_at->timestamp);
      return res;
    }
    if (const auto* history = std::get_if<api::HistoryCmd>(&cmd.op)) {
      const VersionedRecord* rec = shard.ttkv.find(history->key);
      if (rec == nullptr) return api::HistoryResult{};
      return api::HistoryResult{CopyRecordShared(*rec)};
    }
    throw Error("ApplyReadLocked on a non-read command");
  } catch (const Error& e) {
    return api::ErrorResult{e.what()};
  }
}

api::Result ShardedTtkv::Apply(const api::Command& cmd) {
  const KeyInfo info = KeyInfoOf(cmd);
  if (info.key != nullptr) {
    Shard& shard = *shards_[shard_of(*info.key)];
    bool need_drain = false;
    OpCounts counts;
    api::Result result;
    // Apply latency includes the shard-lock wait — that is the latency a
    // client actually observes under contention. Latency is sampled
    // (1-in-N, see obs::HotPathSampler): the clock reads cost more than
    // the apply itself; the op counters stay exact.
    obs::LatencyHistogram* h = op_hist_[cmd.op.index()];
    thread_local obs::HotPathSampler sample;
    const bool timed = h != nullptr && sample();
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    if (info.is_read) {
      const lockdep::reader_guard lock(ReadLock(shard));
      result = ApplyReadLocked(shard, cmd, &counts);
    } else {
      const lockdep::writer_guard lock(WriteLock(shard));
      result = ApplyWriteLocked(shard, cmd, &need_drain, 0, &counts);
    }
    if (timed) {
      h->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    FlushCounts(counts);
    if (need_drain) DrainTracker();
    return result;
  }

  try {
    if (std::holds_alternative<api::PingCmd>(cmd.op)) return api::OkResult{};
    if (std::holds_alternative<api::StatsCmd>(cmd.op)) return api::StatsResult{Stats()};
    if (const auto* list = std::get_if<api::ListKeysCmd>(&cmd.op)) {
      return api::KeysResult{ListKeys(list->prefix)};
    }
    if (std::holds_alternative<api::SnapshotCmd>(cmd.op)) {
      return api::SnapshotResult{Snapshot()};
    }
    if (const auto* compact = std::get_if<api::CompactCmd>(&cmd.op)) {
      return api::CompactResult{CompactBefore(compact->horizon)};
    }
    if (const auto* cluster = std::get_if<api::ClusterNowCmd>(&cmd.op)) {
      return api::ClustersResult{ClusterNow(cluster->threshold_correlation, cluster->linkage)};
    }
    // The engine has no connections to drain; the server recognizes
    // top-level SHUTDOWN itself.
    if (std::holds_alternative<api::ShutdownCmd>(cmd.op)) return api::OkResult{};
    if (std::holds_alternative<api::MetricsCmd>(cmd.op)) {
      api::MetricsResult res;
      if (metrics_ != nullptr) res.snapshot = metrics_->Snapshot();
      return res;
    }
    if (const auto* batch = std::get_if<api::BatchCmd>(&cmd.op)) {
      return api::BatchResult{ApplyBatch(std::span(batch->commands))};
    }
    // Replication ops are daemon-level: the server answers them before
    // engine dispatch when a WAL exists (see TtkvServer::HandleRequest).
    if (std::holds_alternative<api::ReplicateCmd>(cmd.op)) {
      throw Error("REPLICATE requires a durable daemon (--data-dir)");
    }
    if (std::holds_alternative<api::PromoteCmd>(cmd.op)) {
      throw Error("PROMOTE requires a daemon started as a follower");
    }
    throw Error("unhandled command");
  } catch (const Error& e) {
    return api::ErrorResult{e.what()};
  }
}

void ShardedTtkv::ApplyGroupExclusive(Shard& shard, std::span<const RunEntry> entries,
                                      std::span<const api::Command> cmds,
                                      std::vector<api::Result>* results, bool* need_drain,
                                      OpCounts* counts) {
  for (const RunEntry& entry : entries) {
    const api::Command& sub = cmds[entry.index];
    obs::LatencyHistogram* h = op_hist_[sub.op.index()];
    thread_local obs::HotPathSampler sample;
    const bool timed = h != nullptr && sample();
    // Per-op time inside the group: the grouped lock is already held, so
    // this is pure apply cost (lock amortization is the batch's win and is
    // visible in ocasta_engine_batch_commands).
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    // An exclusive hold satisfies the read path's shared requirement, so a
    // mixed group dispatches per entry.
    (*results)[entry.index] =
        entry.is_read ? ApplyReadLocked(shard, sub, counts)
                      : ApplyWriteLocked(shard, sub, need_drain, entry.stamp, counts);
    if (timed) {
      h->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  }
}

void ShardedTtkv::ApplyGroupShared(Shard& shard, std::span<const RunEntry> entries,
                                   std::span<const api::Command> cmds,
                                   std::vector<api::Result>* results, OpCounts* counts) {
  for (const RunEntry& entry : entries) {
    const api::Command& sub = cmds[entry.index];
    obs::LatencyHistogram* h = op_hist_[sub.op.index()];
    thread_local obs::HotPathSampler sample;
    const bool timed = h != nullptr && sample();
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    (*results)[entry.index] = ApplyReadLocked(shard, sub, counts);
    if (timed) {
      h->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
  }
}

std::vector<api::Result> ShardedTtkv::ApplyBatch(std::span<const api::Command> cmds) {
  if (batch_hist_ != nullptr) batch_hist_->Record(cmds.size());
  std::vector<api::Result> results(cmds.size());
  // The run of consecutive single-key commands currently being grouped.
  // All grouping work — hashing, stamp reservation, sorting — happens out
  // here, outside any lock; each shard mutex is then held only while its
  // own commands apply. The per-op contended atomics are amortized too:
  // one StampBlock CAS reserves every engine-assigned timestamp in the run
  // (assigned in batch order, so per-key stamps stay monotonic), and op
  // counters flush once per run.
  std::vector<RunEntry> run;
  size_t stamps_needed = 0;
  bool need_drain = false;

  const auto flush_run = [&] {
    if (run.empty()) return;
    OpCounts counts;
    if (stamps_needed > 0) {
      TimeMicros stamp = StampBlock(stamps_needed);
      for (RunEntry& entry : run) {
        if (entry.stamp != 0) entry.stamp = stamp++;
      }
      stamps_needed = 0;
    }
    // Sorting on (shard, batch index) groups by shard while keeping
    // same-shard commands in original batch order (same key → same shard,
    // so per-key order is preserved) — equivalent to a stable sort by
    // shard, without stable_sort's temporary buffer allocation.
    std::sort(run.begin(), run.end(), [](const RunEntry& a, const RunEntry& b) {
      return a.shard != b.shard ? a.shard < b.shard : a.index < b.index;
    });
    for (size_t j = 0; j < run.size();) {
      const uint32_t sid = run[j].shard;
      Shard& shard = *shards_[sid];
      // A shard group whose commands are ALL reads takes the shared lock,
      // so read-heavy batches from different connections overlap on the
      // same shard; one write in the group forces exclusive.
      size_t end = j;
      bool all_reads = true;
      for (; end < run.size() && run[end].shard == sid; ++end) all_reads &= run[end].is_read;
      const std::span<const RunEntry> group(run.data() + j, end - j);
      if (all_reads) {
        const lockdep::reader_guard lock(ReadLock(shard));
        ApplyGroupShared(shard, group, cmds, &results, &counts);
      } else {
        const lockdep::writer_guard lock(WriteLock(shard));
        ApplyGroupExclusive(shard, group, cmds, &results, &need_drain, &counts);
      }
      j = end;
    }
    // Counters flush per run so a barrier command (e.g. STATS) observes
    // every grouped command before it.
    FlushCounts(counts);
    run.clear();
  };

  for (size_t i = 0; i < cmds.size(); ++i) {
    const KeyInfo info = KeyInfoOf(cmds[i]);
    if (info.key != nullptr) {
      run.push_back(RunEntry{.shard = static_cast<uint32_t>(shard_of(*info.key)),
                             .index = static_cast<uint32_t>(i),
                             .stamp = info.needs_stamp ? 1 : 0,
                             .is_read = info.is_read});
      stamps_needed += info.needs_stamp ? 1 : 0;
      continue;
    }
    // Cross-shard command: it must observe every grouped command before it
    // in the batch, so flush the run first (a barrier).
    flush_run();
    results[i] = Apply(cmds[i]);
  }
  flush_run();

  if (need_drain) DrainTracker();
  return results;
}

}  // namespace ocasta
