#include "server/sharded_ttkv.h"

#include <algorithm>
#include <chrono>

#include "common/error.h"
#include "common/hash.h"
#include "common/strings.h"

namespace ocasta {

ShardedTtkv::ShardedTtkv(size_t num_shards, double cluster_window_seconds)
    : tracker_(cluster_window_seconds, /*quantize_to_seconds=*/false) {
  if (num_shards == 0) throw Error("ShardedTtkv needs at least one shard");
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

size_t ShardedTtkv::shard_of(const std::string& key) const {
  return Fnv1a(key) % shards_.size();
}

TimeMicros ShardedTtkv::StampNow() {
  const int64_t wall = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  int64_t prev = clock_.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = std::max(wall, prev + 1);
  } while (!clock_.compare_exchange_weak(prev, next, std::memory_order_relaxed));
  return next;
}

namespace {

// Per-shard pending-event cap: beyond this the writing thread triggers a
// global drain so an un-queried daemon's buffers stay bounded.
constexpr size_t kPendingDrainThreshold = 8192;

}  // namespace

void ShardedTtkv::DrainTracker() const {
  std::lock_guard<std::mutex> tracker_lock(tracker_mu_);
  std::vector<PendingEvent> events;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (events.empty()) {
      events = std::move(shard->pending);
    } else {
      events.insert(events.end(), std::make_move_iterator(shard->pending.begin()),
                    std::make_move_iterator(shard->pending.end()));
    }
    shard->pending.clear();
  }
  // Deterministic global order: by timestamp, keys break ties.
  std::stable_sort(events.begin(), events.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.timestamp != b.timestamp ? a.timestamp < b.timestamp
                                                       : a.key < b.key;
                   });
  for (PendingEvent& event : events) {
    // Clamp across drains: a write stamped before an earlier drain's newest
    // event must not move the tracker backwards.
    const TimeMicros t = event.timestamp < tracker_last_ ? tracker_last_ : event.timestamp;
    tracker_last_ = t;
    tracker_.OnAccess(AccessEvent{.timestamp = t,
                                  .app = "ocastad",
                                  .store = StoreKind::kGconf,
                                  .op = event.is_delete ? AccessOp::kDelete : AccessOp::kWrite,
                                  .key = std::move(event.key),
                                  .value = Value()});
  }
}

namespace {

// Clamp floor for one key: concurrent writers race between stamping and
// acquiring the shard lock, so an op's timestamp may be older than the
// key's newest version. TTKV only requires per-key monotonicity (equal is
// fine); clamping to the key's own last version keeps explicit timestamps
// of other keys untouched.
TimeMicros ClampToKey(const TTKV& ttkv, const std::string& key, TimeMicros t) {
  if (!ttkv.contains(key)) return t;
  const TimeMicros last = ttkv.record(key).last_modified();
  return t < last ? last : t;
}

}  // namespace

void ShardedTtkv::Put(const std::string& key, Value value, TimeMicros t) {
  if (key.empty()) throw StoreError("empty key");
  if (t == 0) t = StampNow();
  Shard& shard = *shards_[shard_of(key)];
  bool need_drain;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const TimeMicros applied = ClampToKey(shard.ttkv, key, t);
    shard.ttkv.record_write(key, std::move(value), applied);
    shard.pending.push_back(PendingEvent{.timestamp = applied, .is_delete = false, .key = key});
    need_drain = shard.pending.size() >= kPendingDrainThreshold;
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  if (need_drain) DrainTracker();
}

bool ShardedTtkv::Delete(const std::string& key, TimeMicros t) {
  if (key.empty()) throw StoreError("empty key");
  if (t == 0) t = StampNow();
  Shard& shard = *shards_[shard_of(key)];
  bool need_drain;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.ttkv.contains(key) || !shard.ttkv.latest(key).has_value()) return false;
    const TimeMicros applied = ClampToKey(shard.ttkv, key, t);
    shard.ttkv.record_delete(key, applied);
    shard.pending.push_back(PendingEvent{.timestamp = applied, .is_delete = true, .key = key});
    need_drain = shard.pending.size() >= kPendingDrainThreshold;
  }
  deletes_.fetch_add(1, std::memory_order_relaxed);
  if (need_drain) DrainTracker();
  return true;
}

std::optional<Value> ShardedTtkv::Get(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  gets_.fetch_add(1, std::memory_order_relaxed);
  if (!shard.ttkv.contains(key)) return std::nullopt;
  shard.ttkv.record_read(key, 0);
  return shard.ttkv.latest(key);
}

std::optional<Value> ShardedTtkv::GetAt(const std::string& key, TimeMicros t) const {
  const Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.ttkv.value_at(key, t);
}

std::optional<VersionedRecord> ShardedTtkv::History(const std::string& key) const {
  const Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (!shard.ttkv.contains(key)) return std::nullopt;
  return shard.ttkv.record(key);
}

std::vector<std::string> ShardedTtkv::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const std::string& key : shard->ttkv.key_names()) {
      if (StartsWith(key, prefix) && shard->ttkv.latest(key).has_value()) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

EngineStats ShardedTtkv::Stats() const {
  EngineStats out;
  out.num_shards = shards_.size();
  out.puts = puts_.load(std::memory_order_relaxed);
  out.gets = gets_.load(std::memory_order_relaxed);
  out.deletes = deletes_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const TtkvStats s = shard->ttkv.stats();
    out.ttkv.reads += s.reads;
    out.ttkv.writes += s.writes;
    out.ttkv.deletes += s.deletes;
    out.ttkv.num_keys += s.num_keys;
    out.ttkv.size_bytes += s.size_bytes;
  }
  return out;
}

TTKV ShardedTtkv::Snapshot() const {
  std::vector<VersionedRecord> records;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const std::string& key : shard->ttkv.key_names()) {
      records.push_back(shard->ttkv.record(key));
    }
  }
  std::sort(records.begin(), records.end(),
            [](const VersionedRecord& a, const VersionedRecord& b) { return a.key < b.key; });
  TTKV merged;
  for (VersionedRecord& rec : records) merged.ImportRecord(std::move(rec));
  return merged;
}

size_t ShardedTtkv::CompactBefore(TimeMicros horizon) {
  size_t dropped = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    dropped += shard->ttkv.CompactBefore(horizon);
  }
  return dropped;
}

std::vector<NamedCluster> ShardedTtkv::ClusterNow(double threshold_correlation,
                                                  Linkage linkage) const {
  DrainTracker();
  std::lock_guard<std::mutex> lock(tracker_mu_);
  const ClusterSet set = tracker_.ClusterNow(threshold_correlation, linkage);
  std::vector<NamedCluster> out;
  out.reserve(set.size());
  for (const KeyCluster& cluster : set.clusters()) {
    NamedCluster named;
    named.version_count = cluster.version_count;
    named.last_modified = cluster.last_modified;
    named.keys.reserve(cluster.keys.size());
    for (uint32_t id : cluster.keys) named.keys.push_back(tracker_.key_names()[id]);
    out.push_back(std::move(named));
  }
  return out;
}

}  // namespace ocasta
