#include "apps/schema.h"

namespace ocasta {

Value KeySpec::DefaultValue() const {
  switch (type) {
    case ValueType::kBool: return Value(true);
    case ValueType::kInt: return Value(int_min + (int_max - int_min) / 2);
    case ValueType::kReal: return Value(static_cast<double>(int_min + (int_max - int_min) / 2));
    case ValueType::kString: return choices.empty() ? Value("default") : Value(choices.front());
    case ValueType::kStringList: {
      std::vector<std::string> items;
      const size_t n = choices.size() < 3 ? choices.size() : 3;
      for (size_t i = 0; i < n; ++i) items.push_back(choices[i]);
      return Value(std::move(items));
    }
    case ValueType::kNone: return Value();
  }
  return Value();
}

size_t AppSchema::total_keys() const {
  size_t n = readonly_keys.size();
  for (const SchemaGroup& group : groups) n += group.keys.size();
  return n;
}

const SchemaGroup* AppSchema::FindGroup(const std::string& group_name) const {
  for (const SchemaGroup& group : groups) {
    if (group.name == group_name) return &group;
  }
  return nullptr;
}

const KeySpec* AppSchema::FindKey(const std::string& path) const {
  for (const SchemaGroup& group : groups) {
    for (const KeySpec& key : group.keys) {
      if (key.path == path) return &key;
    }
  }
  for (const KeySpec& key : readonly_keys) {
    if (key.path == path) return &key;
  }
  return nullptr;
}

ConfigMap AppSchema::DefaultConfig() const {
  ConfigMap config;
  for (const SchemaGroup& group : groups) {
    for (const KeySpec& key : group.keys) config[key.path] = key.DefaultValue();
  }
  for (const KeySpec& key : readonly_keys) config[key.path] = key.DefaultValue();
  return config;
}

}  // namespace ocasta
