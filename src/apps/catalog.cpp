#include "apps/catalog.h"

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

namespace {

// ----- Key builders ---------------------------------------------------------

KeySpec Toggle(std::string path, bool ui = false) {
  KeySpec key;
  key.path = std::move(path);
  key.type = ValueType::kBool;
  key.ui_visible = ui;
  return key;
}

KeySpec IntKey(std::string path, int64_t lo, int64_t hi, bool ui = false) {
  KeySpec key;
  key.path = std::move(path);
  key.type = ValueType::kInt;
  key.int_min = lo;
  key.int_max = hi;
  key.ui_visible = ui;
  return key;
}

KeySpec Choice(std::string path, std::vector<std::string> choices, bool ui = false) {
  KeySpec key;
  key.path = std::move(path);
  key.type = ValueType::kString;
  key.choices = std::move(choices);
  key.ui_visible = ui;
  return key;
}

KeySpec ListKey(std::string path, std::vector<std::string> pool, bool ui = false) {
  KeySpec key;
  key.path = std::move(path);
  key.type = ValueType::kStringList;
  key.choices = std::move(pool);
  key.ui_visible = ui;
  return key;
}

// ----- Bulk generation ------------------------------------------------------

// Deterministic name pools for the long tail of settings. Chosen to look
// like real per-area configuration names; statistics (not names) are what
// the clustering consumes.
const char* kAreas[] = {"toolbar", "window",  "view",    "editor",  "search",  "print",
                        "security", "display", "network", "cache",   "font",    "color",
                        "layout",   "history", "session", "plugin",  "update",  "privacy",
                        "sync",     "zoom"};
const char* kFields[] = {"enabled", "mode",  "size",    "width",  "height",  "style",
                         "timeout", "order", "visible", "count",  "default", "auto"};
const char* kChoices[] = {"small", "medium", "large", "classic", "modern", "compact"};

std::string BulkPath(const std::string& prefix, char sep, size_t group_index,
                     const char* field) {
  const size_t area = group_index % (sizeof(kAreas) / sizeof(kAreas[0]));
  std::string path = prefix;
  path += sep;
  path += kAreas[area];
  if (group_index >= sizeof(kAreas) / sizeof(kAreas[0])) {
    path += std::to_string(group_index / (sizeof(kAreas) / sizeof(kAreas[0])));
  }
  path += sep;
  path += field;
  return path;
}

KeySpec BulkKey(const std::string& prefix, char sep, size_t group_index, size_t field_index) {
  const char* field = kFields[field_index % (sizeof(kFields) / sizeof(kFields[0]))];
  std::string path = BulkPath(prefix, sep, group_index, field);
  switch (field_index % 3) {
    case 0: return Toggle(std::move(path));
    case 1: return IntKey(std::move(path), 0, 50);
    default: return Choice(std::move(path), {kChoices[0], kChoices[1], kChoices[2], kChoices[3]});
  }
}

// Appends `count` related dependency groups. Sizes cycle through
// `size_cycle` so the average is controlled deterministically.
void AddBulkGroups(AppSchema& app, const std::string& prefix, char sep, size_t count,
                   const std::vector<size_t>& size_cycle, double changes_per_day,
                   double partial_update_prob, size_t name_salt = 0) {
  for (size_t g = 0; g < count; ++g) {
    SchemaGroup group;
    group.name = StrFormat("%s-grp%zu", app.name.c_str(), g + name_salt);
    group.related = true;
    group.changes_per_day = changes_per_day;
    group.partial_update_prob = partial_update_prob;
    group.min_changes_per_trace = 1;
    const size_t size = size_cycle[g % size_cycle.size()];
    for (size_t k = 0; k < size; ++k) {
      group.keys.push_back(BulkKey(prefix, sep, g + name_salt, k));
    }
    app.groups.push_back(std::move(group));
  }
}

// Appends `count` unrelated settings that happen to be written together
// (the paper's coincidental oversized-cluster source). Each fake group's
// keys are semantically independent — ground truth marks clustering them
// as an accuracy error.
void AddFakeGroups(AppSchema& app, const std::string& prefix, char sep, size_t count,
                   size_t size, double changes_per_day, size_t name_salt) {
  for (size_t g = 0; g < count; ++g) {
    SchemaGroup group;
    group.name = StrFormat("%s-fake%zu", app.name.c_str(), g);
    group.related = false;
    group.changes_per_day = changes_per_day;
    group.min_changes_per_trace = 2;
    for (size_t k = 0; k < size; ++k) {
      group.keys.push_back(BulkKey(prefix, sep, g + name_salt, k + 7));
    }
    app.groups.push_back(std::move(group));
  }
}

// Appends `count` independent single-key settings.
void AddSingles(AppSchema& app, const std::string& prefix, char sep, size_t count,
                double changes_per_day, size_t name_salt) {
  for (size_t i = 0; i < count; ++i) {
    SchemaGroup group;
    group.name = StrFormat("%s-single%zu", app.name.c_str(), i);
    group.related = true;  // A lone key is trivially self-consistent.
    group.changes_per_day = changes_per_day;
    group.min_changes_per_trace = 1;
    group.keys.push_back(BulkKey(prefix, sep, i + name_salt, (i % 12) + 1));
    app.groups.push_back(std::move(group));
  }
}

// Appends frequently-written non-configuration state (window geometry,
// last-used paths): size-1 groups with per-session write activity.
void AddNoise(AppSchema& app, const std::string& prefix, char sep,
              std::vector<std::string> names, double rotations_per_session) {
  for (auto& name : names) {
    SchemaGroup group;
    group.name = app.name + "-noise-" + name;
    group.related = true;
    group.kind = GroupKind::kUniform;
    group.changes_per_day = 0.0;
    group.rotations_per_session = rotations_per_session;
    std::string path = prefix;
    path += sep;
    path += name;
    group.keys.push_back(IntKey(std::move(path), 0, 2000));
    app.groups.push_back(std::move(group));
  }
}

// Appends keys that are read at start-up but never written.
void AddReadonly(AppSchema& app, const std::string& prefix, char sep, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    std::string path = prefix;
    path += sep;
    path += "static";
    path += sep;
    path += StrFormat("%s%zu", kFields[i % (sizeof(kFields) / sizeof(kFields[0]))], i);
    app.readonly_keys.push_back(Choice(std::move(path), {"builtin"}));
  }
}

std::vector<std::string> DocPool(const char* stem, size_t n) {
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; ++i) docs.push_back(StrFormat("%s%02zu", stem, i));
  return docs;
}

}  // namespace

// ----- MS Outlook (Windows registry) ----------------------------------------
// 182 keys; 33 multi-key clusters of 82 (paper: 97.0% accurate).
AppSchema BuildOutlook() {
  AppSchema app;
  app.name = kOutlook;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Outlook";

  // Error #1: the Navigation Pane group. Symptom key is ui-visible.
  SchemaGroup nav;
  nav.name = "outlook-nav-pane";
  nav.changes_per_day = 0.03;
  nav.min_changes_per_trace = 3;
  nav.keys = {Toggle(p + "\\Preferences\\NavPaneVisible", /*ui=*/true),
              IntKey(p + "\\Preferences\\NavPaneWidth", 120, 480)};
  app.groups.push_back(std::move(nav));

  AddBulkGroups(app, p, '\\', 31, {4, 3, 2, 5, 2, 4, 3, 6}, 0.035, 0.05);
  AddFakeGroups(app, p, '\\', 1, 2, 0.02, 300);
  AddSingles(app, p, '\\', 43, 0.05, 100);
  AddNoise(app, p + "\\Preferences", '\\',
           {"WindowX", "WindowY", "PaneSplit"}, 1.2);
  AddReadonly(app, p, '\\', 17);
  return app;
}

// ----- Evolution Mail (GConf) -----------------------------------------------
// 183 keys; 18/65 clusters at 38.9% accuracy in the paper — dominated by
// oversized clusters from settings-dialog bursts landing inside the
// 1-second window (one observed Evolution cluster held six groups).
AppSchema BuildEvolution() {
  AppSchema app;
  app.name = kEvolution;
  app.store = StoreKind::kGconf;
  const std::string p = "/apps/evolution";

  // Error #8: offline mode.
  SchemaGroup offline;
  offline.name = "evolution-offline";
  offline.changes_per_day = 0.04;
  offline.min_changes_per_trace = 3;
  offline.keys = {Toggle(p + "/shell/start_offline", /*ui=*/true),
                  Toggle(p + "/shell/offline_sync")};
  app.groups.push_back(std::move(offline));

  // Error #9 and the paper's Figure 1c example: mark_seen governs
  // mark_seen_timeout.
  SchemaGroup mark_seen;
  mark_seen.name = "evolution-mark-seen";
  mark_seen.changes_per_day = 0.04;
  mark_seen.min_changes_per_trace = 3;
  mark_seen.keys = {Toggle(p + "/mail/display/mark_seen", /*ui=*/true),
                    IntKey(p + "/mail/display/mark_seen_timeout", 500, 5000, /*ui=*/true)};
  app.groups.push_back(std::move(mark_seen));

  // Error #10: reply composition style.
  SchemaGroup reply;
  reply.name = "evolution-reply-style";
  reply.changes_per_day = 0.04;
  reply.min_changes_per_trace = 3;
  reply.keys = {Choice(p + "/mail/composer/reply_style", {"top", "bottom", "quoted"}, /*ui=*/true),
                Toggle(p + "/mail/composer/top_signature")};
  app.groups.push_back(std::move(reply));

  AddBulkGroups(app, p, '/', 26, {3, 2, 2, 3, 2}, 0.05, 0.04);
  AddSingles(app, p, '/', 36, 0.06, 100);
  AddNoise(app, p + "/mail/ui", '/', {"paned_size", "width"}, 0.8);
  // The paper's dominant Evolution failure mode: applying a preferences
  // dialog rewrites whole GConf sections, so unrelated dependency groups
  // are *always* co-written and merge into oversized clusters (11 of 18
  // multi-key clusters were wrong; one held six groups). Sections pair up
  // 22 of the bulk groups into 11 always-co-written units, including one
  // three-group section.
  for (int s = 0; s < 10; ++s) {
    app.write_sections.push_back({StrFormat("%s-grp%d", kEvolution, 2 * s),
                                  StrFormat("%s-grp%d", kEvolution, 2 * s + 1)});
  }
  app.write_sections.push_back({StrFormat("%s-grp%d", kEvolution, 20),
                                StrFormat("%s-grp%d", kEvolution, 21),
                                StrFormat("%s-grp%d", kEvolution, 22)});
  app.dialog_burst_prob = 0.2;
  app.dialog_burst_max_groups = 3;
  AddReadonly(app, p, '/', 77);
  return app;
}

// ----- Internet Explorer (Windows registry) ----------------------------------
// 33 keys; 9/12 clusters at 66.7% accuracy.
AppSchema BuildInternetExplorer() {
  AppSchema app;
  app.name = kInternetExplorer;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\Internet Explorer";

  // Error #3: the add-on management dialog nag.
  SchemaGroup addons;
  addons.name = "ie-addons-dialog";
  addons.changes_per_day = 0.03;
  addons.min_changes_per_trace = 3;
  addons.keys = {Toggle(p + "\\Ext\\DisableAddonLoadTimePerformanceNotifications", /*ui=*/true),
                 Toggle(p + "\\Ext\\IgnoreFrameApprovalCheck")};
  app.groups.push_back(std::move(addons));

  AddBulkGroups(app, p, '\\', 5, {2, 3, 2}, 0.04, 0.05);
  AddFakeGroups(app, p, '\\', 3, 2, 0.03, 200);
  AddSingles(app, p, '\\', 4, 0.05, 100);
  AddReadonly(app, p, '\\', 9);
  return app;
}

// ----- Chrome Browser (JSON preferences file) ---------------------------------
// 35 keys; a single multi-key cluster of 34, 100% accurate.
AppSchema BuildChrome() {
  AppSchema app;
  app.name = kChrome;
  app.store = StoreKind::kFile;
  app.file_format = ConfigFormat::kJson;

  SchemaGroup session;
  session.name = "chrome-startup-session";
  session.changes_per_day = 0.03;
  session.min_changes_per_trace = 3;
  session.keys = {IntKey("session/restore_on_startup", 0, 5),
                  ListKey("session/startup_urls", DocPool("https://site", 8))};
  app.groups.push_back(std::move(session));

  // Errors #13 / #14: independent toggles.
  SchemaGroup bookmark_bar;
  bookmark_bar.name = "chrome-bookmark-bar";
  bookmark_bar.changes_per_day = 0.035;
  bookmark_bar.min_changes_per_trace = 3;
  bookmark_bar.keys = {Toggle("bookmark_bar/show_on_all_tabs", /*ui=*/true)};
  app.groups.push_back(std::move(bookmark_bar));

  SchemaGroup home_button;
  home_button.name = "chrome-home-button";
  home_button.changes_per_day = 0.035;
  home_button.min_changes_per_trace = 3;
  home_button.keys = {Toggle("browser/show_home_button", /*ui=*/true)};
  app.groups.push_back(std::move(home_button));

  AddSingles(app, "browser", '/', 29, 0.045, 100);
  AddNoise(app, "browser/window_placement", '/', {"right", "bottom"}, 0.6);
  return app;
}

// ----- MS Word (Windows registry) ---------------------------------------------
// 143 keys; 18/110 clusters, 100% accurate. Contains the paper's Figure 1a
// example and error #2: the recently-used-documents MRU where "Max Display"
// governs the validity of the Item N keys.
AppSchema BuildWord() {
  AppSchema app;
  app.name = kWord;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Word";

  SchemaGroup mru;
  mru.name = "word-file-mru";
  mru.kind = GroupKind::kMruList;
  mru.changes_per_day = 0.015;   // The user rarely resizes the list...
  mru.min_changes_per_trace = 3;
  mru.rotations_per_session = 2.0;  // ...but opens documents constantly.
  mru.keys.push_back(IntKey(p + "\\Options\\Max Display", 1, 17, /*ui=*/true));
  for (int i = 1; i <= 17; ++i) {
    KeySpec item = Choice(StrFormat("%s\\File MRU\\Item %d", p.c_str(), i),
                          DocPool("report", 40), /*ui=*/true);
    mru.keys.push_back(std::move(item));
  }
  app.groups.push_back(std::move(mru));

  AddBulkGroups(app, p, '\\', 17, {3, 2, 2, 3}, 0.04, 0.05);
  AddSingles(app, p + "\\Options", '\\', 58, 0.05, 100);
  AddNoise(app, p + "\\Options", '\\', {"WindowLeft", "WindowTop"}, 1.0);
  AddReadonly(app, p, '\\', 22);
  return app;
}

// ----- GNOME Edit (GConf) -------------------------------------------------------
// 10 keys; the single multi-key cluster the paper found was wrong (0.0%):
// two independent settings changed together once and never separately.
AppSchema BuildGnomeEdit() {
  AppSchema app;
  app.name = kGnomeEdit;
  app.store = StoreKind::kGconf;
  const std::string p = "/apps/gedit-2";

  // Error #12: document saving disabled.
  SchemaGroup save;
  save.name = "gedit-save";
  save.changes_per_day = 0.03;
  save.min_changes_per_trace = 3;
  save.keys = {Toggle(p + "/preferences/editor/save/can_save", /*ui=*/true)};
  app.groups.push_back(std::move(save));

  SchemaGroup fake;
  fake.name = "gedit-fake-pair";
  fake.related = false;
  fake.changes_per_day = 0.012;  // Rare enough to never be seen separately.
  fake.min_changes_per_trace = 3;
  fake.keys = {Toggle(p + "/preferences/editor/wrap_mode"),
               IntKey(p + "/preferences/editor/tabs_size", 2, 8)};
  app.groups.push_back(std::move(fake));

  AddSingles(app, p + "/preferences", '/', 5, 0.05, 100);
  AddReadonly(app, p, '/', 2);
  return app;
}

// ----- MS Paint (Windows registry) ----------------------------------------------
// 66 keys; 2 multi-key clusters, one correct (50.0%).
AppSchema BuildPaint() {
  AppSchema app;
  app.name = kPaint;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\Paint";

  // Error #6: the floating text toolbar (8 related keys per Table IV).
  SchemaGroup text_toolbar;
  text_toolbar.name = "paint-text-toolbar";
  text_toolbar.changes_per_day = 0.035;
  text_toolbar.min_changes_per_trace = 3;
  text_toolbar.keys = {Toggle(p + "\\View\\ShowTextTool", /*ui=*/true),
                       IntKey(p + "\\Text\\ToolbarX", 0, 1600, /*ui=*/true),
                       IntKey(p + "\\Text\\ToolbarY", 0, 1200),
                       Choice(p + "\\Text\\FontName", {"Arial", "Courier", "Times"}),
                       IntKey(p + "\\Text\\FontSize", 8, 72),
                       Toggle(p + "\\Text\\Bold"),
                       Toggle(p + "\\Text\\Italic"),
                       IntKey(p + "\\Text\\Charset", 0, 255)};
  app.groups.push_back(std::move(text_toolbar));

  AddFakeGroups(app, p, '\\', 1, 2, 0.015, 200);
  AddSingles(app, p + "\\General", '\\', 5, 0.05, 100);
  AddNoise(app, p + "\\General", '\\', {"LastCanvasW", "LastCanvasH"}, 0.7);
  AddReadonly(app, p, '\\', 47);
  return app;
}

// ----- Eye of GNOME (GConf) -------------------------------------------------------
// 5 keys; no multi-key clusters (accuracy N/A in Table II).
AppSchema BuildEyeOfGnome() {
  AppSchema app;
  app.name = kEyeOfGnome;
  app.store = StoreKind::kGconf;
  const std::string p = "/apps/eog";

  // Error #11: printing disabled.
  SchemaGroup print;
  print.name = "eog-print";
  print.changes_per_day = 0.03;
  print.min_changes_per_trace = 3;
  print.keys = {Toggle(p + "/ui/can_print", /*ui=*/true)};
  app.groups.push_back(std::move(print));

  AddSingles(app, p + "/view", '/', 4, 0.05, 100);
  return app;
}

// ----- Acrobat Reader (PostScript-style preferences file) ------------------------
// 751 keys; 120/550 clusters at 95.8%. Hosts the paper's Figure 1b example
// (the auto-complete trio) and errors #15/#16.
AppSchema BuildAcrobat() {
  AppSchema app;
  app.name = kAcrobat;
  app.store = StoreKind::kFile;
  app.file_format = ConfigFormat::kPskv;

  // Figure 1b: InlineAutoComplete governs RecordNewEntries + ShowDropDown.
  SchemaGroup autocomplete;
  autocomplete.name = "acrobat-autocomplete";
  autocomplete.changes_per_day = 0.04;
  autocomplete.min_changes_per_trace = 3;
  autocomplete.keys = {Toggle("Forms/InlineAutoComplete"),
                       Toggle("Forms/RecordNewEntries"),
                       Toggle("Forms/ShowDropDown")};
  app.groups.push_back(std::move(autocomplete));

  // Error #15: menu bar visibility.
  SchemaGroup menu_bar;
  menu_bar.name = "acrobat-menu-bar";
  menu_bar.changes_per_day = 0.03;
  menu_bar.min_changes_per_trace = 3;
  menu_bar.keys = {Toggle("Originals/ShowMenuBar", /*ui=*/true)};
  app.groups.push_back(std::move(menu_bar));

  // Error #16: the Find box on the toolbar.
  SchemaGroup find_box;
  find_box.name = "acrobat-find-box";
  find_box.changes_per_day = 0.03;
  find_box.min_changes_per_trace = 3;
  find_box.keys = {Toggle("Toolbars/ShowFindBox", /*ui=*/true)};
  app.groups.push_back(std::move(find_box));

  AddBulkGroups(app, "AVGeneral", '/', 114, {3, 2, 2, 3, 2}, 0.05, 0.04);
  AddFakeGroups(app, "AVGeneral", '/', 5, 2, 0.025, 400);
  AddSingles(app, "Originals", '/', 425, 0.055, 100);
  AddNoise(app, "AVGeneral/session", '/', {"splitter_pos", "last_zoom"}, 0.5);
  AddReadonly(app, "FeatureLockDown", '/', 23);
  return app;
}

// ----- Explorer (Windows registry) --------------------------------------------------
// 298 keys; 32/91 clusters at 84.4%. Hosts errors #4 (Open-With master
// list) and #7 (image window placement).
AppSchema BuildExplorer() {
  AppSchema app;
  app.name = kExplorer;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\Windows\\CurrentVersion\\Explorer";

  // Error #4: the Open-With list for .flv. The MRU order key changes even
  // when the application entries do not.
  SchemaGroup open_with;
  open_with.name = "explorer-openwith-flv";
  open_with.kind = GroupKind::kMasterList;
  open_with.changes_per_day = 0.02;
  open_with.min_changes_per_trace = 3;
  open_with.rotations_per_session = 0.4;
  open_with.keys = {Choice(p + "\\FileExts\\.flv\\OpenWithList\\MRUList", {"ab", "ba", "a", "b"},
                           /*ui=*/true),
                    Choice(p + "\\FileExts\\.flv\\OpenWithList\\a",
                           {"wmplayer.exe", "vlc.exe", "mpc.exe"}, /*ui=*/true),
                    Choice(p + "\\FileExts\\.flv\\OpenWithList\\b",
                           {"vlc.exe", "winamp.exe", "mpc.exe"}, /*ui=*/true)};
  app.groups.push_back(std::move(open_with));

  // Error #7: image viewer window placement (both keys must be consistent).
  SchemaGroup img_window;
  img_window.name = "explorer-image-window";
  img_window.changes_per_day = 0.03;
  img_window.min_changes_per_trace = 3;
  img_window.keys = {Toggle(p + "\\ImagePreview\\Maximized", /*ui=*/true),
                     Choice(p + "\\ImagePreview\\Placement",
                            {"44,44,800,600", "0,0,1024,768", "100,80,640,480"}, /*ui=*/true)};
  app.groups.push_back(std::move(img_window));

  AddBulkGroups(app, p, '\\', 30, {3, 2, 4, 2, 3}, 0.04, 0.06);
  AddFakeGroups(app, p, '\\', 5, 2, 0.025, 500);
  AddSingles(app, p + "\\Advanced", '\\', 52, 0.05, 100);
  AddNoise(app, p + "\\Streams", '\\', {"Desktop0", "Desktop1", "Settings"}, 1.5);
  AddReadonly(app, p, '\\', 143);
  return app;
}

// ----- Windows Media Player (Windows registry) --------------------------------------
// 165 keys; 21/41 clusters at 90.5%. Hosts error #5 (captions).
AppSchema BuildMediaPlayer() {
  AppSchema app;
  app.name = kMediaPlayer;
  app.store = StoreKind::kRegistry;
  const std::string p = "HKEY_CURRENT_USER\\Software\\Microsoft\\MediaPlayer\\Preferences";

  // Error #5: captions while playing video (4 related keys per Table IV).
  SchemaGroup captions;
  captions.name = "wmp-captions";
  captions.changes_per_day = 0.035;
  captions.min_changes_per_trace = 3;
  captions.keys = {Toggle(p + "\\CaptionsOn", /*ui=*/true),
                   Choice(p + "\\CaptionStyle", {"overlay", "below", "windowed"}),
                   IntKey(p + "\\CaptionSize", 8, 32),
                   Choice(p + "\\CaptionLanguage", {"en", "fr", "de", "es"})};
  app.groups.push_back(std::move(captions));

  AddBulkGroups(app, p, '\\', 18, {3, 2, 3, 4}, 0.04, 0.05);
  AddFakeGroups(app, p, '\\', 2, 2, 0.025, 300);
  AddSingles(app, p, '\\', 18, 0.05, 100);
  AddNoise(app, p + "\\UI", '\\', {"LastVolume", "WindowW"}, 1.0);
  AddReadonly(app, p, '\\', 82);
  return app;
}

std::vector<AppSchema> AllAppSchemas() {
  std::vector<AppSchema> apps;
  apps.push_back(BuildOutlook());
  apps.push_back(BuildEvolution());
  apps.push_back(BuildInternetExplorer());
  apps.push_back(BuildChrome());
  apps.push_back(BuildWord());
  apps.push_back(BuildGnomeEdit());
  apps.push_back(BuildPaint());
  apps.push_back(BuildEyeOfGnome());
  apps.push_back(BuildAcrobat());
  apps.push_back(BuildExplorer());
  apps.push_back(BuildMediaPlayer());
  return apps;
}

AppSchema AppSchemaByName(const std::string& name) {
  for (AppSchema& app : AllAppSchemas()) {
    if (app.name == name) return app;
  }
  throw Error("unknown application: " + name);
}

AppSchema BuildSystemBackground(StoreKind store, size_t num_keys, size_t num_churn_keys) {
  AppSchema app;
  app.name = "System";
  app.store = store;
  const std::string prefix = store == StoreKind::kRegistry
                                 ? "HKEY_CURRENT_USER\\Software\\System"
                                 : "/system/background";
  const char sep = store == StoreKind::kRegistry ? '\\' : '/';
  // Churn keys: session-scoped OS state written all the time.
  for (size_t i = 0; i < num_churn_keys; ++i) {
    SchemaGroup group;
    group.name = StrFormat("system-churn%zu", i);
    group.rotations_per_session = 1.0 + static_cast<double>(i % 5);
    std::string path = prefix;
    path += sep;
    path += StrFormat("state%zu", i);
    group.keys.push_back(IntKey(std::move(path), 0, 1'000'000));
    app.groups.push_back(std::move(group));
  }
  if (num_keys > num_churn_keys) AddReadonly(app, prefix, sep, num_keys - num_churn_keys);
  return app;
}

}  // namespace ocasta
