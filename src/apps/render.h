// Deterministic application rendering — the repair tool's "screenshots".
//
// The paper's repair loop takes a pixel screenshot after every trial and
// deduplicates identical ones. Our applications are deterministic models,
// so a screenshot is a canonical text rendering of the application's
// visible state (every ui_visible key) plus a stable hash used for
// deduplication. Two configurations that present the same visible state
// produce byte-identical screenshots, exactly like two identical frames.
#pragma once

#include <cstdint>
#include <string>

#include "apps/schema.h"
#include "common/hash.h"
#include "configstore/config_store.h"

namespace ocasta {

struct Screenshot {
  std::string text;
  uint64_t hash = 0;

  static Screenshot FromText(std::string rendered) {
    Screenshot shot;
    shot.hash = Fnv1a(rendered);
    shot.text = std::move(rendered);
    return shot;
  }

  friend bool operator==(const Screenshot& a, const Screenshot& b) {
    return a.hash == b.hash && a.text == b.text;
  }
};

// Renders an application's visible state from its configuration store:
// one "element = value" line per ui_visible key (absent keys render as
// "<unset>"), in schema order.
Screenshot RenderApp(const AppSchema& schema, ConfigStore& store);

// Renders a single key's visible line (shared by RenderApp and the
// scenario symptom predicates).
std::string RenderKeyLine(const KeySpec& key, ConfigStore& store);

}  // namespace ocasta
