// Application configuration schemas with ground-truth dependency structure.
//
// The paper's evaluation relies on manual inspection of >500 configuration
// settings to decide which clusters are genuinely related. Our simulated
// applications carry that ground truth explicitly: every schema group marks
// whether its keys are semantically dependent (`related`), which lets the
// analysis module *compute* Table II instead of eyeballing it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "configstore/config_store.h"
#include "parsers/codec.h"
#include "ttkv/value.h"

namespace ocasta {

// Domain description of a single configuration key.
struct KeySpec {
  std::string path;
  ValueType type = ValueType::kString;
  int64_t int_min = 0;
  int64_t int_max = 100;
  std::vector<std::string> choices = {};  // String domain (also list-item pool).
  bool ui_visible = false;           // Appears in the rendered "screenshot".

  // Initial (installation-default) value.
  Value DefaultValue() const;
};

// How a group's keys co-evolve over time.
enum class GroupKind : uint8_t {
  // All keys written together when the user changes the setting group
  // (possibly partially, per partial_update_prob).
  kUniform = 0,
  // MRU-list shape (MS Word's Max Display + Item N): keys[0] is a dominant,
  // rarely-changed key; the rest are list items rewritten in subsets on
  // every document open, and rewritten in full (with the dominant key) only
  // when the user resizes the list.
  kMruList = 1,
  // Master-list shape (Explorer's Open-With list): keys[0] is a list key
  // rewritten frequently on its own (reorderings); member keys change only
  // in rare add/remove events that also rewrite the master.
  kMasterList = 2,
};

struct SchemaGroup {
  std::string name;
  GroupKind kind = GroupKind::kUniform;
  // Ground truth: true when the keys are semantically dependent. Groups with
  // related == false model *coincidentally* co-written independent settings
  // (the paper's oversized-cluster source); clustering them together is an
  // accuracy error.
  bool related = true;
  std::vector<KeySpec> keys;

  // User-initiated full-group changes (Poisson rate per simulated day).
  double changes_per_day = 0.05;
  // Probability that a user change updates only a random subset (the
  // paper's undersized-cluster source).
  double partial_update_prob = 0.0;
  // Writes within one change burst spread over this long. Real applications
  // persist a dialog's settings over a second or two, which is why the
  // paper's 1-second-quantised traces need a >= 1 s window: at window 0
  // (identical timestamps only) bursts straddling a second boundary split,
  // producing Figure 3a's sharp left-edge drop.
  double spread_seconds = 1.5;
  // For kMruList / kMasterList: high-rate solo activity per session
  // (item rotations / list reorderings).
  double rotations_per_session = 0.0;
  // Guaranteed number of full-group changes per trace regardless of the
  // machine's activity scale. The paper's repair evaluation is "restricted
  // to only using errors where the offending setting(s) have been modified
  // in our traces"; scenario groups set this so low-activity machines still
  // satisfy that precondition.
  double min_changes_per_trace = 0.0;

  bool is_single() const { return keys.size() == 1; }
};

struct AppSchema {
  std::string name;
  StoreKind store = StoreKind::kRegistry;
  ConfigFormat file_format = ConfigFormat::kIni;  // Used when store == kFile.

  // All groups: multi-key dependency groups, independent singles (size 1),
  // frequently-written non-configuration state (size-1 groups with high
  // rates), and unrelated fake groups.
  std::vector<SchemaGroup> groups;

  // Keys the application reads but never writes (counted in Table II's
  // "#Keys", invisible to clustering).
  std::vector<KeySpec> readonly_keys;

  // Probability that a user config event is a settings-dialog "apply"
  // touching several groups within one second (an oversized-cluster
  // source).
  double dialog_burst_prob = 0.0;
  int dialog_burst_max_groups = 3;

  // Groups (by name) the application always rewrites together when any one
  // of them changes — e.g. Evolution flushing a whole GConf preferences
  // section on every dialog apply. The rewrite spreads over a couple of
  // seconds, so the paper's 1-second-window clustering merges the section's
  // groups into one oversized cluster ("one oversized cluster of Evolution
  // Mail contains six groups of dependent configuration settings") while a
  // finer-grained trace would keep them apart.
  std::vector<std::vector<std::string>> write_sections;

  // Expected software-update events over a whole trace (each rewrites many
  // keys at once).
  double sw_updates_per_trace = 0.0;

  size_t total_keys() const;
  const SchemaGroup* FindGroup(const std::string& name) const;
  const KeySpec* FindKey(const std::string& path) const;

  // Installation defaults for every writable + readonly key.
  ConfigMap DefaultConfig() const;
};

}  // namespace ocasta
