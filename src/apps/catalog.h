// The 11 desktop applications of the paper's Table II.
//
// Each schema mirrors its application's real configuration shape at the
// fidelity the evaluation needs: the signature dependency groups behind the
// paper's examples and its 16 configuration errors are hand-written
// (MS Word's Max Display / Item MRU, Acrobat's auto-complete trio,
// Evolution's mark_seen pair, Explorer's Open-With master list, ...), and
// the long tail of settings is generated from deterministic name pools to
// match the paper's per-application key counts.
#pragma once

#include <vector>

#include "apps/schema.h"

namespace ocasta {

// Table II application names (also used by the machine profiles).
inline constexpr const char* kOutlook = "MS Outlook";
inline constexpr const char* kEvolution = "Evolution Mail";
inline constexpr const char* kInternetExplorer = "Internet Explorer";
inline constexpr const char* kChrome = "Chrome Browser";
inline constexpr const char* kWord = "MS Word";
inline constexpr const char* kGnomeEdit = "GNOME Edit";
inline constexpr const char* kPaint = "MS Paint";
inline constexpr const char* kEyeOfGnome = "Eye of GNOME";
inline constexpr const char* kAcrobat = "Acrobat Reader";
inline constexpr const char* kExplorer = "Explorer";
inline constexpr const char* kMediaPlayer = "Windows Media Player";

AppSchema BuildOutlook();
AppSchema BuildEvolution();
AppSchema BuildInternetExplorer();
AppSchema BuildChrome();
AppSchema BuildWord();
AppSchema BuildGnomeEdit();
AppSchema BuildPaint();
AppSchema BuildEyeOfGnome();
AppSchema BuildAcrobat();
AppSchema BuildExplorer();
AppSchema BuildMediaPlayer();

// All 11, in Table II order.
std::vector<AppSchema> AllAppSchemas();

// Schema by Table II name; throws Error for unknown names.
AppSchema AppSchemaByName(const std::string& name);

// A synthetic background application standing in for OS-wide registry /
// GConf churn (system services, shell components). Real machine traces
// contain thousands of keys beyond the 11 studied applications — Table I
// lists 1.1K-19.5K keys per machine — and this populates a machine's TTKV
// to that scale without affecting per-application clustering.
AppSchema BuildSystemBackground(StoreKind store, size_t num_keys, size_t num_churn_keys);

}  // namespace ocasta
