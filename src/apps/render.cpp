#include "apps/render.h"

namespace ocasta {

std::string RenderKeyLine(const KeySpec& key, ConfigStore& store) {
  const auto value = store.Read(key.path);
  std::string line = key.path;
  line += " = ";
  line += value ? value->ToDisplay() : "<unset>";
  line += '\n';
  return line;
}

Screenshot RenderApp(const AppSchema& schema, ConfigStore& store) {
  std::string text = "=== " + schema.name + " ===\n";
  for (const SchemaGroup& group : schema.groups) {
    for (const KeySpec& key : group.keys) {
      if (key.ui_visible) text += RenderKeyLine(key, store);
    }
  }
  for (const KeySpec& key : schema.readonly_keys) {
    if (key.ui_visible) text += RenderKeyLine(key, store);
  }
  return Screenshot::FromText(std::move(text));
}

}  // namespace ocasta
