// The configuration-store abstraction.
//
// The paper's loggers intercept three kinds of persistent configuration
// storage: the Windows registry, the GConf configuration system, and
// application-specific files. All three are modelled behind this interface;
// applications read and write settings through it, and the interception
// decorator (intercepting_store.h) observes every access.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "parsers/config_map.h"
#include "ttkv/value.h"

namespace ocasta {

enum class StoreKind : uint8_t {
  kRegistry = 0,  // Windows-registry-like (HKCU\... backslash paths).
  kGconf = 1,     // GConf-like (/apps/... slash paths).
  kFile = 2,      // Application-specific config file (any parser format).
};

const char* StoreKindName(StoreKind kind);

class ConfigStore {
 public:
  virtual ~ConfigStore() = default;

  // Reads a key; nullopt when absent. Throws StoreError for keys that are
  // syntactically invalid for this store kind.
  virtual std::optional<Value> Read(const std::string& key) = 0;

  // Creates or overwrites a key.
  virtual void Write(const std::string& key, Value value) = 0;

  // Deletes a key. Returns false when the key was absent.
  virtual bool Remove(const std::string& key) = 0;

  // All keys with the given prefix (every key when prefix is empty),
  // in lexicographic order.
  virtual std::vector<std::string> ListKeys(const std::string& prefix) const = 0;

  virtual StoreKind kind() const = 0;

  // Full current state. Used by the repair sandbox and the flush-diff
  // logger; not part of the application-facing API in the paper, but every
  // real store supports enumerating state (registry hives, gconf dumps,
  // config files).
  virtual ConfigMap Snapshot() const = 0;

  // Replaces the full state (sandbox restore).
  virtual void RestoreSnapshot(const ConfigMap& state) = 0;
};

}  // namespace ocasta
