#include "configstore/config_store.h"

namespace ocasta {

const char* StoreKindName(StoreKind kind) {
  switch (kind) {
    case StoreKind::kRegistry: return "Registry";
    case StoreKind::kGconf: return "GConf";
    case StoreKind::kFile: return "File";
  }
  return "unknown";
}

}  // namespace ocasta
