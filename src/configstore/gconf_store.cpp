#include "configstore/gconf_store.h"

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

void GconfStore::ValidateKey(const std::string& key) const {
  if (key.empty() || key[0] != '/') {
    throw StoreError("gconf key must be an absolute path: " + key);
  }
  if (key.size() == 1 || key.back() == '/') {
    throw StoreError("gconf key must not end with '/': " + key);
  }
  const auto segments = Split(key.substr(1), '/');
  for (const std::string& segment : segments) {
    if (segment.empty()) throw StoreError("gconf key has an empty segment: " + key);
  }
}

bool GconfStore::GetBool(const std::string& key, bool fallback) {
  const auto v = Read(key);
  return v && v->type() == ValueType::kBool ? v->as_bool() : fallback;
}

int64_t GconfStore::GetInt(const std::string& key, int64_t fallback) {
  const auto v = Read(key);
  return v && v->type() == ValueType::kInt ? v->as_int() : fallback;
}

std::string GconfStore::GetString(const std::string& key, std::string fallback) {
  const auto v = Read(key);
  return v && v->type() == ValueType::kString ? v->as_string() : fallback;
}

}  // namespace ocasta
