#include "configstore/file_config_store.h"

#include "common/strings.h"

namespace ocasta {

void FileConfigStore::LoadFileText(const std::string& text) {
  state_ = codec_->Parse(text);
  file_text_ = text;
  dirty_ = false;
}

void FileConfigStore::Flush() {
  if (!dirty_) return;
  const std::string before = file_text_;
  file_text_ = codec_->Serialize(state_);
  dirty_ = false;
  if (flush_observer_) flush_observer_(before, file_text_);
}

std::optional<Value> FileConfigStore::Read(const std::string& key) {
  auto it = state_.find(key);
  if (it == state_.end()) return std::nullopt;
  return it->second;
}

void FileConfigStore::Write(const std::string& key, Value value) {
  auto it = state_.find(key);
  if (it != state_.end() && it->second == value) return;  // Unchanged: no dirtying write.
  state_[key] = std::move(value);
  dirty_ = true;
  MaybeAutoFlush();
}

bool FileConfigStore::Remove(const std::string& key) {
  if (state_.erase(key) == 0) return false;
  dirty_ = true;
  MaybeAutoFlush();
  return true;
}

std::vector<std::string> FileConfigStore::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = state_.lower_bound(prefix); it != state_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  return keys;
}

void FileConfigStore::RestoreSnapshot(const ConfigMap& state) {
  state_ = state;
  dirty_ = true;
  MaybeAutoFlush();
}

}  // namespace ocasta
