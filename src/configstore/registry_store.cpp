#include "configstore/registry_store.h"

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

void RegistryStore::ValidateKey(const std::string& key) const {
  if (!StartsWith(key, "HKEY_CURRENT_USER\\") && !StartsWith(key, "HKEY_LOCAL_MACHINE\\")) {
    throw StoreError("registry key must start with a hive root: " + key);
  }
  for (const std::string& segment : Split(key, '\\')) {
    if (segment.empty()) throw StoreError("registry key has an empty path segment: " + key);
  }
}

}  // namespace ocasta
