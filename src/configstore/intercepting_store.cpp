#include "configstore/intercepting_store.h"

namespace ocasta {

const char* AccessOpName(AccessOp op) {
  switch (op) {
    case AccessOp::kRead: return "read";
    case AccessOp::kWrite: return "write";
    case AccessOp::kDelete: return "delete";
  }
  return "unknown";
}

void InterceptingStore::Emit(AccessOp op, const std::string& key, Value value) const {
  if (sink_ == nullptr) return;
  sink_->OnAccess(AccessEvent{.timestamp = clock_.now(),
                              .app = app_,
                              .store = inner_.kind(),
                              .op = op,
                              .key = key,
                              .value = std::move(value)});
}

std::optional<Value> InterceptingStore::Read(const std::string& key) {
  auto result = inner_.Read(key);
  Emit(AccessOp::kRead, key, Value());
  return result;
}

void InterceptingStore::Write(const std::string& key, Value value) {
  inner_.Write(key, value);
  Emit(AccessOp::kWrite, key, std::move(value));
}

bool InterceptingStore::Remove(const std::string& key) {
  const bool existed = inner_.Remove(key);
  if (existed) Emit(AccessOp::kDelete, key, Value());
  return existed;
}

}  // namespace ocasta
