// Shared in-memory implementation behind the registry and GConf stores.
#pragma once

#include "configstore/config_store.h"

namespace ocasta {

class MemoryStore : public ConfigStore {
 public:
  std::optional<Value> Read(const std::string& key) override;
  void Write(const std::string& key, Value value) override;
  bool Remove(const std::string& key) override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;
  ConfigMap Snapshot() const override { return state_; }
  void RestoreSnapshot(const ConfigMap& state) override;

  size_t size() const { return state_.size(); }

 protected:
  // Throws StoreError when `key` is not well-formed for the concrete store.
  virtual void ValidateKey(const std::string& key) const = 0;

 private:
  ConfigMap state_;
};

}  // namespace ocasta
