// The interception layer.
//
// Stands in for the paper's hooking machinery (registry API hooks injected
// via the Explorer shell on Windows; an LD_PRELOAD GConf shim on Linux):
// a decorator that forwards every operation to the wrapped store and emits
// an AccessEvent to a sink. Applications are handed the decorated store and
// remain black boxes — they cannot tell they are being observed.
#pragma once

#include "configstore/access_event.h"
#include "configstore/config_store.h"

namespace ocasta {

class InterceptingStore final : public ConfigStore {
 public:
  // `clock` and `sink` must outlive this object. `sink` may be null
  // (monitoring disabled; the decorator becomes a transparent pass-through,
  // like running an application outside the Explorer shell in the paper).
  InterceptingStore(ConfigStore& inner, std::string app_name, const SimClock& clock,
                    AccessSink* sink)
      : inner_(inner), app_(std::move(app_name)), clock_(clock), sink_(sink) {}

  std::optional<Value> Read(const std::string& key) override;
  void Write(const std::string& key, Value value) override;
  bool Remove(const std::string& key) override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override {
    return inner_.ListKeys(prefix);
  }
  StoreKind kind() const override { return inner_.kind(); }
  ConfigMap Snapshot() const override { return inner_.Snapshot(); }
  void RestoreSnapshot(const ConfigMap& state) override { inner_.RestoreSnapshot(state); }

  void set_sink(AccessSink* sink) { sink_ = sink; }

 private:
  void Emit(AccessOp op, const std::string& key, Value value) const;

  ConfigStore& inner_;
  std::string app_;
  const SimClock& clock_;
  AccessSink* sink_;
};

}  // namespace ocasta
