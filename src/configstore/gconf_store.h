// GConf-like configuration store.
//
// The paper's Linux logger LD_PRELOADs a shim exporting the GConf client
// API. Here the GConf database itself is simulated: keys are absolute
// slash paths ("/apps/evolution/mail/mark_seen"). The interception layer
// plays the role of the preloaded shim.
#pragma once

#include "configstore/memory_store.h"

namespace ocasta {

class GconfStore final : public MemoryStore {
 public:
  StoreKind kind() const override { return StoreKind::kGconf; }

  // gconf_client_* flavored helpers.
  void SetBool(const std::string& key, bool v) { Write(key, Value(v)); }
  void SetInt(const std::string& key, int64_t v) { Write(key, Value(v)); }
  void SetString(const std::string& key, std::string v) { Write(key, Value(std::move(v))); }
  bool GetBool(const std::string& key, bool fallback);
  int64_t GetInt(const std::string& key, int64_t fallback);
  std::string GetString(const std::string& key, std::string fallback);

 protected:
  // Valid keys: absolute paths with non-empty segments and no trailing '/'.
  void ValidateKey(const std::string& key) const override;
};

}  // namespace ocasta
