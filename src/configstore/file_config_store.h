// File-backed configuration store.
//
// Models applications that keep their settings in their own files: the
// application reads the entire file into an in-memory key-value store,
// mutates it, and periodically flushes it back to disk. The "file" is a
// virtual one (a string of file text in one of the five codec formats).
// Observers see only flushes — exactly the paper's granularity limitation
// for file-based applications ("Ocasta compares the files before and after
// each flush").
#pragma once

#include <functional>

#include "configstore/config_store.h"
#include "parsers/codec.h"

namespace ocasta {

class FileConfigStore final : public ConfigStore {
 public:
  // Called on every flush with the file text before and after.
  using FlushObserver = std::function<void(const std::string& before, const std::string& after)>;

  // `auto_flush` mirrors the common behaviour the paper observes:
  // "applications typically flush their in-memory store after each key
  // modification to guarantee persistence". When false, changes accumulate
  // until Flush() — and intermediate values become invisible to the logger.
  FileConfigStore(ConfigFormat format, bool auto_flush = true)
      : codec_(&CodecFor(format)), auto_flush_(auto_flush) {}

  // Loads file text, replacing in-memory state (application start-up).
  void LoadFileText(const std::string& text);
  const std::string& file_text() const { return file_text_; }

  // Serializes the in-memory state to the virtual file and notifies the
  // observer. No-op when nothing changed since the last flush.
  void Flush();

  void set_flush_observer(FlushObserver observer) { flush_observer_ = std::move(observer); }

  // ConfigStore interface (in-memory map operations).
  std::optional<Value> Read(const std::string& key) override;
  void Write(const std::string& key, Value value) override;
  bool Remove(const std::string& key) override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;
  StoreKind kind() const override { return StoreKind::kFile; }
  ConfigMap Snapshot() const override { return state_; }
  void RestoreSnapshot(const ConfigMap& state) override;

  ConfigFormat format() const { return codec_->format(); }

 private:
  void MaybeAutoFlush() {
    if (auto_flush_) Flush();
  }

  const FormatCodec* codec_;
  bool auto_flush_;
  ConfigMap state_;
  std::string file_text_;
  bool dirty_ = false;
  FlushObserver flush_observer_;
};

}  // namespace ocasta
