#include "configstore/memory_store.h"

#include "common/strings.h"

namespace ocasta {

std::optional<Value> MemoryStore::Read(const std::string& key) {
  ValidateKey(key);
  auto it = state_.find(key);
  if (it == state_.end()) return std::nullopt;
  return it->second;
}

void MemoryStore::Write(const std::string& key, Value value) {
  ValidateKey(key);
  state_[key] = std::move(value);
}

bool MemoryStore::Remove(const std::string& key) {
  ValidateKey(key);
  return state_.erase(key) != 0;
}

std::vector<std::string> MemoryStore::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = state_.lower_bound(prefix); it != state_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  return keys;
}

void MemoryStore::RestoreSnapshot(const ConfigMap& state) {
  for (const auto& [key, value] : state) ValidateKey(key);
  state_ = state;
}

}  // namespace ocasta
