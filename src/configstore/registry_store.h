// Windows-registry-like configuration store.
//
// The paper's Windows logger hooks the registry API (Detours-style) after
// injecting itself into Explorer. Here the registry itself is simulated:
// a hierarchical key-value store with backslash-separated paths rooted at
// a hive name. The interception layer (InterceptingStore) plays the role
// of the injected hook library.
#pragma once

#include "configstore/memory_store.h"

namespace ocasta {

class RegistryStore final : public MemoryStore {
 public:
  StoreKind kind() const override { return StoreKind::kRegistry; }

  // Registry-flavored convenience API, mirroring RegSetValueEx/RegQueryValueEx
  // usage in applications ("key path" + "value name").
  void SetValue(const std::string& key_path, const std::string& value_name, Value value) {
    Write(key_path + "\\" + value_name, std::move(value));
  }
  std::optional<Value> QueryValue(const std::string& key_path, const std::string& value_name) {
    return Read(key_path + "\\" + value_name);
  }
  bool DeleteValue(const std::string& key_path, const std::string& value_name) {
    return Remove(key_path + "\\" + value_name);
  }

 protected:
  // Valid keys: "HKEY_CURRENT_USER\..." or "HKEY_LOCAL_MACHINE\..." with
  // non-empty, backslash-separated segments.
  void ValidateKey(const std::string& key) const override;
};

}  // namespace ocasta
