// Access events — the observation stream produced by the interception layer.
#pragma once

#include <string>

#include "common/time.h"
#include "configstore/config_store.h"
#include "ttkv/value.h"

namespace ocasta {

enum class AccessOp : uint8_t {
  kRead = 0,
  kWrite = 1,
  kDelete = 2,
};

const char* AccessOpName(AccessOp op);

// One observed access by an application to its configuration store.
struct AccessEvent {
  TimeMicros timestamp = 0;
  std::string app;   // Application identity (process image in the paper).
  StoreKind store = StoreKind::kRegistry;
  AccessOp op = AccessOp::kRead;
  std::string key;
  Value value;  // Written value; none for reads and deletes.

  friend bool operator==(const AccessEvent&, const AccessEvent&) = default;
};

// Consumer of access events (trace log, TTKV recorder, tees).
class AccessSink {
 public:
  virtual ~AccessSink() = default;
  virtual void OnAccess(const AccessEvent& event) = 0;
};

}  // namespace ocasta
