// Plain-text codec: flat "key= value" files with no section structure
// (the paper's second "key= value" list format).
#pragma once

#include "parsers/codec.h"

namespace ocasta {

class PlainTextCodec final : public FormatCodec {
 public:
  ConfigMap Parse(const std::string& text) const override;
  std::string Serialize(const ConfigMap& map) const override;
  ConfigFormat format() const override { return ConfigFormat::kPlainText; }
};

}  // namespace ocasta
