// XML codec (configuration-file subset).
//
// Supported: a single root element, nested elements, attributes, text
// content, comments, XML declaration, and the five standard entities.
// Not supported (not produced by configuration files we model): mixed
// content, CDATA, processing instructions, namespaces.
//
// Flattening rules:
//  - element path segments join with '/';
//  - an attribute becomes "<element-path>@<attr-name>";
//  - element text content becomes the value at the element's path;
//  - repeated sibling elements with the same name get "#<index>" suffixes
//    on every occurrence ("item#0", "item#1", ...).
#pragma once

#include "parsers/codec.h"

namespace ocasta {

class XmlCodec final : public FormatCodec {
 public:
  ConfigMap Parse(const std::string& text) const override;

  // Requires exactly one top-level element in the map's path structure
  // (XML documents have a single root); throws ParseError otherwise.
  std::string Serialize(const ConfigMap& map) const override;

  ConfigFormat format() const override { return ConfigFormat::kXml; }
};

}  // namespace ocasta
