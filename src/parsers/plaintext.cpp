#include "parsers/plaintext.h"

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

ConfigMap PlainTextCodec::Parse(const std::string& text) const {
  ConfigMap map;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("plain-text line missing '='", line_no, 1);
    }
    const std::string key(Trim(line.substr(0, eq)));
    if (key.empty()) throw ParseError("plain-text line with empty key", line_no, 1);
    map[key] = InferScalar(UnescapeField(Trim(line.substr(eq + 1)), '='));
  }
  return map;
}

std::string PlainTextCodec::Serialize(const ConfigMap& map) const {
  std::string out;
  for (const auto& [key, value] : map) {
    out += key + "= " + EscapeTrimmedField(value.ToDisplay(), '=') + "\n";
  }
  return out;
}

}  // namespace ocasta
