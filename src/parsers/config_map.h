// Flat key-value view of a configuration file.
//
// Every file-format parser produces a ConfigMap: hierarchical structure is
// flattened into '/'-separated key paths, mirroring how Ocasta "abstracts
// configurations into key-value pairs". The flush-diff logger compares two
// ConfigMaps (before/after a flush) to infer which keys changed.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ttkv/value.h"

namespace ocasta {

using ConfigMap = std::map<std::string, Value>;

// One inferred change between two flushes of a configuration file.
struct ConfigDelta {
  enum class Kind { kWrite, kDelete };
  Kind kind = Kind::kWrite;
  std::string key;
  Value value;  // Meaningful for kWrite only.

  friend bool operator==(const ConfigDelta&, const ConfigDelta&) = default;
};

// Computes the changes that turn `before` into `after`: keys present only
// in `after` or with a different value are writes; keys present only in
// `before` are deletes. Output is ordered by key.
std::vector<ConfigDelta> DiffConfigMaps(const ConfigMap& before, const ConfigMap& after);

// Heuristic scalar typing used by the text-based formats (INI, plain text,
// XML text content): "true"/"false" → bool, integer literal → int, real
// literal → real, everything else → string.
Value InferScalar(const std::string& text);

}  // namespace ocasta
