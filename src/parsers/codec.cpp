#include "parsers/codec.h"

#include "common/error.h"
#include "parsers/ini.h"
#include "parsers/json.h"
#include "parsers/plaintext.h"
#include "parsers/pskv.h"
#include "parsers/xml.h"

namespace ocasta {

const char* FormatName(ConfigFormat format) {
  switch (format) {
    case ConfigFormat::kIni: return "ini";
    case ConfigFormat::kPlainText: return "plaintext";
    case ConfigFormat::kJson: return "json";
    case ConfigFormat::kXml: return "xml";
    case ConfigFormat::kPskv: return "pskv";
  }
  return "unknown";
}

const FormatCodec& CodecFor(ConfigFormat format) {
  static const IniCodec ini;
  static const PlainTextCodec plain;
  static const JsonCodec json;
  static const XmlCodec xml;
  static const PskvCodec pskv;
  switch (format) {
    case ConfigFormat::kIni: return ini;
    case ConfigFormat::kPlainText: return plain;
    case ConfigFormat::kJson: return json;
    case ConfigFormat::kXml: return xml;
    case ConfigFormat::kPskv: return pskv;
  }
  throw Error("unknown config format");
}

}  // namespace ocasta
