#include "parsers/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <variant>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

namespace {

// ----- In-memory JSON tree used by both directions -------------------------

struct JsonNode;
using JsonObject = std::map<std::string, std::unique_ptr<JsonNode>>;
using JsonArray = std::vector<std::unique_ptr<JsonNode>>;

struct JsonNode {
  std::variant<Value, JsonObject, JsonArray> data;
};

// ----- Parsing --------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::unique_ptr<JsonNode> ParseDocument() {
    SkipWs();
    auto node = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) Fail("trailing characters after JSON document");
    return node;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    size_t line = 1;
    size_t col = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw ParseError("JSON: " + what, line, col);
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(StrFormat("expected '%c'", c));
    ++pos_;
  }

  std::unique_ptr<JsonNode> ParseValue() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Leaf(Value(ParseString()));
      case 't':
        ExpectWord("true");
        return Leaf(Value(true));
      case 'f':
        ExpectWord("false");
        return Leaf(Value(false));
      case 'n':
        ExpectWord("null");
        return Leaf(Value());
      default: return Leaf(ParseNumber());
    }
  }

  static std::unique_ptr<JsonNode> Leaf(Value v) {
    auto node = std::make_unique<JsonNode>();
    node->data = std::move(v);
    return node;
  }

  void ExpectWord(const char* word) {
    for (const char* p = word; *p; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) Fail(StrFormat("expected '%s'", word));
      ++pos_;
    }
  }

  std::unique_ptr<JsonNode> ParseObject() {
    Expect('{');
    auto node = std::make_unique<JsonNode>();
    JsonObject members;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      node->data = std::move(members);
      return node;
    }
    while (true) {
      SkipWs();
      std::string name = ParseString();
      SkipWs();
      Expect(':');
      SkipWs();
      members[std::move(name)] = ParseValue();
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      break;
    }
    node->data = std::move(members);
    return node;
  }

  std::unique_ptr<JsonNode> ParseArray() {
    Expect('[');
    auto node = std::make_unique<JsonNode>();
    JsonArray items;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      node->data = std::move(items);
      return node;
    }
    while (true) {
      SkipWs();
      items.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      break;
    }
    node->data = std::move(items);
    return node;
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<uint32_t>(h - 'A' + 10);
            else Fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (BMP only; surrogate pairs are not produced by the
          // simulated applications).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: Fail("unknown escape");
      }
    }
  }

  Value ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") Fail("malformed number");
    if (token.find_first_of(".eE") == std::string::npos) {
      return Value(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    }
    const double real = std::strtod(token.c_str(), nullptr);
    // JSON has no spelling for infinities, so an overflowing literal
    // ("1e999") cannot survive a serialize round-trip; reject it here
    // rather than emit a token no parser accepts.
    if (!std::isfinite(real)) Fail("number overflows double");
    return Value(real);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ----- Flattening -----------------------------------------------------------

bool AllStrings(const JsonArray& items) {
  for (const auto& item : items) {
    const Value* leaf = std::get_if<Value>(&item->data);
    if (leaf == nullptr || leaf->type() != ValueType::kString) return false;
  }
  return true;
}

void Flatten(const JsonNode& node, const std::string& path, ConfigMap& out) {
  if (const Value* leaf = std::get_if<Value>(&node.data)) {
    out[path] = *leaf;
    return;
  }
  if (const JsonObject* obj = std::get_if<JsonObject>(&node.data)) {
    for (const auto& [name, child] : *obj) {
      if (name.find('/') != std::string::npos) {
        throw ParseError("JSON member name contains '/': " + name);
      }
      // An empty name is just as unrepresentable in the flat encoding as a
      // '/': "a//b" and "/0" cannot be split back unambiguously.
      if (name.empty()) throw ParseError("JSON member name is empty");
      Flatten(*child, path.empty() ? name : path + "/" + name, out);
    }
    return;
  }
  const JsonArray& items = std::get<JsonArray>(node.data);
  if (AllStrings(items)) {
    std::vector<std::string> list;
    list.reserve(items.size());
    for (const auto& item : items) list.push_back(std::get<Value>(item->data).as_string());
    out[path] = Value(std::move(list));
    return;
  }
  for (size_t i = 0; i < items.size(); ++i) {
    // Same empty-path join as objects: a root-level array must flatten to
    // "0", "1", ... — "/0" would carry an empty leading segment.
    const std::string index = std::to_string(i);
    Flatten(*items[i], path.empty() ? index : path + "/" + index, out);
  }
}

// ----- Unflattening + serialization ------------------------------------------

bool IsIndexSegment(const std::string& s) {
  if (s.empty()) return false;
  // Leading zeros disqualify: Flatten spells indices via std::to_string, so
  // "01" can only be an object member name — treating it as index 1 would
  // collapse distinct members ("01", "1") into one array slot.
  if (s.size() > 1 && s[0] == '0') return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// force_object: an index-LOOKING segment is still an object member name
// when any sibling segment is non-numeric — {"1": ..., "c": ...} flattens
// to "1" and "c" under one parent, and rebuilding "1" as an array index
// would wipe the object (or vice versa), silently dropping keys.
JsonNode* Descend(JsonNode& node, const std::string& segment, bool force_object) {
  if (IsIndexSegment(segment) && !force_object) {
    if (!std::holds_alternative<JsonArray>(node.data)) node.data = JsonArray{};
    auto& arr = std::get<JsonArray>(node.data);
    const size_t index = static_cast<size_t>(std::strtoull(segment.c_str(), nullptr, 10));
    while (arr.size() <= index) arr.push_back(std::make_unique<JsonNode>());
    return arr[index].get();
  }
  if (!std::holds_alternative<JsonObject>(node.data)) node.data = JsonObject{};
  auto& obj = std::get<JsonObject>(node.data);
  auto& slot = obj[segment];
  if (!slot) slot = std::make_unique<JsonNode>();
  return slot.get();
}

void AppendEscaped(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void SerializeNode(const JsonNode& node, std::string& out, int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string child_pad(static_cast<size_t>(indent + 1) * 2, ' ');
  if (const Value* leaf = std::get_if<Value>(&node.data)) {
    switch (leaf->type()) {
      case ValueType::kNone: out += "null"; break;
      case ValueType::kBool: out += leaf->as_bool() ? "true" : "false"; break;
      case ValueType::kInt: out += std::to_string(leaf->as_int()); break;
      case ValueType::kReal: {
        // Keep the token recognizably real: a bare "1" would re-parse as an
        // integer and change the value's type (kInt has its own case above).
        std::string real = StrFormat("%.17g", leaf->as_real());
        if (real.find_first_of(".eE") == std::string::npos &&
            real.find_first_of("0123456789") != std::string::npos) {
          real += ".0";
        }
        out += real;
        break;
      }
      case ValueType::kString: AppendEscaped(leaf->as_string(), out); break;
      case ValueType::kStringList: {
        out += "[";
        const auto& list = leaf->as_list();
        for (size_t i = 0; i < list.size(); ++i) {
          if (i) out += ", ";
          AppendEscaped(list[i], out);
        }
        out += "]";
        break;
      }
    }
    return;
  }
  if (const JsonObject* obj = std::get_if<JsonObject>(&node.data)) {
    if (obj->empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    size_t i = 0;
    for (const auto& [name, child] : *obj) {
      out += child_pad;
      AppendEscaped(name, out);
      out += ": ";
      SerializeNode(*child, out, indent + 1);
      if (++i < obj->size()) out += ",";
      out += "\n";
    }
    out += pad + "}";
    return;
  }
  const JsonArray& arr = std::get<JsonArray>(node.data);
  if (arr.empty()) {
    out += "[]";
    return;
  }
  out += "[\n";
  for (size_t i = 0; i < arr.size(); ++i) {
    out += child_pad;
    SerializeNode(*arr[i], out, indent + 1);
    if (i + 1 < arr.size()) out += ",";
    out += "\n";
  }
  out += pad + "]";
}

}  // namespace

ConfigMap JsonCodec::Parse(const std::string& text) const {
  JsonParser parser(text);
  const auto root = parser.ParseDocument();
  ConfigMap map;
  Flatten(*root, "", map);
  return map;
}

std::string JsonCodec::Serialize(const ConfigMap& map) const {
  // The empty path means the document root IS the value (a top-level
  // scalar or string list, e.g. the file "42"). It can never coexist with
  // other keys: Parse emits it only when the root is not a container.
  if (map.count("") != 0) {
    if (map.size() != 1) {
      throw ParseError("path \"\" (scalar document root) cannot have sibling keys");
    }
    JsonNode scalar_root{map.begin()->second};
    std::string out;
    SerializeNode(scalar_root, out, 0);
    out += "\n";
    return out;
  }
  // Direct-initialize the variant alternative: gcc 12's -Wmaybe-uninitialized
  // misfires on the default-construct-then-move-assign form at -O1.
  JsonNode root{JsonObject{}};
  // A parent rebuilds as an ARRAY only when its child segments are exactly
  // the dense canonical indices 0..n-1 — precisely what Flatten emits for a
  // real array. Any non-numeric sibling, or a gap ({"1": x} as an object
  // member name), means the numeric segments are member names and the
  // parent must stay an OBJECT: rebuilding "1" as an index would wipe
  // siblings or invent a null at the hole. Collected up front because
  // Descend sees one path at a time and siblings arrive across iterations.
  std::set<std::string> object_parents;
  std::map<std::string, std::set<uint64_t>> numeric_children;
  for (const auto& [path, value] : map) {
    std::string parent;
    for (const std::string& segment : Split(path, '/')) {
      if (!IsIndexSegment(segment)) {
        object_parents.insert(parent);
      } else {
        numeric_children[parent].insert(std::strtoull(segment.c_str(), nullptr, 10));
      }
      parent = parent.empty() ? segment : parent + "/" + segment;
    }
  }
  for (const auto& [parent, indices] : numeric_children) {
    if (*indices.rbegin() != indices.size() - 1) object_parents.insert(parent);
  }
  for (const auto& [path, value] : map) {
    JsonNode* node = &root;
    std::string parent;
    for (const std::string& segment : Split(path, '/')) {
      node = Descend(*node, segment, object_parents.count(parent) != 0);
      parent = parent.empty() ? segment : parent + "/" + segment;
    }
    node->data = value;
  }
  std::string out;
  SerializeNode(root, out, 0);
  out += "\n";
  return out;
}

}  // namespace ocasta
