#include "parsers/ini.h"

#include <cctype>
#include <string_view>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

ConfigMap IniCodec::Parse(const std::string& text) const {
  ConfigMap map;
  std::string section;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == ';' || line[0] == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ParseError("malformed INI section header", line_no, 1);
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("INI line missing '='", line_no, 1);
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) throw ParseError("INI line with empty key", line_no, 1);
    const std::string path = section.empty() ? key : section + "/" + key;
    map[path] = InferScalar(UnescapeField(value, '='));
  }
  return map;
}

std::string IniCodec::Serialize(const ConfigMap& map) const {
  // Sectionless (top-level) keys must ALL be written before the first
  // section header: INI has no syntax to return to the top-level scope, so
  // a bare key emitted after "[s]" would re-parse into section s. They are
  // not necessarily contiguous in the sorted map ("host" sorts between
  // sections "general" and "net"), hence the separate first pass; paths
  // sharing a section ARE contiguous, so the second pass emits each section
  // header exactly once.
  // Split section/key at the LAST '/' where both sides survive a re-parse:
  // non-empty, trim-stable (Parse trims header contents and keys, so a side
  // with edge whitespace would come back different), and an '='-free key
  // (an '=' in key position re-parses as the key/value boundary; section
  // names are safe inside "[...]" where '=' and '/' are literal — and Parse
  // accepts them there, so paths like "a=b/c/key" do occur). Scanning from
  // the last '/' backwards always reaches the join point Parse built the
  // path from, if any; paths with no valid split ("/foo", "abc/") are
  // emitted as bare keys, which Parse returns verbatim.
  const auto trim_stable = [](std::string_view side) {
    return !side.empty() && !std::isspace(static_cast<unsigned char>(side.front())) &&
           !std::isspace(static_cast<unsigned char>(side.back()));
  };
  const auto section_split = [&](const std::string& path) {
    size_t slash = path.rfind('/');
    while (slash != std::string::npos) {
      const std::string_view section = std::string_view(path).substr(0, slash);
      const std::string_view key = std::string_view(path).substr(slash + 1);
      if (trim_stable(section) && trim_stable(key) && key.find('=') == std::string_view::npos &&
          key[0] != '#' && key[0] != ';' && key[0] != '[') {
        break;  // A key starting like a comment/header would not re-parse as a key.
      }
      slash = slash == 0 ? std::string::npos : path.rfind('/', slash - 1);
    }
    return slash;
  };
  std::string out;
  for (const auto& [path, value] : map) {
    if (section_split(path) != std::string::npos) continue;
    out += path + " = " + EscapeTrimmedField(value.ToDisplay(), '=') + "\n";
  }
  std::string current_section;
  for (const auto& [path, value] : map) {
    const size_t slash = section_split(path);
    if (slash == std::string::npos) continue;
    const std::string section = path.substr(0, slash);
    const std::string key = path.substr(slash + 1);
    if (section != current_section) {
      if (!out.empty()) out += '\n';
      out += "[" + section + "]\n";
      current_section = section;
    }
    out += key + " = " + EscapeTrimmedField(value.ToDisplay(), '=') + "\n";
  }
  return out;
}

}  // namespace ocasta
