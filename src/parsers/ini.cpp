#include "parsers/ini.h"

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

ConfigMap IniCodec::Parse(const std::string& text) const {
  ConfigMap map;
  std::string section;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == ';' || line[0] == '#') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ParseError("malformed INI section header", line_no, 1);
      }
      section = std::string(Trim(line.substr(1, line.size() - 2)));
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError("INI line missing '='", line_no, 1);
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) throw ParseError("INI line with empty key", line_no, 1);
    const std::string path = section.empty() ? key : section + "/" + key;
    map[path] = InferScalar(UnescapeField(value, '='));
  }
  return map;
}

std::string IniCodec::Serialize(const ConfigMap& map) const {
  // ConfigMap is ordered by key, so paths sharing a section are contiguous.
  std::string out;
  std::string current_section;
  bool wrote_top_level = false;
  for (const auto& [path, value] : map) {
    const size_t slash = path.find('/');
    const std::string section = slash == std::string::npos ? "" : path.substr(0, slash);
    const std::string key = slash == std::string::npos ? path : path.substr(slash + 1);
    if (section != current_section || (!wrote_top_level && section.empty())) {
      if (!section.empty()) {
        if (!out.empty()) out += '\n';
        out += "[" + section + "]\n";
      }
      current_section = section;
      wrote_top_level = section.empty();
    }
    out += key + " = " + EscapeField(value.ToDisplay(), '=') + "\n";
  }
  return out;
}

}  // namespace ocasta
