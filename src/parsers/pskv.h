// PostScript-style key/value codec (Adobe Reader preference files).
//
// Grammar (a small slice of PostScript data syntax):
//   file    := { pair }
//   pair    := '/' name value 'def'
//   value   := number | 'true' | 'false' | '(' string ')' | dict | array
//   dict    := '<<' { '/' name value } '>>'
//   array   := '[' { '(' string ')' } ']'     (string arrays only)
// Dicts nest and flatten with '/'; string arrays become StringList values.
// String literals escape ')' '(' '\' with a backslash.
#pragma once

#include "parsers/codec.h"

namespace ocasta {

class PskvCodec final : public FormatCodec {
 public:
  ConfigMap Parse(const std::string& text) const override;
  std::string Serialize(const ConfigMap& map) const override;
  ConfigFormat format() const override { return ConfigFormat::kPskv; }
};

}  // namespace ocasta
