#include "parsers/config_map.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace ocasta {

std::vector<ConfigDelta> DiffConfigMaps(const ConfigMap& before, const ConfigMap& after) {
  std::vector<ConfigDelta> deltas;
  auto ib = before.begin();
  auto ia = after.begin();
  while (ib != before.end() || ia != after.end()) {
    if (ia == after.end() || (ib != before.end() && ib->first < ia->first)) {
      deltas.push_back({ConfigDelta::Kind::kDelete, ib->first, Value()});
      ++ib;
    } else if (ib == before.end() || ia->first < ib->first) {
      deltas.push_back({ConfigDelta::Kind::kWrite, ia->first, ia->second});
      ++ia;
    } else {
      if (ib->second != ia->second) {
        deltas.push_back({ConfigDelta::Kind::kWrite, ia->first, ia->second});
      }
      ++ib;
      ++ia;
    }
  }
  return deltas;
}

namespace {

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeReal(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  // Must consume the whole token and contain a '.' or exponent so that
  // plain integers stay integers.
  if (end != s.c_str() + s.size()) return false;
  return s.find_first_of(".eE") != std::string::npos;
}

}  // namespace

Value InferScalar(const std::string& text) {
  if (text == "true") return Value(true);
  if (text == "false") return Value(false);
  if (LooksLikeInt(text)) return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
  if (LooksLikeReal(text)) {
    // Overflowing literals ("1e999") and nan tokens stay strings: inf has
    // no re-parseable display form and NaN breaks Value equality, so
    // neither belongs in a config scalar.
    const double real = std::strtod(text.c_str(), nullptr);
    if (std::isfinite(real)) return Value(real);
  }
  return Value(text);
}

}  // namespace ocasta
