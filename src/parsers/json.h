// JSON codec.
//
// Flattening rules:
//  - nested objects join member names with '/';
//  - an array whose elements are all strings becomes a StringList value at
//    the array's path (how browser bookmark lists and MRU lists appear);
//  - any other array is flattened element-wise with the decimal index as a
//    path segment ("tabs/0/url");
//  - null becomes the none Value.
// Member names must not contain '/' (none of the simulated applications
// produce such names); ParseError otherwise.
#pragma once

#include "parsers/codec.h"

namespace ocasta {

class JsonCodec final : public FormatCodec {
 public:
  ConfigMap Parse(const std::string& text) const override;
  std::string Serialize(const ConfigMap& map) const override;
  ConfigFormat format() const override { return ConfigFormat::kJson; }
};

}  // namespace ocasta
