// Format codec interface and registry.
//
// The paper implements "custom parsers for several common file formats,
// such as XML, JSON, PostScript, INI and plain text". Each codec converts
// between a file's text and the flat ConfigMap abstraction.
#pragma once

#include <memory>
#include <string>

#include "parsers/config_map.h"

namespace ocasta {

enum class ConfigFormat {
  kIni,
  kPlainText,
  kJson,
  kXml,
  kPskv,  // PostScript-style key/value (Adobe Reader preferences).
};

const char* FormatName(ConfigFormat format);

class FormatCodec {
 public:
  virtual ~FormatCodec() = default;

  // Parses file text into flattened key-value pairs. Throws ParseError on
  // malformed input.
  virtual ConfigMap Parse(const std::string& text) const = 0;

  // Serializes a ConfigMap back to file text. Serialize(Parse(t)) is
  // semantically idempotent: Parse(Serialize(m)) == m for maps the format
  // can represent.
  virtual std::string Serialize(const ConfigMap& map) const = 0;

  virtual ConfigFormat format() const = 0;
};

// Returns the process-wide codec for a format (codecs are stateless).
const FormatCodec& CodecFor(ConfigFormat format);

}  // namespace ocasta
