// INI codec: hierarchical "key = value" files with [section] headers.
//
// Key paths are "section/key"; keys before any section header are
// top-level. Comment lines start with ';' or '#'.
#pragma once

#include "parsers/codec.h"

namespace ocasta {

class IniCodec final : public FormatCodec {
 public:
  ConfigMap Parse(const std::string& text) const override;
  std::string Serialize(const ConfigMap& map) const override;
  ConfigFormat format() const override { return ConfigFormat::kIni; }
};

}  // namespace ocasta
