#include "parsers/xml.h"

#include <cctype>
#include <map>
#include <memory>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

namespace {

struct XmlElement {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlElement>> children;
  std::string text;  // Meaningful only when children is empty.
};

// ----- Parsing --------------------------------------------------------------

class XmlParser {
 public:
  explicit XmlParser(const std::string& text) : text_(text) {}

  std::unique_ptr<XmlElement> ParseDocument() {
    SkipProlog();
    auto root = ParseElement();
    SkipMisc();
    if (pos_ != text_.size()) Fail("trailing content after root element");
    return root;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("XML: " + what, line, 0);
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  void SkipComment() {
    // Caller ensured text starts with "<!--".
    const size_t end = text_.find("-->", pos_ + 4);
    if (end == std::string::npos) Fail("unterminated comment");
    pos_ = end + 3;
  }

  void SkipProlog() {
    SkipWs();
    if (StartsWith(std::string_view(text_).substr(pos_), "<?xml")) {
      const size_t end = text_.find("?>", pos_);
      if (end == std::string::npos) Fail("unterminated XML declaration");
      pos_ = end + 2;
    }
    SkipMisc();
  }

  void SkipMisc() {
    while (true) {
      SkipWs();
      if (StartsWith(std::string_view(text_).substr(pos_), "<!--")) {
        SkipComment();
        continue;
      }
      return;
    }
  }

  std::string ParseName() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
            text_[pos_] == '-' || text_[pos_] == '.' || text_[pos_] == ':')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected a name");
    return text_.substr(start, pos_ - start);
  }

  std::string DecodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) Fail("unterminated entity");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else Fail("unknown entity &" + std::string(entity) + ";");
      i = semi;
    }
    return out;
  }

  std::unique_ptr<XmlElement> ParseElement() {
    if (pos_ >= text_.size() || text_[pos_] != '<') Fail("expected '<'");
    ++pos_;
    auto element = std::make_unique<XmlElement>();
    element->name = ParseName();
    // Attributes.
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) Fail("unterminated start tag");
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') Fail("malformed empty-element tag");
        pos_ += 2;
        return element;  // Self-closing: no content.
      }
      const std::string attr_name = ParseName();
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '=') Fail("expected '=' after attribute name");
      ++pos_;
      SkipWs();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        Fail("expected quoted attribute value");
      }
      const char quote = text_[pos_++];
      const size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) Fail("unterminated attribute value");
      element->attributes[attr_name] = DecodeEntities(std::string_view(text_).substr(pos_, end - pos_));
      pos_ = end + 1;
    }
    // Content: either child elements (with whitespace/comments between) or text.
    std::string text_content;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated element <" + element->name + ">");
      if (text_[pos_] == '<') {
        if (StartsWith(std::string_view(text_).substr(pos_), "<!--")) {
          SkipComment();
          continue;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          pos_ += 2;
          const std::string closing = ParseName();
          if (closing != element->name) {
            Fail("mismatched closing tag </" + closing + "> for <" + element->name + ">");
          }
          SkipWs();
          if (pos_ >= text_.size() || text_[pos_] != '>') Fail("malformed closing tag");
          ++pos_;
          break;
        }
        if (!Trim(text_content).empty()) Fail("mixed content is not supported");
        text_content.clear();
        element->children.push_back(ParseElement());
        continue;
      }
      text_content += text_[pos_++];
    }
    if (element->children.empty()) {
      element->text = DecodeEntities(Trim(text_content));
    } else if (!Trim(text_content).empty()) {
      Fail("mixed content is not supported");
    }
    return element;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ----- Flattening -----------------------------------------------------------

void Flatten(const XmlElement& element, const std::string& path, ConfigMap& out) {
  for (const auto& [attr, value] : element.attributes) {
    out[path + "@" + attr] = InferScalar(value);
  }
  if (element.children.empty()) {
    // Empty elements (<empty/> or <k></k>) carry no value; only text
    // content produces a key.
    if (!element.text.empty()) out[path] = InferScalar(element.text);
    return;
  }
  // Count duplicate child names to decide which need "#index" suffixes.
  std::map<std::string, int> name_counts;
  for (const auto& child : element.children) ++name_counts[child->name];
  std::map<std::string, int> seen;
  for (const auto& child : element.children) {
    std::string segment = child->name;
    if (name_counts[child->name] > 1) {
      segment += "#" + std::to_string(seen[child->name]++);
    }
    Flatten(*child, path.empty() ? segment : path + "/" + segment, out);
  }
}

// ----- Unflattening + serialization -----------------------------------------

struct BuildNode {
  std::map<std::string, std::string> attributes;
  // Ordered by segment so output is deterministic; "name#k" sorts after
  // "name#j" for j<k<10 (our simulated lists stay below 10 duplicates where
  // ordering matters; larger MRU lists use zero-padded keys).
  std::map<std::string, std::unique_ptr<BuildNode>> children;
  Value text;
  bool has_text = false;
};

void EncodeEntities(const std::string& s, std::string& out, bool in_attribute) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += in_attribute ? "&quot;" : "\""; break;
      default: out += c;
    }
  }
}

std::string StripIndex(const std::string& segment) {
  const size_t hash = segment.rfind('#');
  return hash == std::string::npos ? segment : segment.substr(0, hash);
}

void SerializeElement(const std::string& segment, const BuildNode& node, std::string& out,
                      int indent) {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  out += pad + "<" + StripIndex(segment);
  for (const auto& [attr, value] : node.attributes) {
    out += " " + attr + "=\"";
    EncodeEntities(value, out, /*in_attribute=*/true);
    out += "\"";
  }
  if (node.children.empty() && !node.has_text) {
    out += "/>\n";
    return;
  }
  out += ">";
  if (node.children.empty()) {
    EncodeEntities(node.text.ToDisplay(), out, /*in_attribute=*/false);
    out += "</" + StripIndex(segment) + ">\n";
    return;
  }
  out += "\n";
  for (const auto& [child_segment, child] : node.children) {
    SerializeElement(child_segment, *child, out, indent + 1);
  }
  out += pad + "</" + StripIndex(segment) + ">\n";
}

}  // namespace

ConfigMap XmlCodec::Parse(const std::string& text) const {
  XmlParser parser(text);
  const auto root = parser.ParseDocument();
  ConfigMap map;
  Flatten(*root, root->name, map);
  return map;
}

std::string XmlCodec::Serialize(const ConfigMap& map) const {
  BuildNode root_holder;
  for (const auto& [path, value] : map) {
    // Split off a trailing "@attr" if present.
    std::string element_path = path;
    std::string attribute;
    const size_t at = path.rfind('@');
    if (at != std::string::npos && path.find('/', at) == std::string::npos) {
      element_path = path.substr(0, at);
      attribute = path.substr(at + 1);
    }
    BuildNode* node = &root_holder;
    for (const std::string& segment : Split(element_path, '/')) {
      auto& slot = node->children[segment];
      if (!slot) slot = std::make_unique<BuildNode>();
      node = slot.get();
    }
    if (!attribute.empty()) {
      node->attributes[attribute] = value.ToDisplay();
    } else {
      node->text = value;
      node->has_text = true;
    }
  }
  if (root_holder.children.empty()) {
    // An empty map still needs a document: emit a conventional empty root,
    // which parses back to the empty map (empty elements carry no value).
    return "<?xml version=\"1.0\"?>\n<config/>\n";
  }
  if (root_holder.children.size() != 1) {
    throw ParseError(StrFormat("XML documents need exactly one root element, map has %zu",
                               root_holder.children.size()));
  }
  std::string out = "<?xml version=\"1.0\"?>\n";
  const auto& [segment, node] = *root_holder.children.begin();
  SerializeElement(segment, *node, out, 0);
  return out;
}

}  // namespace ocasta
