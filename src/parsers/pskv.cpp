#include "parsers/pskv.h"

#include <cctype>
#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

namespace {

class PskvParser {
 public:
  PskvParser(const std::string& text, ConfigMap& out) : text_(text), out_(out) {}

  void ParseDocument() {
    while (true) {
      SkipWs();
      if (pos_ >= text_.size()) return;
      ParsePair("");
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("PSKV: " + what, line, 0);
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_[pos_] == '%') {  // PostScript comment to end of line.
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        return;
      }
    }
  }

  std::string ParseName() {
    if (pos_ >= text_.size() || text_[pos_] != '/') Fail("expected '/name'");
    ++pos_;
    const size_t start = pos_;
    // '/' is allowed inside the token: the flat serializer spells nested
    // dict paths as "/a/b", which must re-parse to the same ConfigMap path.
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != '[' && text_[pos_] != '<') {
      ++pos_;
    }
    if (pos_ == start) Fail("empty name");
    return text_.substr(start, pos_ - start);
  }

  std::string ParseWord() {
    SkipWs();
    const size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    return text_.substr(start, pos_ - start);
  }

  void ExpectWord(const char* word) {
    const std::string got = ParseWord();
    if (got != word) Fail(StrFormat("expected '%s', got '%s'", word, got.c_str()));
  }

  std::string ParseStringLiteral() {
    // Caller ensured text_[pos_] == '('.
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string literal");
      const char c = text_[pos_++];
      if (c == ')') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("unterminated escape");
        out += text_[pos_++];
      } else {
        out += c;
      }
    }
  }

  void ParsePair(const std::string& prefix) {
    const std::string name = ParseName();
    const std::string path = prefix.empty() ? name : prefix + "/" + name;
    SkipWs();
    if (pos_ >= text_.size()) Fail("missing value for /" + name);
    const char c = text_[pos_];
    if (c == '(') {
      out_[path] = Value(ParseStringLiteral());
      ExpectWord("def");
    } else if (c == '[') {
      ++pos_;
      std::vector<std::string> items;
      while (true) {
        SkipWs();
        if (pos_ >= text_.size()) Fail("unterminated array");
        if (text_[pos_] == ']') {
          ++pos_;
          break;
        }
        if (text_[pos_] != '(') Fail("only string arrays are supported");
        items.push_back(ParseStringLiteral());
      }
      out_[path] = Value(std::move(items));
      ExpectWord("def");
    } else if (c == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '<') {
      pos_ += 2;
      while (true) {
        SkipWs();
        if (pos_ + 1 < text_.size() && text_[pos_] == '>' && text_[pos_ + 1] == '>') {
          pos_ += 2;
          break;
        }
        ParseDictPair(path);
      }
      ExpectWord("def");
    } else {
      out_[path] = ParseScalarWord();
      ExpectWord("def");
    }
  }

  // Parses a bare scalar token: true/false or a fully-consumed number.
  Value ParseScalarWord() {
    const std::string word = ParseWord();
    if (word == "true") return Value(true);
    if (word == "false") return Value(false);
    char* end = nullptr;
    const double d = std::strtod(word.c_str(), &end);
    if (word.empty() || end != word.c_str() + word.size()) {
      Fail("malformed value token '" + word + "'");
    }
    if (word.find_first_of(".eE") == std::string::npos) {
      return Value(static_cast<int64_t>(std::strtoll(word.c_str(), nullptr, 10)));
    }
    return Value(d);
  }

  // Inside '<< ... >>' pairs have no trailing 'def'.
  void ParseDictPair(const std::string& prefix) {
    const std::string name = ParseName();
    const std::string path = prefix + "/" + name;
    SkipWs();
    if (pos_ >= text_.size()) Fail("missing value for /" + name);
    const char c = text_[pos_];
    if (c == '(') {
      out_[path] = Value(ParseStringLiteral());
    } else if (c == '[') {
      ++pos_;
      std::vector<std::string> items;
      while (true) {
        SkipWs();
        if (pos_ >= text_.size()) Fail("unterminated array");
        if (text_[pos_] == ']') {
          ++pos_;
          break;
        }
        if (text_[pos_] != '(') Fail("only string arrays are supported");
        items.push_back(ParseStringLiteral());
      }
      out_[path] = Value(std::move(items));
    } else if (c == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '<') {
      pos_ += 2;
      while (true) {
        SkipWs();
        if (pos_ + 1 < text_.size() && text_[pos_] == '>' && text_[pos_ + 1] == '>') {
          pos_ += 2;
          break;
        }
        ParseDictPair(path);
      }
    } else {
      out_[path] = ParseScalarWord();
    }
  }

  const std::string& text_;
  ConfigMap& out_;
  size_t pos_ = 0;
};

void AppendString(const std::string& s, std::string& out) {
  out += '(';
  for (char c : s) {
    if (c == '(' || c == ')' || c == '\\') out += '\\';
    out += c;
  }
  out += ')';
}

void AppendScalar(const Value& v, std::string& out) {
  switch (v.type()) {
    case ValueType::kBool: out += v.as_bool() ? "true" : "false"; break;
    case ValueType::kInt: out += std::to_string(v.as_int()); break;
    case ValueType::kReal: {
      std::string t = StrFormat("%.17g", v.as_real());
      // Ensure the token re-parses as a real, not an int.
      if (t.find_first_of(".eE") == std::string::npos) t += ".0";
      out += t;
      break;
    }
    case ValueType::kString: AppendString(v.as_string(), out); break;
    case ValueType::kStringList: {
      out += '[';
      const auto& list = v.as_list();
      for (size_t i = 0; i < list.size(); ++i) {
        if (i) out += ' ';
        AppendString(list[i], out);
      }
      out += ']';
      break;
    }
    case ValueType::kNone: AppendString("", out); break;
  }
}

}  // namespace

ConfigMap PskvCodec::Parse(const std::string& text) const {
  ConfigMap map;
  PskvParser parser(text, map);
  parser.ParseDocument();
  return map;
}

std::string PskvCodec::Serialize(const ConfigMap& map) const {
  // Serialize flat: one "/a/b value def" line per key, with nested names
  // spelled as slash paths. (The parser accepts both flat paths and nested
  // dicts; flat output keeps diffs line-oriented like Reader's files.)
  std::string out = "% Ocasta PSKV preferences\n";
  for (const auto& [path, value] : map) {
    out += "/" + path + " ";
    AppendScalar(value, out);
    out += " def\n";
  }
  return out;
}

}  // namespace ocasta
