#include "repair/search.h"

#include <algorithm>
#include <set>

#include "repair/sandbox.h"

namespace ocasta {

namespace {

struct Candidate {
  size_t cluster_index = 0;
  TimeMicros version_time = 0;
};

}  // namespace

RepairOutcome RepairController::Run(const RepairConfig& config) const {
  const TimeMicros start = config.start_time.value_or(0);
  const TimeMicros end = config.end_time.value_or(std::numeric_limits<TimeMicros>::max());
  const TimeMicros window = Seconds(config.window_seconds);

  // Per-cluster candidate versions (newest first), in recovery order:
  // fewest modifications inside the search bounds first ("changes to
  // configuration settings should be infrequent"), most recently modified
  // first among ties (the paper's "bias towards checking more recently
  // modified clusters first" — the source of Figure 2a's growth with
  // injection age). Bounding the count to the searched period keeps
  // clusters that merely *used to* churn (e.g. a frozen MRU list) from
  // sinking to the back of the queue.
  std::vector<size_t> order = clusters_.RecoveryOrder();
  std::vector<std::vector<ClusterVersion>> versions(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    versions[i] = ClusterVersions(ttkv_, clusters_.cluster(order[i]), start, end, window);
  }
  {
    std::vector<size_t> index(order.size());
    for (size_t i = 0; i < index.size(); ++i) index[i] = i;
    std::stable_sort(index.begin(), index.end(), [&](size_t a, size_t b) {
      if (versions[a].size() != versions[b].size()) {
        return versions[a].size() < versions[b].size();
      }
      const TimeMicros last_a = versions[a].empty() ? 0 : versions[a].front().change_time;
      const TimeMicros last_b = versions[b].empty() ? 0 : versions[b].front().change_time;
      return last_a > last_b;
    });
    std::vector<size_t> new_order(order.size());
    std::vector<std::vector<ClusterVersion>> new_versions(order.size());
    for (size_t i = 0; i < index.size(); ++i) {
      new_order[i] = order[index[i]];
      new_versions[i] = std::move(versions[index[i]]);
    }
    order = std::move(new_order);
    versions = std::move(new_versions);
  }

  // Flatten into the strategy's visit order.
  std::vector<Candidate> schedule;
  if (config.strategy == SearchStrategy::kDfs) {
    for (size_t i = 0; i < order.size(); ++i) {
      for (const ClusterVersion& version : versions[i]) {
        schedule.push_back({order[i], version.change_time});
      }
    }
  } else {
    size_t depth = 0;
    bool any = true;
    while (any) {
      any = false;
      for (size_t i = 0; i < order.size(); ++i) {
        if (depth < versions[i].size()) {
          schedule.push_back({order[i], versions[i][depth].change_time});
          any = true;
        }
      }
      ++depth;
    }
  }

  RepairOutcome outcome;

  // The erroneous screenshot: the trial replayed on the broken state.
  SandboxStore baseline(current_state_, store_kind_);
  const Screenshot erroneous = trial_.run(baseline);
  std::set<uint64_t> seen_hashes{erroneous.hash};

  for (const Candidate& candidate : schedule) {
    const KeyCluster& cluster = clusters_.cluster(candidate.cluster_index);
    std::vector<std::string> absent;
    const ConfigMap values = MaterializeBefore(ttkv_, cluster, candidate.version_time, &absent);

    SandboxStore sandbox(current_state_, store_kind_);
    ApplyRollback(sandbox, values, absent);
    const Screenshot shot = trial_.run(sandbox);

    ++outcome.total_trials;
    outcome.total_time += config.cost.per_trial();

    TrialRecord record;
    record.cluster_index = candidate.cluster_index;
    record.version_time = candidate.version_time;
    record.screenshot_kept = seen_hashes.insert(shot.hash).second;
    if (record.screenshot_kept) ++outcome.unique_screenshots;

    const bool fixed_now = record.screenshot_kept && oracle_.LooksFixed(shot);
    record.fixed = fixed_now;
    outcome.log.push_back(record);

    if (fixed_now && !outcome.fixed) {
      outcome.fixed = true;
      outcome.trials_to_fix = outcome.total_trials;
      outcome.time_to_fix = outcome.total_time;
      outcome.offending_cluster = candidate.cluster_index;
      outcome.fix_version_time = candidate.version_time;
      // "Ocasta permanently rolls back the cluster to its corresponding
      // value and returns back to recording mode."
      outcome.fixed_state = sandbox.Snapshot();
      if (config.stop_at_fix) break;
    }
  }
  return outcome;
}

ClusterSet SingletonClusters(const TTKV& ttkv) {
  std::vector<KeyCluster> clusters;
  for (uint32_t id : ttkv.modified_key_ids()) {
    const VersionedRecord& record = ttkv.record(id);
    KeyCluster cluster;
    cluster.keys = {id};
    cluster.version_count = record.write_count + record.delete_count;
    cluster.last_modified = record.last_modified();
    clusters.push_back(std::move(cluster));
  }
  return ClusterSet(std::move(clusters), ttkv.num_keys());
}

ClusterSet RemapClusters(const ClusterSet& clusters, const TTKV& from, const TTKV& to,
                         double window_seconds) {
  const TimeMicros window = Seconds(window_seconds);
  const TimeMicros horizon = std::numeric_limits<TimeMicros>::max();
  std::vector<bool> assigned(to.num_keys(), false);
  std::vector<KeyCluster> remapped;

  auto annotate = [&](KeyCluster& cluster) {
    cluster.version_count = ClusterVersions(to, cluster, 0, horizon, window).size();
    cluster.last_modified = 0;
    for (uint32_t id : cluster.keys) {
      cluster.last_modified = std::max(cluster.last_modified, to.record(id).last_modified());
    }
  };

  for (const KeyCluster& cluster : clusters.clusters()) {
    KeyCluster mapped;
    for (uint32_t id : cluster.keys) {
      const std::string& name = from.key_name(id);
      if (!to.contains(name)) continue;  // Key absent from the target history.
      const uint32_t to_id = to.key_id(name);
      mapped.keys.push_back(to_id);
      assigned[to_id] = true;
    }
    if (mapped.keys.empty()) continue;
    std::sort(mapped.keys.begin(), mapped.keys.end());
    annotate(mapped);
    remapped.push_back(std::move(mapped));
  }
  // Keys modified only in the target history (e.g. the injected error was
  // their first recorded change) become singletons.
  for (uint32_t id : to.modified_key_ids()) {
    if (assigned[id]) continue;
    KeyCluster single;
    single.keys = {id};
    annotate(single);
    remapped.push_back(std::move(single));
  }
  return ClusterSet(std::move(remapped), to.num_keys());
}

bool RequiredKeyOracle::LooksFixed(const Screenshot& shot) const {
  for (const Requirement& requirement : requirements_) {
    const std::string want = requirement.key + " = " + requirement.good_display + "\n";
    if (shot.text.find(want) == std::string::npos) return false;
  }
  return true;
}

}  // namespace ocasta
