#include "repair/versions.h"

#include <algorithm>

namespace ocasta {

std::vector<ClusterVersion> ClusterVersions(const TTKV& ttkv, const KeyCluster& cluster,
                                            TimeMicros start, TimeMicros end,
                                            TimeMicros window) {
  std::vector<TimeMicros> times;
  for (uint32_t key_id : cluster.keys) {
    for (const Version& version : ttkv.record(key_id).versions) {
      if (version.timestamp >= start && version.timestamp <= end) {
        times.push_back(version.timestamp);
      }
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());

  // Collapse bursts: times within `window` of the previous one belong to
  // the same cluster change; the version time is the burst's first write.
  std::vector<ClusterVersion> versions;
  TimeMicros last_seen = 0;
  for (size_t i = 0; i < times.size(); ++i) {
    if (versions.empty() || times[i] - last_seen > window) {
      versions.push_back(ClusterVersion{.change_time = times[i]});
    }
    last_seen = times[i];
  }
  std::reverse(versions.begin(), versions.end());  // Newest first.
  return versions;
}

ConfigMap MaterializeBefore(const TTKV& ttkv, const KeyCluster& cluster,
                            TimeMicros change_time, std::vector<std::string>* absent_keys) {
  ConfigMap values;
  for (uint32_t key_id : cluster.keys) {
    const VersionedRecord& record = ttkv.record(key_id);
    const auto value = record.value_at(change_time - 1);
    if (value) {
      values[record.key] = *value;
    } else if (absent_keys != nullptr) {
      absent_keys->push_back(record.key);
    }
  }
  return values;
}

void ApplyRollback(ConfigStore& store, const ConfigMap& values,
                   const std::vector<std::string>& absent_keys) {
  for (const auto& [key, value] : values) store.Write(key, value);
  for (const std::string& key : absent_keys) store.Remove(key);
}

}  // namespace ocasta
