// The repair controller: Ocasta's GUI-assisted configuration-error search.
//
// Given the clustering of an application's TTKV, a user-recorded trial that
// makes the error's symptoms visible, and optional start/end time bounds,
// the controller rolls back one cluster of settings at a time to each of
// its historical values, replays the trial in a sandbox, takes a
// screenshot, deduplicates it against the erroneous screenshot and all
// previous ones, and asks the user ("oracle") whether any screenshot shows
// a fixed application. Clusters are visited least-modified-first; within
// the cluster × version grid the search order is DFS (all versions of one
// cluster before the next) or BFS (newest version of every cluster, then
// the second-newest of every cluster, ...).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "apps/render.h"
#include "clustering/cluster_set.h"
#include "repair/versions.h"
#include "ttkv/ttkv.h"

namespace ocasta {

// The user-recorded trial: deterministically replays the UI actions that
// expose the error and returns the resulting screen.
struct Trial {
  std::string app;
  std::function<Screenshot(ConfigStore&)> run;
};

// The user who inspects recorded screenshots for one showing a fixed
// application.
class UserOracle {
 public:
  virtual ~UserOracle() = default;
  virtual bool LooksFixed(const Screenshot& shot) const = 0;
};

enum class SearchStrategy : uint8_t { kDfs = 0, kBfs = 1 };

// Wall-clock cost of one trial execution, modelled deterministically so
// Table IV's recovery times are machine-independent and reproducible.
struct CostModel {
  TimeMicros rollback = Seconds(2);
  TimeMicros app_launch = Seconds(5);
  TimeMicros trial_replay = Seconds(14);
  TimeMicros screenshot = Seconds(1);
  TimeMicros per_trial() const { return rollback + app_launch + trial_replay + screenshot; }
};

struct RepairConfig {
  SearchStrategy strategy = SearchStrategy::kDfs;
  // Search bounds on cluster-version times; the paper's user supplies these
  // ("the earliest/latest time the user believes the configuration error
  // could have been introduced"). Defaults: the whole recorded history.
  std::optional<TimeMicros> start_time;
  std::optional<TimeMicros> end_time;
  // Burst-collapsing window for cluster versions (same default as the
  // clustering window).
  double window_seconds = 1.0;
  CostModel cost;
  // When true the search stops at the first fix (interactive use); when
  // false it exhausts all candidates, which also yields the total search
  // time Table IV reports alongside the time-to-fix.
  bool stop_at_fix = false;
};

struct TrialRecord {
  size_t cluster_index = 0;
  TimeMicros version_time = 0;
  bool screenshot_kept = false;  // Survived deduplication.
  bool fixed = false;
};

struct RepairOutcome {
  bool fixed = false;
  size_t trials_to_fix = 0;   // Trials executed up to and including the fix.
  size_t total_trials = 0;
  TimeMicros time_to_fix = 0;
  TimeMicros total_time = 0;
  size_t unique_screenshots = 0;  // Kept after dedup (user inspects these).
  size_t offending_cluster = std::numeric_limits<size_t>::max();
  TimeMicros fix_version_time = 0;
  ConfigMap fixed_state;  // Live state with the fix permanently applied.
  std::vector<TrialRecord> log;
};

class RepairController {
 public:
  // `ttkv` and `clusters` describe the application's recorded history;
  // `current_state` is its live (erroneous) configuration; `store_kind`
  // matches the application's store. None of the references are retained
  // beyond Run().
  RepairController(const TTKV& ttkv, const ClusterSet& clusters, ConfigMap current_state,
                   StoreKind store_kind, Trial trial, const UserOracle& oracle)
      : ttkv_(ttkv),
        clusters_(clusters),
        current_state_(std::move(current_state)),
        store_kind_(store_kind),
        trial_(std::move(trial)),
        oracle_(oracle) {}

  RepairOutcome Run(const RepairConfig& config) const;

 private:
  const TTKV& ttkv_;
  const ClusterSet& clusters_;
  ConfigMap current_state_;
  StoreKind store_kind_;
  Trial trial_;
  const UserOracle& oracle_;
};

// The Ocasta-NoClust baseline: every modified key is its own cluster, so
// the search rolls back one configuration setting at a time. Version counts
// come from each key's own write history.
ClusterSet SingletonClusters(const TTKV& ttkv);

// Re-targets a cluster set computed on one TTKV (e.g. the healthy history
// Ocasta clustered while recording) onto another TTKV's key-id space (the
// full history including the injected error). Keys modified only in the
// target store become singleton clusters; version counts and last-modified
// times are recomputed from the target history with the given
// burst-collapsing window.
ClusterSet RemapClusters(const ClusterSet& clusters, const TTKV& from, const TTKV& to,
                         double window_seconds);

// Convenience oracle: the application looks fixed when every required key
// renders with its known-good display value. This encodes "the symptoms of
// the configuration error are no longer visible" for our deterministic
// renderers.
class RequiredKeyOracle final : public UserOracle {
 public:
  struct Requirement {
    std::string key;
    std::string good_display;  // Expected "key = value" rendering.
  };

  explicit RequiredKeyOracle(std::vector<Requirement> requirements)
      : requirements_(std::move(requirements)) {}

  bool LooksFixed(const Screenshot& shot) const override;

 private:
  std::vector<Requirement> requirements_;
};

}  // namespace ocasta
