#include "repair/user_model.h"

#include <algorithm>

namespace ocasta {

namespace {

TimeMicros ClampedNormalSeconds(Rng& rng, double mean_s, double sd_s, double min_s) {
  const double drawn = rng.next_normal(mean_s, sd_s);
  return Seconds(std::max(min_s, drawn));
}

}  // namespace

ParticipantOutcome SimulateParticipant(Rng& rng, const ParticipantProfile& participant,
                                       const UserStudyErrorParams& error,
                                       size_t screenshots_to_inspect) {
  ParticipantOutcome outcome;

  // Trial creation: reproduce the error in the application and stop the
  // recording. Rated 1/5 difficulty by 74% of participants — under a
  // minute for almost everyone, slower for non-technical users.
  const double skill = participant.technical ? 1.0 : 1.6;
  const double familiarity = 1.4 - 0.6 * participant.app_familiarity;
  outcome.trial_creation =
      ClampedNormalSeconds(rng, 45.0 * skill * familiarity, 12.0, 15.0);

  // Screenshot selection: inspect the gallery until the fixed screenshot.
  const auto inspected = static_cast<double>(std::max<size_t>(1, screenshots_to_inspect));
  outcome.screenshot_selection =
      ClampedNormalSeconds(rng, 8.0 * skill * inspected, 3.0 * inspected, 3.0);
  // 1 of ~76 study selections (19 participants x 4 errors) went wrong.
  outcome.selected_correct_screenshot = !rng.next_bool(0.015);
  outcome.ocasta_total = outcome.trial_creation + outcome.screenshot_selection;

  // Manual troubleshooting with the 5-minute cutoff.
  const double fix_prob =
      std::min(1.0, error.manual_fix_prob * (participant.technical ? 1.25 : 0.45) *
                        (0.6 + 0.8 * participant.app_familiarity));
  outcome.manual_fixed = rng.next_bool(fix_prob);
  if (outcome.manual_fixed) {
    outcome.manual_time = std::min<TimeMicros>(
        error.manual_cutoff,
        ClampedNormalSeconds(rng, error.manual_fix_mean_s * familiarity, error.manual_fix_sd_s,
                             30.0));
  } else {
    outcome.manual_time = error.manual_cutoff;  // A lower bound, as in the paper.
  }
  return outcome;
}

std::vector<UserStudyErrorParams> UserStudyErrors() {
  return {
      // #11: Eye of GNOME printing — obscure GConf key; rarely fixed by hand.
      {.error_id = 11, .manual_fix_prob = 0.18, .manual_fix_mean_s = 240, .manual_fix_sd_s = 50},
      // #13: Chrome bookmark bar — somewhat discoverable in settings.
      {.error_id = 13, .manual_fix_prob = 0.35, .manual_fix_mean_s = 170, .manual_fix_sd_s = 60},
      // #15: Acrobat menu bar — keyboard-shortcut rescue is little known.
      {.error_id = 15, .manual_fix_prob = 0.22, .manual_fix_mean_s = 220, .manual_fix_sd_s = 55},
      // #16: Acrobat find box — the one error most participants fixed,
      // which "significantly lowered the average time for the manual fix".
      {.error_id = 16, .manual_fix_prob = 0.72, .manual_fix_mean_s = 120, .manual_fix_sd_s = 45},
  };
}

std::vector<ParticipantProfile> StudyParticipants(uint64_t seed) {
  Rng rng(seed);
  std::vector<ParticipantProfile> participants;
  for (int i = 0; i < 19; ++i) {
    ParticipantProfile participant;
    participant.technical = i >= 6;  // 6 non-technical users.
    participant.app_familiarity = 0.2 + 0.6 * rng.next_double();
    participants.push_back(participant);
  }
  return participants;
}

}  // namespace ocasta
