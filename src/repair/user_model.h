// Monte-Carlo user model for the paper's user study (Figure 4).
//
// The study's 19 participants (a) created a trial, (b) picked the fixed
// screenshot from Ocasta's gallery, and (c) tried to fix the same error by
// hand with a 5-minute cutoff. The paper compares the human time spent
// with Ocasta (trial creation + screenshot selection) against manual
// troubleshooting. This model reproduces that comparison's structure with
// distributions calibrated to the paper's qualitative report: trial
// creation was rated "easy" (≈1 on a 1-5 difficulty scale) and manual
// fixing mostly hit the cutoff except for the one error (case 16) a
// majority could fix.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace ocasta {

struct ParticipantProfile {
  bool technical = true;  // 13 of 19 participants were technical users.
  double app_familiarity = 0.5;  // [0,1]; scales both times.
};

struct UserStudyErrorParams {
  int error_id = 0;
  // Probability a participant fixes the error by hand within the cutoff.
  double manual_fix_prob = 0.25;
  // Manual fix time distribution when successful (seconds).
  double manual_fix_mean_s = 200;
  double manual_fix_sd_s = 60;
  TimeMicros manual_cutoff = Minutes(5);
};

struct ParticipantOutcome {
  TimeMicros trial_creation = 0;
  TimeMicros screenshot_selection = 0;
  TimeMicros ocasta_total = 0;  // trial_creation + screenshot_selection.
  TimeMicros manual_time = 0;   // Cutoff when the manual fix failed.
  bool manual_fixed = false;
  bool selected_correct_screenshot = true;
};

// Simulates one participant on one error. `screenshots_to_inspect` comes
// from the repair run (Table IV's "Screens" column): the user inspects up
// to that many screenshots before finding the fixed one.
ParticipantOutcome SimulateParticipant(Rng& rng, const ParticipantProfile& participant,
                                       const UserStudyErrorParams& error,
                                       size_t screenshots_to_inspect);

// The study's four errors (#11, #13, #15, #16 from Table III) with manual
// difficulty calibrated so only case 16 is commonly fixed by hand.
std::vector<UserStudyErrorParams> UserStudyErrors();

// The 19 participants (2 faculty, 13 grad students, 4 staff/engineers;
// 6 non-technical), deterministically derived from `seed`.
std::vector<ParticipantProfile> StudyParticipants(uint64_t seed);

}  // namespace ocasta
