// Historical cluster versions: when a cluster changed, and what its state
// was before each change.
#pragma once

#include <vector>

#include "clustering/cluster_set.h"
#include "configstore/config_store.h"
#include "ttkv/ttkv.h"

namespace ocasta {

// A rollback candidate: the cluster's state immediately before the
// modification at `change_time`.
struct ClusterVersion {
  TimeMicros change_time = 0;
};

// Distinct modification times of any cluster member inside [start, end],
// newest first. Times closer together than `window` collapse into one
// version (a multi-key burst is one cluster change, not several).
std::vector<ClusterVersion> ClusterVersions(const TTKV& ttkv, const KeyCluster& cluster,
                                            TimeMicros start, TimeMicros end,
                                            TimeMicros window);

// The cluster's key values immediately before `change_time`. Keys that did
// not exist then are absent from the map — rollback must delete them.
// `absent_keys` receives those key names.
ConfigMap MaterializeBefore(const TTKV& ttkv, const KeyCluster& cluster,
                            TimeMicros change_time, std::vector<std::string>* absent_keys);

// Applies a rollback state to a store: writes present keys, removes absent
// ones ("rolling back an entire cluster of configuration settings at a
// time").
void ApplyRollback(ConfigStore& store, const ConfigMap& values,
                   const std::vector<std::string>& absent_keys);

}  // namespace ocasta
