#include "repair/sandbox.h"

#include "common/strings.h"

namespace ocasta {

std::optional<Value> SandboxStore::Read(const std::string& key) {
  if (tombstones_.count(key)) return std::nullopt;
  auto it = overlay_.find(key);
  if (it != overlay_.end()) return it->second;
  auto base_it = base_.find(key);
  if (base_it != base_.end()) return base_it->second;
  return std::nullopt;
}

void SandboxStore::Write(const std::string& key, Value value) {
  tombstones_.erase(key);
  overlay_[key] = std::move(value);
}

bool SandboxStore::Remove(const std::string& key) {
  const bool existed = Read(key).has_value();
  overlay_.erase(key);
  if (base_.count(key)) tombstones_.insert(key);
  return existed;
}

std::vector<std::string> SandboxStore::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  auto consider = [&](const std::string& key) {
    if (!StartsWith(key, prefix) || tombstones_.count(key)) return;
    if (!keys.empty() && keys.back() == key) return;  // Overlay shadowed base.
    keys.push_back(key);
  };
  // Merge the two ordered maps.
  auto ib = base_.begin();
  auto io = overlay_.begin();
  while (ib != base_.end() || io != overlay_.end()) {
    if (io == overlay_.end() || (ib != base_.end() && ib->first < io->first)) {
      consider(ib->first);
      ++ib;
    } else if (ib == base_.end() || io->first < ib->first) {
      consider(io->first);
      ++io;
    } else {
      consider(ib->first);
      ++ib;
      ++io;
    }
  }
  return keys;
}

ConfigMap SandboxStore::Snapshot() const {
  ConfigMap merged = base_;
  for (const auto& [key, value] : overlay_) merged[key] = value;
  for (const std::string& key : tombstones_) merged.erase(key);
  return merged;
}

void SandboxStore::RestoreSnapshot(const ConfigMap& state) {
  overlay_ = state;
  tombstones_.clear();
  for (const auto& [key, value] : base_) {
    if (!state.count(key)) tombstones_.insert(key);
  }
}

void SandboxStore::Reset() {
  overlay_.clear();
  tombstones_.clear();
}

}  // namespace ocasta
