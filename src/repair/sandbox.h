// The trial sandbox.
//
// The paper runs each trial "in a sandbox, which prevents the execution to
// leave any persistent changes". SandboxStore is a copy-on-write overlay
// over a base configuration: reads fall through to the base, writes and
// deletions land in the overlay, and dropping the sandbox discards
// everything. One sandbox per trial.
#pragma once

#include <set>

#include "configstore/config_store.h"

namespace ocasta {

class SandboxStore final : public ConfigStore {
 public:
  // `base` is the live (erroneous) configuration; it is captured by value
  // so the sandbox stays stable even if the caller mutates its copy.
  SandboxStore(ConfigMap base, StoreKind kind) : base_(std::move(base)), kind_(kind) {}

  std::optional<Value> Read(const std::string& key) override;
  void Write(const std::string& key, Value value) override;
  bool Remove(const std::string& key) override;
  std::vector<std::string> ListKeys(const std::string& prefix) const override;
  StoreKind kind() const override { return kind_; }
  ConfigMap Snapshot() const override;
  void RestoreSnapshot(const ConfigMap& state) override;

  // Discards all sandboxed changes, returning to the base state.
  void Reset();

  size_t overlay_size() const { return overlay_.size() + tombstones_.size(); }

 private:
  ConfigMap base_;
  ConfigMap overlay_;
  std::set<std::string> tombstones_;
  StoreKind kind_;
};

}  // namespace ocasta
