#include "common/error.h"

#include <string.h>  // strerror_r (both GNU and XSI signatures live here).

#include <cstdio>

namespace ocasta {

std::string ErrnoString(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  // GNU strerror_r: returns the message (possibly a static immutable
  // string, possibly buf) and never fails.
  return strerror_r(err, buf, sizeof(buf));
#else
  // XSI strerror_r: fills buf, returns 0 on success.
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    std::snprintf(buf, sizeof(buf), "errno %d", err);
  }
  return buf;
#endif
}

std::string ErrnoMessage(const std::string& what, int err) {
  return what + ": " + ErrnoString(err);
}

}  // namespace ocasta
