// Small string utilities shared across the Ocasta libraries.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ocasta {

// Splits on a single-character separator. Empty fields are preserved:
// Split("a//b", '/') == {"a", "", "b"}. Split("", '/') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits and drops empty fields: SplitNonEmpty("/a//b/", '/') == {"a","b"}.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

std::string ToLower(std::string_view s);

// Minimal printf-style formatting (std::format is unavailable on GCC 12).
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Escapes a string for embedding in a single line of a text trace file
// (backslash-escapes '\', '\n', '\t' and the given extra separator).
std::string EscapeField(std::string_view s, char sep);
std::string UnescapeField(std::string_view s, char sep);

// EscapeField for a value that the reader will Trim BEFORE unescaping (the
// INI/plain-text "key = value" grammars): if the escaped form still starts
// with whitespace (a leading space/CR/FF/VT the standard escapes don't
// cover), a backslash is prefixed so the trim cannot eat it —
// UnescapeField maps the unknown escape "\<ws>" back to the bare char.
// Trailing whitespace needs no guard: Trim-then-unescape can never produce
// it on the read side, so Parse never yields such a value.
std::string EscapeTrimmedField(std::string_view s, char sep);

}  // namespace ocasta
