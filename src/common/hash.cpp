#include "common/hash.h"

namespace ocasta {

std::string HashToHex(uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

}  // namespace ocasta
