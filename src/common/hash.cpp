#include "common/hash.h"

#include <array>

namespace ocasta {

std::string HashToHex(uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[h & 0xf];
    h >>= 4;
  }
  return out;
}

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once at startup.
std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrc32Table();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ocasta
