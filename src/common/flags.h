// Minimal command-line flag parsing shared by the CLI and bench binaries:
// positional arguments plus "--name value" pairs ("--name" alone is the
// boolean "true"). Extracted from ocasta_cli so every driver binary parses
// flags the same way.
#pragma once

#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace ocasta {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  static Args Parse(int argc, char** argv, int from = 1) {
    Args args;
    for (int i = from; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) == 0) {
        const std::string name = argv[i] + 2;
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          args.flags[name] = argv[++i];
        } else {
          args.flags[name] = "true";
        }
      } else {
        args.positional.push_back(argv[i]);
      }
    }
    return args;
  }

  std::string Get(const std::string& name, const std::string& fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  int64_t GetInt(const std::string& name, int64_t fallback) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
  }
  bool Has(const std::string& name) const { return flags.count(name) != 0; }
};

}  // namespace ocasta
