// Hashing helpers: FNV-1a 64-bit, CRC-32, and hash combination.
//
// Used for screenshot fingerprints (deduplication in the repair gallery),
// for content-addressing rendered application state, and for framing
// write-ahead-log records (persist/wal.h). Stability across platforms
// matters (hashes appear in golden tests and on-disk artifacts), hence
// fixed algorithms instead of std::hash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ocasta {

inline constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t Fnv1a(std::string_view data, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= kFnvPrime;
  }
  return h;
}

constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Boost-style mix with 64-bit golden ratio.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

// Hex rendering of a 64-bit hash, 16 lowercase digits.
std::string HashToHex(uint64_t h);

// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip CRC). Detects the torn and
// bit-flipped write-ahead-log records that a plain length prefix cannot.
// Incremental: feed the previous return value back as `seed` to checksum a
// record split across buffers. Seed 0 with no data yields 0.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace ocasta
