#include "common/io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace ocasta {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw Error("read failed: " + path);
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  // Flush explicitly: the destructor's implicit flush swallows errors, so a
  // full disk would otherwise report success.
  out.flush();
  if (!out) throw Error("write failed: " + path);
}

}  // namespace ocasta
