// Lockdep runtime: per-thread held-lock stacks, the global acquired-held
// edge graph, and the abort-with-both-stacks reporter. Compiled to nothing
// unless OCASTA_LOCKDEP is defined (see lockdep.h).
#include "common/lockdep.h"

#ifdef OCASTA_LOCKDEP

#include <execinfo.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

namespace ocasta::lockdep::detail {

namespace {

constexpr int kMaxFrames = 24;

struct Capture {
  void* frames[kMaxFrames];
  int depth = 0;
};

Capture CaptureStack() {
  Capture c;
  c.depth = ::backtrace(c.frames, kMaxFrames);
  return c;
}

void PrintStack(const char* label, const Capture& c) {
  std::fprintf(stderr, "lockdep:   %s:\n", label);
  std::fflush(stderr);
  ::backtrace_symbols_fd(c.frames, c.depth, STDERR_FILENO);
}

struct HeldLock {
  const LockClass* cls = nullptr;
  const void* addr = nullptr;
  bool shared = false;
  Capture acquired_at;
};

// The acquiring thread's currently-held ordered locks, oldest first.
thread_local std::vector<HeldLock> t_held;

// First observation of each (held-class -> acquired-class) edge, with the
// stacks that witnessed it. Guarded by g_graph_mu — a plain std::mutex,
// deliberately outside lockdep's own instrumentation, and a leaf: no user
// lock is ever taken while it is held.
struct EdgeWitness {
  Capture held_at;     // Where the held (earlier) lock was acquired.
  Capture acquired_at; // Where the later lock was acquired under it.
};
std::mutex g_graph_mu;
std::map<std::pair<const LockClass*, const LockClass*>, EdgeWitness>& Edges() {
  static std::map<std::pair<const LockClass*, const LockClass*>, EdgeWitness> edges;
  return edges;
}

[[noreturn]] void Abort() {
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const LockClass* cls, const void* addr, bool shared) {
  const Capture here = CaptureStack();
  for (const HeldLock& held : t_held) {
    if (held.addr == addr) {
      std::fprintf(stderr,
                   "lockdep: RECURSIVE ACQUISITION: thread re-locks \"%s\" (%s after %s) — "
                   "self-deadlock\n",
                   cls->name, shared ? "shared" : "exclusive",
                   held.shared ? "shared" : "exclusive");
      PrintStack("first acquisition", held.acquired_at);
      PrintStack("re-acquisition (current stack)", here);
      Abort();
    }
    if (cls->rank != kUnranked && held.cls->rank != kUnranked && cls->rank <= held.cls->rank) {
      std::fprintf(stderr,
                   "lockdep: RANK VIOLATION: acquiring \"%s\" (rank %d) while holding \"%s\" "
                   "(rank %d) — ranks must strictly increase\n",
                   cls->name, cls->rank, held.cls->name, held.cls->rank);
      PrintStack("held lock acquired here", held.acquired_at);
      PrintStack("violating acquisition (current stack)", here);
      Abort();
    }
  }
  // Record held->acquired edges and abort on any observed cycle. With every
  // class ranked this is redundant (the rank rule fires first); it is the
  // safety net for kUnranked classes and for rank-table mistakes.
  if (!t_held.empty()) {
    std::lock_guard<std::mutex> graph_lock(g_graph_mu);
    auto& edges = Edges();
    for (const HeldLock& held : t_held) {
      if (held.cls == cls) continue;
      const auto reverse = edges.find({cls, held.cls});
      if (reverse != edges.end()) {
        std::fprintf(stderr,
                     "lockdep: LOCK-ORDER INVERSION: this thread holds \"%s\" and acquires "
                     "\"%s\", but the opposite order \"%s\" -> \"%s\" was observed earlier — "
                     "deadlock cycle\n",
                     held.cls->name, cls->name, cls->name, held.cls->name);
        PrintStack("this thread: held lock acquired here", held.acquired_at);
        PrintStack("this thread: conflicting acquisition (current stack)", here);
        PrintStack("earlier order: first lock acquired here", reverse->second.held_at);
        PrintStack("earlier order: second lock acquired here", reverse->second.acquired_at);
        Abort();
      }
      edges.try_emplace({held.cls, cls},
                        EdgeWitness{.held_at = held.acquired_at, .acquired_at = here});
    }
  }
  t_held.push_back(HeldLock{.cls = cls, .addr = addr, .shared = shared, .acquired_at = here});
}

void OnRelease(const void* addr) {
  // Search newest-first: releases are almost always LIFO, but scoped locks
  // may legally unwind out of order.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->addr == addr) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr, "lockdep: RELEASE OF UNHELD LOCK (%p) — unbalanced lock/unlock\n", addr);
  Abort();
}

}  // namespace ocasta::lockdep::detail

#endif  // OCASTA_LOCKDEP
