// Clang thread-safety (capability) annotation macros — the compile-time
// companion to the runtime lockdep layer (common/lockdep.h).
//
// Lockdep catches lock-ORDER bugs on paths a test happens to execute;
// these annotations make lock OWNERSHIP — "which mutex guards which
// field", "which private method assumes which lock is held" — a contract
// the compiler proves on EVERY path, executed or not. The vocabulary is
// clang's -Wthread-safety capability analysis (the one Abseil/Chromium
// production stacks build on):
//
//   OCASTA_CAPABILITY("mutex")   on a mutex class: its instances are
//                                capabilities the analysis tracks.
//   OCASTA_SCOPED_CAPABILITY     on an RAII guard: ctor acquires, dtor
//                                releases (see lockdep's guard types).
//   OCASTA_GUARDED_BY(mu)        on a field: reads need mu held (shared
//                                suffices), writes need it exclusively.
//   OCASTA_PT_GUARDED_BY(mu)     same, for the pointee of a pointer field.
//   OCASTA_REQUIRES(mu)          on a function: callers must hold mu
//                                exclusively (the FooLocked() convention,
//                                machine-checked).
//   OCASTA_REQUIRES_SHARED(mu)   callers must hold mu at least shared.
//   OCASTA_ACQUIRE / OCASTA_RELEASE / OCASTA_ACQUIRE_SHARED /
//   OCASTA_RELEASE_SHARED / OCASTA_TRY_ACQUIRE / OCASTA_TRY_ACQUIRE_SHARED
//                                on lock/unlock members: how a call edits
//                                the caller's held-lock set.
//   OCASTA_RELEASE_GENERIC       release that may be shared or exclusive.
//   OCASTA_EXCLUDES(mu)          callers must NOT hold mu (deadlock
//                                documentation for self-locking entry
//                                points).
//   OCASTA_RETURN_CAPABILITY(mu) on a getter returning a mutex (or a
//                                reference to one): teaches the analysis
//                                the returned object IS mu, so guards
//                                built on the return value count as
//                                holding mu.
//   OCASTA_ASSERT_CAPABILITY(mu) runtime-checked assertion that mu is
//                                held (adds it to the held set).
//   OCASTA_NO_THREAD_SAFETY_ANALYSIS
//                                per-function opt-out. Policy (see
//                                docs/TOOLING.md): every use carries a
//                                one-line justification comment; blanket
//                                suppressions are not accepted.
//
// Off-clang (the default gcc tier-1 build) every macro expands to
// NOTHING, so annotated code is byte-identical to unannotated code —
// tests/thread_safety_smoke_test.cpp pins that. The analysis itself runs
// in the clang-threadsafety CI job with -Werror=thread-safety
// -Wthread-safety-beta.
//
// Known holes the annotations do NOT cover (why lockdep and TSan stay):
// std guards (std::lock_guard & friends) acquire inside system headers
// the analysis does not look into, so lockdep's guard types are used on
// the annotated surface; constructors/destructors are not analyzed; and
// a capability released and reacquired around a blocking region (group
// commit) is only as correct as its annotations.
#pragma once

// __has_attribute guards each attribute individually: the macro set
// degrades gracefully on older clangs instead of breaking the build.
#if defined(__clang__) && defined(__has_attribute)
#define OCASTA_TS_ATTR__(x) __has_attribute(x)
#else
#define OCASTA_TS_ATTR__(x) 0
#endif

#if OCASTA_TS_ATTR__(capability)
#define OCASTA_CAPABILITY(x) __attribute__((capability(x)))
#else
#define OCASTA_CAPABILITY(x)
#endif

#if OCASTA_TS_ATTR__(scoped_lockable)
#define OCASTA_SCOPED_CAPABILITY __attribute__((scoped_lockable))
#else
#define OCASTA_SCOPED_CAPABILITY
#endif

#if OCASTA_TS_ATTR__(guarded_by)
#define OCASTA_GUARDED_BY(x) __attribute__((guarded_by(x)))
#else
#define OCASTA_GUARDED_BY(x)
#endif

#if OCASTA_TS_ATTR__(pt_guarded_by)
#define OCASTA_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#else
#define OCASTA_PT_GUARDED_BY(x)
#endif

#if OCASTA_TS_ATTR__(requires_capability)
#define OCASTA_REQUIRES(...) __attribute__((requires_capability(__VA_ARGS__)))
#else
#define OCASTA_REQUIRES(...)
#endif

#if OCASTA_TS_ATTR__(requires_shared_capability)
#define OCASTA_REQUIRES_SHARED(...) \
  __attribute__((requires_shared_capability(__VA_ARGS__)))
#else
#define OCASTA_REQUIRES_SHARED(...)
#endif

#if OCASTA_TS_ATTR__(acquire_capability)
#define OCASTA_ACQUIRE(...) __attribute__((acquire_capability(__VA_ARGS__)))
#else
#define OCASTA_ACQUIRE(...)
#endif

#if OCASTA_TS_ATTR__(acquire_shared_capability)
#define OCASTA_ACQUIRE_SHARED(...) \
  __attribute__((acquire_shared_capability(__VA_ARGS__)))
#else
#define OCASTA_ACQUIRE_SHARED(...)
#endif

#if OCASTA_TS_ATTR__(release_capability)
#define OCASTA_RELEASE(...) __attribute__((release_capability(__VA_ARGS__)))
#else
#define OCASTA_RELEASE(...)
#endif

#if OCASTA_TS_ATTR__(release_shared_capability)
#define OCASTA_RELEASE_SHARED(...) \
  __attribute__((release_shared_capability(__VA_ARGS__)))
#else
#define OCASTA_RELEASE_SHARED(...)
#endif

#if OCASTA_TS_ATTR__(release_generic_capability)
#define OCASTA_RELEASE_GENERIC(...) \
  __attribute__((release_generic_capability(__VA_ARGS__)))
#else
#define OCASTA_RELEASE_GENERIC(...)
#endif

#if OCASTA_TS_ATTR__(try_acquire_capability)
#define OCASTA_TRY_ACQUIRE(...) \
  __attribute__((try_acquire_capability(__VA_ARGS__)))
#else
#define OCASTA_TRY_ACQUIRE(...)
#endif

#if OCASTA_TS_ATTR__(try_acquire_shared_capability)
#define OCASTA_TRY_ACQUIRE_SHARED(...) \
  __attribute__((try_acquire_shared_capability(__VA_ARGS__)))
#else
#define OCASTA_TRY_ACQUIRE_SHARED(...)
#endif

#if OCASTA_TS_ATTR__(locks_excluded)
#define OCASTA_EXCLUDES(...) __attribute__((locks_excluded(__VA_ARGS__)))
#else
#define OCASTA_EXCLUDES(...)
#endif

#if OCASTA_TS_ATTR__(assert_capability)
#define OCASTA_ASSERT_CAPABILITY(x) __attribute__((assert_capability(x)))
#else
#define OCASTA_ASSERT_CAPABILITY(x)
#endif

#if OCASTA_TS_ATTR__(assert_shared_capability)
#define OCASTA_ASSERT_SHARED_CAPABILITY(x) \
  __attribute__((assert_shared_capability(x)))
#else
#define OCASTA_ASSERT_SHARED_CAPABILITY(x)
#endif

#if OCASTA_TS_ATTR__(lock_returned)
#define OCASTA_RETURN_CAPABILITY(x) __attribute__((lock_returned(x)))
#else
#define OCASTA_RETURN_CAPABILITY(x)
#endif

#if OCASTA_TS_ATTR__(no_thread_safety_analysis)
#define OCASTA_NO_THREAD_SAFETY_ANALYSIS \
  __attribute__((no_thread_safety_analysis))
#else
#define OCASTA_NO_THREAD_SAFETY_ANALYSIS
#endif
