// Deterministic pseudo-random number generation.
//
// All stochastic components (workload generator, user-study Monte Carlo)
// draw from an explicitly-seeded Rng so every table and figure in the bench
// harness is reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace ocasta {

// xoshiro256** with a SplitMix64 seeding sequence. Small, fast, and good
// enough statistically for workload simulation; deliberately not
// std::mt19937 so the stream is identical across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). Precondition: n > 0.
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  // Uniform in [lo, hi] inclusive.
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Exponentially distributed with the given mean (inter-arrival times).
  double next_exponential(double mean) {
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log(1.0 - u);
  }

  // Standard normal via Box-Muller (one value per call; simple over fast).
  double next_normal(double mean, double stddev) {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 1e-12;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  // Picks an index according to non-negative weights. Precondition: at least
  // one weight is positive.
  size_t next_weighted(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    double r = next_double() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  // Derives an independent child generator (for per-application streams).
  Rng fork() { return Rng(next_u64() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace ocasta
