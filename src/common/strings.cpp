#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ocasta {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& part : Split(s, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

std::string EscapeField(std::string_view s, char sep) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c == sep) {
          out += '\\';
          out += 's';
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string EscapeTrimmedField(std::string_view s, char sep) {
  std::string out = EscapeField(s, sep);
  if (!out.empty() && std::isspace(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '\\');
  }
  return out;
}

std::string UnescapeField(std::string_view s, char sep) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 's': out += sep; break;
      default: out += s[i];
    }
  }
  return out;
}

}  // namespace ocasta
