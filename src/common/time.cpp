#include "common/time.h"

#include <cstdio>

namespace ocasta {

std::string FormatMinSec(TimeMicros d) {
  if (d < 0) d = 0;
  const int64_t total_seconds = d / kMicrosPerSecond;
  const int64_t minutes = total_seconds / 60;
  const int64_t seconds = total_seconds % 60;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld:%02lld", static_cast<long long>(minutes),
                static_cast<long long>(seconds));
  return buf;
}

std::string FormatTimestamp(TimeMicros t) {
  const int64_t day = t / kMicrosPerDay;
  int64_t rem = t % kMicrosPerDay;
  if (rem < 0) rem += kMicrosPerDay;
  const int64_t hours = rem / kMicrosPerHour;
  const int64_t minutes = (rem % kMicrosPerHour) / kMicrosPerMinute;
  const int64_t seconds = (rem % kMicrosPerMinute) / kMicrosPerSecond;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "day %lld %02lld:%02lld:%02lld",
                static_cast<long long>(day), static_cast<long long>(hours),
                static_cast<long long>(minutes), static_cast<long long>(seconds));
  return buf;
}

}  // namespace ocasta
