// Error types shared across all Ocasta libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace ocasta {

// Base class for all errors raised by the Ocasta libraries. Thrown for
// programming/contract errors (bad arguments, malformed input); recoverable
// conditions are expressed with std::optional / status returns instead.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Raised when parsing a configuration file or serialized artifact fails.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, size_t line, size_t column)
      : Error(what + " (line " + std::to_string(line) + ", col " +
              std::to_string(column) + ")"),
        line_(line),
        column_(column) {}
  explicit ParseError(const std::string& what) : Error(what), line_(0), column_(0) {}

  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  size_t line_;
  size_t column_;
};

// Raised when a store/TTKV operation violates a precondition (e.g. reading a
// key as-of a time before the trace started, rolling back an unknown key).
class StoreError : public Error {
 public:
  using Error::Error;
};

// Thread-safe strerror: every error path in the codebase may run on a
// worker/engine thread, and strerror(3) shares one static buffer.
std::string ErrnoString(int err);

// "what: <strerror(errno)>" — the common shape of syscall error messages.
std::string ErrnoMessage(const std::string& what, int err);

}  // namespace ocasta
