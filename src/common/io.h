// Whole-file IO helpers (trace files, TTKV snapshots).
#pragma once

#include <string>

namespace ocasta {

// Reads an entire file; throws Error when the file cannot be opened/read.
std::string ReadFile(const std::string& path);

// Writes (replacing) an entire file; throws Error on failure.
void WriteFile(const std::string& path, const std::string& contents);

}  // namespace ocasta
