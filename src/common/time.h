// Simulated time for deterministic trace generation and replay.
//
// Everything in this repository runs on simulated time: trace generation,
// the TTKV version history, the repair search's cost model. Internally time
// is kept at microsecond resolution; the trace recorder quantises to whole
// seconds to reproduce the paper's 1-second timestamp granularity (the
// source of the window-size artifact in Figure 3a).
#pragma once

#include <cstdint>
#include <string>

namespace ocasta {

// Microseconds since the (simulated) epoch.
using TimeMicros = int64_t;

inline constexpr TimeMicros kMicrosPerSecond = 1'000'000;
inline constexpr TimeMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr TimeMicros kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr TimeMicros kMicrosPerDay = 24 * kMicrosPerHour;

constexpr TimeMicros Seconds(double s) {
  return static_cast<TimeMicros>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr TimeMicros Minutes(double m) { return Seconds(m * 60.0); }
constexpr TimeMicros Hours(double h) { return Minutes(h * 60.0); }
constexpr TimeMicros Days(double d) { return Hours(d * 24.0); }

// Truncates a timestamp to whole-second resolution, mirroring the paper's
// trace-collection infrastructure which "only records the update time of
// configuration settings to the precision of the nearest second".
constexpr TimeMicros QuantizeToSecond(TimeMicros t) {
  return (t / kMicrosPerSecond) * kMicrosPerSecond;
}

// Renders a duration as "mm:ss" (used by the Table IV recovery harness).
std::string FormatMinSec(TimeMicros d);

// Renders a timestamp as "day N hh:mm:ss" for human-readable trace dumps.
std::string FormatTimestamp(TimeMicros t);

// A manually-advanced clock. The workload generator advances it as it
// simulates user sessions; the repair controller advances it according to
// its cost model.
class SimClock {
 public:
  explicit SimClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros now() const { return now_; }
  void advance(TimeMicros delta) { now_ += delta; }
  void advance_to(TimeMicros t) {
    if (t > now_) now_ = t;
  }

 private:
  TimeMicros now_;
};

}  // namespace ocasta
