// Lockdep — a debug-build lock-order checker for the concurrency surface.
//
// The engine/WAL/event-loop stack has ordering invariants that used to live
// only in comments ("writers never hold a shard mutex while taking
// tracker_mu_", "append_mu_ before sync_mu_, never the reverse"). This
// layer makes them machine-checked: every mutex with ordering constraints
// is an ordered_mutex / ordered_shared_mutex carrying a LockClass — a name
// plus a RANK — and, when lockdep is compiled in, every acquisition is
// validated against the locks the acquiring thread already holds:
//
//   * rank rule — ranks must STRICTLY INCREASE along an acquisition chain.
//     Taking a lock whose rank is <= any held lock's rank aborts with the
//     acquisition stack of the held lock AND the current stack.
//   * acquired-held graph — every (held-class -> acquired-class) edge is
//     recorded globally with both stack traces; observing the reverse edge
//     (a cycle, i.e. a lock-order inversion between threads) aborts with
//     all four stacks. This also covers kUnranked classes, which skip the
//     rank rule (none exist today; the hook is for locks whose order is
//     genuinely dynamic).
//   * recursion rule — re-acquiring a lock the thread already holds (even
//     shared-after-shared) aborts; nothing in this codebase relocks.
//
// Violations abort() immediately — a lock-order bug is a deadlock that
// merely hasn't scheduled yet, and aborting on the FIRST inconsistent
// acquisition catches it on every run instead of the one run where two
// threads interleave badly (this is how the deliberate-inversion test in
// tests/lockdep_test.cpp can prove the tracker-vs-shard invariant without
// actually deadlocking).
//
// The global rank table (see docs/TOOLING.md for the rationale of each
// edge) is defined at the bottom of this header. Gaps between ranks leave
// room for future locks (replication, io_uring completion queues).
//
// Build gating: compiled in only when the OCASTA_LOCKDEP macro is defined
// (cmake -DOCASTA_LOCKDEP=ON). Without it, ordered_mutex/ordered_shared_
// mutex are zero-overhead inline pass-throughs to std::mutex /
// std::shared_mutex — no extra state, no extra branches — so release
// builds pay nothing. The sanitizer CI jobs (TSan and ASan+UBSan) build
// with lockdep ON, so every ordering invariant is enforced on every test
// run that exercises concurrency.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace ocasta::lockdep {

#ifdef OCASTA_LOCKDEP
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// One lock CLASS (not instance): all 64 shard mutexes of a ShardedTtkv
// share one LockClass. Instances must be static-storage so identity is
// pointer identity.
struct LockClass {
  const char* name;
  int rank;  // kUnranked = graph-checked only; otherwise strictly ordered.
};

inline constexpr int kUnranked = 0;

namespace detail {
// Implemented in lockdep.cpp; only referenced when OCASTA_LOCKDEP is set,
// so release builds never pull the runtime in.
void OnAcquire(const LockClass* cls, const void* addr, bool shared);
void OnRelease(const void* addr);
}  // namespace detail

// Drop-in std::mutex with a lock class. Satisfies Lockable, so
// std::unique_lock / std::lock_guard / std::scoped_lock work unchanged.
class ordered_mutex {
 public:
#ifdef OCASTA_LOCKDEP
  explicit ordered_mutex(const LockClass& cls) : cls_(&cls) {}
  // OnAcquire runs BEFORE blocking on the underlying mutex: recursion and
  // ordering are properties of the acquisition ATTEMPT, and a recursive
  // lock would self-deadlock inside std::mutex before a post-lock check
  // could ever run. try_lock checks after success instead — it cannot
  // block, and a failed probe must leave no trace.
  void lock() {
    detail::OnAcquire(cls_, this, /*shared=*/false);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/false);
    return true;
  }
  void unlock() {
    detail::OnRelease(this);
    mu_.unlock();
  }
#else
  explicit ordered_mutex(const LockClass&) {}
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
#endif

  ordered_mutex(const ordered_mutex&) = delete;
  ordered_mutex& operator=(const ordered_mutex&) = delete;

 private:
  std::mutex mu_;
#ifdef OCASTA_LOCKDEP
  const LockClass* cls_;
#endif
};

// Drop-in std::shared_mutex with a lock class; shared acquisitions obey
// the same rank/graph rules as exclusive ones (a reader that takes locks
// out of order deadlocks writers just as well).
class ordered_shared_mutex {
 public:
#ifdef OCASTA_LOCKDEP
  explicit ordered_shared_mutex(const LockClass& cls) : cls_(&cls) {}
  // Same check-before-block rationale as ordered_mutex::lock above.
  void lock() {
    detail::OnAcquire(cls_, this, /*shared=*/false);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/false);
    return true;
  }
  void unlock() {
    detail::OnRelease(this);
    mu_.unlock();
  }
  void lock_shared() {
    detail::OnAcquire(cls_, this, /*shared=*/true);
    mu_.lock_shared();
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/true);
    return true;
  }
  void unlock_shared() {
    detail::OnRelease(this);
    mu_.unlock_shared();
  }
#else
  explicit ordered_shared_mutex(const LockClass&) {}
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }
#endif

  ordered_shared_mutex(const ordered_shared_mutex&) = delete;
  ordered_shared_mutex& operator=(const ordered_shared_mutex&) = delete;

 private:
  std::shared_mutex mu_;
#ifdef OCASTA_LOCKDEP
  const LockClass* cls_;
#endif
};

// Condition variable usable with ordered_mutex. condition_variable_any's
// wait() releases/reacquires through the instrumented lock()/unlock(), so
// held-lock state stays correct across waits. (The _any variant costs one
// extra internal mutex per cv; every cv in this codebase sits on a flush /
// checkpoint path where that is noise.)
using condvar = std::condition_variable_any;

// --- The global lock-order table --------------------------------------------
// Ranks strictly increase along every legal acquisition chain. Lower rank
// = acquired FIRST (outermost). The full rationale table lives in
// docs/TOOLING.md; the load-bearing edges:
//
//   checkpoint_mu_ < mu_          Checkpoint() stalls mutations for the cut
//   mu_ < {engine locks}          DurableEngine applies while serialized
//   mu_ < append_mu_ < sync_mu_   log-order == apply-order; group commit
//   tracker_mu_ < Shard::mu       DrainTracker holds the tracker while it
//                                 sweeps shards; writers must NEVER take
//                                 tracker_mu_ under a shard lock
//   join/pending/wake             leaves — nothing is acquired under them
inline constexpr LockClass kDurableCheckpointClass{"DurableEngine::checkpoint_mu_", 10};
inline constexpr LockClass kDurableMutateClass{"DurableEngine::mu_", 20};
inline constexpr LockClass kLocalEngineClass{"LocalEngine::mu_", 30};
inline constexpr LockClass kTrackerClass{"ShardedTtkv::tracker_mu_", 40};
inline constexpr LockClass kShardClass{"ShardedTtkv::Shard::mu", 50};
inline constexpr LockClass kWalAppendClass{"Wal::append_mu_", 60};
inline constexpr LockClass kWalSyncClass{"Wal::sync_mu_", 70};
inline constexpr LockClass kServerJoinClass{"TtkvServer::join_mu_", 80};
inline constexpr LockClass kEventLoopPendingClass{"EventLoop::pending_mu_", 90};
inline constexpr LockClass kDurableWakeClass{"DurableEngine::wake_mu_", 95};
// Metrics registry registration/snapshot path (src/obs/metrics.h). A leaf
// with a high rank because Snapshot() may run while an engine lock is held
// (LocalEngine answers METRICS under mu_); nothing is ever acquired under
// it — the record hot path is pure relaxed atomics and never sees it.
inline constexpr LockClass kObsRegistryClass{"obs::MetricsRegistry::mu_", 97};

}  // namespace ocasta::lockdep
