// Lockdep — a debug-build lock-order checker for the concurrency surface.
//
// The engine/WAL/event-loop stack has ordering invariants that used to live
// only in comments ("writers never hold a shard mutex while taking
// tracker_mu_", "append_mu_ before sync_mu_, never the reverse"). This
// layer makes them machine-checked: every mutex with ordering constraints
// is an ordered_mutex / ordered_shared_mutex carrying a LockClass — a name
// plus a RANK — and, when lockdep is compiled in, every acquisition is
// validated against the locks the acquiring thread already holds:
//
//   * rank rule — ranks must STRICTLY INCREASE along an acquisition chain.
//     Taking a lock whose rank is <= any held lock's rank aborts with the
//     acquisition stack of the held lock AND the current stack.
//   * acquired-held graph — every (held-class -> acquired-class) edge is
//     recorded globally with both stack traces; observing the reverse edge
//     (a cycle, i.e. a lock-order inversion between threads) aborts with
//     all four stacks. This also covers kUnranked classes, which skip the
//     rank rule (none exist today; the hook is for locks whose order is
//     genuinely dynamic).
//   * recursion rule — re-acquiring a lock the thread already holds (even
//     shared-after-shared) aborts; nothing in this codebase relocks.
//
// Violations abort() immediately — a lock-order bug is a deadlock that
// merely hasn't scheduled yet, and aborting on the FIRST inconsistent
// acquisition catches it on every run instead of the one run where two
// threads interleave badly (this is how the deliberate-inversion test in
// tests/lockdep_test.cpp can prove the tracker-vs-shard invariant without
// actually deadlocking).
//
// The global rank table (see docs/TOOLING.md for the rationale of each
// edge) is defined at the bottom of this header. Gaps between ranks leave
// room for future locks (replication, io_uring completion queues).
//
// Build gating: compiled in only when the OCASTA_LOCKDEP macro is defined
// (cmake -DOCASTA_LOCKDEP=ON). Without it, ordered_mutex/ordered_shared_
// mutex are zero-overhead inline pass-throughs to std::mutex /
// std::shared_mutex — no extra state, no extra branches — so release
// builds pay nothing. The sanitizer CI jobs (TSan and ASan+UBSan) build
// with lockdep ON, so every ordering invariant is enforced on every test
// run that exercises concurrency.
//
// Static companion: both mutexes are clang thread-safety CAPABILITIES
// (common/thread_safety.h), and the guard types below are the annotated
// RAII wrappers the analysis understands — std::lock_guard/unique_lock/
// shared_lock acquire inside unannotated system headers, so a std guard
// leaves the analysis's held-lock set unchanged and every GUARDED_BY
// access under one would (wrongly) warn. Use lockdep::guard /
// relock_guard / writer_guard / reader_guard on the annotated surface.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_safety.h"

namespace ocasta::lockdep {

#ifdef OCASTA_LOCKDEP
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// One lock CLASS (not instance): all 64 shard mutexes of a ShardedTtkv
// share one LockClass. Instances must be static-storage so identity is
// pointer identity.
struct LockClass {
  const char* name;
  int rank;  // kUnranked = graph-checked only; otherwise strictly ordered.
};

inline constexpr int kUnranked = 0;

namespace detail {
// Implemented in lockdep.cpp; only referenced when OCASTA_LOCKDEP is set,
// so release builds never pull the runtime in.
void OnAcquire(const LockClass* cls, const void* addr, bool shared);
void OnRelease(const void* addr);
}  // namespace detail

// Drop-in std::mutex with a lock class. Satisfies Lockable, so
// std::unique_lock / std::lock_guard / std::scoped_lock work unchanged
// (but see the guard types below for the annotated surface).
class OCASTA_CAPABILITY("mutex") ordered_mutex {
 public:
#ifdef OCASTA_LOCKDEP
  explicit ordered_mutex(const LockClass& cls) : cls_(&cls) {}
  // OnAcquire runs BEFORE blocking on the underlying mutex: recursion and
  // ordering are properties of the acquisition ATTEMPT, and a recursive
  // lock would self-deadlock inside std::mutex before a post-lock check
  // could ever run. try_lock checks after success instead — it cannot
  // block, and a failed probe must leave no trace.
  void lock() OCASTA_ACQUIRE() {
    detail::OnAcquire(cls_, this, /*shared=*/false);
    mu_.lock();
  }
  bool try_lock() OCASTA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/false);
    return true;
  }
  void unlock() OCASTA_RELEASE() {
    detail::OnRelease(this);
    mu_.unlock();
  }
#else
  explicit ordered_mutex(const LockClass&) {}
  void lock() OCASTA_ACQUIRE() { mu_.lock(); }
  bool try_lock() OCASTA_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() OCASTA_RELEASE() { mu_.unlock(); }
#endif

  ordered_mutex(const ordered_mutex&) = delete;
  ordered_mutex& operator=(const ordered_mutex&) = delete;

 private:
  std::mutex mu_;
#ifdef OCASTA_LOCKDEP
  const LockClass* cls_;
#endif
};

// Drop-in std::shared_mutex with a lock class; shared acquisitions obey
// the same rank/graph rules as exclusive ones (a reader that takes locks
// out of order deadlocks writers just as well).
class OCASTA_CAPABILITY("shared_mutex") ordered_shared_mutex {
 public:
#ifdef OCASTA_LOCKDEP
  explicit ordered_shared_mutex(const LockClass& cls) : cls_(&cls) {}
  // Same check-before-block rationale as ordered_mutex::lock above.
  void lock() OCASTA_ACQUIRE() {
    detail::OnAcquire(cls_, this, /*shared=*/false);
    mu_.lock();
  }
  bool try_lock() OCASTA_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/false);
    return true;
  }
  void unlock() OCASTA_RELEASE() {
    detail::OnRelease(this);
    mu_.unlock();
  }
  void lock_shared() OCASTA_ACQUIRE_SHARED() {
    detail::OnAcquire(cls_, this, /*shared=*/true);
    mu_.lock_shared();
  }
  bool try_lock_shared() OCASTA_TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    detail::OnAcquire(cls_, this, /*shared=*/true);
    return true;
  }
  void unlock_shared() OCASTA_RELEASE_SHARED() {
    detail::OnRelease(this);
    mu_.unlock_shared();
  }
#else
  explicit ordered_shared_mutex(const LockClass&) {}
  void lock() OCASTA_ACQUIRE() { mu_.lock(); }
  bool try_lock() OCASTA_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() OCASTA_RELEASE() { mu_.unlock(); }
  void lock_shared() OCASTA_ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool try_lock_shared() OCASTA_TRY_ACQUIRE_SHARED(true) { return mu_.try_lock_shared(); }
  void unlock_shared() OCASTA_RELEASE_SHARED() { mu_.unlock_shared(); }
#endif

  ordered_shared_mutex(const ordered_shared_mutex&) = delete;
  ordered_shared_mutex& operator=(const ordered_shared_mutex&) = delete;

 private:
  std::shared_mutex mu_;
#ifdef OCASTA_LOCKDEP
  const LockClass* cls_;
#endif
};

// --- Annotated RAII guards --------------------------------------------------
// The thread-safety analysis tracks acquisitions only through annotated
// functions, and std::lock_guard / std::unique_lock / std::shared_lock
// live in unannotated system headers — constructing one never updates the
// caller's held-lock set, so every GUARDED_BY access under a std guard
// would warn. These four concrete guards (mirroring the scoped-capability
// shape from the clang docs) cover every locking idiom in the codebase.
// They deliberately do NOT try to be std::unique_lock: no deferred locks,
// no adoption, no try-forms — shapes this codebase does not use stay
// inexpressible.

// lock_guard for ordered_mutex: exclusive, held for the full scope.
class OCASTA_SCOPED_CAPABILITY guard {
 public:
  explicit guard(ordered_mutex& mu) OCASTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~guard() OCASTA_RELEASE() { mu_.unlock(); }

  guard(const guard&) = delete;
  guard& operator=(const guard&) = delete;

 private:
  ordered_mutex& mu_;
};

// unique_lock-shaped guard for ordered_mutex: starts locked, supports
// explicit unlock()/lock() windows (condvar waits, group commit's
// release-around-fsync). Must be locked again by scope exit on every path
// that unlocked it — condvar waits guarantee reacquisition themselves —
// and the analysis checks exactly that through the ACQUIRE/RELEASE
// annotations; owned_ keeps the destructor correct if an exception exits
// an unlocked window.
class OCASTA_SCOPED_CAPABILITY relock_guard {
 public:
  explicit relock_guard(ordered_mutex& mu) OCASTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~relock_guard() OCASTA_RELEASE() {
    if (owned_) mu_.unlock();
  }

  void unlock() OCASTA_RELEASE() {
    owned_ = false;
    mu_.unlock();
  }
  void lock() OCASTA_ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }

  relock_guard(const relock_guard&) = delete;
  relock_guard& operator=(const relock_guard&) = delete;

 private:
  ordered_mutex& mu_;
  bool owned_ = true;
};

// lock_guard for ordered_shared_mutex, exclusive (writer side).
class OCASTA_SCOPED_CAPABILITY writer_guard {
 public:
  explicit writer_guard(ordered_shared_mutex& mu) OCASTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~writer_guard() OCASTA_RELEASE() { mu_.unlock(); }

  writer_guard(const writer_guard&) = delete;
  writer_guard& operator=(const writer_guard&) = delete;

 private:
  ordered_shared_mutex& mu_;
};

// shared_lock for ordered_shared_mutex (reader side).
class OCASTA_SCOPED_CAPABILITY reader_guard {
 public:
  explicit reader_guard(ordered_shared_mutex& mu) OCASTA_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~reader_guard() OCASTA_RELEASE_SHARED() { mu_.unlock_shared(); }

  reader_guard(const reader_guard&) = delete;
  reader_guard& operator=(const reader_guard&) = delete;

 private:
  ordered_shared_mutex& mu_;
};

// Condition variable usable with ordered_mutex. condition_variable_any's
// wait() releases/reacquires through the instrumented lock()/unlock() of
// relock_guard, so held-lock state stays correct across waits. (The _any
// variant costs one extra internal mutex per cv; every cv in this codebase
// sits on a flush / checkpoint path where that is noise.)
//
// Thread-safety caveat: wait(guard) unlocks and relocks inside a system
// header the analysis cannot see, so to the analysis the lock appears held
// straight through a wait — which is also the truth at every sequence
// point the waiting code can observe. Wait PREDICATES are different:
// a predicate lambda is analyzed as its own lock-free function, so waits
// whose predicate reads guarded state are written as explicit
// `while (!cond) cv.wait(lock);` loops instead (see Wal::Sync,
// DurableEngine::CheckpointThread).
using condvar = std::condition_variable_any;

// --- The global lock-order table --------------------------------------------
// Ranks strictly increase along every legal acquisition chain. Lower rank
// = acquired FIRST (outermost). The full rationale table lives in
// docs/TOOLING.md; the load-bearing edges:
//
//   checkpoint_mu_ < mu_          Checkpoint() stalls mutations for the cut
//   mu_ < {engine locks}          DurableEngine applies while serialized
//   mu_ < append_mu_ < sync_mu_   log-order == apply-order; group commit
//   tracker_mu_ < Shard::mu       DrainTracker holds the tracker while it
//                                 sweeps shards; writers must NEVER take
//                                 tracker_mu_ under a shard lock
//   join/pending/wake             leaves — nothing is acquired under them
inline constexpr LockClass kDurableCheckpointClass{"DurableEngine::checkpoint_mu_", 10};
inline constexpr LockClass kReplicaFollowerClass{"replica::Follower::mu_", 15};
inline constexpr LockClass kDurableMutateClass{"DurableEngine::mu_", 20};
inline constexpr LockClass kLocalEngineClass{"LocalEngine::mu_", 30};
inline constexpr LockClass kTrackerClass{"ShardedTtkv::tracker_mu_", 40};
inline constexpr LockClass kShardClass{"ShardedTtkv::Shard::mu", 50};
inline constexpr LockClass kWalAppendClass{"Wal::append_mu_", 60};
inline constexpr LockClass kWalSyncClass{"Wal::sync_mu_", 70};
inline constexpr LockClass kServerJoinClass{"TtkvServer::join_mu_", 80};
inline constexpr LockClass kEventLoopPendingClass{"EventLoop::pending_mu_", 90};
// Leaf-ish: taken by offload workers after the handler has RELEASED every
// engine/hub lock, and by the loop thread holding nothing.
inline constexpr LockClass kEventLoopOffloadClass{"EventLoop::offload_mu_", 92};
inline constexpr LockClass kDurableWakeClass{"DurableEngine::wake_mu_", 95};
inline constexpr LockClass kReplicationHubClass{"replica::ReplicationHub::mu_", 96};
// Metrics registry registration/snapshot path (src/obs/metrics.h). A leaf
// with a high rank because Snapshot() may run while an engine lock is held
// (LocalEngine answers METRICS under mu_); nothing is ever acquired under
// it — the record hot path is pure relaxed atomics and never sees it.
inline constexpr LockClass kObsRegistryClass{"obs::MetricsRegistry::mu_", 97};

}  // namespace ocasta::lockdep
