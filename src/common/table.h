// ASCII table rendering for the benchmark harness.
//
// Every bench binary prints the same rows the paper's tables report; this
// helper keeps the rendering consistent (padded columns, header rule).
#pragma once

#include <string>
#include <vector>

namespace ocasta {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  // Renders with each column padded to its widest cell. Rows shorter than
  // the header are padded with empty cells.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Renders an (x, series...) line chart as aligned text columns — the bench
// harness's stand-in for the paper's figures.
class SeriesChart {
 public:
  SeriesChart(std::string x_label, std::vector<std::string> series_labels)
      : x_label_(std::move(x_label)), series_labels_(std::move(series_labels)) {}

  void add_point(double x, std::vector<double> ys) {
    xs_.push_back(x);
    ys_.push_back(std::move(ys));
  }

  std::string render() const;

 private:
  std::string x_label_;
  std::vector<std::string> series_labels_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;
};

}  // namespace ocasta
