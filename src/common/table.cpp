#include "common/table.h"

#include <algorithm>

#include "common/strings.h"

namespace ocasta {

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t i = 0; i < widths.size(); ++i) rule_len += widths[i] + (i + 1 < widths.size() ? 2 : 0);
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string SeriesChart::render() const {
  TextTable table([&] {
    std::vector<std::string> header{x_label_};
    for (const auto& label : series_labels_) header.push_back(label);
    return header;
  }());
  for (size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row{StrFormat("%g", xs_[i])};
    for (double y : ys_[i]) row.push_back(StrFormat("%.2f", y));
    table.add_row(std::move(row));
  }
  return table.render();
}

}  // namespace ocasta
