// Online clustering tracker.
//
// Ocasta "uses the information stored in the TTKV to compute the
// clustering information for the keys" while in recording mode. Recomputing
// the whole batch pipeline (window grouping + correlation) on every query
// is wasteful for a recorder that runs for months; this tracker maintains
// the co-modification statistics incrementally as access events arrive and
// can produce the cluster set on demand. Its output is exactly equivalent
// to the batch pipeline (see property tests): same gap-based window
// semantics, same correlation metric, same HAC.
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "clustering/cluster_set.h"
#include "clustering/correlation.h"
#include "clustering/hac.h"
#include "configstore/access_event.h"

namespace ocasta {

class OnlineClusterTracker final : public AccessSink {
 public:
  // `window_seconds` matches ClusteringParams::window_seconds;
  // `quantize_to_seconds` mirrors the TTKV recorder's timestamp handling.
  explicit OnlineClusterTracker(double window_seconds = 1.0, bool quantize_to_seconds = true);

  // Consumes write/delete events (reads are ignored). Events must arrive
  // in time order, as produced by the interception layer.
  void OnAccess(const AccessEvent& event) override;

  size_t num_keys() const { return names_.size(); }
  const std::vector<std::string>& key_names() const { return names_; }

  // Total committed co-modification groups (open burst excluded).
  uint64_t group_count() const { return groups_committed_; }

  // Clusters the keys observed so far. The open burst (writes newer than
  // `window` before the last event) is included as one group. Cluster
  // version counts are each cluster's most-modified member's group count —
  // an upper bound; the repair controller recomputes exact in-bound counts
  // anyway.
  ClusterSet ClusterNow(double threshold_correlation, Linkage linkage = Linkage::kComplete) const;

 private:
  void CommitGroup(std::vector<uint32_t>& group, std::vector<uint64_t>& key_groups,
                   std::unordered_map<uint64_t, uint64_t>& pair_groups) const;

  TimeMicros window_;
  bool quantize_;

  std::map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
  std::vector<TimeMicros> last_modified_;

  // Committed statistics.
  std::vector<uint64_t> key_group_counts_;
  std::unordered_map<uint64_t, uint64_t> pair_group_counts_;
  uint64_t groups_committed_ = 0;

  // The open burst: distinct key ids written within `window_` of the
  // previous write.
  std::vector<uint32_t> open_group_;
  TimeMicros open_group_end_ = 0;
  bool has_open_group_ = false;
};

}  // namespace ocasta
