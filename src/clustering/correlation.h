// Pairwise correlation between configuration keys.
//
// The paper's metric:
//     Correlation = |A∩B| / |A|  +  |A∩B| / |B|
// where |A| is the number of co-modification groups containing key A and
// |A∩B| the number containing both. It is 2 when two keys are always
// modified together and 0 when never; it is only defined for keys with at
// least one modification. The clustering distance is its inverse.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clustering/window.h"

namespace ocasta {

// Sparse symmetric pair → value map keyed on (min_id, max_id).
class PairTable {
 public:
  static uint64_t PairKey(uint32_t a, uint32_t b) {
    const uint32_t lo = a < b ? a : b;
    const uint32_t hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  // Inverse of PairKey: the (lo, hi) ids packed into a raw() map key.
  static std::pair<uint32_t, uint32_t> DecodePair(uint64_t pair_key) {
    return {static_cast<uint32_t>(pair_key >> 32), static_cast<uint32_t>(pair_key & 0xffffffffu)};
  }

  double Get(uint32_t a, uint32_t b, double fallback) const {
    auto it = values_.find(PairKey(a, b));
    return it == values_.end() ? fallback : it->second;
  }
  void Set(uint32_t a, uint32_t b, double v) { values_[PairKey(a, b)] = v; }
  void Add(uint32_t a, uint32_t b, double v) { values_[PairKey(a, b)] += v; }

  size_t size() const { return values_.size(); }
  const std::unordered_map<uint64_t, double>& raw() const { return values_; }

 private:
  std::unordered_map<uint64_t, double> values_;
};

struct CorrelationResult {
  // Number of co-modification groups containing each key, indexed by key id
  // (zero for keys never written).
  std::vector<uint64_t> group_counts;
  // corr(A,B) for all pairs with |A∩B| > 0. Absent pairs have correlation 0
  // (distance infinity).
  PairTable correlation;
};

// Computes per-key group counts and all non-zero pairwise correlations.
// `num_keys` bounds the key-id space (TTKV::num_keys()). The group list is
// counted in per-thread shards merged at the end, so the result is identical
// for every `num_threads` (1 = single-threaded, 0 = hardware concurrency);
// small inputs always run single-threaded.
CorrelationResult ComputeCorrelations(const std::vector<CoModGroup>& groups, size_t num_keys,
                                      int num_threads = 1);

}  // namespace ocasta
