#include "clustering/hac.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"

namespace ocasta {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Dense symmetric matrix over the "connected" points (those with at least
// one finite distance). Clusters are rows; merging retires one row.
class Matrix {
 public:
  Matrix(size_t n) : n_(n), data_(n * n, kInf) {}
  double& at(size_t i, size_t j) { return data_[i * n_ + j]; }
  double at(size_t i, size_t j) const { return data_[i * n_ + j]; }

 private:
  size_t n_;
  std::vector<double> data_;
};

}  // namespace

const char* LinkageName(Linkage linkage) {
  switch (linkage) {
    case Linkage::kComplete: return "complete";
    case Linkage::kSingle: return "single";
    case Linkage::kAverage: return "average";
  }
  return "unknown";
}

std::vector<std::vector<uint32_t>> AgglomerativeCluster(const std::vector<uint32_t>& ids,
                                                        const PairTable& distances,
                                                        Linkage linkage, double max_distance) {
  if (max_distance < 0) throw Error("clustering threshold must be non-negative");

  // Split points into connected (some finite distance to another point) and
  // isolated, with one pass over the sparse distance table rather than the
  // former per-id probe of every other id — O(E) instead of O(n²) hash
  // lookups, where E is the number of finite pairs.
  const std::unordered_set<uint32_t> id_set(ids.begin(), ids.end());
  std::unordered_set<uint32_t> with_neighbor;
  for (const auto& [pair_key, d] : distances.raw()) {
    if (!(d < kInf)) continue;
    const auto [a, b] = PairTable::DecodePair(pair_key);
    if (a == b || id_set.count(a) == 0 || id_set.count(b) == 0) continue;
    with_neighbor.insert(a);
    with_neighbor.insert(b);
  }
  std::vector<uint32_t> connected;
  std::vector<uint32_t> isolated;
  for (uint32_t id : ids) {
    (with_neighbor.count(id) != 0 ? connected : isolated).push_back(id);
  }

  const size_t n = connected.size();
  std::vector<std::vector<uint32_t>> members(n);  // Per active cluster.
  std::vector<size_t> sizes(n, 1);
  std::vector<bool> alive(n, true);
  Matrix dist(n);
  std::unordered_map<uint32_t, size_t> row_of;  // Connected id → matrix row.
  row_of.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    members[i] = {connected[i]};
    row_of.emplace(connected[i], i);
  }
  // Fill the dense matrix from the sparse table directly (again O(E) instead
  // of probing all n² entries).
  for (const auto& [pair_key, d] : distances.raw()) {
    if (!(d < kInf)) continue;
    const auto [a, b] = PairTable::DecodePair(pair_key);
    const auto ia = row_of.find(a);
    if (ia == row_of.end()) continue;
    const auto ib = row_of.find(b);
    if (ib == row_of.end()) continue;
    dist.at(ia->second, ib->second) = d;
    dist.at(ib->second, ia->second) = d;
  }

  // Nearest-neighbor cache: nn[i] = the alive j minimizing dist(i, j).
  std::vector<size_t> nn(n, 0);
  std::vector<double> nn_dist(n, kInf);
  auto recompute_nn = [&](size_t i) {
    nn_dist[i] = kInf;
    nn[i] = i;
    for (size_t j = 0; j < n; ++j) {
      if (j == i || !alive[j]) continue;
      if (dist.at(i, j) < nn_dist[i]) {
        nn_dist[i] = dist.at(i, j);
        nn[i] = j;
      }
    }
  };
  for (size_t i = 0; i < n; ++i) recompute_nn(i);

  size_t alive_count = n;
  while (alive_count > 1) {
    // Global minimum over the nearest-neighbor cache.
    size_t best = n;
    double best_dist = kInf;
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && nn_dist[i] < best_dist) {
        best_dist = nn_dist[i];
        best = i;
      }
    }
    if (best == n || best_dist > max_distance) break;  // Dendrogram cut.

    const size_t a = best;
    const size_t b = nn[best];
    // Merge b into a (Lance-Williams update of row a).
    for (size_t c = 0; c < n; ++c) {
      if (!alive[c] || c == a || c == b) continue;
      const double dac = dist.at(a, c);
      const double dbc = dist.at(b, c);
      double merged = kInf;
      switch (linkage) {
        case Linkage::kComplete: merged = std::max(dac, dbc); break;
        case Linkage::kSingle: merged = std::min(dac, dbc); break;
        case Linkage::kAverage: {
          const double wa = static_cast<double>(sizes[a]);
          const double wb = static_cast<double>(sizes[b]);
          merged = (wa * dac + wb * dbc) / (wa + wb);
          break;
        }
      }
      dist.at(a, c) = merged;
      dist.at(c, a) = merged;
    }
    members[a].insert(members[a].end(), members[b].begin(), members[b].end());
    members[b].clear();
    sizes[a] += sizes[b];
    alive[b] = false;
    --alive_count;

    // Refresh caches: a's row changed; anyone pointing at a or b re-scans,
    // and (for single/average linkage, where merged distances can shrink)
    // anyone now closer to a adopts it.
    recompute_nn(a);
    for (size_t i = 0; i < n; ++i) {
      if (!alive[i] || i == a) continue;
      if (nn[i] == a || nn[i] == b) {
        recompute_nn(i);
      } else if (dist.at(i, a) < nn_dist[i]) {
        nn[i] = a;
        nn_dist[i] = dist.at(i, a);
      }
    }
  }

  std::vector<std::vector<uint32_t>> result;
  for (size_t i = 0; i < n; ++i) {
    if (alive[i]) {
      std::sort(members[i].begin(), members[i].end());
      result.push_back(std::move(members[i]));
    }
  }
  for (uint32_t id : isolated) result.push_back({id});
  std::sort(result.begin(), result.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return result;
}

}  // namespace ocasta
