#include "clustering/correlation.h"

#include <algorithm>
#include <thread>

namespace ocasta {

namespace {

// Per-thread accumulation shard: group-membership counts and pair
// co-occurrence counts for a contiguous slice of the group list.
struct CountShard {
  std::vector<uint64_t> group_counts;
  std::unordered_map<uint64_t, uint64_t> pair_counts;
};

void CountSlice(const std::vector<CoModGroup>& groups, size_t begin, size_t end,
                CountShard& shard) {
  for (size_t g = begin; g < end; ++g) {
    const std::vector<uint32_t>& key_ids = groups[g].key_ids;
    for (size_t i = 0; i < key_ids.size(); ++i) {
      ++shard.group_counts[key_ids[i]];
      for (size_t j = i + 1; j < key_ids.size(); ++j) {
        ++shard.pair_counts[PairTable::PairKey(key_ids[i], key_ids[j])];
      }
    }
  }
}

size_t EffectiveThreads(int num_threads) {
  if (num_threads > 0) return static_cast<size_t>(num_threads);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

CorrelationResult ComputeCorrelations(const std::vector<CoModGroup>& groups, size_t num_keys,
                                      int num_threads) {
  CorrelationResult result;
  result.group_counts.assign(num_keys, 0);

  // Shard the group list across threads; each thread counts its slice into
  // private storage and the shards are summed once at the end, so the merged
  // counts — and therefore the correlations — are independent of the thread
  // count. Small inputs stay single-threaded: below this many groups the
  // spawn/merge cost exceeds the counting work.
  constexpr size_t kMinGroupsPerThread = 2048;
  size_t threads = EffectiveThreads(num_threads);
  threads = std::min(threads, groups.size() / kMinGroupsPerThread + 1);

  std::unordered_map<uint64_t, uint64_t> pair_counts;
  if (threads <= 1) {
    CountShard shard{.group_counts = std::move(result.group_counts), .pair_counts = {}};
    CountSlice(groups, 0, groups.size(), shard);
    result.group_counts = std::move(shard.group_counts);
    pair_counts = std::move(shard.pair_counts);
  } else {
    std::vector<CountShard> shards(threads);
    for (CountShard& shard : shards) shard.group_counts.assign(num_keys, 0);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const size_t stride = (groups.size() + threads - 1) / threads;
    for (size_t t = 0; t < threads; ++t) {
      const size_t begin = t * stride;
      const size_t end = std::min(groups.size(), begin + stride);
      workers.emplace_back(CountSlice, std::cref(groups), begin, end, std::ref(shards[t]));
    }
    for (std::thread& worker : workers) worker.join();

    for (CountShard& shard : shards) {
      for (size_t id = 0; id < num_keys; ++id) result.group_counts[id] += shard.group_counts[id];
      for (const auto& [pair_key, count] : shard.pair_counts) pair_counts[pair_key] += count;
    }
  }

  for (const auto& [pair_key, count] : pair_counts) {
    const auto [a, b] = PairTable::DecodePair(pair_key);
    const double corr =
        static_cast<double>(count) / static_cast<double>(result.group_counts[a]) +
        static_cast<double>(count) / static_cast<double>(result.group_counts[b]);
    result.correlation.Set(a, b, corr);
  }
  return result;
}

}  // namespace ocasta
