#include "clustering/correlation.h"

namespace ocasta {

CorrelationResult ComputeCorrelations(const std::vector<CoModGroup>& groups, size_t num_keys) {
  CorrelationResult result;
  result.group_counts.assign(num_keys, 0);

  // Count group memberships and pair co-occurrences. Group key lists are
  // distinct and sorted, so each pair is counted once per group.
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  for (const CoModGroup& group : groups) {
    for (size_t i = 0; i < group.key_ids.size(); ++i) {
      ++result.group_counts[group.key_ids[i]];
      for (size_t j = i + 1; j < group.key_ids.size(); ++j) {
        ++pair_counts[PairTable::PairKey(group.key_ids[i], group.key_ids[j])];
      }
    }
  }

  for (const auto& [pair_key, count] : pair_counts) {
    const auto a = static_cast<uint32_t>(pair_key >> 32);
    const auto b = static_cast<uint32_t>(pair_key & 0xffffffffu);
    const double corr =
        static_cast<double>(count) / static_cast<double>(result.group_counts[a]) +
        static_cast<double>(count) / static_cast<double>(result.group_counts[b]);
    result.correlation.Set(a, b, corr);
  }
  return result;
}

}  // namespace ocasta
