#include "clustering/window.h"

#include <algorithm>

#include "common/error.h"

namespace ocasta {

std::vector<CoModGroup> GroupWrites(const std::vector<WriteEvent>& events, TimeMicros window) {
  if (window < 0) throw Error("co-modification window must be non-negative");
  std::vector<CoModGroup> groups;
  for (const WriteEvent& event : events) {
    if (!groups.empty() && event.timestamp < groups.back().end) {
      throw Error("write events must be sorted by timestamp");
    }
    if (groups.empty() || event.timestamp - groups.back().end > window) {
      groups.push_back(CoModGroup{.start = event.timestamp, .end = event.timestamp, .key_ids = {}});
    }
    CoModGroup& group = groups.back();
    group.end = event.timestamp;
    group.key_ids.push_back(event.key_id);
  }
  for (CoModGroup& group : groups) {
    std::sort(group.key_ids.begin(), group.key_ids.end());
    group.key_ids.erase(std::unique(group.key_ids.begin(), group.key_ids.end()),
                        group.key_ids.end());
  }
  return groups;
}

}  // namespace ocasta
