// Hierarchical agglomerative clustering with threshold pruning.
//
// The paper uses hierarchical agglomerative clustering with the "maximum
// linkage criterion" (complete linkage) and augments the algorithm "to be
// able to partition clusters using an adjustable clustering threshold":
// merging stops once the smallest inter-cluster distance exceeds the
// threshold, which cuts the dendrogram at that height. Single and average
// linkage are provided for the linkage ablation bench.
//
// Distances are sparse: pairs absent from the table are infinitely far
// apart (keys never modified together are never merged).
#pragma once

#include <cstdint>
#include <vector>

#include "clustering/correlation.h"

namespace ocasta {

enum class Linkage : uint8_t {
  kComplete = 0,  // Max pairwise distance across clusters (paper default).
  kSingle = 1,
  kAverage = 2,   // Unweighted pair-group average (UPGMA).
};

const char* LinkageName(Linkage linkage);

// Clusters `ids` with the given linkage, merging while the minimum
// inter-cluster distance is <= max_distance. All three linkages are
// reducible, so stopping at the first minimum above the threshold yields
// exactly the dendrogram cut. Points with no finite distance to any other
// point come back as singletons. Cluster member lists are sorted; clusters
// are ordered by their smallest member.
std::vector<std::vector<uint32_t>> AgglomerativeCluster(const std::vector<uint32_t>& ids,
                                                        const PairTable& distances,
                                                        Linkage linkage, double max_distance);

}  // namespace ocasta
