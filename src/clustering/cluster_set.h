// Cluster sets: the output of Ocasta's clustering pipeline.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/time.h"

namespace ocasta {

// One cluster of related configuration keys, annotated with the history
// statistics the repair tool's prioritisation uses.
struct KeyCluster {
  std::vector<uint32_t> keys;     // TTKV key ids, sorted ascending.
  uint64_t version_count = 0;     // Co-modification groups touching the cluster
                                  // = number of historical cluster versions.
  TimeMicros last_modified = 0;   // Most recent write to any member.

  size_t size() const { return keys.size(); }
};

class ClusterSet {
 public:
  static constexpr uint32_t kNoCluster = std::numeric_limits<uint32_t>::max();

  ClusterSet() = default;
  // `num_keys` bounds the key-id space for the reverse index.
  ClusterSet(std::vector<KeyCluster> clusters, size_t num_keys);

  const std::vector<KeyCluster>& clusters() const { return clusters_; }
  const KeyCluster& cluster(size_t index) const { return clusters_[index]; }
  size_t size() const { return clusters_.size(); }

  // Index of the cluster containing a key, or kNoCluster.
  uint32_t cluster_of(uint32_t key_id) const {
    return key_id < cluster_of_.size() ? cluster_of_[key_id] : kNoCluster;
  }

  // Number of clusters with more than one key (Table II's first number).
  size_t multi_cluster_count() const;

  // Mean size over clusters with more than one key — the paper's "average
  // size of clusters" metric in Figure 3 (0 when there are none).
  double average_multi_cluster_size() const;

  // Mean size over all clusters, singletons included.
  double average_cluster_size() const;

  // Cluster indices in the repair tool's search order: least-modified
  // clusters first ("changes to configuration settings should be
  // infrequent"), with more recently modified clusters first among ties.
  std::vector<size_t> RecoveryOrder() const;

 private:
  std::vector<KeyCluster> clusters_;
  std::vector<uint32_t> cluster_of_;
};

}  // namespace ocasta
