// The end-to-end clustering pipeline:
//   TTKV write history → window grouping → correlations → HAC → ClusterSet.
#pragma once

#include "clustering/cluster_set.h"
#include "clustering/hac.h"
#include "clustering/window.h"
#include "ttkv/ttkv.h"

namespace ocasta {

struct ClusteringParams {
  // Sliding-window length. The paper's default is 1 second (the minimum its
  // second-granularity traces support); 0 clusters only identical
  // timestamps.
  double window_seconds = 1.0;

  // Correlation threshold: keys merge while cluster correlation is >= this.
  // Default 2 clusters only keys *always* modified together; lowering it
  // (e.g. to 1) admits keys modified together most of the time. Must be
  // positive. The equivalent distance cut is 1/threshold.
  double threshold_correlation = 2.0;

  Linkage linkage = Linkage::kComplete;

  // Worker threads for the correlation pass (the pipeline's hot loop over
  // every co-modification group). 1 = single-threaded, 0 = hardware
  // concurrency. The clusters produced are identical for every value.
  int num_threads = 1;
};

// Annotates `clusters` in place with version counts (co-modification groups
// touching any member, counted once per group) and last-modified times.
// `cluster_index` maps key id → index into `clusters`; keys mapped to
// ClusterSet::kNoCluster are ignored. Exposed separately from ClusterKeys
// for testing.
void AnnotateClusters(const std::vector<CoModGroup>& groups,
                      const std::vector<uint32_t>& cluster_index,
                      std::vector<KeyCluster>& clusters);

// Clusters every modified key in the TTKV. Unmodified keys (reads only) are
// excluded entirely — they cannot cause a configuration error the user
// introduced. Each returned cluster carries its version count and last
// modification time for recovery prioritisation.
ClusterSet ClusterKeys(const TTKV& ttkv, const ClusteringParams& params);

}  // namespace ocasta
