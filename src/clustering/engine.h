// The end-to-end clustering pipeline:
//   TTKV write history → window grouping → correlations → HAC → ClusterSet.
#pragma once

#include "clustering/cluster_set.h"
#include "clustering/hac.h"
#include "ttkv/ttkv.h"

namespace ocasta {

struct ClusteringParams {
  // Sliding-window length. The paper's default is 1 second (the minimum its
  // second-granularity traces support); 0 clusters only identical
  // timestamps.
  double window_seconds = 1.0;

  // Correlation threshold: keys merge while cluster correlation is >= this.
  // Default 2 clusters only keys *always* modified together; lowering it
  // (e.g. to 1) admits keys modified together most of the time. Must be
  // positive. The equivalent distance cut is 1/threshold.
  double threshold_correlation = 2.0;

  Linkage linkage = Linkage::kComplete;
};

// Clusters every modified key in the TTKV. Unmodified keys (reads only) are
// excluded entirely — they cannot cause a configuration error the user
// introduced. Each returned cluster carries its version count and last
// modification time for recovery prioritisation.
ClusterSet ClusterKeys(const TTKV& ttkv, const ClusteringParams& params);

}  // namespace ocasta
