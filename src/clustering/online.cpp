#include "clustering/online.h"

#include <algorithm>

#include "common/error.h"

namespace ocasta {

OnlineClusterTracker::OnlineClusterTracker(double window_seconds, bool quantize_to_seconds)
    : window_(Seconds(window_seconds)), quantize_(quantize_to_seconds) {
  if (window_ < 0) throw Error("co-modification window must be non-negative");
}

void OnlineClusterTracker::CommitGroup(
    std::vector<uint32_t>& group, std::vector<uint64_t>& key_groups,
    std::unordered_map<uint64_t, uint64_t>& pair_groups) const {
  std::sort(group.begin(), group.end());
  group.erase(std::unique(group.begin(), group.end()), group.end());
  for (size_t i = 0; i < group.size(); ++i) {
    ++key_groups[group[i]];
    for (size_t j = i + 1; j < group.size(); ++j) {
      ++pair_groups[PairTable::PairKey(group[i], group[j])];
    }
  }
}

void OnlineClusterTracker::OnAccess(const AccessEvent& event) {
  if (event.op == AccessOp::kRead) return;
  const TimeMicros t = quantize_ ? QuantizeToSecond(event.timestamp) : event.timestamp;
  if (has_open_group_ && t < open_group_end_) {
    throw Error("online tracker requires time-ordered events");
  }

  auto [it, inserted] = index_.try_emplace(event.key, static_cast<uint32_t>(names_.size()));
  if (inserted) {
    names_.push_back(event.key);
    last_modified_.push_back(t);
    key_group_counts_.push_back(0);
  }
  last_modified_[it->second] = t;

  if (has_open_group_ && t - open_group_end_ > window_) {
    CommitGroup(open_group_, key_group_counts_, pair_group_counts_);
    ++groups_committed_;
    open_group_.clear();
    has_open_group_ = false;
  }
  open_group_.push_back(it->second);
  open_group_end_ = t;
  has_open_group_ = true;
}

ClusterSet OnlineClusterTracker::ClusterNow(double threshold_correlation,
                                            Linkage linkage) const {
  if (threshold_correlation <= 0) throw Error("threshold_correlation must be positive");

  // Fold the open burst into copies of the committed statistics.
  std::vector<uint64_t> key_groups = key_group_counts_;
  std::unordered_map<uint64_t, uint64_t> pair_groups = pair_group_counts_;
  if (has_open_group_) {
    std::vector<uint32_t> open = open_group_;
    CommitGroup(open, key_groups, pair_groups);
  }

  // Correlation → distance, exactly as the batch pipeline.
  PairTable distances;
  for (const auto& [pair_key, count] : pair_groups) {
    const auto a = static_cast<uint32_t>(pair_key >> 32);
    const auto b = static_cast<uint32_t>(pair_key & 0xffffffffu);
    const double corr = static_cast<double>(count) / static_cast<double>(key_groups[a]) +
                        static_cast<double>(count) / static_cast<double>(key_groups[b]);
    distances.Set(a, b, 1.0 / corr);
  }
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < key_groups.size(); ++id) {
    if (key_groups[id] > 0) ids.push_back(id);
  }
  auto raw = AgglomerativeCluster(ids, distances, linkage, 1.0 / threshold_correlation);

  std::vector<KeyCluster> clusters;
  clusters.reserve(raw.size());
  for (auto& keys : raw) {
    KeyCluster cluster;
    for (uint32_t key : keys) {
      cluster.version_count = std::max(cluster.version_count, key_groups[key]);
      cluster.last_modified = std::max(cluster.last_modified, last_modified_[key]);
    }
    cluster.keys = std::move(keys);
    clusters.push_back(std::move(cluster));
  }
  return ClusterSet(std::move(clusters), names_.size());
}

}  // namespace ocasta
