// Sliding-window grouping of write events.
//
// "To determine whether keys have been modified together, Ocasta uses a
// sliding time window and considers all keys written within the window to
// have been modified together." Writes are partitioned into co-modification
// groups: a write extends the current group when it falls within the window
// of the group's latest write; otherwise it starts a new group. A window of
// zero groups only writes carrying the identical timestamp (the Figure 3a
// left-edge case).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "ttkv/ttkv.h"

namespace ocasta {

// One co-modification group: the distinct keys written together, plus the
// time of the group's first write (used as the "cluster version" time).
struct CoModGroup {
  TimeMicros start = 0;
  TimeMicros end = 0;                // Time of the group's last write.
  std::vector<uint32_t> key_ids;     // Distinct, sorted ascending.
};

// Partitions time-ordered write events into co-modification groups.
// Precondition: `events` sorted by timestamp (TTKV::write_events() output).
std::vector<CoModGroup> GroupWrites(const std::vector<WriteEvent>& events, TimeMicros window);

}  // namespace ocasta
