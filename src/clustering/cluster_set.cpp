#include "clustering/cluster_set.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace ocasta {

ClusterSet::ClusterSet(std::vector<KeyCluster> clusters, size_t num_keys)
    : clusters_(std::move(clusters)), cluster_of_(num_keys, kNoCluster) {
  for (size_t c = 0; c < clusters_.size(); ++c) {
    for (uint32_t key : clusters_[c].keys) {
      if (key >= num_keys) throw Error("cluster key id out of range");
      if (cluster_of_[key] != kNoCluster) throw Error("key appears in two clusters");
      cluster_of_[key] = static_cast<uint32_t>(c);
    }
  }
}

size_t ClusterSet::multi_cluster_count() const {
  size_t count = 0;
  for (const KeyCluster& cluster : clusters_) {
    if (cluster.size() > 1) ++count;
  }
  return count;
}

double ClusterSet::average_multi_cluster_size() const {
  size_t count = 0;
  size_t total = 0;
  for (const KeyCluster& cluster : clusters_) {
    if (cluster.size() > 1) {
      ++count;
      total += cluster.size();
    }
  }
  return count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
}

double ClusterSet::average_cluster_size() const {
  if (clusters_.empty()) return 0.0;
  size_t total = 0;
  for (const KeyCluster& cluster : clusters_) total += cluster.size();
  return static_cast<double>(total) / static_cast<double>(clusters_.size());
}

std::vector<size_t> ClusterSet::RecoveryOrder() const {
  std::vector<size_t> order(clusters_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    if (clusters_[a].version_count != clusters_[b].version_count) {
      return clusters_[a].version_count < clusters_[b].version_count;
    }
    return clusters_[a].last_modified > clusters_[b].last_modified;
  });
  return order;
}

}  // namespace ocasta
