#include "clustering/engine.h"

#include <limits>

#include "common/error.h"
#include "clustering/correlation.h"
#include "clustering/window.h"

namespace ocasta {

void AnnotateClusters(const std::vector<CoModGroup>& groups,
                      const std::vector<uint32_t>& cluster_index,
                      std::vector<KeyCluster>& clusters) {
  for (const CoModGroup& group : groups) {
    // A group bumps each distinct cluster it touches once.
    uint32_t last_bumped = ClusterSet::kNoCluster;
    std::vector<uint32_t> bumped;
    for (uint32_t key : group.key_ids) {
      const uint32_t c = key < cluster_index.size() ? cluster_index[key] : ClusterSet::kNoCluster;
      if (c == ClusterSet::kNoCluster) continue;  // Key not in any cluster.
      if (c == last_bumped) continue;
      bool seen = false;
      for (uint32_t prev : bumped) {
        if (prev == c) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        ++clusters[c].version_count;
        if (group.end > clusters[c].last_modified) clusters[c].last_modified = group.end;
        bumped.push_back(c);
      }
      last_bumped = c;
    }
  }
}

ClusterSet ClusterKeys(const TTKV& ttkv, const ClusteringParams& params) {
  if (params.threshold_correlation <= 0) {
    throw Error("threshold_correlation must be positive");
  }
  const auto events = ttkv.write_events();
  const auto groups = GroupWrites(events, Seconds(params.window_seconds));
  const auto corr = ComputeCorrelations(groups, ttkv.num_keys(), params.num_threads);

  // Points: keys modified at least once.
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < ttkv.num_keys(); ++id) {
    if (corr.group_counts[id] > 0) ids.push_back(id);
  }

  // Distance = 1 / correlation; pairs never co-modified stay infinite.
  PairTable distances;
  for (const auto& [pair_key, correlation] : corr.correlation.raw()) {
    const auto [a, b] = PairTable::DecodePair(pair_key);
    distances.Set(a, b, 1.0 / correlation);
  }

  const double max_distance = 1.0 / params.threshold_correlation;
  auto raw_clusters = AgglomerativeCluster(ids, distances, params.linkage, max_distance);

  // Annotate clusters with version counts (co-mod groups touching any
  // member) and last-modified times.
  std::vector<uint32_t> cluster_index(ttkv.num_keys(), ClusterSet::kNoCluster);
  std::vector<KeyCluster> clusters;
  clusters.reserve(raw_clusters.size());
  for (auto& keys : raw_clusters) {
    for (uint32_t key : keys) cluster_index[key] = static_cast<uint32_t>(clusters.size());
    KeyCluster cluster;
    cluster.keys = std::move(keys);
    clusters.push_back(std::move(cluster));
  }
  AnnotateClusters(groups, cluster_index, clusters);

  return ClusterSet(std::move(clusters), ttkv.num_keys());
}

}  // namespace ocasta
