#include "persist/durable_engine.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "api/codec.h"
#include "common/io.h"
#include "obs/slow_log.h"
#include "ttkv/serialize.h"

namespace ocasta::persist {

namespace {

// Microseconds since `t0`, for the slow-op trace's WAL-time attribution.
double MicrosSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string SnapshotName(uint64_t lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.ttkv", static_cast<unsigned long long>(lsn));
  return buf;
}

// snap-*.ttkv files in `dir`, ascending by the LSN embedded in the name.
std::vector<std::pair<uint64_t, std::string>> ListSnapshots(const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> snaps;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return snaps;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.starts_with("snap-") && name.ends_with(".ttkv")) {
      const uint64_t lsn = std::strtoull(name.c_str() + 5, nullptr, 10);
      if (lsn > 0) snaps.emplace_back(lsn, name);
    }
  }
  ::closedir(d);
  std::sort(snaps.begin(), snaps.end());
  return snaps;
}

// Deepest version timestamp a command carries, for restoring the monotonic
// clock after replay (0 = none).
TimeMicros MaxTimestampOf(const api::Command& cmd) {
  if (const auto* put = std::get_if<api::PutCmd>(&cmd.op)) return put->timestamp;
  if (const auto* del = std::get_if<api::DeleteCmd>(&cmd.op)) return del->timestamp;
  if (const auto* batch = std::get_if<api::BatchCmd>(&cmd.op)) {
    TimeMicros max_t = 0;
    for (const api::Command& sub : batch->commands) max_t = std::max(max_t, MaxTimestampOf(sub));
    return max_t;
  }
  return 0;
}

// Wrapper magic of the durable snapshot file format ("OCDS" header + op
// counter totals + embedded TTKV image). Distinct from the TTKV image's
// own magic, so a bare pre-v5 image is recognized by exclusion.
constexpr uint32_t kDurableSnapMagic = 0x5344434f;
constexpr uint8_t kDurableSnapVersion = 1;

}  // namespace

bool IsMutating(const api::Command& cmd) { return api::IsMutating(cmd); }

std::string EncodeDurableSnapshot(const DurableSnapshot& snap) {
  BinaryWriter w;
  w.u32(kDurableSnapMagic);
  w.u8(kDurableSnapVersion);
  w.u64(snap.puts);
  w.u64(snap.gets);
  w.u64(snap.deletes);
  w.str(snap.ttkv.Serialize());
  return w.take();
}

DurableSnapshot DecodeDurableSnapshot(const std::string& bytes) {
  DurableSnapshot snap;
  BinaryReader probe(bytes);
  if (bytes.size() >= 5 && probe.u32() == kDurableSnapMagic) {
    if (probe.u8() != kDurableSnapVersion) {
      throw ParseError("unknown durable snapshot version");
    }
    snap.puts = probe.u64();
    snap.gets = probe.u64();
    snap.deletes = probe.u64();
    snap.ttkv = TTKV::Deserialize(probe.str());
    if (!probe.at_end()) throw ParseError("trailing bytes after durable snapshot");
    return snap;
  }
  // Pre-wrapper file: the bytes are the TTKV image itself, totals unknown.
  snap.ttkv = TTKV::Deserialize(bytes);
  return snap;
}

DurableEngine::DurableEngine(std::string data_dir, InnerFactory factory, DurableOptions options)
    : dir_(std::move(data_dir)), options_(options), wal_(dir_, options.wal) {
  // 0. Sweep snapshots that died mid-write: a crash between creating
  //    snap-<lsn>.ttkv.tmp and its rename leaves the tmp behind, and later
  //    checkpoints use different LSNs so the name never gets reused.
  if (DIR* d = ::opendir(dir_.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      const std::string_view name = entry->d_name;
      if (name.starts_with("snap-") && name.ends_with(".tmp")) {
        ::unlink((dir_ + "/" + std::string(name)).c_str());
      }
    }
    ::closedir(d);
  }

  // 1. Newest snapshot that deserializes cleanly anchors recovery. The
  //    walk tries EVERY retained snapshot, newest first / oldest last —
  //    with retained_snapshots == N, up to N corrupt generations fall
  //    back before recovery resorts to a bare log replay (see
  //    PersistTest.FallsBackThroughEveryRetainedSnapshot).
  TTKV snapshot;
  uint64_t snapshot_lsn = 0;
  const auto snaps = ListSnapshots(dir_);
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    try {
      DurableSnapshot image = DecodeDurableSnapshot(ReadFile(dir_ + "/" + it->second));
      snapshot = std::move(image.ttkv);
      snapshot_lsn = it->first;
      baseline_puts_ = image.puts;
      baseline_gets_ = image.gets;
      baseline_deletes_ = image.deletes;
      break;
    } catch (const Error&) {
      // Torn or bit-flipped snapshot: keep walking back. With no valid
      // snapshot at all, the full log replays from an empty store.
    }
  }
  recovery_.snapshot_lsn = snapshot_lsn;
  recovery_.dropped_bytes = wal_.recovered_dropped_bytes();

  // 2. Restore the monotonic clock past everything recovered, so fresh
  //    engine-assigned stamps never collide with replayed history.
  int64_t clock = 0;
  for (uint32_t id = 0; id < snapshot.num_keys(); ++id) {
    clock = std::max<int64_t>(clock, snapshot.record(id).last_modified());
  }

  // 3. Inner engine from the snapshot, then replay strictly PAST the
  //    snapshot seam: a record with lsn <= snapshot_lsn is already inside
  //    the snapshot, and applying it again would double-append versions
  //    (see PersistTest.SnapshotSeamIsIdempotent).
  inner_ = factory(std::move(snapshot));
  std::vector<WalRecord> records = wal_.TakeRecovered();
  // Refuse to serve a provably partial store: if the log's first surviving
  // record is beyond snapshot_lsn + 1, the records in between existed once
  // (checkpoint truncation deleted their segments trusting a snapshot that
  // is now unreadable) and nothing can resurrect them. Silently booting
  // without acknowledged writes would be worse than refusing to run.
  if (!records.empty() && records.front().lsn > snapshot_lsn + 1) {
    throw Error("unrecoverable data dir " + dir_ + ": log starts at record " +
                std::to_string(records.front().lsn) + " but no usable snapshot covers 1.." +
                std::to_string(records.front().lsn - 1) +
                " (every newer snapshot failed to load)");
  }
  if (records.empty() && snapshot_lsn == 0 && !snaps.empty()) {
    throw Error("unrecoverable data dir " + dir_ +
                ": snapshots exist but none loads, and no log records survive");
  }
  if (snapshot_lsn > wal_.last_lsn()) {
    // The log is entirely behind the snapshot (kernel crash under
    // fsync=off): every surviving record is covered. Restart numbering
    // past the snapshot so future records replay.
    recovery_.skipped += records.size();
    wal_.ResetTo(snapshot_lsn + 1);
  } else {
    for (WalRecord& record : records) {
      if (record.lsn <= snapshot_lsn) {
        ++recovery_.skipped;
        continue;
      }
      const api::Command cmd = api::DecodeCommand(record.payload);
      clock = std::max<int64_t>(clock, MaxTimestampOf(cmd));
      inner_->Apply(cmd);
      ++recovery_.replayed;
    }
  }
  clock_.store(clock, std::memory_order_relaxed);
  checkpointed_lsn_ = snapshot_lsn;

  // 4. Background checkpointing, when any trigger is configured.
  if (options_.checkpoint_wal_bytes > 0 || options_.checkpoint_interval_seconds > 0) {
    checkpoint_thread_ = std::thread(&DurableEngine::CheckpointThread, this);
  }
}

DurableEngine::~DurableEngine() {
  // Deliberately NO parting checkpoint: a clean shutdown must exercise the
  // same replay path as a crash, or recovery bugs hide behind tidy exits.
  if (checkpoint_thread_.joinable()) {
    {
      const lockdep::guard lock(wake_mu_);
      stopping_ = true;
    }
    wake_cv_.notify_all();
    checkpoint_thread_.join();
  }
}

TimeMicros DurableEngine::StampNow() {
  const int64_t wall = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::system_clock::now().time_since_epoch())
                           .count();
  int64_t prev = clock_.load(std::memory_order_relaxed);
  int64_t next;
  do {
    next = std::max(wall, prev + 1);
  } while (!clock_.compare_exchange_weak(prev, next, std::memory_order_relaxed));
  return next;
}

void DurableEngine::Stamp(api::Command* cmd) {
  if (auto* put = std::get_if<api::PutCmd>(&cmd->op)) {
    if (put->timestamp == 0) put->timestamp = StampNow();
    return;
  }
  if (auto* del = std::get_if<api::DeleteCmd>(&cmd->op)) {
    if (del->timestamp == 0) del->timestamp = StampNow();
    return;
  }
  if (auto* batch = std::get_if<api::BatchCmd>(&cmd->op)) {
    for (api::Command& sub : batch->commands) Stamp(&sub);
  }
}

void DurableEngine::MaybeWakeCheckpointer() {
  if (options_.checkpoint_wal_bytes > 0 &&
      wal_.appended_bytes() - checkpointed_wal_bytes_.load(std::memory_order_relaxed) >=
          options_.checkpoint_wal_bytes) {
    // Taken-then-dropped lock: without it the notify can land between the
    // checkpoint thread's predicate evaluation and its wait(), and the
    // last mutation before an idle period would leave the byte-triggered
    // checkpoint unscheduled forever.
    { const lockdep::guard lock(wake_mu_); }
    wake_cv_.notify_all();
  }
}

void DurableEngine::AddStatsBaseline(api::Result* result) const {
  if (auto* stats = std::get_if<api::StatsResult>(&result->op)) {
    stats->stats.puts += baseline_puts_;
    stats->stats.gets += baseline_gets_;
    stats->stats.deletes += baseline_deletes_;
    return;
  }
  if (auto* batch = std::get_if<api::BatchResult>(&result->op)) {
    for (api::Result& sub : batch->results) AddStatsBaseline(&sub);
  }
}

api::Result DurableEngine::Apply(const api::Command& cmd) {
  if (!api::IsMutating(cmd)) {
    api::Result result = inner_->Apply(cmd);
    AddStatsBaseline(&result);
    return result;
  }
  // Stamp and encode before the mutation lock: the record's bytes are
  // fixed here, mu_ only decides its position in the log/apply order.
  api::Command stamped = cmd;
  Stamp(&stamped);
  const std::string payload = api::EncodeCommand(stamped);
  // When a slow-op trace is armed for this request (the server did it),
  // attribute the WAL's share of the latency: append under mu_ plus the
  // group-commit wait in Sync.
  obs::OpTrace& trace = obs::OpTrace::Current();
  uint64_t lsn = 0;
  api::Result result;
  {
    const lockdep::guard lock(mu_);
    if (trace.active) {
      const auto t0 = std::chrono::steady_clock::now();
      lsn = wal_.Append(payload);
      trace.wal_us += MicrosSince(t0);
    } else {
      lsn = wal_.Append(payload);
    }
    result = inner_->Apply(stamped);
  }
  // The flush happens outside mu_ so queued writers group-commit: one
  // fdatasync acknowledges every record written before it started.
  if (trace.active) {
    const auto t0 = std::chrono::steady_clock::now();
    wal_.Sync(lsn);
    trace.wal_us += MicrosSince(t0);
  } else {
    wal_.Sync(lsn);
  }
  // Quorum gate (when configured): the ack is withheld until enough
  // followers cover this LSN; a gate timeout throws past us — the write
  // is durable locally but reported failed, see docs/REPLICATION.md.
  if (options_.commit_gate) options_.commit_gate(lsn);
  MaybeWakeCheckpointer();
  AddStatsBaseline(&result);
  return result;
}

std::vector<api::Result> DurableEngine::ApplyBatch(std::span<const api::Command> cmds) {
  bool any_mutating = false;
  for (const api::Command& cmd : cmds) any_mutating |= api::IsMutating(cmd);
  // Read-only batches never touch the log or the mutation lock.
  if (!any_mutating) {
    std::vector<api::Result> results = inner_->ApplyBatch(cmds);
    for (api::Result& result : results) AddStatsBaseline(&result);
    return results;
  }

  // Stamp + encode outside mu_ (see Apply).
  std::vector<api::Command> stamped(cmds.begin(), cmds.end());
  std::vector<std::string> payloads;
  payloads.reserve(stamped.size());
  for (api::Command& cmd : stamped) {
    if (!api::IsMutating(cmd)) continue;
    Stamp(&cmd);
    payloads.push_back(api::EncodeCommand(cmd));
  }
  obs::OpTrace& trace = obs::OpTrace::Current();
  uint64_t lsn = 0;
  std::vector<api::Result> results;
  {
    const lockdep::guard lock(mu_);
    const auto t0 = trace.active ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    if (options_.wal.fsync == FsyncPolicy::kAlways) {
      // One flush per record: the worst-case policy the bench quantifies
      // against group commit. `lsn` tracks the last record for the commit
      // gate; the post-mu_ Sync it triggers is a no-op (already synced).
      for (const std::string& payload : payloads) {
        lsn = wal_.Append(payload);
        wal_.Sync(lsn);
      }
    } else {
      lsn = wal_.Append(std::span<const std::string>(payloads));
    }
    if (trace.active) trace.wal_us += MicrosSince(t0);
    results = inner_->ApplyBatch(std::span<const api::Command>(stamped));
  }
  if (lsn != 0) {
    if (trace.active) {
      const auto t0 = std::chrono::steady_clock::now();
      wal_.Sync(lsn);
      trace.wal_us += MicrosSince(t0);
    } else {
      wal_.Sync(lsn);
    }
    if (options_.commit_gate) options_.commit_gate(lsn);
  }
  MaybeWakeCheckpointer();
  for (api::Result& result : results) AddStatsBaseline(&result);
  return results;
}

DurableEngine::SnapshotImage DurableEngine::CaptureSnapshot() {
  DurableSnapshot image;
  SnapshotImage out;
  {
    // Same capture discipline as Checkpoint(): stall mutations so the
    // image is an exact LSN cut; serialize after release.
    const lockdep::guard lock(mu_);
    out.lsn = wal_.last_lsn();
    image.ttkv = api::Snapshot(*inner_);
    const EngineStats stats = api::Stats(*inner_);
    image.puts = baseline_puts_ + stats.puts;
    image.gets = baseline_gets_ + stats.gets;
    image.deletes = baseline_deletes_ + stats.deletes;
  }
  out.bytes = EncodeDurableSnapshot(image);
  return out;
}

void DurableEngine::ApplyReplicated(std::span<const WalRecord> records) {
  if (records.empty()) return;
  // Decode outside mu_: a payload that fails its decode is format skew
  // between leader and follower, and nothing may be appended.
  std::vector<api::Command> cmds;
  cmds.reserve(records.size());
  TimeMicros max_t = 0;
  for (const WalRecord& record : records) {
    cmds.push_back(api::DecodeCommand(record.payload));
    max_t = std::max(max_t, MaxTimestampOf(cmds.back()));
  }
  uint64_t last = 0;
  {
    const lockdep::guard lock(mu_);
    const uint64_t next = wal_.last_lsn() + 1;
    if (records.front().lsn != next) {
      throw Error("replication stream gap: got lsn " + std::to_string(records.front().lsn) +
                  ", local log expects " + std::to_string(next));
    }
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].lsn != next + i) {
        throw Error("replication stream not contiguous at lsn " +
                    std::to_string(records[i].lsn));
      }
      wal_.Append(records[i].payload);
      // Same order as recovery replay: append, then apply. Inner results
      // are discarded exactly as replay discards them — a command the
      // leader logged-then-rejected rejects identically here.
      inner_->Apply(cmds[i]);
    }
    last = wal_.last_lsn();
  }
  // Keep the stamp clock ahead of replicated history so post-promotion
  // engine-assigned timestamps never collide with it.
  int64_t prev = clock_.load(std::memory_order_relaxed);
  while (max_t > prev && !clock_.compare_exchange_weak(prev, max_t, std::memory_order_relaxed)) {
  }
  // The follower's durability ack: its next pull carries since_lsn ==
  // `last`, which must not outrun the local flush.
  wal_.Sync(last);
  MaybeWakeCheckpointer();
}

void DurableEngine::WriteSnapshotFile(uint64_t lsn, const std::string& bytes) {
  const std::string path = dir_ + "/" + SnapshotName(lsn);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("cannot create snapshot: " + tmp + ": " + ErrnoString(errno));
  const char* data = bytes.data();
  size_t remaining = bytes.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw Error("snapshot write failed: " + tmp + ": " + ErrnoString(errno));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  // An unflushed snapshot must never be published: Checkpoint() truncates
  // WAL segments on the strength of this file, and trusting a failed fsync
  // here would delete the only other copy of those records (the same
  // fsyncgate discipline Wal::Sync applies to the log).
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw Error("snapshot fsync failed: " + tmp + ": " + ErrnoString(errno));
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("snapshot rename failed: " + path + ": " + ErrnoString(errno));
  }
  FsyncDir(dir_);
}

void DurableEngine::Checkpoint() {
  const lockdep::guard checkpoint_lock(checkpoint_mu_);
  uint64_t lsn = 0;
  DurableSnapshot image;
  {
    // Stall mutations for the capture so the snapshot is an exact LSN cut;
    // serialization and file IO happen after release. The op-counter
    // totals ride the same cut, so a restart resumes counting where this
    // snapshot left off.
    const lockdep::guard lock(mu_);
    lsn = wal_.last_lsn();
    if (lsn == 0 || lsn == checkpointed_lsn_) return;
    image.ttkv = api::Snapshot(*inner_);
    const EngineStats stats = api::Stats(*inner_);
    image.puts = baseline_puts_ + stats.puts;
    image.gets = baseline_gets_ + stats.gets;
    image.deletes = baseline_deletes_ + stats.deletes;
  }
  WriteSnapshotFile(lsn, EncodeDurableSnapshot(image));
  checkpointed_lsn_ = lsn;
  checkpointed_wal_bytes_.store(wal_.appended_bytes(), std::memory_order_relaxed);

  // Prune snapshots beyond the retention window, then drop the WAL
  // segments the OLDEST retained snapshot covers — an older anchor plus
  // its replay tail stays available even if the newest snapshot corrupts.
  const size_t retain = std::max<size_t>(options_.retained_snapshots, 1);
  auto snaps = ListSnapshots(dir_);
  if (snaps.size() > retain) {
    for (size_t i = 0; i + retain < snaps.size(); ++i) {
      ::unlink((dir_ + "/" + snaps[i].second).c_str());
    }
    snaps.erase(snaps.begin(), snaps.end() - static_cast<ptrdiff_t>(retain));
  }
  if (snaps.size() >= retain) wal_.TruncateThrough(snaps.front().first);
}

void DurableEngine::CheckpointThread() {
  const auto bytes_due = [this] {
    return options_.checkpoint_wal_bytes > 0 &&
           wal_.appended_bytes() - checkpointed_wal_bytes_.load(std::memory_order_relaxed) >=
               options_.checkpoint_wal_bytes;
  };
  for (;;) {
    {
      // Explicit wait loops instead of predicate waits: the predicate
      // lambda would read stopping_ (guarded by wake_mu_) from a scope the
      // thread-safety analysis treats as lock-free.
      lockdep::relock_guard lock(wake_mu_);
      if (options_.checkpoint_interval_seconds > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration<double>(options_.checkpoint_interval_seconds);
        // Timeout falls through to Checkpoint(), same as the old wait_for.
        while (!stopping_ && !bytes_due() &&
               wake_cv_.wait_until(lock, deadline) != std::cv_status::timeout) {
        }
      } else {
        while (!stopping_ && !bytes_due()) wake_cv_.wait(lock);
      }
      if (stopping_) return;
    }
    Checkpoint();
  }
}

}  // namespace ocasta::persist
