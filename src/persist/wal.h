// The ocastad write-ahead log: CRC32-framed, length-prefixed, append-only
// segments whose record payloads are codec-encoded api::Commands.
//
// On-disk layout (docs/DURABILITY.md is the byte-level spec):
//
//   <dir>/wal-<first_lsn, 20 digits>.log        one file per segment
//
//   segment  := header record*
//   header   := u32 magic "OCWL" | u8 version (1) | u64 first_lsn
//   record   := u32 payload_len | u32 crc | u64 lsn | payload
//
// `crc` is Crc32 over the 8 little-endian lsn bytes followed by the
// payload, so a bit flip anywhere in a record — length, sequence, or body —
// fails validation. LSNs (log sequence numbers) start at 1 and increase by
// exactly 1 per record across segment boundaries; they anchor snapshots
// (snap-<lsn>.ttkv covers records 1..lsn, replay resumes at lsn+1) and make
// a record that slid to a wrong offset self-evidently invalid.
//
// Opening a directory SCANS it: every record is validated in order and the
// first invalid one — torn tail from a crash mid-write, CRC flip, garbage,
// length running past the file, LSN gap — ends recovery THERE. The torn
// suffix is physically truncated so the next append produces a clean log,
// and everything after a corrupt record is dropped (a log is only
// trustworthy up to its first lie). The surviving records are exposed via
// TakeRecovered() for replay.
//
// Durability policy (FsyncPolicy) decides when Sync() actually fsyncs.
// Sync(lsn) is GROUP COMMIT: writers append concurrently (serialized by an
// internal mutex), then block in Sync until their lsn is covered by some
// fsync — one writer's fsync covers every record written before it started,
// so N queued writers pay one disk flush, not N (see DurableEngine).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/lockdep.h"
#include "obs/metrics.h"

namespace ocasta::persist {

// When acknowledged writes reach the disk platter:
//   kOff     never fsync — writes sit in the page cache (survives a killed
//            process, not a crashed kernel or power loss).
//   kBatch   one fsync per Sync() call, merged across concurrent writers
//            (group commit). Acked => durable; the default.
//   kAlways  like kBatch, but DurableEngine additionally syncs after EVERY
//            record of a batch instead of once per batch — the
//            one-fsync-per-command worst case the bench suite quantifies.
enum class FsyncPolicy { kOff, kBatch, kAlways };

// Parses "off" | "batch" | "always"; throws Error otherwise.
FsyncPolicy FsyncPolicyByName(const std::string& name);
const char* FsyncPolicyName(FsyncPolicy policy);

// fsyncs a directory so a just-created/renamed/unlinked entry survives a
// crash. Best-effort (some filesystems refuse); shared by the WAL's
// segment lifecycle and DurableEngine's snapshot writer.
void FsyncDir(const std::string& dir);

struct WalOptions {
  // Rotate to a new segment once the live one exceeds this many bytes.
  // Small segments make checkpoint truncation fine-grained; the tests use
  // tiny values to force rotation.
  size_t segment_bytes = 64u << 20;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  // Optional instrumentation (docs/OBSERVABILITY.md): append/fdatasync
  // latency histograms, group-commit merge width, record/flush counters,
  // all labeled fsync=<policy>. Null = off (no clock reads). Must outlive
  // the Wal.
  obs::MetricsRegistry* metrics = nullptr;
};

// One recovered record: its sequence number and its raw payload (a
// codec-encoded api::Command, but the WAL itself is payload-agnostic).
struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

// Outcome of scanning a log directory, for recovery telemetry and tests.
struct WalScan {
  std::vector<WalRecord> records;  // Every valid record, in LSN order.
  uint64_t last_lsn = 0;           // Highest valid LSN (0 = empty log).
  uint64_t dropped_bytes = 0;      // Torn/corrupt bytes past the last valid record.
  size_t segments = 0;             // Segment files seen.
};

// One bounded ReadFrom() result: a contiguous run of records starting at
// the requested LSN. `reachable == false` means the log no longer goes
// back that far (checkpoint truncation deleted the segment, or the
// requested LSN is from a divergent timeline) — the caller must fall back
// to a snapshot. `reachable == true` with no records means the reader is
// caught up.
struct WalTail {
  std::vector<WalRecord> records;
  bool reachable = false;
};

class Wal {
 public:
  // Opens `dir` (creating it if missing), scans and validates existing
  // segments, truncates any torn tail, and positions appends at
  // last_lsn + 1. Throws Error when the directory cannot be created or a
  // segment cannot be opened/truncated (never on corrupt contents — those
  // end the scan instead).
  Wal(std::string dir, WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Validates `dir` without opening it for appending (recovery preview,
  // corruption tests). Shares every validation rule with the constructor.
  static WalScan Scan(const std::string& dir);

  // Records recovered by the constructor's scan; call once, then replay.
  std::vector<WalRecord> TakeRecovered();

  // Torn/corrupt bytes the constructor's scan truncated away.
  uint64_t recovered_dropped_bytes() const { return recovered_dropped_bytes_; }

  // Appends payloads as consecutive records and returns the LAST assigned
  // LSN. The write(2) happens before return; durability waits for Sync.
  // Throws Error when the disk write fails (the caller must not ack) — and
  // a failed write POISONS the log: every later Append/Sync throws too.
  // A partial frame would sit mid-segment where recovery's CRC scan stops,
  // silently discarding any acked record appended after it, and a failed
  // fdatasync may have dropped dirty pages the kernel will never admit to
  // again (the PostgreSQL fsyncgate lesson) — once durability is in doubt,
  // refusing every subsequent ack is the only honest answer.
  uint64_t Append(std::span<const std::string> payloads)
      OCASTA_EXCLUDES(append_mu_, sync_mu_);
  uint64_t Append(const std::string& payload)
      OCASTA_EXCLUDES(append_mu_, sync_mu_);

  // Blocks until every record with sequence <= lsn is flushed (no-op under
  // kOff). Group commit, condvar-shaped: at most one fdatasync is in
  // flight; callers it covers wake and return the moment it lands (they
  // never queue behind the NEXT flush), and the first uncovered caller
  // becomes the next leader. One disk flush acknowledges every record
  // written before it started.
  void Sync(uint64_t lsn) OCASTA_EXCLUDES(sync_mu_);

  // Deletes whole segments whose every record has lsn <= `lsn` (checkpoint
  // truncation). The live segment is never deleted. Returns segments
  // removed.
  size_t TruncateThrough(uint64_t lsn) OCASTA_EXCLUDES(append_mu_);

  // Restarts the log at `first_lsn`, deleting every segment. Recovery uses
  // this when a snapshot is NEWER than every surviving record (possible
  // after a kernel crash under fsync=off): the stale records are all
  // covered by the snapshot, and fresh appends must number past it so the
  // snapshot seam stays monotone. Requires first_lsn > last_lsn().
  void ResetTo(uint64_t first_lsn) OCASTA_EXCLUDES(append_mu_, sync_mu_);

  // Reads committed records with lsn >= from_lsn straight off the segment
  // files — the replication streaming path. Bounded by max_records and
  // (once at least one record is collected) max_bytes of payload; the
  // leader calls it repeatedly as the follower's cursor advances. Takes NO
  // internal locks: appends race it harmlessly (O_APPEND writes are a
  // strict prefix extension, and the CRC/LSN chain stops the scan at any
  // incomplete frame), and a concurrent TruncateThrough/ResetTo at worst
  // yields reachable == false, which the caller treats as "send a
  // snapshot instead".
  WalTail ReadFrom(uint64_t from_lsn, size_t max_records, size_t max_bytes) const;

  uint64_t last_lsn() const;
  uint64_t synced_lsn() const;
  // Total record bytes appended since open (checkpoint trigger input).
  uint64_t appended_bytes() const;
  // Disk flushes actually performed by Sync since open. appends/flushes is
  // the group-commit merge factor (bench_loadgen reports it).
  uint64_t sync_count() const { return sync_count_.load(std::memory_order_relaxed); }
  const std::string& dir() const { return dir_; }

 private:
  void OpenNewSegmentLocked(uint64_t first_lsn) OCASTA_REQUIRES(append_mu_);
  void RotateLocked() OCASTA_REQUIRES(append_mu_) OCASTA_EXCLUDES(sync_mu_);
  void SyncDir() const;

  // Reads fd_ WITHOUT append_mu_ for the group-commit leader's fdatasync.
  // Exemption justified: the fd is stable while flush_in_progress_ is true
  // (rotation and reset both wait it out under sync_mu_ before closing),
  // but that two-mutex handoff protocol is not expressible statically.
  int flush_fd() const OCASTA_NO_THREAD_SAFETY_ANALYSIS { return fd_; }

  const std::string dir_;
  const WalOptions options_;

  std::vector<WalRecord> recovered_;
  uint64_t recovered_dropped_bytes_ = 0;

  // append_mu_ serializes writers (LSN assignment + write syscall);
  // sync_mu_ serializes fsyncs and owns fd lifetime for flushing. Lock
  // order: append_mu_ before sync_mu_, never the reverse — enforced by
  // lockdep (kWalAppendClass ranks below kWalSyncClass).
  mutable lockdep::ordered_mutex append_mu_{lockdep::kWalAppendClass};
  // Live segment, O_APPEND. Writes and open/close run under append_mu_;
  // the lone unlocked read is the flush leader's fdatasync (flush_fd()).
  int fd_ OCASTA_GUARDED_BY(append_mu_) = -1;
  uint64_t segment_first_lsn_ OCASTA_GUARDED_BY(append_mu_) = 1;
  size_t segment_size_ OCASTA_GUARDED_BY(append_mu_) = 0;
  uint64_t next_lsn_ OCASTA_GUARDED_BY(append_mu_) = 1;
  std::atomic<uint64_t> written_lsn_{0};
  std::atomic<uint64_t> appended_bytes_{0};

  // Group-commit state. flush_in_progress_ is guarded by sync_mu_; the
  // leader releases sync_mu_ for the fdatasync itself, and sync_cv_ wakes
  // covered waiters (and rotation, which must not close an fd mid-flush).
  lockdep::ordered_mutex sync_mu_{lockdep::kWalSyncClass};
  lockdep::condvar sync_cv_;
  bool flush_in_progress_ OCASTA_GUARDED_BY(sync_mu_) = false;
  std::atomic<uint64_t> synced_lsn_{0};
  std::atomic<uint64_t> sync_count_{0};

  // Set on any write(2)/fdatasync failure; never cleared (see Append).
  std::atomic<bool> poisoned_{false};

  // Pre-resolved instrument handles; null when WalOptions::metrics is null.
  obs::LatencyHistogram* append_hist_ = nullptr;   // ocasta_wal_append_ns
  obs::LatencyHistogram* fsync_hist_ = nullptr;    // ocasta_wal_fsync_ns
  obs::LatencyHistogram* commit_width_ = nullptr;  // ocasta_wal_commit_width
  obs::Counter* records_ctr_ = nullptr;            // ocasta_wal_records_total
  obs::Counter* flushes_ctr_ = nullptr;            // ocasta_wal_flushes_total
};

}  // namespace ocasta::persist
