#include "persist/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "common/io.h"
#include "ttkv/serialize.h"

namespace ocasta::persist {

namespace {

constexpr uint32_t kSegmentMagic = 0x4c57434f;  // "OCWL"
constexpr uint8_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 4 + 1 + 8;
constexpr size_t kRecordHeaderBytes = 4 + 4 + 8;
// Sanity cap on one record: a length field larger than this is corruption,
// not a command (the codec's frames are far smaller).
constexpr size_t kMaxRecordBytes = 256u << 20;

std::string SegmentName(uint64_t first_lsn) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

// CRC input: the 8 little-endian LSN bytes, then the payload.
uint32_t RecordCrc(uint64_t lsn, std::string_view payload) {
  char lsn_bytes[8];
  for (int i = 0; i < 8; ++i) lsn_bytes[i] = static_cast<char>((lsn >> (8 * i)) & 0xff);
  return Crc32(payload, Crc32(std::string_view(lsn_bytes, 8)));
}

void AppendRecordFrame(std::string* out, uint64_t lsn, std::string_view payload) {
  BinaryWriter w;
  w.u32(static_cast<uint32_t>(payload.size()));
  w.u32(RecordCrc(lsn, payload));
  w.u64(lsn);
  out->append(w.buffer());
  out->append(payload);
}

// Lists wal-*.log files in `dir`, sorted by name (zero-padded first LSN, so
// lexical order == log order). Missing dir => empty.
std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    if (name.starts_with("wal-") && name.ends_with(".log")) names.emplace_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

// Validation outcome for one segment file.
struct SegmentScan {
  size_t valid_bytes = 0;    // Prefix that parsed cleanly (header included).
  size_t dropped_bytes = 0;  // Torn/corrupt suffix.
  uint64_t first_lsn = 0;    // From the header, when header_ok.
  bool header_ok = false;
  bool clean = false;  // No dropped bytes: safe to continue into the next segment.
};

// Validates one segment's bytes in place, appending good records to `out`.
// `expected_lsn` advances past each valid record; 0 means "adopt this
// segment's header LSN" — checkpoint truncation deletes old segments, so a
// healthy log may legitimately start far past LSN 1. Never throws on
// corrupt content — corruption simply ends the valid prefix.
SegmentScan ScanSegment(const std::string& bytes, uint64_t* expected_lsn,
                        std::vector<WalRecord>* out) {
  SegmentScan scan;
  if (bytes.size() < kSegmentHeaderBytes) {
    // Zero-length or torn-header segment: no usable records. Legal as the
    // crash remnant of a rotation; the whole file is droppable.
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  BinaryReader header(std::string_view(bytes).substr(0, kSegmentHeaderBytes));
  const bool magic_ok = header.u32() == kSegmentMagic && header.u8() == kSegmentVersion;
  const uint64_t first_lsn = magic_ok ? header.u64() : 0;
  if (!magic_ok || first_lsn == 0 || (*expected_lsn != 0 && first_lsn != *expected_lsn)) {
    scan.dropped_bytes = bytes.size();
    return scan;
  }
  *expected_lsn = first_lsn;
  scan.first_lsn = first_lsn;
  scan.header_ok = true;
  scan.valid_bytes = kSegmentHeaderBytes;

  size_t pos = kSegmentHeaderBytes;
  while (bytes.size() - pos >= kRecordHeaderBytes) {
    BinaryReader r(std::string_view(bytes).substr(pos, kRecordHeaderBytes));
    const uint32_t len = r.u32();
    const uint32_t crc = r.u32();
    const uint64_t lsn = r.u64();
    if (len > kMaxRecordBytes || len > bytes.size() - pos - kRecordHeaderBytes) break;
    const std::string_view payload(bytes.data() + pos + kRecordHeaderBytes, len);
    if (lsn != *expected_lsn || RecordCrc(lsn, payload) != crc) break;
    out->push_back(WalRecord{lsn, std::string(payload)});
    ++*expected_lsn;
    pos += kRecordHeaderBytes + len;
    scan.valid_bytes = pos;
  }
  scan.dropped_bytes = bytes.size() - scan.valid_bytes;
  scan.clean = scan.dropped_bytes == 0;
  return scan;
}

struct DirScan {
  WalScan result;
  // The segment holding the last valid byte, and that byte's offset — what
  // the constructor truncates to and appends after. Empty = no usable
  // segment survives (start a fresh one).
  std::string live_segment;
  size_t live_valid_bytes = 0;
  uint64_t live_first_lsn = 1;
};

DirScan ScanDir(const std::string& dir) {
  DirScan scan;
  uint64_t expected_lsn = 0;  // 0 = adopt the first segment's header LSN.
  for (const std::string& name : ListSegments(dir)) {
    ++scan.result.segments;
    const std::string bytes = ReadFile(dir + "/" + name);
    const SegmentScan seg = ScanSegment(bytes, &expected_lsn, &scan.result.records);
    scan.result.dropped_bytes += seg.dropped_bytes;
    if (seg.header_ok) {
      scan.live_segment = name;
      scan.live_valid_bytes = seg.valid_bytes;
      scan.live_first_lsn = seg.first_lsn;
    }
    // A torn or corrupt record poisons everything after it: later segments
    // would need the LSNs this one lost, so they can never validate.
    if (!seg.clean) break;
  }
  scan.result.last_lsn = expected_lsn == 0 ? 0 : expected_lsn - 1;
  return scan;
}

}  // namespace

FsyncPolicy FsyncPolicyByName(const std::string& name) {
  if (name == "off") return FsyncPolicy::kOff;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "always") return FsyncPolicy::kAlways;
  throw Error("unknown fsync policy: " + name + " (expected off|batch|always)");
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kOff: return "off";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

void FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

WalScan Wal::Scan(const std::string& dir) { return ScanDir(dir).result; }

Wal::Wal(std::string dir, WalOptions options) : dir_(std::move(dir)), options_(options) {
  if (obs::MetricsRegistry* m = options_.metrics) {
    const obs::Labels policy = {{"fsync", FsyncPolicyName(options_.fsync)}};
    append_hist_ = &m->GetHistogram("ocasta_wal_append_ns", policy);
    fsync_hist_ = &m->GetHistogram("ocasta_wal_fsync_ns", policy);
    commit_width_ = &m->GetHistogram("ocasta_wal_commit_width", policy);
    records_ctr_ = &m->GetCounter("ocasta_wal_records_total");
    flushes_ctr_ = &m->GetCounter("ocasta_wal_flushes_total");
  }
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw Error("cannot create WAL directory: " + dir_ + ": " + ErrnoString(errno));
  }
  DirScan scan = ScanDir(dir_);
  recovered_ = std::move(scan.result.records);
  recovered_dropped_bytes_ = scan.result.dropped_bytes;
  next_lsn_ = scan.result.last_lsn + 1;
  written_lsn_.store(scan.result.last_lsn, std::memory_order_relaxed);
  // Everything surviving the scan is on disk already; Sync must not stall
  // on pre-recovery records.
  synced_lsn_.store(scan.result.last_lsn, std::memory_order_relaxed);

  if (scan.live_segment.empty()) {
    // No segment with a valid header survives. Delete whatever files are
    // there before starting fresh: a stale-but-intact later segment left
    // behind could otherwise splice itself back into the new log the day
    // the LSNs happen to line up, replaying old-era records as committed.
    for (const std::string& name : ListSegments(dir_)) {
      ::unlink((dir_ + "/" + name).c_str());
    }
    OpenNewSegmentLocked(next_lsn_);
    return;
  }
  // Cut the torn suffix off the live segment, then also drop any segments
  // sorted after it (they are unreachable past the corruption point).
  const std::string live_path = dir_ + "/" + scan.live_segment;
  if (::truncate(live_path.c_str(), static_cast<off_t>(scan.live_valid_bytes)) != 0) {
    throw Error("cannot truncate torn WAL tail: " + live_path + ": " + ErrnoString(errno));
  }
  for (const std::string& name : ListSegments(dir_)) {
    if (name > scan.live_segment) ::unlink((dir_ + "/" + name).c_str());
  }
  fd_ = ::open(live_path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd_ < 0) throw Error("cannot open WAL segment: " + live_path + ": " + ErrnoString(errno));
  segment_first_lsn_ = scan.live_first_lsn;
  segment_size_ = scan.live_valid_bytes;
  SyncDir();
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<WalRecord> Wal::TakeRecovered() { return std::move(recovered_); }

void Wal::SyncDir() const { FsyncDir(dir_); }

void Wal::OpenNewSegmentLocked(uint64_t first_lsn) {
  const std::string path = dir_ + "/" + SegmentName(first_lsn);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) throw Error("cannot create WAL segment: " + path + ": " + ErrnoString(errno));
  BinaryWriter header;
  header.u32(kSegmentMagic);
  header.u8(kSegmentVersion);
  header.u64(first_lsn);
  const std::string& bytes = header.buffer();
  if (::write(fd, bytes.data(), bytes.size()) != static_cast<ssize_t>(bytes.size())) {
    ::close(fd);
    throw Error("cannot write WAL segment header: " + path + ": " + ErrnoString(errno));
  }
  fd_ = fd;
  segment_first_lsn_ = first_lsn;
  segment_size_ = kSegmentHeaderBytes;
  // Make the file itself durable before any record relies on it existing.
  SyncDir();
}

void Wal::RotateLocked() {
  // The old segment must be fully durable before records continue in a new
  // one, whatever the policy — rotation is rare, the fsync is cheap
  // amortized. An in-flight group-commit flush still holds the old fd;
  // wait it out before closing (its leader re-acquires sync_mu_ to finish,
  // which our cv wait releases).
  {
    lockdep::relock_guard sync_lock(sync_mu_);
    while (flush_in_progress_) sync_cv_.wait(sync_lock);
    if (::fsync(fd_) != 0) {
      poisoned_.store(true, std::memory_order_relaxed);
      sync_cv_.notify_all();
      throw Error(ErrnoMessage("WAL fsync failed during rotation", errno));
    }
    synced_lsn_.store(written_lsn_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    sync_cv_.notify_all();
    ::close(fd_);
    fd_ = -1;
  }
  OpenNewSegmentLocked(next_lsn_);
}

uint64_t Wal::Append(const std::string& payload) {
  return Append(std::span<const std::string>(&payload, 1));
}

uint64_t Wal::Append(std::span<const std::string> payloads) {
  if (payloads.empty()) return last_lsn();
  const lockdep::guard lock(append_mu_);
  if (poisoned_.load(std::memory_order_relaxed)) {
    throw Error("WAL poisoned by an earlier disk failure: " + dir_);
  }
  if (segment_size_ > options_.segment_bytes) RotateLocked();
  std::string buffer;
  uint64_t lsn = next_lsn_;
  for (const std::string& payload : payloads) AppendRecordFrame(&buffer, lsn++, payload);
  const auto t0 = append_hist_ != nullptr ? std::chrono::steady_clock::now()
                                          : std::chrono::steady_clock::time_point{};
  const char* data = buffer.data();
  size_t remaining = buffer.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, data, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A partially-written frame would sit mid-segment where recovery's
      // CRC scan stops, so any record appended AFTER it would be silently
      // discarded despite a successful ack. Poison the log: nothing more
      // gets appended or acknowledged.
      poisoned_.store(true, std::memory_order_relaxed);
      throw Error("WAL write failed in " + dir_ + ": " + ErrnoString(errno));
    }
    data += n;
    remaining -= static_cast<size_t>(n);
  }
  if (append_hist_ != nullptr) {
    append_hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
    records_ctr_->Inc(payloads.size());
  }
  segment_size_ += buffer.size();
  appended_bytes_.fetch_add(buffer.size(), std::memory_order_relaxed);
  next_lsn_ = lsn;
  written_lsn_.store(lsn - 1, std::memory_order_release);
  return lsn - 1;
}

void Wal::Sync(uint64_t lsn) {
  if (options_.fsync == FsyncPolicy::kOff) return;
  lockdep::relock_guard lock(sync_mu_);
  for (;;) {
    if (poisoned_.load(std::memory_order_relaxed)) {
      throw Error("WAL poisoned by an earlier disk failure: " + dir_);
    }
    if (synced_lsn_.load(std::memory_order_relaxed) >= lsn) return;
    if (flush_in_progress_) {
      // A flush is in flight; it may cover us. Wait for it to land and
      // re-check — a covered waiter returns HERE, never queueing behind
      // the next leader's disk time.
      while (flush_in_progress_ &&
             synced_lsn_.load(std::memory_order_relaxed) < lsn) {
        sync_cv_.wait(lock);
      }
      continue;
    }
    // Become the leader. Everything written before the flush starts is
    // covered by it — `covered` is read first, then sync_mu_ is released
    // so writers keep appending (and covered waiters keep waking) during
    // the disk wait. Rotation cannot close fd_ underneath us: it waits for
    // !flush_in_progress_. fdatasync suffices: record data and file size
    // are flushed, and the segment's existence was fsynced (via its
    // directory) at creation.
    flush_in_progress_ = true;
    const uint64_t covered = written_lsn_.load(std::memory_order_acquire);
    lock.unlock();
    const auto t0 = fsync_hist_ != nullptr ? std::chrono::steady_clock::now()
                                           : std::chrono::steady_clock::time_point{};
    const int rc = ::fdatasync(flush_fd());
    if (fsync_hist_ != nullptr && rc == 0) {
      fsync_hist_->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    lock.lock();
    flush_in_progress_ = false;
    if (rc != 0) {
      // fsyncgate: after a failed fdatasync the kernel may have discarded
      // the dirty pages and a RETRY can report success without the data
      // ever reaching disk. The only safe reaction is to poison the log —
      // waiters wake into the poisoned check above and refuse their acks.
      poisoned_.store(true, std::memory_order_relaxed);
      sync_cv_.notify_all();
      throw Error(ErrnoMessage("WAL fdatasync failed", errno));
    }
    sync_count_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t prev_synced = synced_lsn_.load(std::memory_order_relaxed);
    if (covered > prev_synced) {
      synced_lsn_.store(covered, std::memory_order_release);
    }
    if (flushes_ctr_ != nullptr) {
      flushes_ctr_->Inc();
      // Group-commit merge width: how many records this one disk flush
      // acknowledged (0 when a concurrent flush already covered them).
      commit_width_->Record(covered > prev_synced ? covered - prev_synced : 0);
    }
    sync_cv_.notify_all();
  }
}

size_t Wal::TruncateThrough(uint64_t lsn) {
  const lockdep::guard lock(append_mu_);
  // A segment is removable when the NEXT segment starts at or below
  // lsn + 1 — then every record it holds is <= lsn. The live segment
  // always survives.
  const std::vector<std::string> names = ListSegments(dir_);
  size_t removed = 0;
  for (size_t i = 0; i + 1 < names.size(); ++i) {
    // Segment names embed their first LSN; the zero-padded decimal parses
    // back losslessly.
    const uint64_t next_first =
        std::strtoull(names[i + 1].c_str() + 4, nullptr, 10);
    if (names[i] == SegmentName(segment_first_lsn_) || next_first == 0 ||
        next_first > lsn + 1) {
      break;
    }
    if (::unlink((dir_ + "/" + names[i]).c_str()) == 0) ++removed;
  }
  if (removed > 0) SyncDir();
  return removed;
}

void Wal::ResetTo(uint64_t first_lsn) {
  const lockdep::guard lock(append_mu_);
  if (first_lsn <= written_lsn_.load(std::memory_order_relaxed)) {
    throw Error("Wal::ResetTo would renumber live records");
  }
  {
    lockdep::relock_guard sync_lock(sync_mu_);
    while (flush_in_progress_) sync_cv_.wait(sync_lock);
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    synced_lsn_.store(first_lsn - 1, std::memory_order_relaxed);
  }
  for (const std::string& name : ListSegments(dir_)) ::unlink((dir_ + "/" + name).c_str());
  next_lsn_ = first_lsn;
  written_lsn_.store(first_lsn - 1, std::memory_order_relaxed);
  OpenNewSegmentLocked(first_lsn);
}

WalTail Wal::ReadFrom(uint64_t from_lsn, size_t max_records, size_t max_bytes) const {
  WalTail tail;
  if (from_lsn == 0) from_lsn = 1;
  if (max_records == 0) max_records = 1;

  // Start at the LAST segment whose first LSN is <= from_lsn: everything
  // before it holds only records the reader already has.
  const std::vector<std::string> names = ListSegments(dir_);
  size_t start = names.size();
  for (size_t i = 0; i < names.size(); ++i) {
    const uint64_t first = std::strtoull(names[i].c_str() + 4, nullptr, 10);
    if (first == 0 || first > from_lsn) break;
    start = i;
  }
  if (start == names.size()) return tail;  // Truncated past from_lsn.

  // `expected` walks the LSN chain exactly like recovery's scan; any torn
  // or corrupt frame (including a concurrent append's incomplete tail)
  // ends the read there.
  uint64_t expected = 0;
  size_t bytes_out = 0;
  for (size_t i = start; i < names.size(); ++i) {
    std::string bytes;
    try {
      bytes = ReadFile(dir_ + "/" + names[i]);
    } catch (const Error&) {
      break;  // Racing truncation/reset unlinked it; serve what we have.
    }
    if (bytes.size() < kSegmentHeaderBytes) break;
    BinaryReader header(std::string_view(bytes).substr(0, kSegmentHeaderBytes));
    if (header.u32() != kSegmentMagic || header.u8() != kSegmentVersion) break;
    const uint64_t first = header.u64();
    if (first == 0 || (expected != 0 && first != expected)) break;
    expected = first;
    size_t pos = kSegmentHeaderBytes;
    bool clean = true;
    while (bytes.size() - pos >= kRecordHeaderBytes) {
      BinaryReader r(std::string_view(bytes).substr(pos, kRecordHeaderBytes));
      const uint32_t len = r.u32();
      const uint32_t crc = r.u32();
      const uint64_t lsn = r.u64();
      if (len > kMaxRecordBytes || len > bytes.size() - pos - kRecordHeaderBytes) {
        clean = false;
        break;
      }
      const std::string_view payload(bytes.data() + pos + kRecordHeaderBytes, len);
      if (lsn != expected || RecordCrc(lsn, payload) != crc) {
        clean = false;
        break;
      }
      pos += kRecordHeaderBytes + len;
      ++expected;
      if (lsn < from_lsn) continue;  // Pre-cursor record: validate and skip.
      // The byte cap never blocks the FIRST record — a single oversized
      // payload must still ship, one per pull.
      if (tail.records.size() >= max_records ||
          (!tail.records.empty() && bytes_out + payload.size() > max_bytes)) {
        tail.reachable = true;
        return tail;
      }
      tail.records.push_back(WalRecord{lsn, std::string(payload)});
      bytes_out += payload.size();
    }
    if (!clean) break;
  }
  // The run reaches from_lsn when the validated chain got at least to its
  // predecessor — otherwise corruption (or a divergent timeline) cut the
  // log short of it and only a snapshot can help the reader.
  tail.reachable = expected >= from_lsn;
  return tail;
}

uint64_t Wal::last_lsn() const { return written_lsn_.load(std::memory_order_acquire); }
uint64_t Wal::synced_lsn() const { return synced_lsn_.load(std::memory_order_acquire); }
uint64_t Wal::appended_bytes() const {
  return appended_bytes_.load(std::memory_order_relaxed);
}

}  // namespace ocasta::persist
