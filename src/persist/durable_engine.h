// DurableEngine — write-ahead logging + crash recovery over any api::Engine.
//
// A decorator: reads pass straight through to the inner engine, while every
// MUTATING command (Put, Delete, Compact, and any Batch containing one) is
// appended to the WAL before it is applied — acknowledged means logged, and
// logged means recoverable. The typed api::Command vocabulary is the log
// record: the same codec that frames the wire protocol frames the log, so
// replay is literally re-Apply()ing decoded commands.
//
// Determinism is the load-bearing property. Engine-assigned timestamps
// (timestamp == 0) are stamped HERE, from a lock-free monotonic clock,
// before logging, so the record replays to byte-identical state instead of
// re-stamping from a later wall clock. Mutations are serialized by one
// mutex across {append, apply}, making log order equal apply order — per-
// key clamping then replays identically whatever order stamps were drawn
// in. Everything expensive is hoisted out of that mutex: stamping and
// encoding happen before it, and the fdatasync (the slow part) after it,
// so concurrent writers group-commit — one disk flush acknowledges every
// writer queued behind it.
//
// Recovery (the constructor): load the newest snapshot that deserializes
// cleanly (snap-<lsn>.ttkv, falling back to older ones, then to empty),
// build the inner engine from it, then replay only WAL records with
// lsn > snapshot lsn — strictly after the snapshot seam, so a record the
// snapshot already contains is never double-applied — and truncate any torn
// tail (see Wal). Checkpoint() re-anchors the log: snapshot the inner
// engine at an exact LSN cut, retain the last `retained_snapshots`
// snapshots, and delete the WAL segments the oldest retained snapshot
// covers. A background thread checkpoints on a byte threshold and/or
// interval.
//
// Engine op counters (STATS puts/gets/deletes) are presented as TOTALS
// across restarts: each snapshot file carries the totals at its LSN cut
// (DurableSnapshot below), recovery seeds baselines from them, and replay
// re-derives the post-snapshot mutation counts. What durability does NOT
// cover: read counters bumped by standalone GETs after the last checkpoint
// (reads are never logged) and the online clustering tracker's window
// state. A command
// already applied in memory but not yet fsynced can be observed by a
// concurrent read before its ack — readers see at worst a write that a
// crash would un-ack, the usual WAL read-uncommitted window.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/engine.h"
#include "common/lockdep.h"
#include "persist/wal.h"

namespace ocasta::persist {

struct DurableOptions {
  WalOptions wal;
  // Checkpoint when this many WAL bytes accumulate since the last one
  // (0 = no size trigger).
  uint64_t checkpoint_wal_bytes = 64u << 20;
  // Periodic checkpoint interval (0 = no timer). Either trigger runs on the
  // background thread; with both at 0 no thread is started and only
  // explicit Checkpoint() calls anchor the log.
  double checkpoint_interval_seconds = 0.0;
  // Snapshots kept on disk. 2 means a corrupt newest snapshot still leaves
  // a recoverable older anchor (the WAL is only truncated past the OLDEST
  // retained snapshot).
  size_t retained_snapshots = 2;
  // Commit gate: called after a mutation's WAL flush with its last LSN,
  // BEFORE the result is returned (i.e. before the ack). The replication
  // layer uses it for --acks quorum: the gate blocks until enough
  // followers have durably acknowledged the LSN, and throws Error on
  // timeout — the write is then durable locally but NOT acknowledged to
  // the client. Must not call back into the engine. Null = no gate.
  std::function<void(uint64_t lsn)> commit_gate;
};

// The durable snapshot FILE format (snap-<lsn>.ttkv): an "OCDS" header
// carrying engine op-counter totals at the snapshot's LSN cut, wrapping
// the plain TTKV image. Persisting the totals closes the documented
// STATS gap where recovery silently reset puts/gets/deletes to zero
// (docs/DURABILITY.md). A file without the wrapper magic is read as a
// bare TTKV image with zero totals (pre-v5 data dirs stay loadable).
struct DurableSnapshot {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t deletes = 0;
  TTKV ttkv;
};

std::string EncodeDurableSnapshot(const DurableSnapshot& snap);
// Throws ParseError/Error on a corrupt image (either format).
DurableSnapshot DecodeDurableSnapshot(const std::string& bytes);

// True for commands the WAL must record: Put, Delete, Compact, or a Batch
// containing any of them.
bool IsMutating(const api::Command& cmd);

class DurableEngine final : public api::Engine {
 public:
  // Builds the inner engine from recovered state (an empty TTKV on first
  // boot). The factory runs once, during construction.
  using InnerFactory = std::function<std::unique_ptr<api::Engine>(TTKV recovered)>;

  // Opens `data_dir` (creating it), recovers, and goes live. Throws Error
  // when the directory is unusable or a WAL record fails to decode after
  // passing its CRC (format skew — refusing to run beats silently dropping
  // acknowledged writes).
  DurableEngine(std::string data_dir, InnerFactory factory, DurableOptions options = {});
  ~DurableEngine() override;

  api::Result Apply(const api::Command& cmd) override OCASTA_EXCLUDES(mu_);
  std::vector<api::Result> ApplyBatch(std::span<const api::Command> cmds) override
      OCASTA_EXCLUDES(mu_);
  const char* backend_name() const override { return "durable"; }

  // Snapshot-anchors the log right now: writes snap-<last_lsn>.ttkv (tmp +
  // fsync + rename), prunes snapshots beyond retained_snapshots, truncates
  // covered WAL segments. Safe to call concurrently with traffic; mutation
  // writers stall while the state is captured (not while it is written).
  void Checkpoint() OCASTA_EXCLUDES(checkpoint_mu_, mu_);

  // --- Replication hooks (src/replica/, docs/REPLICATION.md) ---------------

  // An encoded DurableSnapshot at an exact LSN cut, for bootstrapping a
  // follower whose cursor the log no longer reaches. Mutations stall for
  // the capture only; encoding happens after release.
  struct SnapshotImage {
    uint64_t lsn = 0;
    std::string bytes;  // EncodeDurableSnapshot output.
  };
  SnapshotImage CaptureSnapshot() OCASTA_EXCLUDES(mu_);

  // Applies records shipped from a leader at their exact leader LSNs: each
  // payload is appended verbatim to the local WAL and the decoded command
  // applied to the inner engine — the live-tail twin of constructor
  // replay, so a promoted follower's state and log are byte-equivalent to
  // the leader's recovery. Records must be contiguous and start at
  // last_lsn() + 1 (throws Error on a gap — the follower must resync).
  // Returns after the local WAL flush, so the follower's next pull cursor
  // doubles as a durability ack.
  void ApplyReplicated(std::span<const WalRecord> records) OCASTA_EXCLUDES(mu_);

  // Recovery telemetry from construction time.
  struct RecoveryInfo {
    uint64_t snapshot_lsn = 0;   // 0 = booted from an empty store.
    uint64_t replayed = 0;       // WAL records applied on top of the snapshot.
    uint64_t skipped = 0;        // Records at or below the snapshot seam.
    uint64_t dropped_bytes = 0;  // Torn/corrupt bytes truncated from the log.
  };
  const RecoveryInfo& recovery() const { return recovery_; }

  api::Engine& inner() { return *inner_; }
  Wal& wal() { return wal_; }

 private:
  // Rewrites timestamp-0 Put/Delete stamps (recursively through batches)
  // from the monotonic clock. Lock-free; called before mu_.
  void Stamp(api::Command* cmd);
  TimeMicros StampNow();
  void MaybeWakeCheckpointer() OCASTA_EXCLUDES(wake_mu_);

  void CheckpointThread();
  void WriteSnapshotFile(uint64_t lsn, const std::string& bytes);
  // Adds the persisted counter baselines (recursively, through batch
  // results) so STATS reports totals across restarts.
  void AddStatsBaseline(api::Result* result) const;

  const std::string dir_;
  const DurableOptions options_;

  // Serializes mutations across {append, apply} so replay order is apply
  // order. Reads and read-only batches bypass it entirely. Lockdep rank:
  // below every engine/WAL lock (mutations hold it while appending and
  // applying); only checkpoint_mu_ may be held when taking it.
  lockdep::ordered_mutex mu_{lockdep::kDurableMutateClass};
  Wal wal_;
  std::unique_ptr<api::Engine> inner_;
  std::atomic<int64_t> clock_{0};  // Monotonicized wall clock (stamps).
  RecoveryInfo recovery_;

  // Op-counter totals from the recovered snapshot's wrapper header,
  // written once during construction (the inner engine restarts its own
  // counters at zero; STATS adds these back). Replay past the snapshot
  // seam re-bumps the inner counters, so baseline + inner == true totals
  // for logged ops; standalone GETs after the last checkpoint are the one
  // documented loss (reads are never logged).
  uint64_t baseline_puts_ = 0;
  uint64_t baseline_gets_ = 0;
  uint64_t baseline_deletes_ = 0;

  // Serializes Checkpoint() bodies; taken BEFORE mu_ (lowest rank).
  lockdep::ordered_mutex checkpoint_mu_{lockdep::kDurableCheckpointClass};
  uint64_t checkpointed_lsn_ OCASTA_GUARDED_BY(checkpoint_mu_) = 0;
  // Read racily by writers to decide whether to wake the checkpointer.
  std::atomic<uint64_t> checkpointed_wal_bytes_{0};

  std::thread checkpoint_thread_;
  lockdep::ordered_mutex wake_mu_{lockdep::kDurableWakeClass};  // Leaf.
  lockdep::condvar wake_cv_;
  bool stopping_ OCASTA_GUARDED_BY(wake_mu_) = false;
};

}  // namespace ocasta::persist
