#include "ttkv/value.h"

#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/strings.h"

namespace ocasta {

namespace {

[[noreturn]] void TypeMismatch(const char* want, ValueType got) {
  throw StoreError(StrFormat("value type mismatch: want %s, got tag %d", want,
                             static_cast<int>(got)));
}

}  // namespace

bool Value::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  TypeMismatch("bool", type());
}

int64_t Value::as_int() const {
  if (const int64_t* i = std::get_if<int64_t>(&data_)) return *i;
  TypeMismatch("int", type());
}

double Value::as_real() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  TypeMismatch("real", type());
}

const std::string& Value::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  TypeMismatch("string", type());
}

const std::vector<std::string>& Value::as_list() const {
  if (const auto* l = std::get_if<std::vector<std::string>>(&data_)) return *l;
  TypeMismatch("list", type());
}

double Value::as_number() const {
  switch (type()) {
    case ValueType::kBool: return as_bool() ? 1.0 : 0.0;
    case ValueType::kInt: return static_cast<double>(as_int());
    case ValueType::kReal: return as_real();
    default: TypeMismatch("number", type());
  }
}

std::string Value::ToDisplay() const {
  switch (type()) {
    case ValueType::kNone: return "";
    case ValueType::kBool: return as_bool() ? "true" : "false";
    case ValueType::kInt: return std::to_string(as_int());
    case ValueType::kReal: {
      // The token must stay recognizably REAL: the text codecs feed this
      // through InferScalar on re-parse, and a bare "1" would come back as
      // an integer. %.17g round-trips the mantissa; integral values get a
      // ".0" suffix (skipped for inf/nan, where it would corrupt the token).
      std::string out = StrFormat("%.17g", as_real());
      if (out.find_first_of(".eE") == std::string::npos &&
          out.find_first_of("0123456789") != std::string::npos) {
        out += ".0";
      }
      return out;
    }
    case ValueType::kString: return as_string();
    case ValueType::kStringList: {
      std::string out;
      const auto& list = as_list();
      for (size_t i = 0; i < list.size(); ++i) {
        if (i) out += ';';
        out += EscapeField(list[i], ';');
      }
      return out;
    }
  }
  throw StoreError("corrupt value tag");
}

Value Value::ParseDisplay(ValueType type, const std::string& text) {
  switch (type) {
    case ValueType::kNone: return Value();
    case ValueType::kBool: return Value(text == "true" || text == "1");
    case ValueType::kInt: return Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
    case ValueType::kReal: return Value(std::strtod(text.c_str(), nullptr));
    case ValueType::kString: return Value(text);
    case ValueType::kStringList: {
      std::vector<std::string> items;
      if (!text.empty()) {
        // Split on unescaped ';'.
        std::string current;
        for (size_t i = 0; i < text.size(); ++i) {
          if (text[i] == '\\' && i + 1 < text.size()) {
            current += text[i];
            current += text[i + 1];
            ++i;
          } else if (text[i] == ';') {
            items.push_back(UnescapeField(current, ';'));
            current.clear();
          } else {
            current += text[i];
          }
        }
        items.push_back(UnescapeField(current, ';'));
      }
      return Value(std::move(items));
    }
  }
  throw StoreError("corrupt value tag");
}

size_t Value::EstimatedBytes() const {
  switch (type()) {
    case ValueType::kNone: return 1;
    case ValueType::kBool: return 1;
    case ValueType::kInt: return 8;
    case ValueType::kReal: return 8;
    case ValueType::kString: return 16 + as_string().size();
    case ValueType::kStringList: {
      size_t total = 24;
      for (const auto& s : as_list()) total += 16 + s.size();
      return total;
    }
  }
  return 0;
}

}  // namespace ocasta
