// The Time-Travel Key-Value store (TTKV).
//
// The paper implements the TTKV on top of Redis: each configuration key maps
// to a record holding its write/delete counts and a timestamped list of
// historical values, with deletions represented by a special tombstone
// value. This is a native C++ implementation of the same data model. It is
// the single source of truth for (a) the clustering algorithm's write
// stream, (b) the repair tool's historical cluster values, and (c) the
// Table I trace statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "ttkv/value.h"

namespace ocasta {

// One entry in a key's history. A deletion is recorded as a version with
// `is_delete == true` and a none Value (the paper's "special type of value
// ... used to represent deletions").
struct Version {
  TimeMicros timestamp = 0;
  Value value;
  bool is_delete = false;

  friend bool operator==(const Version&, const Version&) = default;
};

// Full history of one key.
struct VersionedRecord {
  std::string key;
  std::vector<Version> versions;  // Ordered by timestamp (stable for ties).
  uint64_t write_count = 0;       // Writes, excluding deletions.
  uint64_t delete_count = 0;
  uint64_t read_count = 0;

  // Value as of `t` (latest version with timestamp <= t). nullopt when the
  // key did not exist at `t`: never written yet, or tombstoned.
  std::optional<Value> value_at(TimeMicros t) const;

  // Latest live value; nullopt if never written or currently deleted.
  std::optional<Value> latest() const;

  TimeMicros first_modified() const { return versions.empty() ? 0 : versions.front().timestamp; }
  TimeMicros last_modified() const { return versions.empty() ? 0 : versions.back().timestamp; }

  size_t EstimatedBytes() const;
};

// Aggregate statistics, matching the columns of the paper's Table I.
struct TtkvStats {
  uint64_t reads = 0;
  uint64_t writes = 0;  // Includes deletions, as the trace logger counts them.
  uint64_t deletes = 0;
  size_t num_keys = 0;
  size_t size_bytes = 0;  // Estimated TTKV footprint ("Size" column).
};

// A single write event, flattened across keys and ordered by time — the
// input to the sliding-window co-modification analysis.
struct WriteEvent {
  TimeMicros timestamp = 0;
  uint32_t key_id = 0;  // Index into TTKV::key_names().
  bool is_delete = false;
};

class TTKV {
 public:
  TTKV() = default;

  // --- Recording (called by the loggers) -----------------------------------

  // Records a write of `key` at time `t`. Consecutive identical values are
  // still recorded: applications often rewrite unchanged settings on flush,
  // and the paper's flush-diff logger suppresses those upstream instead.
  void record_write(const std::string& key, Value value, TimeMicros t);

  // Records a deletion tombstone.
  void record_delete(const std::string& key, TimeMicros t);

  // Single-lookup fast paths for the engines' hot write path: clamp `t` to
  // the key's newest version (per-key monotonicity; concurrent writers race
  // between stamping and locking) and record, resolving the key's record
  // exactly ONCE instead of the contains + clamp + record triple lookup.
  // Return the timestamp actually applied.
  TimeMicros record_write_clamped(const std::string& key, Value value, TimeMicros t);
  TimeMicros record_delete_clamped(const std::string& key, TimeMicros t);

  // Counts a read and returns the latest live value in one lookup; absent
  // keys return nullopt without creating a record.
  std::optional<Value> read_latest(const std::string& key);

  // read_latest for callers holding only a SHARED (reader) lock: the value
  // lookup is read-only and the read counters are bumped with relaxed
  // atomic increments (std::atomic_ref), so concurrent shared-lock readers
  // never race each other. Anything that reads those counters non-atomically
  // (stats(), Serialize(), record copies) must hold the exclusive lock —
  // see ShardedTtkv's locking discipline. const so shared-lock readers can
  // call it through a const access path: the only mutation is the atomic
  // counter bump, which goes through atomic_ref on a const_cast inside.
  std::optional<Value> read_latest_shared(const std::string& key) const;

  // Counts a read. Reads do not contribute versions; they only feed the
  // Table I statistics and the "key was accessed" inventory.
  void record_read(const std::string& key, TimeMicros t);

  // Bulk form of record_read: desktop traces contain millions of reads
  // (Table I), which are recorded as counters rather than events.
  void record_reads(const std::string& key, uint64_t count);

  // --- Queries (used by clustering and repair) -----------------------------

  size_t num_keys() const { return records_.size(); }
  bool contains(const std::string& key) const { return index_.count(key) != 0; }

  // Stable key-id assignment: ids are dense [0, num_keys) in first-seen
  // order and never change once assigned.
  uint32_t key_id(const std::string& key) const;
  const std::string& key_name(uint32_t id) const;
  const std::vector<std::string>& key_names() const { return names_; }

  const VersionedRecord& record(const std::string& key) const;
  const VersionedRecord& record(uint32_t id) const;

  // Record lookup without creating: nullptr when the key was never
  // recorded.
  const VersionedRecord* find(const std::string& key) const;

  std::optional<Value> latest(const std::string& key) const;
  std::optional<Value> value_at(const std::string& key, TimeMicros t) const;

  // All write/delete events across all keys, sorted by timestamp (stable by
  // recording order within a timestamp).
  std::vector<WriteEvent> write_events() const;

  // Keys that have at least `min_writes` recorded modifications. The paper
  // excludes never-modified keys from the search ("any key that has not
  // been modified from its initial value cannot cause a configuration
  // error").
  std::vector<uint32_t> modified_key_ids(uint64_t min_writes = 1) const;

  TtkvStats stats() const;

  // --- Maintenance ----------------------------------------------------------

  // Drops history older than `horizon` while preserving every query at or
  // after it: each key keeps its versions with timestamp >= horizon plus
  // the one version establishing its state just before the horizon.
  // Bounds a long-running recorder's footprint (Table I's multi-MB TTKVs)
  // at the cost of rollback depth. Lifetime counters are unaffected.
  // Returns the number of versions dropped.
  size_t CompactBefore(TimeMicros horizon);

  // Appends a fully-formed record, e.g. when merging per-shard stores into
  // one snapshot (see server/sharded_ttkv.h). The key must be new to this
  // store and the versions time-ordered; the record's read count folds into
  // the store-wide read total.
  void ImportRecord(VersionedRecord rec);

  // --- Persistence ----------------------------------------------------------

  // Binary snapshot of the full store (all histories + counters).
  std::string Serialize() const;
  static TTKV Deserialize(const std::string& bytes);

  friend bool operator==(const TTKV& a, const TTKV& b);

 private:
  VersionedRecord& mutable_record(const std::string& key);

  std::vector<VersionedRecord> records_;
  std::vector<std::string> names_;
  // Hash index: key → dense id. Nothing depends on index order (names_ and
  // records_ preserve first-seen order; ListKeys-style consumers sort), and
  // the O(1) lookup is the hot engine paths' single biggest cost.
  std::unordered_map<std::string, uint32_t> index_;
  uint64_t total_reads_ = 0;
};

}  // namespace ocasta
