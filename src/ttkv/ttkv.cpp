#include "ttkv/ttkv.h"

#include <algorithm>
#include <atomic>

#include "common/error.h"
#include "ttkv/serialize.h"

namespace ocasta {

std::optional<Value> VersionedRecord::value_at(TimeMicros t) const {
  // Versions are time-ordered; find the last one with timestamp <= t.
  const Version* best = nullptr;
  for (const Version& v : versions) {
    if (v.timestamp > t) break;
    best = &v;
  }
  if (best == nullptr || best->is_delete) return std::nullopt;
  return best->value;
}

std::optional<Value> VersionedRecord::latest() const {
  if (versions.empty() || versions.back().is_delete) return std::nullopt;
  return versions.back().value;
}

size_t VersionedRecord::EstimatedBytes() const {
  size_t total = 48 + key.size();  // Record header + key name.
  for (const Version& v : versions) {
    total += 24 + v.value.EstimatedBytes();  // Timestamp + flags + payload.
  }
  return total;
}

VersionedRecord& TTKV::mutable_record(const std::string& key) {
  auto [it, inserted] = index_.try_emplace(key, static_cast<uint32_t>(records_.size()));
  if (inserted) {
    records_.push_back(VersionedRecord{.key = key, .versions = {}});
    names_.push_back(key);
  }
  return records_[it->second];
}

void TTKV::record_write(const std::string& key, Value value, TimeMicros t) {
  VersionedRecord& rec = mutable_record(key);
  if (!rec.versions.empty() && rec.versions.back().timestamp > t) {
    throw StoreError("TTKV writes must be recorded in time order: " + key);
  }
  rec.versions.push_back(Version{.timestamp = t, .value = std::move(value), .is_delete = false});
  ++rec.write_count;
}

// GCC 12's -Wmaybe-uninitialized misfires on the monostate variant inside
// the tombstone Value temporary at -O2 (GCC PR105562).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void TTKV::record_delete(const std::string& key, TimeMicros t) {
  VersionedRecord& rec = mutable_record(key);
  if (!rec.versions.empty() && rec.versions.back().timestamp > t) {
    throw StoreError("TTKV deletes must be recorded in time order: " + key);
  }
  rec.versions.push_back(Version{.timestamp = t, .value = Value(), .is_delete = true});
  ++rec.delete_count;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

TimeMicros TTKV::record_write_clamped(const std::string& key, Value value, TimeMicros t) {
  VersionedRecord& rec = mutable_record(key);
  if (!rec.versions.empty() && rec.versions.back().timestamp > t) {
    t = rec.versions.back().timestamp;
  }
  rec.versions.push_back(Version{.timestamp = t, .value = std::move(value), .is_delete = false});
  ++rec.write_count;
  return t;
}

// See record_delete for the GCC 12 -Wmaybe-uninitialized note.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
TimeMicros TTKV::record_delete_clamped(const std::string& key, TimeMicros t) {
  VersionedRecord& rec = mutable_record(key);
  if (!rec.versions.empty() && rec.versions.back().timestamp > t) {
    t = rec.versions.back().timestamp;
  }
  rec.versions.push_back(Version{.timestamp = t, .value = Value(), .is_delete = true});
  ++rec.delete_count;
  return t;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

std::optional<Value> TTKV::read_latest(const std::string& key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  VersionedRecord& rec = records_[it->second];
  ++rec.read_count;
  ++total_reads_;
  return rec.latest();
}

std::optional<Value> TTKV::read_latest_shared(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  const VersionedRecord& rec = records_[it->second];
  // const_cast feeds the atomic_refs only; same idiom as ShardedTtkv's
  // CopyRecordShared (the counters are logically mutable statistics).
  std::atomic_ref<uint64_t>(const_cast<VersionedRecord&>(rec).read_count)
      .fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(const_cast<TTKV*>(this)->total_reads_)
      .fetch_add(1, std::memory_order_relaxed);
  return rec.latest();
}

void TTKV::record_read(const std::string& key, TimeMicros /*t*/) {
  ++mutable_record(key).read_count;
  ++total_reads_;
}

void TTKV::record_reads(const std::string& key, uint64_t count) {
  mutable_record(key).read_count += count;
  total_reads_ += count;
}

uint32_t TTKV::key_id(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) throw StoreError("unknown TTKV key: " + key);
  return it->second;
}

const std::string& TTKV::key_name(uint32_t id) const {
  if (id >= names_.size()) throw StoreError("TTKV key id out of range");
  return names_[id];
}

const VersionedRecord& TTKV::record(const std::string& key) const { return records_[key_id(key)]; }

const VersionedRecord* TTKV::find(const std::string& key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? nullptr : &records_[it->second];
}

const VersionedRecord& TTKV::record(uint32_t id) const {
  if (id >= records_.size()) throw StoreError("TTKV key id out of range");
  return records_[id];
}

std::optional<Value> TTKV::latest(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second].latest();
}

std::optional<Value> TTKV::value_at(const std::string& key, TimeMicros t) const {
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return records_[it->second].value_at(t);
}

std::vector<WriteEvent> TTKV::write_events() const {
  std::vector<WriteEvent> events;
  for (uint32_t id = 0; id < records_.size(); ++id) {
    for (const Version& v : records_[id].versions) {
      events.push_back(WriteEvent{.timestamp = v.timestamp, .key_id = id, .is_delete = v.is_delete});
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const WriteEvent& a, const WriteEvent& b) { return a.timestamp < b.timestamp; });
  return events;
}

std::vector<uint32_t> TTKV::modified_key_ids(uint64_t min_writes) const {
  std::vector<uint32_t> ids;
  for (uint32_t id = 0; id < records_.size(); ++id) {
    if (records_[id].write_count + records_[id].delete_count >= min_writes) ids.push_back(id);
  }
  return ids;
}

TtkvStats TTKV::stats() const {
  TtkvStats s;
  s.reads = total_reads_;
  s.num_keys = records_.size();
  s.size_bytes = 64;  // Store header.
  for (const VersionedRecord& rec : records_) {
    s.writes += rec.write_count + rec.delete_count;
    s.deletes += rec.delete_count;
    s.size_bytes += rec.EstimatedBytes();
  }
  return s;
}

size_t TTKV::CompactBefore(TimeMicros horizon) {
  size_t dropped = 0;
  for (VersionedRecord& rec : records_) {
    // Find the last version strictly before the horizon: it establishes
    // the value as-of (horizon - 1) and must survive.
    size_t first_kept = 0;
    for (size_t i = 0; i < rec.versions.size(); ++i) {
      if (rec.versions[i].timestamp < horizon) first_kept = i;
      else break;
    }
    if (first_kept > 0) {
      rec.versions.erase(rec.versions.begin(),
                         rec.versions.begin() + static_cast<ptrdiff_t>(first_kept));
      dropped += first_kept;
    }
  }
  return dropped;
}

void TTKV::ImportRecord(VersionedRecord rec) {
  if (index_.count(rec.key) != 0) throw StoreError("ImportRecord: key already present: " + rec.key);
  for (size_t i = 1; i < rec.versions.size(); ++i) {
    if (rec.versions[i - 1].timestamp > rec.versions[i].timestamp) {
      throw StoreError("ImportRecord: versions out of time order: " + rec.key);
    }
  }
  index_.emplace(rec.key, static_cast<uint32_t>(records_.size()));
  names_.push_back(rec.key);
  total_reads_ += rec.read_count;
  records_.push_back(std::move(rec));
}

namespace {
constexpr uint32_t kMagic = 0x4f435454;  // "OCTT"
constexpr uint8_t kFormatVersion = 1;
}  // namespace

std::string TTKV::Serialize() const {
  BinaryWriter w;
  w.u32(kMagic);
  w.u8(kFormatVersion);
  w.u64(total_reads_);
  w.u64(records_.size());
  for (const VersionedRecord& rec : records_) {
    w.str(rec.key);
    w.u64(rec.write_count);
    w.u64(rec.delete_count);
    w.u64(rec.read_count);
    w.u64(rec.versions.size());
    for (const Version& v : rec.versions) {
      w.i64(v.timestamp);
      w.u8(v.is_delete ? 1 : 0);
      w.value(v.value);
    }
  }
  return w.take();
}

TTKV TTKV::Deserialize(const std::string& bytes) {
  BinaryReader r(bytes);
  if (r.u32() != kMagic) throw ParseError("not a TTKV snapshot (bad magic)");
  if (r.u8() != kFormatVersion) throw ParseError("unsupported TTKV snapshot version");
  TTKV store;
  store.total_reads_ = r.u64();
  const uint64_t num_records = r.u64();
  // Each record occupies at least 36 bytes (key length + three counters +
  // version count); corrupted counts must fail rather than over-allocate.
  if (num_records > r.remaining() / 36) {
    throw ParseError("TTKV snapshot record count exceeds artifact size");
  }
  for (uint64_t i = 0; i < num_records; ++i) {
    VersionedRecord rec;
    rec.key = r.str();
    rec.write_count = r.u64();
    rec.delete_count = r.u64();
    rec.read_count = r.u64();
    const uint64_t num_versions = r.u64();
    // A version is at least 10 bytes (timestamp + flag + value tag).
    if (num_versions > r.remaining() / 10) {
      throw ParseError("TTKV snapshot version count exceeds artifact size");
    }
    rec.versions.reserve(num_versions);
    for (uint64_t j = 0; j < num_versions; ++j) {
      Version v;
      v.timestamp = r.i64();
      v.is_delete = r.u8() != 0;
      v.value = r.value();
      rec.versions.push_back(std::move(v));
    }
    store.index_.emplace(rec.key, static_cast<uint32_t>(store.records_.size()));
    store.names_.push_back(rec.key);
    store.records_.push_back(std::move(rec));
  }
  if (!r.at_end()) throw ParseError("trailing bytes after TTKV snapshot");
  return store;
}

bool operator==(const TTKV& a, const TTKV& b) {
  if (a.total_reads_ != b.total_reads_ || a.names_ != b.names_) return false;
  for (size_t i = 0; i < a.records_.size(); ++i) {
    const VersionedRecord& ra = a.records_[i];
    const VersionedRecord& rb = b.records_[i];
    if (ra.key != rb.key || ra.write_count != rb.write_count ||
        ra.delete_count != rb.delete_count || ra.read_count != rb.read_count ||
        ra.versions != rb.versions) {
      return false;
    }
  }
  return true;
}

}  // namespace ocasta
