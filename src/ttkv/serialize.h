// Little-endian binary (de)serialization used by TTKV persistence and
// trace files. A fixed byte layout keeps artifacts portable across hosts.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.h"
#include "ttkv/value.h"

namespace ocasta {

class BinaryWriter {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);
  void value(const Value& v);

  const std::string& buffer() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  int64_t i64() { return static_cast<int64_t>(u64()); }
  double f64();
  std::string str();
  Value value();

  bool at_end() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(size_t n) {
    if (remaining() < n) throw ParseError("binary artifact truncated");
  }
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace ocasta
