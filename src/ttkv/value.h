// Typed configuration values.
//
// Ocasta abstracts configuration settings into key-value pairs. Values in
// real stores are typed (registry REG_DWORD/REG_SZ, GConf bool/int/string,
// JSON numbers/strings/lists), so Value models the union the loggers emit.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ocasta {

enum class ValueType : uint8_t {
  kNone = 0,   // "no value" — used for absent defaults, never stored.
  kBool = 1,
  kInt = 2,
  kReal = 3,
  kString = 4,
  kStringList = 5,
};

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}                                 // NOLINT(google-explicit-constructor)
  Value(int64_t i) : data_(i) {}                              // NOLINT
  Value(int i) : data_(static_cast<int64_t>(i)) {}            // NOLINT
  Value(double d) : data_(d) {}                               // NOLINT
  Value(std::string s) : data_(std::move(s)) {}               // NOLINT
  Value(const char* s) : data_(std::string(s)) {}             // NOLINT
  Value(std::vector<std::string> l) : data_(std::move(l)) {}  // NOLINT

  ValueType type() const { return static_cast<ValueType>(data_.index()); }
  bool is_none() const { return type() == ValueType::kNone; }

  // Typed accessors. Precondition: type() matches; StoreError otherwise.
  bool as_bool() const;
  int64_t as_int() const;
  double as_real() const;
  const std::string& as_string() const;
  const std::vector<std::string>& as_list() const;

  // Lenient numeric view: bool→0/1, int, real; StoreError for other types.
  double as_number() const;

  // Canonical single-line text rendering (used by file-store serializers,
  // screenshots and trace dumps). Round-trips through ParseDisplay for all
  // types except that int-valued reals print without a fraction.
  std::string ToDisplay() const;

  // Parses ToDisplay output back into a Value with the given expected type.
  static Value ParseDisplay(ValueType type, const std::string& text);

  // Rough in-memory footprint, used for the Table I "Size" column.
  size_t EstimatedBytes() const;

  friend bool operator==(const Value& a, const Value& b) { return a.data_ == b.data_; }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, std::vector<std::string>> data_;
};

}  // namespace ocasta
