#include "ttkv/serialize.h"

#include <cstring>

namespace ocasta {

void BinaryWriter::u32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void BinaryWriter::u64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void BinaryWriter::f64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinaryWriter::str(std::string_view s) {
  u32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

void BinaryWriter::value(const Value& v) {
  u8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNone: break;
    case ValueType::kBool: u8(v.as_bool() ? 1 : 0); break;
    case ValueType::kInt: i64(v.as_int()); break;
    case ValueType::kReal: f64(v.as_real()); break;
    case ValueType::kString: str(v.as_string()); break;
    case ValueType::kStringList: {
      const auto& list = v.as_list();
      u32(static_cast<uint32_t>(list.size()));
      for (const auto& item : list) str(item);
      break;
    }
  }
}

uint8_t BinaryReader::u8() {
  need(1);
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t BinaryReader::u32() {
  need(4);
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

uint64_t BinaryReader::u64() {
  need(8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  return v;
}

double BinaryReader::f64() {
  const uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BinaryReader::str() {
  const uint32_t n = u32();
  need(n);
  std::string out(data_.substr(pos_, n));
  pos_ += n;
  return out;
}

Value BinaryReader::value() {
  const auto type = static_cast<ValueType>(u8());
  switch (type) {
    case ValueType::kNone: return Value();
    case ValueType::kBool: return Value(u8() != 0);
    case ValueType::kInt: return Value(i64());
    case ValueType::kReal: return Value(f64());
    case ValueType::kString: return Value(str());
    case ValueType::kStringList: {
      const uint32_t n = u32();
      // Every element needs at least its 4-byte length prefix; a corrupted
      // count must fail cleanly rather than reserve unbounded memory.
      if (n > remaining() / 4) throw ParseError("string list count exceeds artifact size");
      std::vector<std::string> list;
      list.reserve(n);
      for (uint32_t i = 0; i < n; ++i) list.push_back(str());
      return Value(std::move(list));
    }
  }
  throw ParseError("unknown value tag in binary artifact");
}

}  // namespace ocasta
