// Fuzz target: the Prometheus writer is total. Arbitrary input bytes are
// deterministically carved into a MetricsSnapshot — names, label keys and
// label values take raw bytes (including NULs, quotes, backslashes and
// newlines), stats doubles are bit-cast from the input so NaN, ±Inf and
// subnormals all occur — and every line WritePrometheusText() produces is
// checked against the exposition grammar documented in obs/prometheus.h:
//   * `# TYPE <name> counter|gauge|summary`, at most once per family, or
//   * `<name>[{label="escaped",...}] <value>` where <name> matches
//     [a-zA-Z_:][a-zA-Z0-9_:]*, label names match [a-zA-Z_][a-zA-Z0-9_]*
//     and are unique within the sample, label values contain only valid
//     escapes (\\, \", \n) and no raw quote/backslash, and <value> is an
//     integer, a finite %.17g double, NaN, +Inf or -Inf.
// Any violation traps. A trap here means the writer — not the fuzzer —
// needs fixing: the HTTP exporter serves this text verbatim to scrapers.
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace {

using ocasta::obs::HistogramStats;
using ocasta::obs::Labels;
using ocasta::obs::MetricsSnapshot;

// Wrap-around byte reader: any input, including empty, yields a full
// snapshot, so coverage does not depend on the input being long enough.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t pos = 0;

  uint8_t U8() {
    if (size == 0) return 0;
    const uint8_t b = data[pos];
    pos = (pos + 1) % size;
    return b;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | U8();
    return v;
  }

  double F64() {
    const uint64_t bits = U64();
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  }

  std::string Str() {
    std::string s;
    const size_t len = U8() % 24;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) s += static_cast<char>(U8());
    return s;
  }

  Labels MakeLabels() {
    Labels labels;
    const size_t n = U8() % 4;
    for (size_t i = 0; i < n; ++i) labels.emplace_back(Str(), Str());
    return labels;
  }
};

MetricsSnapshot Synthesize(const uint8_t* data, size_t size) {
  Reader r{data, size};
  MetricsSnapshot snap;
  const size_t nc = r.U8() % 4;
  for (size_t i = 0; i < nc; ++i)
    snap.counters.push_back({r.Str(), r.MakeLabels(), r.U64()});
  const size_t ng = r.U8() % 4;
  for (size_t i = 0; i < ng; ++i)
    snap.gauges.push_back({r.Str(), r.MakeLabels(), static_cast<int64_t>(r.U64())});
  const size_t nh = r.U8() % 3;
  for (size_t i = 0; i < nh; ++i) {
    HistogramStats stats;
    stats.count = r.U64();
    stats.sum = r.F64();
    stats.p50 = r.F64();
    stats.p90 = r.F64();
    stats.p99 = r.F64();
    stats.p999 = r.F64();
    stats.max = r.F64();
    snap.histograms.push_back({r.Str(), r.MakeLabels(), stats});
  }
  return snap;
}

bool NameOk(std::string_view s, bool label) {
  if (s.empty()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
    const bool digit = c >= '0' && c <= '9';
    const bool ok = alpha || c == '_' || (!label && c == ':') || (digit && i > 0);
    if (!ok) return false;
  }
  return true;
}

bool ValueOk(std::string_view v) {
  if (v == "NaN" || v == "+Inf" || v == "-Inf") return true;
  if (v.empty()) return false;
  const std::string copy(v);
  char* end = nullptr;
  std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

// `line` excludes the trailing newline. Returns false on any grammar
// violation.
bool LineOk(std::string_view line, std::vector<std::string>* typed_families) {
  constexpr std::string_view kType = "# TYPE ";
  if (line.substr(0, kType.size()) == kType) {
    const std::string_view rest = line.substr(kType.size());
    const size_t sp = rest.find(' ');
    if (sp == std::string_view::npos) return false;
    const std::string_view family = rest.substr(0, sp);
    const std::string_view kind = rest.substr(sp + 1);
    if (!NameOk(family, /*label=*/false)) return false;
    if (kind != "counter" && kind != "gauge" && kind != "summary") return false;
    for (const std::string& seen : *typed_families)
      if (seen == family) return false;  // Duplicate TYPE line for a family.
    typed_families->emplace_back(family);
    return true;
  }

  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  if (!NameOk(line.substr(0, i), /*label=*/false)) return false;

  if (i < line.size() && line[i] == '{') {
    ++i;
    std::vector<std::string_view> label_names;
    while (true) {
      const size_t name_start = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size()) return false;
      const std::string_view name = line.substr(name_start, i - name_start);
      if (!NameOk(name, /*label=*/true)) return false;
      for (const std::string_view seen : label_names)
        if (seen == name) return false;  // Duplicate label in one sample.
      label_names.push_back(name);
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') return false;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= line.size()) return false;
          const char esc = line[i + 1];
          if (esc != '\\' && esc != '"' && esc != 'n') return false;
          i += 2;
        } else {
          ++i;
        }
      }
      if (i >= line.size()) return false;  // Unterminated value.
      ++i;                                 // Closing quote.
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return false;
    }
  }

  if (i >= line.size() || line[i] != ' ') return false;
  return ValueOk(line.substr(i + 1));
}

void Validate(const std::string& text) {
  if (!text.empty() && text.back() != '\n') __builtin_trap();
  std::vector<std::string> typed_families;
  size_t start = 0;
  while (start < text.size()) {
    const size_t nl = text.find('\n', start);
    const std::string_view line(text.data() + start, nl - start);
    if (line.empty()) __builtin_trap();  // Blank lines are not emitted.
    if (!LineOk(line, &typed_families)) __builtin_trap();
    start = nl + 1;
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const MetricsSnapshot snap = Synthesize(data, size);
  Validate(ocasta::obs::WritePrometheusText(snap));
  return 0;
}
