#!/usr/bin/env sh
# Runs one fuzz target against its seed corpus for a bounded wall-clock
# smoke. Two modes, matching how the target was built:
#
#   run_smoke.sh driver    <binary> <corpus-dir>   gcc build: standalone
#                                                  driver's --smoke loop
#   run_smoke.sh libfuzzer <binary> <corpus-dir>   clang build: real
#                                                  coverage-guided libFuzzer
#
# FUZZ_SMOKE_SECONDS bounds the run (default 5 locally; CI exports 60).
# Any crash, sanitizer report, or invariant trap fails the script.
set -eu

mode="$1"
binary="$2"
corpus="$3"
seconds="${FUZZ_SMOKE_SECONDS:-5}"

if [ ! -d "$corpus" ]; then
    echo "run_smoke.sh: corpus dir $corpus missing" >&2
    exit 1
fi

case "$mode" in
driver)
    exec "$binary" --smoke "$seconds" "$corpus"
    ;;
libfuzzer)
    # -runs unlimited within the time budget; corpus dir doubles as the
    # seed set and the output dir for interesting mutants (discarded in CI,
    # kept when run locally so finds can be committed as new seeds).
    exec "$binary" -max_total_time="$seconds" -timeout=10 -rss_limit_mb=2048 "$corpus"
    ;;
*)
    echo "run_smoke.sh: unknown mode '$mode' (want driver|libfuzzer)" >&2
    exit 2
    ;;
esac
