// Seed-corpus generator: writes one subdirectory per fuzz target under
// argv[1], each holding structurally valid inputs produced by the REAL
// encoders (codec, framing, Wal, TTKV::Serialize, format codecs). Fuzzers
// mutate from here, so seeds reaching deep into the decoders matter far
// more than seed count. Regenerate with `fuzz_gen_corpus fuzz/corpus` after
// a protocol or format change; the outputs are deterministic and committed.
#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/codec.h"
#include "api/command.h"
#include "parsers/codec.h"
#include "persist/wal.h"
#include "server/wire.h"
#include "ttkv/ttkv.h"

namespace {

std::string g_root;

void WriteSeed(const std::string& target, const std::string& name, const std::string& bytes) {
  const std::string dir = g_root + "/" + target;
  ::mkdir(dir.c_str(), 0755);
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "gen_corpus: cannot write %s/%s\n", dir.c_str(), name.c_str());
    std::exit(1);
  }
}

std::string Frame(const std::string& payload) {
  std::string out;
  ocasta::AppendFrameHeader(out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

void GenCommands() {
  using namespace ocasta::api;
  WriteSeed("codec_command", "ping", EncodeCommand(PingCmd{}));
  WriteSeed("codec_command", "put_int", EncodeCommand(PutCmd{"net/port", int64_t{8080}, 1700000000000001}));
  WriteSeed("codec_command", "put_str", EncodeCommand(PutCmd{"app/name", std::string("ocasta"), 0}));
  WriteSeed("codec_command", "put_list",
            EncodeCommand(PutCmd{"app/plugins", std::vector<std::string>{"auth", "cache"}, 7}));
  WriteSeed("codec_command", "delete_force", EncodeCommand(DeleteCmd{"app/name", 42, true}));
  WriteSeed("codec_command", "get", EncodeCommand(GetCmd{"net/port"}));
  WriteSeed("codec_command", "get_at", EncodeCommand(GetAtCmd{"net/port", 1700000000000000}));
  WriteSeed("codec_command", "history", EncodeCommand(HistoryCmd{"net/port"}));
  WriteSeed("codec_command", "list_keys", EncodeCommand(ListKeysCmd{"net/"}));
  WriteSeed("codec_command", "stats", EncodeCommand(StatsCmd{}));
  WriteSeed("codec_command", "snapshot", EncodeCommand(SnapshotCmd{}));
  WriteSeed("codec_command", "compact", EncodeCommand(CompactCmd{1700000000000000}));
  WriteSeed("codec_command", "cluster_now", EncodeCommand(ClusterNowCmd{}));
  WriteSeed("codec_command", "shutdown", EncodeCommand(ShutdownCmd{}));
  // Nested batch (depth 2) — the recursion the depth cap guards.
  BatchCmd inner{{Command(PutCmd{"a", int64_t{1}, 1}), Command(GetCmd{"a"})}};
  BatchCmd outer{{Command(PingCmd{}), Command(inner), Command(DeleteCmd{"a", 2, false})}};
  WriteSeed("codec_command", "batch_nested", EncodeCommand(outer));
}

ocasta::TTKV SampleStore() {
  ocasta::TTKV store;
  store.record_write("net/port", int64_t{8080}, 10);
  store.record_write("net/port", int64_t{9090}, 20);
  store.record_write("app/debug", true, 15);
  store.record_delete("app/debug", 30);
  store.record_write("app/ratio", 0.75, 25);
  store.record_reads("net/port", 3);
  return store;
}

void GenResults() {
  using namespace ocasta::api;
  WriteSeed("codec_result", "ok", EncodeResult(OkResult{}));
  WriteSeed("codec_result", "error", EncodeResult(ErrorResult{"key must not be empty"}));
  WriteSeed("codec_result", "existed", EncodeResult(ExistedResult{true}));
  WriteSeed("codec_result", "value_int", EncodeResult(ValueResult{ocasta::Value(int64_t{8080})}));
  WriteSeed("codec_result", "value_absent", EncodeResult(ValueResult{std::nullopt}));
  ocasta::VersionedRecord rec;
  rec.key = "net/port";
  rec.versions = {{10, ocasta::Value(int64_t{8080}), false}, {20, ocasta::Value(), true}};
  rec.write_count = 1;
  rec.delete_count = 1;
  rec.read_count = 2;
  WriteSeed("codec_result", "history", EncodeResult(HistoryResult{rec}));
  WriteSeed("codec_result", "history_absent", EncodeResult(HistoryResult{std::nullopt}));
  WriteSeed("codec_result", "keys", EncodeResult(KeysResult{{"app/debug", "net/port"}}));
  WriteSeed("codec_result", "stats", EncodeResult(StatsResult{}));
  WriteSeed("codec_result", "snapshot", EncodeResult(SnapshotResult{SampleStore()}));
  WriteSeed("codec_result", "compact", EncodeResult(CompactResult{7}));
  WriteSeed("codec_result", "clusters", EncodeResult(ClustersResult{}));
  BatchResult batch{{Result(OkResult{}), Result(ErrorResult{"nope"}), Result(ExistedResult{false})}};
  WriteSeed("codec_result", "batch", EncodeResult(batch));
}

void GenHello() {
  using namespace ocasta::api;
  WriteSeed("codec_hello", "hello_v3", EncodeHello(kProtocolVersion));
  WriteSeed("codec_hello", "hello_v1", EncodeHello(1));
  WriteSeed("codec_hello", "hello_max", EncodeHello(0xffffffffu));
  WriteSeed("codec_hello", "reply_v3", EncodeHelloReply(kProtocolVersion));
  WriteSeed("codec_hello", "reply_error",
            EncodeResult(ErrorResult{"protocol version 1 is older than minimum 3"}));
}

void GenFrames() {
  using namespace ocasta::api;
  WriteSeed("frame_buffer", "one_frame", Frame(EncodeCommand(GetCmd{"net/port"})));
  WriteSeed("frame_buffer", "pipelined",
            Frame(EncodeCommand(PingCmd{})) + Frame(EncodeCommand(StatsCmd{})) +
                Frame(EncodeResult(OkResult{})));
  WriteSeed("frame_buffer", "zero_len", Frame("") + Frame("") + Frame(EncodeCommand(PingCmd{})));
  // Torn tail: header promises more bytes than follow (mid-frame EOF path).
  std::string torn;
  ocasta::AppendFrameHeader(torn, 64);
  torn += "short";
  WriteSeed("frame_buffer", "torn_tail", torn);
  // Oversized prefix: must throw, never allocate.
  std::string huge;
  ocasta::AppendFrameHeader(huge, ocasta::kMaxFrameBytes + 1);
  WriteSeed("frame_buffer", "oversized_prefix", huge);
}

std::string ReadWhole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return bytes;
}

void GenWal(const std::string& scratch) {
  using ocasta::persist::FsyncPolicy;
  using ocasta::persist::Wal;
  using ocasta::persist::WalOptions;
  ::mkdir(scratch.c_str(), 0755);
  const std::string dir = scratch + "/walgen";
  ::mkdir(dir.c_str(), 0755);
  {
    Wal wal(dir, WalOptions{.segment_bytes = 64u << 20, .fsync = FsyncPolicy::kOff});
    wal.Append(ocasta::api::EncodeCommand(ocasta::api::PutCmd{"net/port", int64_t{8080}, 10}));
    wal.Append(ocasta::api::EncodeCommand(ocasta::api::DeleteCmd{"net/port", 20, false}));
    wal.Append(ocasta::api::EncodeCommand(ocasta::api::PutCmd{"app/name", std::string("x"), 30}));
  }
  const std::string segment = ReadWhole(dir + "/wal-00000000000000000001.log");
  if (segment.empty()) {
    std::fprintf(stderr, "gen_corpus: WAL segment generation failed\n");
    std::exit(1);
  }
  // Selector byte 0x00 = single segment, 0x01 = split across two files.
  WriteSeed("wal_scan", "clean_segment", std::string(1, '\0') + segment);
  WriteSeed("wal_scan", "split_segments", std::string(1, '\x01') + segment);
  WriteSeed("wal_scan", "torn_tail",
            std::string(1, '\0') + segment.substr(0, segment.size() - 5));
  std::string flipped = std::string(1, '\0') + segment;
  flipped[flipped.size() / 2] ^= 0x01;  // CRC-mismatch mid-log.
  WriteSeed("wal_scan", "bitflip", flipped);
}

void GenTtkv() {
  WriteSeed("ttkv_deserialize", "sample_store", SampleStore().Serialize());
  WriteSeed("ttkv_deserialize", "empty_store", ocasta::TTKV().Serialize());
  const std::string bytes = SampleStore().Serialize();
  WriteSeed("ttkv_deserialize", "truncated", bytes.substr(0, bytes.size() / 2));
}

void GenParsers() {
  // Selector byte = index into the target's format table (ini, plain, json,
  // xml, pskv). Seeds are each codec's own Serialize output, so they parse.
  // '/'-separated paths under ONE top-level segment: XML requires a single
  // root element, and every other codec tolerates the shared prefix.
  ocasta::ConfigMap map;
  map["config/general/enabled"] = true;
  map["config/general/retries"] = int64_t{3};
  map["config/net/host"] = std::string("localhost");
  map["config/net/ratio"] = 1.5;
  const ocasta::ConfigFormat formats[] = {
      ocasta::ConfigFormat::kIni, ocasta::ConfigFormat::kPlainText,
      ocasta::ConfigFormat::kJson, ocasta::ConfigFormat::kXml,
      ocasta::ConfigFormat::kPskv,
  };
  for (int i = 0; i < 5; ++i) {
    const std::string text = ocasta::CodecFor(formats[i]).Serialize(map);
    WriteSeed("parsers", std::string(ocasta::FormatName(formats[i])) + "_roundtrip",
              std::string(1, static_cast<char>(i)) + text);
  }
  // Hand-authored texts exercising syntax the serializers never emit.
  WriteSeed("parsers", "ini_comments",
            std::string(1, '\0') + "; comment\n[general]\nenabled = true\n\n[net]\nhost=h\n");
  WriteSeed("parsers", "json_nested",
            std::string(1, '\x02') + R"({"a": {"b": [1, 2.5, "x"], "c": null}, "d": false})");
  WriteSeed("parsers", "xml_attrs",
            std::string(1, '\x03') + "<config><net host=\"h\"><port>8080</port></net></config>");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-root> [scratch-dir]\n", argv[0]);
    return 2;
  }
  g_root = argv[1];
  ::mkdir(g_root.c_str(), 0755);
  const std::string scratch = argc > 2 ? argv[2] : g_root + "/.scratch";
  GenCommands();
  GenResults();
  GenHello();
  GenFrames();
  GenWal(scratch);
  GenTtkv();
  GenParsers();
  std::printf("gen_corpus: seeds written under %s\n", g_root.c_str());
  return 0;
}
