// Fuzz target: the HELLO negotiation parsers — the FIRST bytes a server
// reads from an unauthenticated connection, and the first reply a client
// trusts. IsHelloRequest must never throw; DecodeHello / DecodeHelloReply
// may throw ParseError (malformed) or StoreError (version rejected by the
// peer), nothing else.
#include <cstdint>
#include <string_view>

#include "api/codec.h"
#include "common/error.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  (void)ocasta::api::IsHelloRequest(payload);  // Total: must not throw.
  try {
    const uint32_t version = ocasta::api::DecodeHello(payload);
    // Round-trip: a decoded HELLO re-encodes to a decodable HELLO.
    if (ocasta::api::DecodeHello(ocasta::api::EncodeHello(version)) != version) {
      __builtin_trap();
    }
  } catch (const ocasta::ParseError&) {
  }
  try {
    (void)ocasta::api::DecodeHelloReply(payload);
  } catch (const ocasta::StoreError&) {  // Version-rejected ErrorResult replies.
  } catch (const ocasta::ParseError&) {
  }
  return 0;
}
