// Fuzz target: api::DecodeCommand over arbitrary request payloads — the
// exact bytes a hostile client can put after a frame header. DecodeCommand
// must either return a Command or throw ParseError; any other escape
// (crash, UB, std::bad_alloc from a hostile length, uncaught logic_error)
// is a finding. Successfully decoded commands must re-encode canonically:
// encode(decode(encode(decode(x)))) == encode(decode(x)).
#include <cstdint>
#include <string_view>

#include "api/codec.h"
#include "common/error.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  try {
    const ocasta::api::Command cmd = ocasta::api::DecodeCommand(payload);
    // Canonical re-encode invariant. A violation means decode and encode
    // disagree about the format — the WAL replays and the wire protocol
    // both depend on them agreeing.
    const std::string once = ocasta::api::EncodeCommand(cmd);
    const ocasta::api::Command again = ocasta::api::DecodeCommand(once);
    if (ocasta::api::EncodeCommand(again) != once) __builtin_trap();
  } catch (const ocasta::ParseError&) {
    // Expected: malformed payloads are rejected, not crashed on.
  }
  return 0;
}
