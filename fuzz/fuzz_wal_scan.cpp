// Fuzz target: WAL segment scanning and recovery over arbitrary segment
// bytes — the crash-consistency surface the paper targets. The input is
// materialized as one or two segment files; then:
//
//   1. Wal::Scan must classify them without throwing (corrupt contents end
//      the valid prefix, they are never an error);
//   2. constructing a Wal must HEAL the directory: truncate the torn tail,
//      drop unreachable segments, and leave a log that rescans clean with
//      exactly the records the first scan recovered;
//   3. appending to the healed log and rescanning must surface the new
//      record — corruption must not poison future appends.
//
// Any filesystem error (unwritable tmp) skips the iteration silently; any
// invariant violation traps.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.h"
#include "persist/wal.h"

namespace {

struct TempDir {
  char path[64];
  bool ok = false;
  TempDir() {
    std::snprintf(path, sizeof(path), "/tmp/ocasta_fuzz_wal_XXXXXX");
    ok = ::mkdtemp(path) != nullptr;
  }
  ~TempDir() {
    if (!ok) return;
    std::string cmd = std::string("rm -rf ") + path;
    [[maybe_unused]] const int rc = std::system(cmd.c_str());
  }
};

void WriteFileBytes(const std::string& path, const uint8_t* data, size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0 || size > (1u << 20)) return 0;  // Bound per-exec disk traffic.
  TempDir dir;
  if (!dir.ok) return 0;
  const std::string base = dir.path;

  // First input byte picks the layout (it is never written to disk): one
  // segment, or the remainder split across two name-ordered segments
  // (exercises the cross-segment LSN continuity rules).
  const bool split = (data[0] & 1) != 0;
  ++data;
  --size;
  if (split && size > 1) {
    const size_t half = size / 2;
    WriteFileBytes(base + "/wal-00000000000000000001.log", data, half);
    WriteFileBytes(base + "/wal-00000000000000000900.log", data + half, size - half);
  } else {
    WriteFileBytes(base + "/wal-00000000000000000001.log", data, size);
  }

  ocasta::persist::WalScan before;
  try {
    before = ocasta::persist::Wal::Scan(base);
  } catch (const ocasta::Error&) {
    __builtin_trap();  // Scan must never throw on corrupt CONTENT.
  }

  uint64_t healed_last = 0;
  try {
    ocasta::persist::Wal wal(base, ocasta::persist::WalOptions{
                                       .fsync = ocasta::persist::FsyncPolicy::kOff});
    const auto recovered = wal.TakeRecovered();
    if (recovered.size() != before.records.size()) __builtin_trap();
    if (wal.last_lsn() != before.last_lsn) __builtin_trap();
    wal.Append(std::string("post-recovery-append"));
    healed_last = wal.last_lsn();
    if (healed_last != before.last_lsn + 1) __builtin_trap();
  } catch (const ocasta::Error&) {
    // Legal only for filesystem failures, which a tmpfs dir won't produce
    // here; treat as a finding.
    __builtin_trap();
  }

  // The healed directory must rescan clean: no dropped bytes, every
  // previously-valid record still present plus the fresh append.
  const ocasta::persist::WalScan after = ocasta::persist::Wal::Scan(base);
  if (after.dropped_bytes != 0) __builtin_trap();
  if (after.records.size() != before.records.size() + 1) __builtin_trap();
  if (after.last_lsn != healed_last) __builtin_trap();
  return 0;
}
