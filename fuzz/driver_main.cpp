// Standalone driver for the fuzz targets, used when the compiler has no
// libFuzzer (gcc builds). Link order: each fuzz_*.cpp defines
// LLVMFuzzerTestOneInput; under clang -fsanitize=fuzzer this file is left
// out and libFuzzer's own main drives coverage-guided mutation instead.
//
// Modes (libFuzzer-corpus-compatible):
//   fuzz_x file1 [file2 ...]        replay each file once (regression mode)
//   fuzz_x --smoke SECONDS DIR      load every seed in DIR, then run a
//                                   deterministic random-mutation loop
//                                   until the deadline; any crash/sanitizer
//                                   abort fails the run
//
// The smoke mutator is deliberately simple — bit flips, byte stomps,
// truncations, duplications, splices of two seeds — seeded with a fixed
// constant so CI failures reproduce locally. It is NOT a replacement for a
// coverage-guided run with clang; it is the portable floor that keeps the
// parser targets exercised on every toolchain.
#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::string ReadWhole(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The input currently inside LLVMFuzzerTestOneInput, dumped to ./crash-last
// by the fatal-signal handler so a smoke-mode mutant that trips a trap /
// sanitizer abort is preserved for replay (libFuzzer's crash-<sha> file,
// minus the sha). Async-signal-safety: the handler only touches these
// pointers and write(2).
const char* g_current_data = nullptr;
size_t g_current_size = 0;

extern "C" void CrashDump(int sig) {
  if (g_current_data != nullptr) {
    const int fd = ::open("crash-last", O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      [[maybe_unused]] ssize_t n = ::write(fd, g_current_data, g_current_size);
      ::close(fd);
      static const char kMsg[] = "\nfuzz driver: crashing input saved to ./crash-last\n";
      n = ::write(STDERR_FILENO, kMsg, sizeof(kMsg) - 1);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallCrashDump() {
  for (const int sig : {SIGABRT, SIGSEGV, SIGILL, SIGBUS, SIGFPE}) {
    ::signal(sig, CrashDump);
  }
}

void RunOne(const std::string& bytes) {
  g_current_data = bytes.data();
  g_current_size = bytes.size();
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  g_current_data = nullptr;
  g_current_size = 0;
}

std::vector<std::string> LoadSeeds(const std::string& dir) {
  std::vector<std::string> seeds;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "fuzz driver: cannot open corpus dir %s\n", dir.c_str());
    return seeds;
  }
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    seeds.push_back(ReadWhole(dir + "/" + name));
  }
  ::closedir(d);
  return seeds;
}

std::string Mutate(const std::vector<std::string>& seeds, std::mt19937& rng) {
  std::string bytes = seeds[rng() % seeds.size()];
  const int mutations = 1 + static_cast<int>(rng() % 8);
  for (int m = 0; m < mutations; ++m) {
    switch (rng() % 6) {
      case 0:  // Bit flip.
        if (!bytes.empty()) bytes[rng() % bytes.size()] ^= static_cast<char>(1u << (rng() % 8));
        break;
      case 1:  // Byte stomp (favor framing-relevant values).
        if (!bytes.empty()) {
          static constexpr uint8_t kMagic[] = {0x00, 0x01, 0x7f, 0x80, 0xff, 0xfe};
          bytes[rng() % bytes.size()] =
              static_cast<char>(rng() % 2 ? kMagic[rng() % 6] : rng() % 256);
        }
        break;
      case 2:  // Truncate.
        if (!bytes.empty()) bytes.resize(rng() % bytes.size());
        break;
      case 3: {  // Duplicate a chunk.
        if (bytes.empty()) break;
        const size_t start = rng() % bytes.size();
        const size_t len = 1 + rng() % (bytes.size() - start);
        bytes.insert(rng() % (bytes.size() + 1), bytes.substr(start, len));
        break;
      }
      case 4: {  // Insert random bytes.
        const size_t len = 1 + rng() % 8;
        std::string junk(len, '\0');
        for (char& c : junk) c = static_cast<char>(rng() % 256);
        bytes.insert(rng() % (bytes.size() + 1), junk);
        break;
      }
      case 5: {  // Splice the head of another seed onto this one's tail.
        const std::string& other = seeds[rng() % seeds.size()];
        if (other.empty() || bytes.empty()) break;
        bytes = other.substr(0, rng() % other.size()) + bytes.substr(rng() % bytes.size());
        break;
      }
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  InstallCrashDump();
  if (argc >= 4 && std::strcmp(argv[1], "--smoke") == 0) {
    const int seconds = std::atoi(argv[2]);
    std::vector<std::string> seeds = LoadSeeds(argv[3]);
    if (seeds.empty()) {
      std::fprintf(stderr, "fuzz driver: empty corpus %s — nothing to mutate\n", argv[3]);
      return 1;
    }
    for (const std::string& seed : seeds) RunOne(seed);  // Seeds themselves must pass.
    std::mt19937 rng(0x0ca57a);                          // Fixed: CI failures reproduce locally.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    uint64_t execs = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      // Check the clock once per batch, not per exec.
      for (int i = 0; i < 512; ++i, ++execs) RunOne(Mutate(seeds, rng));
    }
    std::printf("fuzz driver: %llu execs over %zu seeds, no crashes\n",
                static_cast<unsigned long long>(execs), seeds.size());
    return 0;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;  // Tolerate stray libFuzzer-style flags.
    RunOne(ReadWhole(argv[i]));
    ++replayed;
  }
  std::printf("fuzz driver: replayed %d file(s), no crashes\n", replayed);
  return 0;
}
