// Fuzz target: api::DecodeResult over arbitrary reply payloads — what a
// hostile or corrupted server can feed TtkvClient. Same contract as the
// command target: ParseError or a valid Result, and decoded results must
// re-encode canonically.
#include <cstdint>
#include <string_view>

#include "api/codec.h"
#include "common/error.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  try {
    const ocasta::api::Result result = ocasta::api::DecodeResult(payload);
    const std::string once = ocasta::api::EncodeResult(result);
    const ocasta::api::Result again = ocasta::api::DecodeResult(once);
    if (ocasta::api::EncodeResult(again) != once) __builtin_trap();
  } catch (const ocasta::ParseError&) {
  }
  return 0;
}
