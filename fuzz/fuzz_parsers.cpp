// Fuzz target: the configuration-file format codecs (INI, plain text,
// JSON, XML, PSKV) — the parsers that consume real application files in
// the interception pipeline. First input byte selects the format; the rest
// is the file text. Contract: Parse returns a ConfigMap or throws
// ParseError/Error — no crashes, no UB on hostile text. Maps that parse
// must survive Serialize -> Parse (the codec.h idempotency contract for
// representable maps).
#include <cstdint>
#include <string>

#include "common/error.h"
#include "parsers/codec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  static constexpr ocasta::ConfigFormat kFormats[] = {
      ocasta::ConfigFormat::kIni, ocasta::ConfigFormat::kPlainText,
      ocasta::ConfigFormat::kJson, ocasta::ConfigFormat::kXml,
      ocasta::ConfigFormat::kPskv,
  };
  const ocasta::FormatCodec& codec = ocasta::CodecFor(kFormats[data[0] % 5]);
  const std::string text(reinterpret_cast<const char*>(data + 1), size - 1);
  ocasta::ConfigMap map;
  try {
    map = codec.Parse(text);
  } catch (const ocasta::Error&) {
    return 0;  // Rejection is the expected outcome for malformed text.
  }
  // The parsed map came FROM this format, so it must be representable in
  // it: serialization must succeed and re-parse to the same map.
  try {
    const std::string round = codec.Serialize(map);
    if (codec.Parse(round) != map) __builtin_trap();
  } catch (const ocasta::Error&) {
    __builtin_trap();  // Serialize/re-Parse of a parsed map must not fail.
  }
  return 0;
}
