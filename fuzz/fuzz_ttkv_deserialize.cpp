// Fuzz target: TTKV::Deserialize over arbitrary snapshot bytes — the file
// a recovering DurableEngine trusts enough to anchor its log on. Must
// either produce a store or throw ParseError/Error (torn, bit-flipped, or
// hostile snapshots are an expected recovery input, see the corrupt-newest
// -snapshot fallback); anything else is a finding. Stores that DO load
// must round-trip: Serialize -> Deserialize -> Serialize is a fixed point.
#include <cstdint>
#include <string>

#include "common/error.h"
#include "ttkv/ttkv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  try {
    const ocasta::TTKV store = ocasta::TTKV::Deserialize(bytes);
    const std::string once = store.Serialize();
    if (ocasta::TTKV::Deserialize(once).Serialize() != once) __builtin_trap();
  } catch (const ocasta::Error&) {
    // ParseError for truncation/garbage; Error subtypes for semantic
    // violations (oversized counts, bad tags). All expected.
  }
  return 0;
}
