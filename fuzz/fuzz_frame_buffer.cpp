// Fuzz target: wire::FrameBuffer against an arbitrary byte stream — the
// TCP receive path. The input is written into a pipe and the buffer drains
// it like a socket: every complete frame must surface exactly once, a
// garbage length prefix must throw WireError (never allocate the claimed
// gigabytes), and EOF mid-frame must throw rather than return a short
// frame. Invariant checked: total bytes consumed as frames + headers never
// exceeds what was written.
#include <unistd.h>

#include <cstdint>
#include <string>

#include "common/error.h"
#include "server/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Stay under the kernel pipe capacity so the single blocking write below
  // cannot deadlock against our own reader.
  if (size > 60000) size = 60000;

  int fds[2];
  if (::pipe(fds) != 0) return 0;
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fds[1], data + written, size - written);
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
  ::close(fds[1]);  // EOF after the payload: mid-frame tails must throw.

  ocasta::FrameBuffer buffer;
  size_t consumed = 0;
  try {
    while (auto frame = buffer.Recv(fds[0])) {
      consumed += ocasta::kFrameHeaderBytes + frame->size();
      if (consumed > written) __builtin_trap();  // Frames invented from nothing.
    }
    // Clean EOF is only legal at a frame boundary.
    if (consumed != written) __builtin_trap();
  } catch (const ocasta::WireError&) {
    // Expected for torn tails and oversized prefixes.
  }
  ::close(fds[0]);
  return 0;
}
