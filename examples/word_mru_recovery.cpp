// The paper's Figure 1a / error #2 story, end to end.
//
// MS Word keeps a recently-used-documents list in the registry: "Max
// Display" bounds how many "Item N" keys are valid, and shrinking the list
// deletes the extra Item keys. Undoing such a change therefore needs the
// dominant key AND the deleted items restored together — the archetypal
// multi-key configuration error.
//
// This example shows the full arc:
//   1. at the default clustering threshold (correlation 2) the MRU cluster
//      is undersized — Max Display rarely changes while items churn on
//      every document open, so their correlation is below 2 — and the
//      repair search fails;
//   2. single-key rollback (Ocasta-NoClust) also fails;
//   3. with the paper's remediation (threshold 1, window 30 s) the whole
//      MRU group clusters together and one rollback fixes the error.
#include <cstdio>

#include "clustering/engine.h"
#include "scenarios/harness.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace ocasta;

namespace {

void Report(const char* label, const ScenarioRun& run) {
  std::printf("%-34s %s", label, run.ocasta.fixed ? "FIXED" : "failed");
  if (run.ocasta.fixed) {
    std::printf(" (offending cluster: %zu keys, %zu trials, %s)",
                run.offending_cluster_size, run.ocasta.trials_to_fix,
                FormatMinSec(run.ocasta.time_to_fix).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating the Windows 7 trace (MS Word, 42 days)...\n");
  const MachineTrace machine = GenerateMachineTrace(ProfileByName("Windows 7"));
  const ErrorScenario scenario = ScenarioById(2);
  std::printf("Error #2: %s\n\n", scenario.description.c_str());

  // Show why the default parameters split the MRU group.
  const TTKV ttkv = BuildAppTtkv(machine, kWord);
  const ClusterSet default_clusters = ClusterKeys(ttkv, ClusteringParams{});
  const std::string max_display =
      "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Word\\Options\\Max Display";
  const std::string item1 =
      "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Word\\File MRU\\Item 1";
  const bool together = default_clusters.cluster_of(ttkv.key_id(max_display)) ==
                        default_clusters.cluster_of(ttkv.key_id(item1));
  std::printf("Default params (window 1s, threshold 2):\n");
  std::printf("  'Max Display' clustered with 'Item 1'?  %s\n", together ? "yes" : "no");
  std::printf("  (items churn on every document open; the dominant key changes rarely,\n"
              "   so their correlation is below the always-together threshold)\n\n");

  ScenarioRunOptions options;
  const ScenarioRun default_run = RunScenario(machine, scenario, options);
  Report("Ocasta, default parameters:", default_run);
  std::printf("%-34s %s\n", "NoClust (single-key rollback):",
              default_run.noclust.fixed ? "FIXED" : "failed");

  options.use_tuned_params = true;
  const ScenarioRun tuned_run = RunScenario(machine, scenario, options);
  std::printf("\nAfter tuning (threshold 1, window 30s — the paper's remediation):\n");
  Report("Ocasta, tuned parameters:", tuned_run);

  const bool ok = !default_run.ocasta.fixed && !default_run.noclust.fixed && tuned_run.ocasta.fixed;
  std::printf("\n%s\n", ok ? "Reproduced the paper's error-#2 behaviour."
                           : "Unexpected outcome — see EXPERIMENTS.md.");
  return ok ? 0 : 1;
}
