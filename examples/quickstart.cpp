// Quickstart: the whole Ocasta pipeline on one machine.
//
//   1. Simulate a Linux desktop (Evolution, Eye of GNOME, GNOME Edit) for
//      25 days, logging every configuration access into a trace.
//   2. Build Evolution's time-travel key-value store (TTKV) from the trace.
//   3. Cluster its configuration keys (window 1 s, correlation threshold 2).
//   4. Break Evolution ("starts in offline mode unexpectedly" — error #8),
//      then let Ocasta's repair search find the offending cluster and fix it.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "clustering/engine.h"
#include "scenarios/harness.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace ocasta;

int main() {
  // 1. Record a deployment.
  const MachineProfile profile = ProfileByName("Linux-1");
  std::printf("Simulating %s: %d days, %zu applications...\n", profile.name.c_str(),
              profile.days, profile.apps.size());
  const MachineTrace machine = GenerateMachineTrace(profile);
  const TraceStats stats = machine.trace.Stats();
  std::printf("  trace: %llu writes/deletes over %.0f days\n",
              static_cast<unsigned long long>(stats.writes), stats.days);

  // 2. The TTKV for one application.
  const TTKV ttkv = BuildAppTtkv(machine, kEvolution);
  std::printf("  Evolution TTKV: %zu keys, %llu writes\n", ttkv.num_keys(),
              static_cast<unsigned long long>(ttkv.stats().writes));

  // 3. Cluster related configuration settings.
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  std::printf("  clusters: %zu total, %zu with more than one key (avg size %.1f)\n",
              clusters.size(), clusters.multi_cluster_count(),
              clusters.average_multi_cluster_size());

  // 4. Break it, then repair it.
  const ErrorScenario scenario = ScenarioById(8);
  std::printf("\nInjecting error #%d: %s\n", scenario.id, scenario.description.c_str());
  const ScenarioRun run = RunScenario(machine, scenario, ScenarioRunOptions{});
  std::printf("  Ocasta:   %s after %zu trials (%s to find, %s to search everything),\n"
              "            %zu screenshots for the user to inspect\n",
              run.ocasta.fixed ? "FIXED" : "not fixed", run.ocasta.trials_to_fix,
              FormatMinSec(run.ocasta.time_to_fix).c_str(),
              FormatMinSec(run.ocasta.total_time).c_str(), run.ocasta.unique_screenshots);
  std::printf("  NoClust:  %s\n", run.noclust.fixed ? "FIXED" : "not fixed");
  std::printf("  offending cluster size: %zu\n", run.offending_cluster_size);
  return run.ocasta.fixed ? 0 : 1;
}
