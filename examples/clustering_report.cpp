// Clustering report: inspect what Ocasta learned about an application.
//
// Prints every multi-key cluster of an application with its keys,
// modification count and ground-truth verdict — the view a human
// troubleshooter would use ("the clustering information provided by Ocasta
// will still be valuable to human troubleshooters").
//
// Usage: clustering_report [app-name] [threshold] [window-seconds]
//        (defaults: "Evolution Mail" 2.0 1.0)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/ground_truth.h"
#include "apps/catalog.h"
#include "clustering/engine.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace ocasta;

namespace {

const char* VerdictName(ClusterVerdict verdict) {
  switch (verdict) {
    case ClusterVerdict::kExact: return "correct";
    case ClusterVerdict::kUndersized: return "correct (undersized)";
    case ClusterVerdict::kOversized: return "OVERSIZED";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : kEvolution;
  ClusteringParams params;
  if (argc > 2) params.threshold_correlation = std::strtod(argv[2], nullptr);
  if (argc > 3) params.window_seconds = std::strtod(argv[3], nullptr);

  const AppSchema schema = AppSchemaByName(app_name);

  // Find the machines hosting this application and aggregate its history.
  std::vector<MachineTrace> machines;
  for (const MachineProfile& profile : Table1Profiles()) {
    for (const std::string& hosted : profile.apps) {
      if (hosted == app_name) {
        std::printf("Simulating %s...\n", profile.name.c_str());
        machines.push_back(GenerateMachineTrace(profile));
      }
    }
  }
  if (machines.empty()) {
    std::fprintf(stderr, "no Table I machine hosts '%s'\n", app_name.c_str());
    return 1;
  }
  std::vector<const MachineTrace*> hosts;
  for (const MachineTrace& machine : machines) hosts.push_back(&machine);
  const TTKV ttkv = BuildAppTtkvAcrossMachines(hosts, app_name);

  const ClusterSet clusters = ClusterKeys(ttkv, params);
  const GroundTruth truth = GroundTruth::FromSchema(schema);
  const AccuracyReport report = EvaluateClusters(app_name, clusters, ttkv, truth);

  std::printf("\n%s: %zu keys accessed, %zu clusters (%zu multi-key), "
              "window %.0fs, threshold %.2f\n\n",
              app_name.c_str(), report.keys_accessed, report.total_clusters,
              report.multi_clusters, params.window_seconds, params.threshold_correlation);

  for (const ClusterJudgement& judgement : report.judgements) {
    const KeyCluster& cluster = clusters.cluster(judgement.cluster_index);
    std::printf("cluster of %zu keys, modified %llu times — %s\n", cluster.size(),
                static_cast<unsigned long long>(cluster.version_count),
                VerdictName(judgement.verdict));
    for (uint32_t key : cluster.keys) {
      std::printf("    %s\n", ttkv.key_name(key).c_str());
    }
  }
  std::printf("\naccuracy: %.1f%% of multi-key clusters correct (%zu oversized, %zu undersized)\n",
              100.0 * report.accuracy(), report.oversized, report.undersized);
  return 0;
}
