// Trace explorer: record, persist, reload and time-travel.
//
// Demonstrates the data-plumbing half of the public API:
//   - simulating a deployment and saving its trace as text,
//   - rebuilding per-application TTKVs from the reloaded trace,
//   - persisting a TTKV as a binary snapshot and loading it back,
//   - time-travel queries against a key's history.
//
// Usage: trace_explorer [machine-name]   (default "Linux-2")
#include <cstdio>
#include <string>

#include "logger/recorder.h"
#include "ttkv/ttkv.h"
#include "workload/generator.h"
#include "workload/profiles.h"

using namespace ocasta;

int main(int argc, char** argv) {
  const std::string machine_name = argc > 1 ? argv[1] : "Linux-2";
  const MachineTrace machine = GenerateMachineTrace(ProfileByName(machine_name));

  // Persist the trace as text (the on-disk logger format) and reload it.
  const std::string trace_text = machine.trace.ToText();
  const TraceLog reloaded = TraceLog::ParseText(trace_text);
  std::printf("%s: %zu trace events (%zu bytes as text), %zu applications\n",
              machine_name.c_str(), reloaded.size(), trace_text.size(),
              reloaded.AppNames().size());

  for (const std::string& app : reloaded.AppNames()) {
    // Rebuild the TTKV from the reloaded trace.
    TTKV ttkv;
    TtkvRecorder recorder(ttkv);
    for (const AccessEvent& event : reloaded.events()) {
      if (event.app == app) recorder.OnAccess(event);
    }
    // Binary snapshot round-trip.
    const std::string snapshot = ttkv.Serialize();
    const TTKV restored = TTKV::Deserialize(snapshot);
    const TtkvStats stats = restored.stats();
    std::printf("\n%s: %zu keys, %llu writes, %llu deletions (snapshot %zu bytes)\n",
                app.c_str(), stats.num_keys, static_cast<unsigned long long>(stats.writes),
                static_cast<unsigned long long>(stats.deletes), snapshot.size());

    // Time travel: walk the most-edited key's history.
    const VersionedRecord* busiest = nullptr;
    for (uint32_t id = 0; id < restored.num_keys(); ++id) {
      const VersionedRecord& record = restored.record(id);
      if (busiest == nullptr || record.versions.size() > busiest->versions.size()) {
        busiest = &record;
      }
    }
    if (busiest == nullptr || busiest->versions.empty()) continue;
    std::printf("  busiest key: %s (%zu versions)\n", busiest->key.c_str(),
                busiest->versions.size());
    const size_t show = busiest->versions.size() < 3 ? busiest->versions.size() : 3;
    for (size_t i = busiest->versions.size() - show; i < busiest->versions.size(); ++i) {
      const Version& version = busiest->versions[i];
      std::printf("    [%s] %s\n", FormatTimestamp(version.timestamp).c_str(),
                  version.is_delete ? "<deleted>" : version.value.ToDisplay().c_str());
    }
    // As-of query strictly before the last change.
    const TimeMicros before_last = busiest->last_modified() - 1;
    const auto old_value = busiest->value_at(before_last);
    std::printf("  value as of just before the last change: %s\n",
                old_value ? old_value->ToDisplay().c_str() : "<absent>");
  }
  return 0;
}
