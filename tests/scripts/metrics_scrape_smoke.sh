#!/usr/bin/env bash
# Metrics end-to-end smoke: serve with --metrics-port, drive real ops over
# TCP, then assert that
#   1. the Prometheus endpoint answers 200 text/plain with the exposition
#      families the dashboards rely on (engine histogram + op counters,
#      event-loop gauge), with values reflecting the driven ops;
#   2. the v4 METRICS wire op (ocasta_cli metrics) sees the same registry.
# Usage: metrics_scrape_smoke.sh <path-to-ocasta_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  [ -f "$DIR/serve.log" ] && sed 's/^/  serve: /' "$DIR/serve.log" >&2
  exit 1
}

# GET http://127.0.0.1:$1/metrics — curl when present, else python3.
scrape() {
  if command -v curl > /dev/null 2>&1; then
    curl -sS --max-time 10 -D "$DIR/headers" "http://127.0.0.1:$1/metrics"
  else
    python3 - "$1" "$DIR/headers" <<'EOF'
import sys, urllib.request
resp = urllib.request.urlopen(f"http://127.0.0.1:{sys.argv[1]}/metrics", timeout=10)
with open(sys.argv[2], "w") as f:
    f.write(f"HTTP/1.1 {resp.status} OK\r\n")
    for k, v in resp.getheaders():
        f.write(f"{k}: {v}\r\n")
sys.stdout.write(resp.read().decode())
EOF
  fi
}

# --metrics-port has no ephemeral-port mode (0 = disabled), so probe: try
# pseudo-random ports until the daemon reports its metrics listener up.
for attempt in 1 2 3 4 5; do
  MPORT=$((20000 + (RANDOM + attempt * 977) % 20000))
  "$CLI" serve --port 0 --shards 4 --port-file "$DIR/port" \
      --metrics-port "$MPORT" --slow-op-micros 100000 > "$DIR/serve.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 100); do
    [ -s "$DIR/port" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
  done
  if [ -s "$DIR/port" ] && grep -q "metrics on http" "$DIR/serve.log"; then
    break
  fi
  kill "$SRV_PID" 2>/dev/null
  wait "$SRV_PID" 2>/dev/null
  SRV_PID=""
  rm -f "$DIR/port"
done
[ -n "$SRV_PID" ] || fail "could not start daemon with a metrics listener"
PORT="$(tr -d '[:space:]' < "$DIR/port")"

R() { "$CLI" remote "$@" --port "$PORT"; }

for i in $(seq 1 7); do
  R put "/apps/obs/key$i" "$i" > /dev/null || fail "remote put $i"
done
R get /apps/obs/key3 > /dev/null || fail "remote get"
R delete /apps/obs/key7 > /dev/null || fail "remote delete"

# --- 1. Prometheus scrape ---------------------------------------------------
scrape "$MPORT" > "$DIR/scrape.txt" || fail "scrape failed"
head -1 "$DIR/headers" | grep -q ' 200' || fail "expected 200, got: $(head -1 "$DIR/headers")"
grep -qi '^Content-Type: text/plain; version=0.0.4' "$DIR/headers" \
    || fail "wrong content type: $(grep -i '^Content-Type' "$DIR/headers")"

EXPECT_FAMILIES='
# TYPE ocasta_engine_apply_ns summary
# TYPE ocasta_engine_ops_total counter
# TYPE ocasta_loop_connections_live gauge
# TYPE ocasta_loop_bytes_in_total counter
# TYPE ocasta_slow_ops_logged gauge
'
echo "$EXPECT_FAMILIES" | grep -v '^$' | while IFS= read -r line; do
  grep -qF "$line" "$DIR/scrape.txt" || fail "scrape missing: $line"
done || exit 1

grep -q '^ocasta_engine_ops_total{op="put"} 7$' "$DIR/scrape.txt" \
    || fail "put counter should be 7: $(grep ocasta_engine_ops_total "$DIR/scrape.txt")"
grep -q '^ocasta_engine_ops_total{op="get"} 1$' "$DIR/scrape.txt" || fail "get counter should be 1"
grep -q 'ocasta_engine_apply_ns{op="put",quantile="0.99"}' "$DIR/scrape.txt" \
    || fail "apply histogram missing put p99 sample"

# Every line must be a # TYPE line or name[{labels}] value — the same
# grammar fuzz_metrics_expo enforces, spot-checked on real output.
if grep -vE '^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|summary)|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+)$' "$DIR/scrape.txt" | grep -q .; then
  fail "malformed exposition line: $(grep -vE '^(# TYPE|[a-zA-Z_:])' "$DIR/scrape.txt" | head -1)"
fi

# --- 2. The METRICS wire op sees the same registry --------------------------
OUT="$("$CLI" metrics --port "$PORT")" || fail "ocasta_cli metrics"
echo "$OUT" | grep -q 'ocasta_engine_ops_total' || fail "wire snapshot missing op counters: $OUT"
OUT="$("$CLI" metrics --port "$PORT" --prom)" || fail "ocasta_cli metrics --prom"
echo "$OUT" | grep -q '# TYPE ocasta_engine_apply_ns summary' \
    || fail "--prom output missing summary family"

R shutdown > /dev/null || fail "remote shutdown"
wait "$SRV_PID" || fail "server exited nonzero after shutdown"
SRV_PID=""

echo "OK"
