#!/usr/bin/env bash
# Partition/crash torture test for WAL-shipping replication with follower
# failover (docs/REPLICATION.md).
#
# Each iteration:
#   1. starts a LEADER with --acks quorum --quorum-followers 1 and TWO
#      followers tailing it;
#   2. drives batches of PUTs; a batch counts as acknowledged ONLY when the
#      CLI exits 0 — under quorum acks that means every write in it was
#      durable on the leader AND acked by at least one follower;
#   3. kill -9s the LEADER mid-load from a background killer;
#   4. promotes the follower with the HIGHER last LSN (the quorum contract:
#      an acked write is guaranteed on the most caught-up follower, not on
#      every follower);
#   5. verifies every acknowledged write reads back with its exact value
#      from the promoted follower, that the counter key's history is the
#      intact acked prefix, and that the promoted daemon accepts new writes.
#
# Zero quorum-acked-write loss, every iteration, or the test fails.
#
# Usage: replication_failover_smoke.sh <path-to-ocasta_cli> [iterations]
# Iterations default to $REPL_SMOKE_ITERS, then 20.
set -u

CLI="$1"
ITERS="${2:-${REPL_SMOKE_ITERS:-20}}"
DIR="$(mktemp -d)"
LEADER_PID=""
F1_PID=""
F2_PID=""
KILLER_PID=""

cleanup() {
  [ -n "$KILLER_PID" ] && kill "$KILLER_PID" 2>/dev/null
  for pid in "$LEADER_PID" "$F1_PID" "$F2_PID"; do
    [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
  done
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in leader f1 f2; do
    [ -f "$DIR/$log.log" ] && tail -n 20 "$DIR/$log.log" | sed "s/^/  $log.log: /" >&2
  done
  exit 1
}

# start_daemon <name> <data-dir> <extra flags...>; sets DAEMON_PID and PORT.
start_daemon() {
  local name="$1" data="$2"
  shift 2
  rm -f "$DIR/$name.port"
  "$CLI" serve --port 0 --shards 4 --data-dir "$data" --fsync batch \
         --port-file "$DIR/$name.port" "$@" > "$DIR/$name.log" 2>&1 &
  DAEMON_PID=$!
  for _ in $(seq 1 200); do
    [ -s "$DIR/$name.port" ] && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "$name died during startup"
    sleep 0.05
  done
  [ -s "$DIR/$name.port" ] || fail "$name did not write its port file"
  PORT="$(tr -d '[:space:]' < "$DIR/$name.port")"
}

# Parses `replstat` output (role=<r> last_lsn=<n>) for the daemon on $1.
last_lsn_of() {
  "$CLI" replstat --port "$1" 2>/dev/null | sed -n 's/.*last_lsn=\([0-9]*\).*/\1/p'
}

emit_batch() {
  local iter="$1" batch="$2" k
  for k in $(seq 1 10); do
    echo "put seq/$iter/$batch/$k $k"
  done
  echo "put ctr/$iter $batch"
}

TOTAL_ACKED=0

for ITER in $(seq 1 "$ITERS"); do
  start_daemon leader "$DIR/leader-$ITER" \
    --acks quorum --quorum-followers 1 --quorum-timeout 5 --io-threads 2
  LEADER_PID=$DAEMON_PID
  LEADER_PORT=$PORT

  start_daemon f1 "$DIR/f1-$ITER" --follow "127.0.0.1:$LEADER_PORT" --follower-id f1
  F1_PID=$DAEMON_PID
  F1_PORT=$PORT
  start_daemon f2 "$DIR/f2-$ITER" --follow "127.0.0.1:$LEADER_PORT" --follower-id f2
  F2_PID=$DAEMON_PID
  F2_PORT=$PORT

  # Batch 1 doubles as the warm-up: it can only ack once a follower has
  # bootstrapped and started acking pulls, so retry it until the quorum
  # pipeline is demonstrably live — THEN unleash the killer.
  ACKED=0
  for _ in $(seq 1 10); do
    if emit_batch "$ITER" 1 | "$CLI" batch --port "$LEADER_PORT" > /dev/null 2>&1; then
      ACKED=1
      break
    fi
    kill -0 "$LEADER_PID" 2>/dev/null || fail "iter $ITER: leader died before first ack"
  done
  [ "$ACKED" -eq 1 ] || fail "iter $ITER: quorum pipeline never came up"

  ( sleep "$(printf '0.%03d' $(( (RANDOM % 301) + 50 )))"; kill -9 "$LEADER_PID" 2>/dev/null ) &
  KILLER_PID=$!

  BATCH=1
  while kill -0 "$LEADER_PID" 2>/dev/null; do
    BATCH=$((BATCH + 1))
    if emit_batch "$ITER" "$BATCH" | "$CLI" batch --port "$LEADER_PORT" > /dev/null 2>&1; then
      ACKED=$BATCH
    else
      break
    fi
  done
  wait "$KILLER_PID" 2>/dev/null
  KILLER_PID=""
  wait "$LEADER_PID" 2>/dev/null
  LEADER_PID=""
  TOTAL_ACKED=$((TOTAL_ACKED + ACKED))

  # Failover: promote the most caught-up follower. With quorum-followers=1
  # the released LSN is the HIGHEST follower ack, so only the max-LSN
  # follower is guaranteed to hold every acked write.
  LSN1="$(last_lsn_of "$F1_PORT")"
  LSN2="$(last_lsn_of "$F2_PORT")"
  [ -n "$LSN1" ] && [ -n "$LSN2" ] || fail "iter $ITER: replstat failed (f1='$LSN1' f2='$LSN2')"
  if [ "$LSN1" -ge "$LSN2" ]; then
    NEW_PORT=$F1_PORT; NEW_NAME=f1; OTHER_PORT=$F2_PORT; OTHER_PID=$F2_PID
  else
    NEW_PORT=$F2_PORT; NEW_NAME=f2; OTHER_PORT=$F1_PORT; OTHER_PID=$F1_PID
  fi
  "$CLI" promote --port "$NEW_PORT" > /dev/null 2>&1 \
    || fail "iter $ITER: promote $NEW_NAME failed"
  # Promotion is idempotent: a failover script retrying after a dropped
  # reply must see success, not an error.
  "$CLI" promote --port "$NEW_PORT" > /dev/null 2>&1 \
    || fail "iter $ITER: re-promote $NEW_NAME was not idempotent"

  # Every quorum-acked put must read back with its exact value.
  for b in $(seq 1 "$ACKED"); do
    for k in $(seq 1 10); do
      echo "get seq/$ITER/$b/$k"
    done
  done > "$DIR/gets.txt"
  "$CLI" batch --port "$NEW_PORT" < "$DIR/gets.txt" > "$DIR/got.txt" 2>&1 \
    || fail "iter $ITER: verification batch failed on $NEW_NAME (acked=$ACKED)"
  LINE=0
  for b in $(seq 1 "$ACKED"); do
    for k in $(seq 1 10); do
      LINE=$((LINE + 1))
      GOT="$(sed -n "${LINE}p" "$DIR/got.txt")"
      [ "$GOT" = "$k" ] || fail "iter $ITER: lost quorum-acked write seq/$ITER/$b/$k on $NEW_NAME (got '$GOT')"
    done
  done

  # ctr/<iter> history: the acked prefix must be exactly 1, 2, ...; the
  # batch in flight at the kill may legitimately add ONE more entry
  # (replicated but never acked to the client).
  "$CLI" remote history "ctr/$ITER" --port "$NEW_PORT" > "$DIR/hist.txt" 2>&1 \
    || fail "iter $ITER: history ctr/$ITER failed"
  awk -v acked="$ACKED" '
    /^  \[/ {
      n += 1
      value = $NF
      if (n <= acked && value != n) {
        printf "history entry %d is %s, want %d\n", n, value, n; exit 1
      }
      if (value <= prev) { printf "history not increasing at entry %d\n", n; exit 1 }
      prev = value
    }
    END {
      if (n < acked) { printf "history has %d entries, acked %d\n", n, acked; exit 1 }
      if (n > acked + 1) { printf "history has %d entries for %d acked\n", n, acked; exit 1 }
    }' "$DIR/hist.txt" || fail "iter $ITER: ctr history broken: $(cat "$DIR/hist.txt")"

  # The promoted daemon is a real leader: it takes writes again.
  if ! printf 'put post/%s promoted\nget post/%s\n' "$ITER" "$ITER" \
       | "$CLI" batch --port "$NEW_PORT" | grep -q promoted; then
    fail "iter $ITER: promoted $NEW_NAME rejected a new write"
  fi

  "$CLI" remote shutdown --port "$NEW_PORT" > /dev/null 2>&1 \
    || fail "iter $ITER: shutdown of promoted $NEW_NAME failed"
  # The stale follower is still tailing a dead address; SHUTDOWN is not a
  # mutation, so it must work there too.
  OTHER_PORT=$([ "$NEW_NAME" = f1 ] && echo "$F2_PORT" || echo "$F1_PORT")
  "$CLI" remote shutdown --port "$OTHER_PORT" > /dev/null 2>&1 \
    || kill -9 "$OTHER_PID" 2>/dev/null
  wait "$F1_PID" 2>/dev/null
  wait "$F2_PID" 2>/dev/null
  F1_PID=""
  F2_PID=""
  rm -rf "$DIR/leader-$ITER" "$DIR/f1-$ITER" "$DIR/f2-$ITER"
  echo "iter $ITER/$ITERS: $ACKED acked batches survived leader kill -9 (promoted $NEW_NAME)"
done

[ "$TOTAL_ACKED" -gt 0 ] || fail "no batch was ever acknowledged across $ITERS iterations"

echo "OK: $ITERS/$ITERS iterations, $TOTAL_ACKED quorum-acked batches, zero acked writes lost"
