#!/usr/bin/env bash
# Loopback smoke test for the ocastad daemon, driven through ocasta_cli:
#   1. corrupt-snapshot handling: the CLI must report `error:` and exit 1;
#   2. batch subcommand against the in-process sharded backend;
#   3. serve → remote put/get/delete/history/stats/list/batch → shutdown.
# Usage: cli_server_smoke.sh <path-to-ocasta_cli>
set -u

CLI="$1"
DIR="$(mktemp -d)"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

# --- 1. Corrupt snapshots must be reported, not crash -----------------------
printf 'garbage, definitely not a TTKV snapshot' > "$DIR/bad.ttkv"
if "$CLI" history "$DIR/bad.ttkv" somekey > /dev/null 2> "$DIR/err.txt"; then
  fail "history on a corrupt snapshot should exit nonzero"
fi
grep -q '^error:' "$DIR/err.txt" || fail "expected 'error:' prefix, got: $(cat "$DIR/err.txt")"

# Truncated-but-valid-prefix snapshot: same contract.
head -c 4 "$DIR/bad.ttkv" > "$DIR/trunc.ttkv"
if "$CLI" history "$DIR/trunc.ttkv" somekey > /dev/null 2> "$DIR/err2.txt"; then
  fail "history on a truncated snapshot should exit nonzero"
fi
grep -q '^error:' "$DIR/err2.txt" || fail "expected 'error:' prefix on truncated snapshot"

# --- 2. batch subcommand over the in-process sharded backend ----------------
OUT="$(printf 'put /b/one 1\nput /b/one 2\nget /b/one\ndelete /b/one\ndelete /b/one\ndelete /b/one force\nhistory /b/one\n' \
        | "$CLI" batch --backend sharded)" || fail "batch --backend sharded"
echo "$OUT" | head -3 | tail -1 | grep -q '^2$' || fail "batch get should print 2, got: $OUT"
echo "$OUT" | sed -n 4p | grep -q 'deleted' || fail "batch delete should report deleted"
echo "$OUT" | sed -n 5p | grep -q '(absent)' || fail "batch re-delete should be suppressed"
echo "$OUT" | grep -q '2 writes, 2 deletions' || fail "forced tombstone missing from history: $OUT"

# A bad line must fail the whole batch parse with the error: contract —
# unknown commands and malformed numeric arguments alike.
if printf 'frobnicate /b/x\n' | "$CLI" batch --backend local > /dev/null 2> "$DIR/err3.txt"; then
  fail "batch with an unknown command should exit nonzero"
fi
grep -q '^error:' "$DIR/err3.txt" || fail "expected 'error:' prefix from batch parse"
if printf 'getat /b/x notanumber\n' | "$CLI" batch --backend local > /dev/null 2> "$DIR/err4.txt"; then
  fail "batch getat with a bad timestamp should exit nonzero"
fi
grep -q '^error:.*number' "$DIR/err4.txt" || fail "expected numeric parse error, got: $(cat "$DIR/err4.txt")"

# --- 3. Loopback daemon round trip ------------------------------------------
"$CLI" serve --port 0 --shards 4 --port-file "$DIR/port" > "$DIR/serve.log" 2>&1 &
SRV_PID=$!

for _ in $(seq 1 100); do
  [ -s "$DIR/port" ] && break
  kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup: $(cat "$DIR/serve.log")"
  sleep 0.1
done
[ -s "$DIR/port" ] || fail "server did not write its port file"
PORT="$(tr -d '[:space:]' < "$DIR/port")"

R() { "$CLI" remote "$@" --port "$PORT"; }

R ping > /dev/null || fail "remote ping"
R put /apps/demo/answer 42 > /dev/null || fail "remote put"
R put /apps/demo/name hello > /dev/null || fail "remote put (string)"
R put /apps/demo/answer 43 > /dev/null || fail "remote put (overwrite)"

OUT="$(R get /apps/demo/answer)" || fail "remote get"
[ "$OUT" = "43" ] || fail "remote get: expected 43, got '$OUT'"

if R get /apps/demo/missing > /dev/null; then
  fail "remote get on a missing key should exit nonzero"
fi

OUT="$(R history /apps/demo/answer)" || fail "remote history"
echo "$OUT" | grep -q '2 writes' || fail "history should show 2 writes, got: $OUT"

OUT="$(R list /apps/demo/)" || fail "remote list"
[ "$(echo "$OUT" | wc -l)" = "2" ] || fail "list should show 2 keys, got: $OUT"

R delete /apps/demo/name > /dev/null || fail "remote delete"
OUT="$(R list /apps/demo/)" || fail "remote list after delete"
[ "$(echo "$OUT" | wc -l)" = "1" ] || fail "list should show 1 key after delete, got: $OUT"

OUT="$(R stats)" || fail "remote stats"
echo "$OUT" | grep -q 'shards 4' || fail "stats should report 4 shards, got: $OUT"

# Batch against the running daemon: one BATCH frame end to end.
OUT="$(printf 'put /apps/demo/batched 7\nget /apps/demo/batched\n' \
        | "$CLI" batch --port "$PORT")" || fail "batch against daemon"
echo "$OUT" | tail -1 | grep -q '^7$' || fail "remote batch get should print 7, got: $OUT"

R snapshot "$DIR/remote.ttkv" > /dev/null || fail "remote snapshot"
OUT="$("$CLI" history "$DIR/remote.ttkv" /apps/demo/answer)" || fail "history on remote snapshot"
echo "$OUT" | grep -q '2 writes' || fail "snapshot history should show 2 writes"

R shutdown > /dev/null || fail "remote shutdown"
wait "$SRV_PID" || fail "server exited nonzero after shutdown"
SRV_PID=""
grep -q 'ocastad stopped' "$DIR/serve.log" || fail "server did not log clean stop"

echo "OK"
