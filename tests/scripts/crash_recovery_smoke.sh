#!/usr/bin/env bash
# Crash-injection smoke test for the durable ocastad daemon.
#
# Each iteration:
#   1. starts `ocasta_cli serve --data-dir ...` (durable, fsync=batch);
#   2. drives batches of PUTs at it, recording which batches the daemon
#      ACKNOWLEDGED (CLI exit 0 = every command in the batch succeeded);
#   3. kill -9s the daemon mid-load from a background killer;
#   4. restarts the daemon on the SAME data dir;
#   5. verifies every acknowledged write survived with its exact value, and
#      that the counter key's history is a strictly increasing sequence
#      whose prefix covers every acknowledged batch (order intact; a final
#      durable-but-unacked batch may legitimately extend it).
#
# Zero acknowledged-write loss, every iteration, or the test fails.
#
# Usage: crash_recovery_smoke.sh <path-to-ocasta_cli> [iterations]
# Iterations default to $CRASH_SMOKE_ITERS, then 20.
set -u

CLI="$1"
ITERS="${2:-${CRASH_SMOKE_ITERS:-20}}"
DIR="$(mktemp -d)"
SRV_PID=""
KILLER_PID=""

cleanup() {
  [ -n "$KILLER_PID" ] && kill "$KILLER_PID" 2>/dev/null
  [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null
  rm -rf "$DIR"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  [ -f "$DIR/serve.log" ] && sed 's/^/  serve.log: /' "$DIR/serve.log" >&2
  exit 1
}

# Starts the daemon against $1 (data dir) and sets SRV_PID/PORT.
start_server() {
  rm -f "$DIR/port"
  "$CLI" serve --port 0 --shards 4 --data-dir "$1" --fsync batch \
         --port-file "$DIR/port" > "$DIR/serve.log" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 1 200); do
    [ -s "$DIR/port" ] && break
    kill -0 "$SRV_PID" 2>/dev/null || fail "server died during startup"
    sleep 0.05
  done
  [ -s "$DIR/port" ] || fail "server did not write its port file"
  PORT="$(tr -d '[:space:]' < "$DIR/port")"
}

# One batch of puts: seq/<iter>/<batch>/<k> = <k> for k in 1..10, plus the
# history-order sentinel ctr/<iter> = <batch>.
emit_batch() {
  local iter="$1" batch="$2" k
  for k in $(seq 1 10); do
    echo "put seq/$iter/$batch/$k $k"
  done
  echo "put ctr/$iter $batch"
}

TOTAL_ACKED=0

for ITER in $(seq 1 "$ITERS"); do
  DATA="$DIR/data-$ITER"
  start_server "$DATA"

  # Kill the daemon mid-load after a random 50-350ms delay.
  ( sleep "$(printf '0.%03d' $(( (RANDOM % 301) + 50 )))"; kill -9 "$SRV_PID" 2>/dev/null ) &
  KILLER_PID=$!

  # Drive acknowledged batches until the daemon dies. A batch counts as
  # acknowledged ONLY when the CLI exits 0 (all replies received, no
  # errors); the batch in flight when the kill lands is simply not counted.
  ACKED=0
  BATCH=0
  while kill -0 "$SRV_PID" 2>/dev/null; do
    BATCH=$((BATCH + 1))
    if emit_batch "$ITER" "$BATCH" | "$CLI" batch --port "$PORT" > /dev/null 2>&1; then
      ACKED=$BATCH
    else
      break
    fi
  done
  wait "$KILLER_PID" 2>/dev/null
  KILLER_PID=""
  wait "$SRV_PID" 2>/dev/null
  SRV_PID=""
  TOTAL_ACKED=$((TOTAL_ACKED + ACKED))

  # Restart on the same data dir: recovery replays the log tail and
  # truncates any record torn by the kill.
  start_server "$DATA"

  if [ "$ACKED" -gt 0 ]; then
    # Every acknowledged put must read back with its exact value.
    for b in $(seq 1 "$ACKED"); do
      for k in $(seq 1 10); do
        echo "get seq/$ITER/$b/$k"
      done
    done > "$DIR/gets.txt"
    "$CLI" batch --port "$PORT" < "$DIR/gets.txt" > "$DIR/got.txt" 2>&1 \
      || fail "iter $ITER: verification batch failed (acked=$ACKED)"
    LINE=0
    for b in $(seq 1 "$ACKED"); do
      for k in $(seq 1 10); do
        LINE=$((LINE + 1))
        GOT="$(sed -n "${LINE}p" "$DIR/got.txt")"
        [ "$GOT" = "$k" ] || fail "iter $ITER: lost acked write seq/$ITER/$b/$k (got '$GOT')"
      done
    done

    # History order: ctr/<iter> was written 1, 2, ... — its recovered
    # history must be exactly that sequence for the acked prefix, strictly
    # increasing throughout (at most one unacked-but-durable tail entry).
    "$CLI" remote history "ctr/$ITER" --port "$PORT" > "$DIR/hist.txt" 2>&1 \
      || fail "iter $ITER: history ctr/$ITER failed"
    awk -v acked="$ACKED" '
      /^  \[/ {
        n += 1
        value = $NF
        if (n <= acked && value != n) {
          printf "history entry %d is %s, want %d\n", n, value, n; exit 1
        }
        if (value <= prev) {
          printf "history not increasing at entry %d\n", n; exit 1
        }
        prev = value
      }
      END {
        if (n < acked) { printf "history has %d entries, acked %d\n", n, acked; exit 1 }
        if (n > acked + 1) { printf "history has %d entries for %d acked\n", n, acked; exit 1 }
      }' "$DIR/hist.txt" || fail "iter $ITER: ctr history order broken: $(cat "$DIR/hist.txt")"
  fi

  "$CLI" remote shutdown --port "$PORT" > /dev/null 2>&1 || fail "iter $ITER: shutdown"
  wait "$SRV_PID" 2>/dev/null
  SRV_PID=""
  echo "iter $ITER/$ITERS: $ACKED acked batches survived kill -9"
done

# The test is vacuous if the killer always won before a single ack landed.
[ "$TOTAL_ACKED" -gt 0 ] || fail "no batch was ever acknowledged across $ITERS iterations"

echo "OK: $ITERS/$ITERS iterations, $TOTAL_ACKED acked batches, zero acked writes lost"
