#!/usr/bin/env bash
# Negative tests for the project-invariant linters: each mutation below is
# a real regression class, and the linter must FAIL (non-zero exit) with a
# diagnostic that points at the broken symbol. A linter that cannot fail
# is not a gate — this script is what keeps both linters honest.
#
# Usage: lint_negative_test.sh <repo_root>
set -u

ROOT="${1:?usage: lint_negative_test.sh <repo_root>}"
WIRE_LINT="$ROOT/tools/lint/check_wire_abi.py"
RANK_LINT="$ROOT/tools/lint/check_lock_ranks.py"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

failures=0

# expect_fail <case name> <grep pattern> <cmd...>
# Asserts the command exits non-zero AND its stderr matches the pattern.
expect_fail() {
  local name="$1" pattern="$2"
  shift 2
  local out rc
  out="$("$@" 2>&1)"
  rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "FAIL [$name]: linter exited 0 on a mutated input" >&2
    echo "$out" | sed 's/^/    /' >&2
    failures=$((failures + 1))
    return
  fi
  if ! echo "$out" | grep -q "$pattern"; then
    echo "FAIL [$name]: exit $rc but diagnostic does not match /$pattern/:" >&2
    echo "$out" | sed 's/^/    /' >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok [$name]"
}

# expect_pass <case name> <cmd...>
expect_pass() {
  local name="$1"
  shift
  local out
  if ! out="$("$@" 2>&1)"; then
    echo "FAIL [$name]: linter failed on unmutated input:" >&2
    echo "$out" | sed 's/^/    /' >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok [$name]"
}

# --- wire-ABI linter --------------------------------------------------------

cp "$ROOT/src/api/codec.h" "$TMP/codec.h"
cp "$ROOT/src/server/wire.h" "$TMP/wire.h"
cp "$ROOT/docs/wire_abi.golden" "$TMP/wire_abi.golden"

wire() {
  python3 "$WIRE_LINT" --codec "$TMP/codec.h" --wire "$TMP/wire.h" \
    --golden "$TMP/wire_abi.golden"
}

expect_pass "wire: clean copies pass" wire

# Renumbered op tag: kGet 4 -> 40.
sed 's/kGet = 4,/kGet = 40,/' "$ROOT/src/api/codec.h" > "$TMP/codec.h"
expect_fail "wire: renumbered OpTag::kGet" "CHANGED: OpTag::kGet" wire

# Deleted op: remove kSnapshot entirely.
sed '/kSnapshot = 9,/d' "$ROOT/src/api/codec.h" > "$TMP/codec.h"
expect_fail "wire: deleted OpTag::kSnapshot" "REMOVED: OpTag::kSnapshot" wire

# Widened compatibility window: kMinProtocolVersion 3 -> 2.
sed 's/kMinProtocolVersion = 3;/kMinProtocolVersion = 2;/' \
  "$ROOT/src/api/codec.h" > "$TMP/codec.h"
expect_fail "wire: bumped kMinProtocolVersion" "CHANGED: kMinProtocolVersion" wire
cp "$ROOT/src/api/codec.h" "$TMP/codec.h"

# New unblessed tag: additions must be reviewed, then --update'd.
sed 's/kPromote = 17,/kPromote = 17,\n  kFence = 18,/' \
  "$ROOT/src/api/codec.h" > "$TMP/codec.h"
expect_fail "wire: unblessed new OpTag" "ADDED: OpTag::kFence" wire
cp "$ROOT/src/api/codec.h" "$TMP/codec.h"

# Frame cap change in the other header.
sed 's/kMaxFrameBytes = 256u << 20;/kMaxFrameBytes = 128u << 20;/' \
  "$ROOT/src/server/wire.h" > "$TMP/wire.h"
expect_fail "wire: changed kMaxFrameBytes" "CHANGED: kMaxFrameBytes" wire

# --- lock-rank linter -------------------------------------------------------

cp "$ROOT/src/common/lockdep.h" "$TMP/lockdep.h"
cp "$ROOT/docs/TOOLING.md" "$TMP/TOOLING.md"

ranks() {
  python3 "$RANK_LINT" --lockdep "$TMP/lockdep.h" --doc "$TMP/TOOLING.md"
}

expect_pass "ranks: clean copies pass" ranks

# Duplicate rank: kWalSyncClass 70 -> 60 collides with kWalAppendClass.
sed 's/kWalSyncClass{"Wal::sync_mu_", 70}/kWalSyncClass{"Wal::sync_mu_", 60}/' \
  "$ROOT/src/common/lockdep.h" > "$TMP/lockdep.h"
expect_fail "ranks: duplicate rank 60" "DUPLICATE RANK 60" ranks
cp "$ROOT/src/common/lockdep.h" "$TMP/lockdep.h"

# New ranked class with no doc-table row.
sed 's|inline constexpr LockClass kObsRegistryClass|inline constexpr LockClass kReplLogClass{"Repl::log_mu_", 85};\ninline constexpr LockClass kObsRegistryClass|' \
  "$ROOT/src/common/lockdep.h" > "$TMP/lockdep.h"
expect_fail "ranks: undocumented class" "UNDOCUMENTED: Repl::log_mu_" ranks
cp "$ROOT/src/common/lockdep.h" "$TMP/lockdep.h"

# Doc disagrees with source about a rank.
sed 's/| 90 | `EventLoop::pending_mu_` |/| 91 | `EventLoop::pending_mu_` |/' \
  "$ROOT/docs/TOOLING.md" > "$TMP/TOOLING.md"
expect_fail "ranks: doc rank mismatch" "RANK MISMATCH: EventLoop::pending_mu_" ranks
cp "$ROOT/docs/TOOLING.md" "$TMP/TOOLING.md"

# Stale doc row for a class the source no longer declares.
sed '/kServerJoinClass/d' "$ROOT/src/common/lockdep.h" > "$TMP/lockdep.h"
expect_fail "ranks: stale doc row" \
  "STALE DOC ROW: TOOLING.md documents TtkvServer::join_mu_" ranks

if [ "$failures" -ne 0 ]; then
  echo "lint_negative_test: $failures case(s) failed" >&2
  exit 1
fi
echo "lint_negative_test: all cases passed"
