#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "apps/catalog.h"
#include "apps/render.h"
#include "apps/schema.h"
#include "common/error.h"
#include "configstore/gconf_store.h"

namespace ocasta {
namespace {

// ----- Schema ---------------------------------------------------------------------

TEST(KeySpec, DefaultValuesMatchTypes) {
  KeySpec toggle{.path = "/a/b", .type = ValueType::kBool};
  EXPECT_EQ(toggle.DefaultValue().type(), ValueType::kBool);

  KeySpec number{.path = "/a/n", .type = ValueType::kInt, .int_min = 10, .int_max = 20};
  const int64_t v = number.DefaultValue().as_int();
  EXPECT_GE(v, 10);
  EXPECT_LE(v, 20);

  KeySpec choice{.path = "/a/c", .type = ValueType::kString, .choices = {"x", "y"}};
  EXPECT_EQ(choice.DefaultValue(), Value("x"));
}

TEST(AppSchema, LookupsAndCounts) {
  const AppSchema app = BuildEvolution();
  EXPECT_NE(app.FindGroup("evolution-mark-seen"), nullptr);
  EXPECT_EQ(app.FindGroup("nope"), nullptr);
  EXPECT_NE(app.FindKey("/apps/evolution/mail/display/mark_seen"), nullptr);
  EXPECT_EQ(app.FindKey("/nope"), nullptr);
  EXPECT_EQ(app.total_keys(), app.DefaultConfig().size());
}

// ----- Catalog sanity (Table II scale) -------------------------------------------------

struct CatalogExpectation {
  const char* name;
  StoreKind store;
  size_t paper_keys;  // Table II "#Keys".
};

class CatalogTest : public ::testing::TestWithParam<CatalogExpectation> {};

TEST_P(CatalogTest, MatchesPaperScale) {
  const CatalogExpectation& expected = GetParam();
  const AppSchema app = AppSchemaByName(expected.name);
  EXPECT_EQ(app.store, expected.store);
  // Within 15% of the Table II key count.
  const double ratio =
      static_cast<double>(app.total_keys()) / static_cast<double>(expected.paper_keys);
  EXPECT_GT(ratio, 0.85) << app.total_keys() << " keys vs paper " << expected.paper_keys;
  EXPECT_LT(ratio, 1.15) << app.total_keys() << " keys vs paper " << expected.paper_keys;
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, CatalogTest,
    ::testing::Values(CatalogExpectation{kOutlook, StoreKind::kRegistry, 182},
                      CatalogExpectation{kEvolution, StoreKind::kGconf, 183},
                      CatalogExpectation{kInternetExplorer, StoreKind::kRegistry, 33},
                      CatalogExpectation{kChrome, StoreKind::kFile, 35},
                      CatalogExpectation{kWord, StoreKind::kRegistry, 143},
                      CatalogExpectation{kGnomeEdit, StoreKind::kGconf, 10},
                      CatalogExpectation{kPaint, StoreKind::kRegistry, 66},
                      CatalogExpectation{kEyeOfGnome, StoreKind::kGconf, 5},
                      CatalogExpectation{kAcrobat, StoreKind::kFile, 751},
                      CatalogExpectation{kExplorer, StoreKind::kRegistry, 298},
                      CatalogExpectation{kMediaPlayer, StoreKind::kRegistry, 165}),
    [](const auto& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Catalog, AllKeyPathsUniqueWithinApp) {
  for (const AppSchema& app : AllAppSchemas()) {
    std::set<std::string> paths;
    for (const SchemaGroup& group : app.groups) {
      for (const KeySpec& key : group.keys) {
        EXPECT_TRUE(paths.insert(key.path).second) << app.name << " duplicates key " << key.path;
      }
    }
    for (const KeySpec& key : app.readonly_keys) {
      EXPECT_TRUE(paths.insert(key.path).second) << app.name << " duplicates key " << key.path;
    }
  }
}

TEST(Catalog, WriteSectionsReferenceRealGroups) {
  for (const AppSchema& app : AllAppSchemas()) {
    for (const auto& section : app.write_sections) {
      EXPECT_GE(section.size(), 2u);
      for (const std::string& name : section) {
        EXPECT_NE(app.FindGroup(name), nullptr) << app.name << " section names " << name;
      }
    }
  }
}

TEST(Catalog, ScenarioSignatureKeysAreUiVisible) {
  // Errors must be "visually observable on the display".
  const struct {
    const char* app;
    const char* key;
  } cases[] = {
      {kOutlook,
       "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Outlook\\Preferences\\NavPaneVisible"},
      {kWord, "HKEY_CURRENT_USER\\Software\\Microsoft\\Office\\12.0\\Word\\Options\\Max Display"},
      {kEvolution, "/apps/evolution/shell/start_offline"},
      {kChrome, "bookmark_bar/show_on_all_tabs"},
      {kAcrobat, "Originals/ShowMenuBar"},
      {kAcrobat, "Toolbars/ShowFindBox"},
  };
  for (const auto& c : cases) {
    const AppSchema app = AppSchemaByName(c.app);
    const KeySpec* key = app.FindKey(c.key);
    ASSERT_NE(key, nullptr) << c.key;
    EXPECT_TRUE(key->ui_visible) << c.key;
  }
}

TEST(Catalog, UnknownAppThrows) { EXPECT_THROW(AppSchemaByName("Nope"), Error); }

TEST(Catalog, SystemBackgroundScales) {
  const AppSchema system = BuildSystemBackground(StoreKind::kRegistry, 1000, 50);
  EXPECT_EQ(system.total_keys(), 1000u);
  size_t churn = 0;
  for (const SchemaGroup& group : system.groups) {
    if (group.rotations_per_session > 0) ++churn;
  }
  EXPECT_EQ(churn, 50u);
}

// ----- Rendering -----------------------------------------------------------------------

TEST(Render, ShowsUiVisibleKeysOnly) {
  AppSchema app;
  app.name = "Mini";
  app.store = StoreKind::kGconf;
  SchemaGroup group;
  group.name = "g";
  group.keys = {KeySpec{.path = "/a/visible", .type = ValueType::kBool, .ui_visible = true},
                KeySpec{.path = "/a/hidden", .type = ValueType::kBool}};
  app.groups.push_back(group);

  GconfStore store;
  store.Write("/a/visible", Value(true));
  store.Write("/a/hidden", Value(false));
  const Screenshot shot = RenderApp(app, store);
  EXPECT_NE(shot.text.find("/a/visible = true"), std::string::npos);
  EXPECT_EQ(shot.text.find("/a/hidden"), std::string::npos);
}

TEST(Render, AbsentKeysRenderUnset) {
  AppSchema app;
  app.name = "Mini";
  SchemaGroup group;
  group.keys = {KeySpec{.path = "/a/x", .type = ValueType::kInt, .ui_visible = true}};
  app.groups.push_back(group);
  GconfStore store;
  const Screenshot shot = RenderApp(app, store);
  EXPECT_NE(shot.text.find("/a/x = <unset>"), std::string::npos);
}

TEST(Render, DeterministicHashDeduplication) {
  const AppSchema app = BuildEyeOfGnome();
  GconfStore store;
  store.RestoreSnapshot(app.DefaultConfig());
  const Screenshot a = RenderApp(app, store);
  const Screenshot b = RenderApp(app, store);
  EXPECT_EQ(a, b);
  store.Write("/apps/eog/ui/can_print", Value(false));
  const Screenshot c = RenderApp(app, store);
  EXPECT_NE(a.hash, c.hash);  // Visible change: different screenshot.
}

}  // namespace
}  // namespace ocasta
