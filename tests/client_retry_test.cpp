// TtkvClient exactly-once regression suite (the retry double-apply bug).
//
// The scenario that used to double-apply: the client sends a mutation, the
// daemon APPLIES it, and the connection dies before the reply frame makes
// it back. The old client transparently reconnected and re-sent — the
// daemon applied the same PUT twice, doubling write_count and corrupting
// version history. The contract now: once a mutation's request frame has
// reached the wire, an ambiguous failure surfaces as WireError and the
// CALLER decides; only reads and mutations that provably never hit the
// wire auto-retry.
//
// A real daemon can't produce this window on demand, so these tests run a
// minimal in-process fake daemon over the real wire helpers: it speaks
// HELLO, applies frames to a real engine, and hangs up at exactly the
// scripted moment.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <thread>

#include "api/codec.h"
#include "api/engine.h"
#include "api/local_engine.h"
#include "client/ttkv_client.h"
#include "server/wire.h"

namespace ocasta {
namespace {

// What the fake daemon does after applying a request frame.
enum class AfterApply {
  kReply,          // Normal: encode and send the result.
  kCloseNoReply,   // Apply, then hang up — the ambiguous window.
};

// One-connection-at-a-time scripted daemon. Each accepted connection
// serves HELLO, then per-frame behaviors popped from the script (the last
// behavior repeats). State accumulates in one shared engine across
// connections, exactly like a daemon that stays alive while the CLIENT
// reconnects.
class FakeDaemon {
 public:
  explicit FakeDaemon(std::vector<AfterApply> script, uint16_t port = 0)
      : script_(std::move(script)) {
    listen_fd_ = ListenLoopback(port);
    port_ = BoundPort(listen_fd_);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeDaemon() {
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    // The serve thread may be parked in Recv on a live client connection
    // (e.g. a client that caches its socket between RPCs); shut that down
    // too or the join below never returns.
    const int active = active_fd_.load();
    if (active >= 0) ::shutdown(active, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
  }

  uint16_t port() const { return port_; }
  api::Engine& engine() { return engine_; }
  int frames_applied() const { return frames_applied_.load(); }

 private:
  void Serve() {
    while (!stopping_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      active_fd_.store(fd);
      ServeConnection(fd);
      active_fd_.store(-1);
      ::close(fd);
    }
  }

  void ServeConnection(int fd) {
    FrameBuffer in;
    const auto hello = in.Recv(fd);
    if (!hello.has_value() || !api::IsHelloRequest(*hello)) return;
    SendFrame(fd, api::EncodeHelloReply(api::kProtocolVersion));
    while (true) {
      const auto request = in.Recv(fd);
      if (!request.has_value()) return;
      // Apply FIRST — the whole point is that the daemon's state changes
      // even when the reply never leaves the building.
      const api::Result result = engine_.Apply(api::DecodeCommand(*request));
      frames_applied_.fetch_add(1);
      const size_t step = std::min(next_step_++, script_.size() - 1);
      switch (script_[step]) {
        case AfterApply::kReply:
          SendFrame(fd, api::EncodeResult(result));
          break;
        case AfterApply::kCloseNoReply:
          return;  // Caller closes fd: RST/FIN instead of a reply.
      }
    }
  }

  std::vector<AfterApply> script_;
  size_t next_step_ = 0;
  api::LocalEngine engine_;
  std::atomic<int> frames_applied_{0};
  int listen_fd_ = -1;
  std::atomic<int> active_fd_{-1};
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

TEST(ClientRetryTest, MutationIsNotResentAfterReachingTheWire) {
  // Script: apply the first frame, then kill the connection before the
  // reply. Every later frame behaves normally.
  FakeDaemon daemon({AfterApply::kCloseNoReply, AfterApply::kReply});
  TtkvClient client("127.0.0.1", daemon.port());

  EXPECT_THROW(client.Put("/once", Value("v1"), Seconds(1)), WireError);

  // Exactly-once: the daemon applied ONE frame; the history shows ONE
  // write. The old transparent-retry client recorded two.
  EXPECT_EQ(daemon.frames_applied(), 1);
  const auto record = api::History(daemon.engine(), "/once");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->write_count, 1u);
  ASSERT_EQ(record->versions.size(), 1u);
  EXPECT_EQ(record->versions[0].value, Value("v1"));

  // The client recovers on its own for the NEXT call (fresh connection).
  client.Put("/next", Value("v2"), Seconds(2));
  EXPECT_EQ(api::Get(daemon.engine(), "/next"), Value("v2"));
}

TEST(ClientRetryTest, MutatingBatchGetsTheSameProtection) {
  FakeDaemon daemon({AfterApply::kCloseNoReply, AfterApply::kReply});
  TtkvClient client("127.0.0.1", daemon.port());

  EXPECT_THROW(client.PutBatch({{"/b/a", Value(1)}, {"/b/b", Value(2)}}, Seconds(1)),
               WireError);
  EXPECT_EQ(daemon.frames_applied(), 1);
  EXPECT_EQ(api::History(daemon.engine(), "/b/a")->write_count, 1u);
}

TEST(ClientRetryTest, ReadsStillRetryTransparently) {
  // Same window, but for a GET: re-asking is harmless, so the client must
  // absorb the dropped reply and succeed on the retry connection.
  FakeDaemon daemon({AfterApply::kCloseNoReply, AfterApply::kReply});
  api::Put(daemon.engine(), "/r", Value("stored"), Seconds(1));

  TtkvClient client("127.0.0.1", daemon.port());
  EXPECT_EQ(client.Get("/r"), Value("stored"));
  EXPECT_EQ(daemon.frames_applied(), 2);  // Dropped once, answered once.
}

TEST(ClientRetryTest, MutationRetriesWhenTheDaemonDiedBeforeTheSend) {
  // The pre-send staleness probe: a daemon that restarted since the last
  // RPC has FIN'd the cached connection. The client must detect that
  // BEFORE committing the frame to the wire — that mutation never reached
  // anything, so retrying it is safe and expected.
  auto daemon = std::make_unique<FakeDaemon>(std::vector<AfterApply>{AfterApply::kReply});
  const uint16_t port = daemon->port();
  TtkvClient client("127.0.0.1", port);
  client.Put("/warm", Value(1), Seconds(1));  // Establishes the cached connection.

  daemon.reset();  // Old daemon gone; its FIN is pending on the cached socket.
  FakeDaemon revived({AfterApply::kReply}, port);  // New process, same address.

  // The SAME client, with its stale cached connection: the probe must see
  // the FIN, reconnect, and send the mutation exactly once to the revived
  // daemon — no WireError, because the frame never reached the old one.
  client.Put("/warm2", Value(2), Seconds(2));
  EXPECT_EQ(revived.frames_applied(), 1);
  EXPECT_EQ(api::Get(revived.engine(), "/warm2"), Value(2));
}

}  // namespace
}  // namespace ocasta
