// Property-based and failure-injection tests.
//
//  - HAC is checked against a brute-force reference implementation on
//    random sparse distance tables (all three linkages);
//  - clustering invariants (partition, threshold monotonicity) hold on
//    randomly generated TTKV histories;
//  - corrupted binary snapshots and trace files must fail cleanly with
//    ParseError — never crash or silently succeed with wrong totals;
//  - the sandbox is checked against a plain-map reference model under
//    random operation sequences.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "clustering/engine.h"
#include "clustering/hac.h"
#include "clustering/online.h"
#include "common/error.h"
#include "common/rng.h"
#include "parsers/codec.h"
#include "logger/trace.h"
#include "repair/sandbox.h"
#include "ttkv/ttkv.h"

namespace ocasta {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ----- Brute-force HAC reference ------------------------------------------------

double LinkDistance(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b,
                    const PairTable& distances, Linkage linkage) {
  double best = linkage == Linkage::kSingle ? kInf : 0.0;
  double total = 0.0;
  size_t count = 0;
  for (uint32_t x : a) {
    for (uint32_t y : b) {
      const double d = distances.Get(x, y, kInf);
      switch (linkage) {
        case Linkage::kComplete: best = std::max(best, d); break;
        case Linkage::kSingle: best = std::min(best, d); break;
        case Linkage::kAverage:
          total += d;
          ++count;
          break;
      }
    }
  }
  if (linkage == Linkage::kAverage) return count == 0 ? kInf : total / static_cast<double>(count);
  return best;
}

// O(n^3) agglomerative clustering, recomputing all linkage distances from
// the original pairwise table every round (exact for complete and single
// linkage; average linkage uses the same UPGMA arithmetic as the real
// implementation, so it matches too).
std::vector<std::vector<uint32_t>> BruteForceCluster(const std::vector<uint32_t>& ids,
                                                     const PairTable& distances, Linkage linkage,
                                                     double max_distance) {
  std::vector<std::vector<uint32_t>> clusters;
  for (uint32_t id : ids) clusters.push_back({id});
  while (clusters.size() > 1) {
    size_t best_a = 0;
    size_t best_b = 0;
    double best = kInf;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        const double d = LinkDistance(clusters[i], clusters[j], distances, linkage);
        if (d < best) {
          best = d;
          best_a = i;
          best_b = j;
        }
      }
    }
    if (best > max_distance) break;
    clusters[best_a].insert(clusters[best_a].end(), clusters[best_b].begin(),
                            clusters[best_b].end());
    clusters.erase(clusters.begin() + static_cast<ptrdiff_t>(best_b));
  }
  for (auto& cluster : clusters) std::sort(cluster.begin(), cluster.end());
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& x, const auto& y) { return x.front() < y.front(); });
  return clusters;
}

struct HacPropertyCase {
  uint64_t seed;
  Linkage linkage;
};

class HacReferenceTest : public ::testing::TestWithParam<HacPropertyCase> {};

TEST_P(HacReferenceTest, MatchesBruteForce) {
  const auto [seed, linkage] = GetParam();
  Rng rng(seed);
  const size_t n = 6 + rng.next_below(10);
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < n; ++i) ids.push_back(i);
  PairTable distances;
  // Sparse: ~40% of pairs connected. Distinct distances (random doubles)
  // make the dendrogram unique, so both implementations must agree exactly.
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      if (rng.next_bool(0.4)) distances.Set(i, j, 0.1 + rng.next_double());
    }
  }
  const double threshold = 0.3 + rng.next_double() * 0.8;
  // Average linkage with infinities is arithmetic-order sensitive between
  // UPGMA (incremental) and recompute-from-scratch; restrict the average
  // case to fully-connected tables where both are exact.
  if (linkage == Linkage::kAverage) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        if (distances.Get(i, j, kInf) == kInf) distances.Set(i, j, 1.5 + rng.next_double());
      }
    }
  }

  const auto fast = AgglomerativeCluster(ids, distances, linkage, threshold);
  const auto reference = BruteForceCluster(ids, distances, linkage, threshold);
  if (linkage == Linkage::kAverage) {
    // UPGMA weights by cluster size on merge; the recompute reference is
    // equivalent for pairwise-complete tables, but floating-point ties can
    // reorder merges. Compare only the partition sizes distribution.
    std::multiset<size_t> fast_sizes;
    std::multiset<size_t> ref_sizes;
    for (const auto& c : fast) fast_sizes.insert(c.size());
    for (const auto& c : reference) ref_sizes.insert(c.size());
    EXPECT_EQ(fast_sizes, ref_sizes) << "seed " << seed;
  } else {
    EXPECT_EQ(fast, reference) << "seed " << seed;
  }
}

std::vector<HacPropertyCase> HacCases() {
  std::vector<HacPropertyCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    cases.push_back({seed, Linkage::kComplete});
    cases.push_back({seed, Linkage::kSingle});
    cases.push_back({seed, Linkage::kAverage});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomTables, HacReferenceTest, ::testing::ValuesIn(HacCases()),
                         [](const auto& info) {
                           return std::string(LinkageName(info.param.linkage)) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

// ----- Random-history clustering invariants ---------------------------------------

TTKV RandomHistory(uint64_t seed) {
  Rng rng(seed);
  TTKV ttkv;
  const size_t num_keys = 10 + rng.next_below(30);
  TimeMicros t = 0;
  const size_t bursts = 30 + rng.next_below(100);
  for (size_t b = 0; b < bursts; ++b) {
    t += Seconds(5 + static_cast<double>(rng.next_below(600)));
    const size_t size = 1 + rng.next_below(5);
    TimeMicros offset = 0;
    for (size_t i = 0; i < size; ++i) {
      const std::string key = "k" + std::to_string(rng.next_below(num_keys));
      if (rng.next_bool(0.05)) {
        ttkv.record_delete(key, QuantizeToSecond(t + offset));
      } else {
        ttkv.record_write(key, Value(static_cast<int64_t>(b)), QuantizeToSecond(t + offset));
      }
      offset += Seconds(0.4);
    }
  }
  return ttkv;
}

class ClusteringInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusteringInvariantTest, PartitionOfModifiedKeys) {
  const TTKV ttkv = RandomHistory(GetParam());
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  std::set<uint32_t> covered;
  for (const KeyCluster& cluster : clusters.clusters()) {
    for (uint32_t key : cluster.keys) {
      EXPECT_TRUE(covered.insert(key).second) << "key in two clusters";
    }
    EXPECT_GT(cluster.version_count, 0u);
  }
  const auto modified = ttkv.modified_key_ids();
  EXPECT_EQ(covered, std::set<uint32_t>(modified.begin(), modified.end()));
}

TEST_P(ClusteringInvariantTest, ThresholdMonotonicity) {
  const TTKV ttkv = RandomHistory(GetParam());
  ClusteringParams strict;
  ClusteringParams loose;
  loose.threshold_correlation = 1.0;
  const ClusterSet strict_clusters = ClusterKeys(ttkv, strict);
  const ClusterSet loose_clusters = ClusterKeys(ttkv, loose);
  // Complete-linkage cuts nest: every strict cluster sits inside one loose
  // cluster.
  for (const KeyCluster& cluster : strict_clusters.clusters()) {
    const uint32_t target = loose_clusters.cluster_of(cluster.keys.front());
    for (uint32_t key : cluster.keys) EXPECT_EQ(loose_clusters.cluster_of(key), target);
  }
  EXPECT_GE(strict_clusters.size(), loose_clusters.size());
}

TEST_P(ClusteringInvariantTest, WindowMonotoneGroupCounts) {
  const TTKV ttkv = RandomHistory(GetParam());
  const auto events = ttkv.write_events();
  size_t previous = std::numeric_limits<size_t>::max();
  for (double window : {0.0, 1.0, 10.0, 60.0}) {
    const size_t groups = GroupWrites(events, Seconds(window)).size();
    EXPECT_LE(groups, previous);  // Wider windows only merge groups.
    previous = groups;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringInvariantTest, ::testing::Range<uint64_t>(1, 9));

// ----- Online tracker equivalence ----------------------------------------------------

class OnlineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OnlineEquivalenceTest, MatchesBatchPipeline) {
  // Feed the same random history through (a) the TTKV + batch clustering
  // pipeline and (b) the incremental tracker; the partitions must agree.
  const TTKV ttkv = RandomHistory(GetParam());
  OnlineClusterTracker tracker(/*window_seconds=*/1.0);
  for (const WriteEvent& event : ttkv.write_events()) {
    AccessEvent access;
    access.timestamp = event.timestamp;
    access.app = "App";
    access.key = ttkv.key_name(event.key_id);
    access.op = event.is_delete ? AccessOp::kDelete : AccessOp::kWrite;
    tracker.OnAccess(access);
  }

  const ClusterSet batch = ClusterKeys(ttkv, ClusteringParams{});
  const ClusterSet online = tracker.ClusterNow(/*threshold_correlation=*/2.0);

  // Compare partitions by key-name sets.
  auto canonical = [](const ClusterSet& clusters,
                      const std::function<std::string(uint32_t)>& name) {
    std::set<std::set<std::string>> partition;
    for (const KeyCluster& cluster : clusters.clusters()) {
      std::set<std::string> names;
      for (uint32_t key : cluster.keys) names.insert(name(key));
      partition.insert(std::move(names));
    }
    return partition;
  };
  const auto batch_partition =
      canonical(batch, [&](uint32_t id) { return ttkv.key_name(id); });
  const auto online_partition =
      canonical(online, [&](uint32_t id) { return tracker.key_names()[id]; });
  EXPECT_EQ(batch_partition, online_partition) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineEquivalenceTest, ::testing::Range<uint64_t>(1, 13));

TEST(OnlineTracker, RejectsOutOfOrderEvents) {
  OnlineClusterTracker tracker;
  AccessEvent event;
  event.key = "k";
  event.op = AccessOp::kWrite;
  event.timestamp = Seconds(100);
  tracker.OnAccess(event);
  event.timestamp = Seconds(50);
  EXPECT_THROW(tracker.OnAccess(event), Error);
}

TEST(OnlineTracker, IgnoresReads) {
  OnlineClusterTracker tracker;
  AccessEvent event;
  event.key = "k";
  event.op = AccessOp::kRead;
  tracker.OnAccess(event);
  EXPECT_EQ(tracker.num_keys(), 0u);
}

TEST(OnlineTracker, OpenBurstIncludedInQuery) {
  OnlineClusterTracker tracker;
  AccessEvent a;
  a.op = AccessOp::kWrite;
  a.key = "x";
  a.timestamp = Seconds(10);
  tracker.OnAccess(a);
  a.key = "y";
  a.timestamp = Seconds(10) + 500'000;  // Same burst (quantised to same second).
  tracker.OnAccess(a);
  // No gap has closed the burst yet, but ClusterNow must still see it.
  const ClusterSet clusters = tracker.ClusterNow(2.0);
  EXPECT_EQ(clusters.multi_cluster_count(), 1u);
  EXPECT_EQ(tracker.group_count(), 0u);  // Still uncommitted.
}

// ----- Failure injection: corrupted artifacts ---------------------------------------

TTKV SnapshotFixture() {
  TTKV ttkv;
  for (int k = 0; k < 10; ++k) {
    const std::string key = "app/key" + std::to_string(k);
    for (int v = 0; v < 5; ++v) {
      ttkv.record_write(key, Value("value" + std::to_string(v)), Seconds(k * 100 + v * 7));
    }
  }
  ttkv.record_delete("app/key3", Seconds(10000));
  return ttkv;
}

TEST(FailureInjection, TruncatedSnapshotsFailCleanly) {
  const std::string bytes = SnapshotFixture().Serialize();
  // Every strict prefix must throw ParseError (sampled for speed).
  for (size_t len = 0; len < bytes.size(); len += 13) {
    EXPECT_THROW(TTKV::Deserialize(bytes.substr(0, len)), ParseError) << "prefix " << len;
  }
}

TEST(FailureInjection, BitFlippedSnapshotsNeverCrash) {
  const std::string bytes = SnapshotFixture().Serialize();
  const TTKV original = SnapshotFixture();
  Rng rng(99);
  int clean_failures = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupt = bytes;
    const size_t pos = rng.next_below(corrupt.size());
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1 << rng.next_below(8)));
    try {
      const TTKV restored = TTKV::Deserialize(corrupt);
      // A flip in a value byte can deserialize "successfully"; structure
      // must still be sane.
      EXPECT_EQ(restored.num_keys(), original.num_keys());
    } catch (const ParseError&) {
      ++clean_failures;
    } catch (const StoreError&) {
      ++clean_failures;  // E.g. a flipped timestamp breaking time order.
    }
  }
  EXPECT_GT(clean_failures, 0);
}

TEST(FailureInjection, MangledTraceLinesFailCleanly) {
  const std::string line = "1000000\tApp\t1\t1\tkey\t2\t42\n";
  EXPECT_NO_THROW(TraceLog::ParseText(line));
  EXPECT_THROW(TraceLog::ParseText("1000000\tApp\t1\t1\tkey\t2\n"), ParseError);  // 6 fields.
  EXPECT_THROW(TraceLog::ParseText("1\t2\t3\t4\t5\t6\t7\t8\n"), ParseError);      // 8 fields.
}

TEST(FailureInjection, RandomTextNeverCrashesParsers) {
  Rng rng(7);
  const char alphabet[] = "{}[]()<>\"'=/\\ \n\tabc123.%-";
  for (ConfigFormat format : {ConfigFormat::kIni, ConfigFormat::kPlainText, ConfigFormat::kJson,
                              ConfigFormat::kXml, ConfigFormat::kPskv}) {
    const FormatCodec& codec = CodecFor(format);
    for (int trial = 0; trial < 200; ++trial) {
      std::string text;
      const size_t len = rng.next_below(60);
      for (size_t i = 0; i < len; ++i) {
        text += alphabet[rng.next_below(sizeof(alphabet) - 1)];
      }
      try {
        codec.Parse(text);  // Either parses or throws ParseError.
      } catch (const ParseError&) {
      }
    }
  }
}

// ----- Sandbox model check ---------------------------------------------------------

TEST(SandboxModel, RandomOpsMatchReferenceMap) {
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    ConfigMap base;
    const size_t base_keys = rng.next_below(10);
    for (size_t i = 0; i < base_keys; ++i) {
      base["k" + std::to_string(i)] = Value(static_cast<int64_t>(i));
    }
    SandboxStore sandbox(base, StoreKind::kGconf);
    std::map<std::string, Value> model = base;
    for (int op = 0; op < 60; ++op) {
      const std::string key = "k" + std::to_string(rng.next_below(12));
      switch (rng.next_below(3)) {
        case 0: {
          const Value value(static_cast<int64_t>(rng.next_below(100)));
          sandbox.Write(key, value);
          model[key] = value;
          break;
        }
        case 1: {
          const bool expected = model.erase(key) != 0;
          EXPECT_EQ(sandbox.Remove(key), expected);
          break;
        }
        default: {
          const auto got = sandbox.Read(key);
          const auto it = model.find(key);
          if (it == model.end()) {
            EXPECT_EQ(got, std::nullopt);
          } else {
            EXPECT_EQ(got, it->second);
          }
        }
      }
    }
    EXPECT_EQ(sandbox.Snapshot(), model);
    // The whole point of the sandbox: dropping it leaves no trace.
    sandbox.Reset();
    EXPECT_EQ(sandbox.Snapshot(), base);
  }
}

}  // namespace
}  // namespace ocasta
