#include <gtest/gtest.h>

#include <set>

#include "apps/catalog.h"
#include "common/error.h"
#include "scenarios/harness.h"
#include "scenarios/scenarios.h"
#include "workload/profiles.h"

namespace ocasta {
namespace {

TEST(Scenarios, SixteenInTable3Order) {
  const auto scenarios = AllScenarios();
  ASSERT_EQ(scenarios.size(), 16u);
  for (size_t i = 0; i < scenarios.size(); ++i) {
    EXPECT_EQ(scenarios[i].id, static_cast<int>(i) + 1);
  }
  EXPECT_THROW(ScenarioById(0), Error);
  EXPECT_THROW(ScenarioById(17), Error);
  EXPECT_EQ(ScenarioById(15).app, kAcrobat);
}

TEST(Scenarios, MachinesHostTheirApplications) {
  for (const ErrorScenario& scenario : AllScenarios()) {
    const MachineProfile profile = ProfileByName(scenario.machine);
    bool hosted = false;
    for (const std::string& app : profile.apps) hosted |= (app == scenario.app);
    EXPECT_TRUE(hosted) << "case " << scenario.id << ": " << scenario.machine
                        << " does not host " << scenario.app;
  }
}

TEST(Scenarios, CorruptedKeysExistInSchemas) {
  for (const ErrorScenario& scenario : AllScenarios()) {
    const AppSchema schema = AppSchemaByName(scenario.app);
    for (const CorruptionSpec& corruption : scenario.corruptions) {
      EXPECT_NE(schema.FindKey(corruption.key), nullptr)
          << "case " << scenario.id << ": unknown key " << corruption.key;
    }
    for (const std::string& key : scenario.required_keys) {
      const KeySpec* spec = schema.FindKey(key);
      ASSERT_NE(spec, nullptr) << "case " << scenario.id << ": unknown required key " << key;
      // The paper requires visually observable symptoms.
      EXPECT_TRUE(spec->ui_visible) << "case " << scenario.id << ": " << key;
    }
  }
}

TEST(Scenarios, MultiKeyErrorsAreTheNoClustFailures) {
  // The paper: NoClust fails exactly the errors needing more than one
  // setting rolled back together: #2, #4, #6, #7, #9.
  const std::set<int> multi_key{2, 4, 6, 7, 9};
  for (const ErrorScenario& scenario : AllScenarios()) {
    EXPECT_EQ(scenario.required_keys.size() > 1, multi_key.count(scenario.id) == 1)
        << "case " << scenario.id;
  }
}

TEST(Scenarios, TuningMatchesPaper) {
  // Errors #2 and #4 needed parameter tuning in the paper.
  for (const ErrorScenario& scenario : AllScenarios()) {
    EXPECT_EQ(scenario.needs_tuning, scenario.id == 2 || scenario.id == 4)
        << "case " << scenario.id;
  }
  EXPECT_DOUBLE_EQ(ScenarioById(2).tuned_threshold, 1.0);
  EXPECT_DOUBLE_EQ(ScenarioById(2).tuned_window_seconds, 30.0);
  EXPECT_DOUBLE_EQ(ScenarioById(4).tuned_threshold, 1.0);
}

TEST(Scenarios, LoggerColumnMatchesStoreKind) {
  for (const ErrorScenario& scenario : AllScenarios()) {
    const AppSchema schema = AppSchemaByName(scenario.app);
    const char* expected = StoreKindName(schema.store);
    EXPECT_EQ(scenario.logger, expected) << "case " << scenario.id;
  }
}

// ----- Harness pieces -----------------------------------------------------------------

TEST(ResolveCorruptions, FlipUsesGoodValue) {
  const ConfigMap good{{"flag", Value(true)}};
  const auto corruptions =
      ResolveCorruptions({{.key = "flag", .kind = CorruptionSpec::Kind::kFlipBool}}, good);
  ASSERT_EQ(corruptions.size(), 1u);
  EXPECT_EQ(corruptions[0].bad_value, Value(false));
}

TEST(ResolveCorruptions, DeleteOfAbsentKeyDropped) {
  const ConfigMap good{{"present", Value(1)}};
  const auto corruptions = ResolveCorruptions(
      {{.key = "present", .kind = CorruptionSpec::Kind::kDelete},
       {.key = "absent", .kind = CorruptionSpec::Kind::kDelete}},
      good);
  ASSERT_EQ(corruptions.size(), 1u);
  EXPECT_EQ(corruptions[0].key, "present");
  EXPECT_FALSE(corruptions[0].bad_value.has_value());
}

TEST(ResolveCorruptions, SetValueEqualToGoodThrows) {
  const ConfigMap good{{"k", Value("same")}};
  EXPECT_THROW(ResolveCorruptions({{.key = "k",
                                    .kind = CorruptionSpec::Kind::kSetValue,
                                    .value = Value("same")}},
                                  good),
               Error);
}

TEST(ResolveCorruptions, AllDroppedThrows) {
  EXPECT_THROW(ResolveCorruptions({{.key = "absent", .kind = CorruptionSpec::Kind::kDelete}},
                                  ConfigMap{}),
               Error);
}

TEST(OracleRequirements, AbsentGoodKeysRenderUnset) {
  ErrorScenario scenario;
  scenario.required_keys = {"present", "absent"};
  const ConfigMap good{{"present", Value(5)}};
  const auto requirements = OracleRequirements(scenario, good);
  ASSERT_EQ(requirements.size(), 2u);
  EXPECT_EQ(requirements[0].good_display, "5");
  EXPECT_EQ(requirements[1].good_display, "<unset>");
}

}  // namespace
}  // namespace ocasta
