// Tests for the sharded thread-safe TTKV engine behind ocastad, including
// the concurrency determinism properties the daemon relies on: per-shard
// version order, counter determinism under colliding writers, and
// single-threaded-replay equivalence for shard-partitioned writers.
#include "server/sharded_ttkv.h"

#include <gtest/gtest.h>

#include <span>
#include <thread>
#include <vector>

#include "api/command.h"
#include "common/error.h"

namespace ocasta {
namespace {

TEST(ShardedTtkv, PutGetDeleteRoundTrip) {
  ShardedTtkv engine(4);
  engine.Put("/apps/editor/font", Value("mono"), Seconds(1));
  engine.Put("/apps/editor/size", Value(12), Seconds(2));
  EXPECT_EQ(engine.Get("/apps/editor/font"), Value("mono"));
  EXPECT_EQ(engine.Get("/apps/editor/size"), Value(12));
  EXPECT_EQ(engine.Get("/apps/editor/missing"), std::nullopt);

  EXPECT_TRUE(engine.Delete("/apps/editor/font", Seconds(3)));
  EXPECT_EQ(engine.Get("/apps/editor/font"), std::nullopt);
  // Deleting an absent or already-deleted key records nothing.
  EXPECT_FALSE(engine.Delete("/apps/editor/font", Seconds(4)));
  EXPECT_FALSE(engine.Delete("/apps/editor/never", Seconds(4)));

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.ttkv.num_keys, 2u);
  EXPECT_EQ(stats.ttkv.writes, 3u);  // Two puts + one tombstone.
  EXPECT_EQ(stats.ttkv.deletes, 1u);
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.num_shards, 4u);
}

TEST(ShardedTtkv, TimeTravelAcrossShards) {
  ShardedTtkv engine(3);
  engine.Put("k", Value(1), Seconds(10));
  engine.Put("k", Value(2), Seconds(20));
  EXPECT_EQ(engine.GetAt("k", Seconds(15)), Value(1));
  EXPECT_EQ(engine.GetAt("k", Seconds(25)), Value(2));
  EXPECT_EQ(engine.GetAt("k", Seconds(5)), std::nullopt);
}

TEST(ShardedTtkv, HistoryAndListKeys) {
  ShardedTtkv engine(4);
  engine.Put("/a/x", Value(1), Seconds(1));
  engine.Put("/a/y", Value(2), Seconds(2));
  engine.Put("/b/z", Value(3), Seconds(3));
  engine.Delete("/a/y", Seconds(4));

  const auto record = engine.History("/a/y");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->write_count, 1u);
  EXPECT_EQ(record->delete_count, 1u);
  ASSERT_EQ(record->versions.size(), 2u);
  EXPECT_TRUE(record->versions.back().is_delete);
  EXPECT_FALSE(engine.History("/nope").has_value());

  // Tombstoned keys drop out of the live listing.
  EXPECT_EQ(engine.ListKeys("/a"), (std::vector<std::string>{"/a/x"}));
  EXPECT_EQ(engine.ListKeys(""), (std::vector<std::string>{"/a/x", "/b/z"}));
}

TEST(ShardedTtkv, SnapshotMergesShardsIndependentOfShardCount) {
  const auto fill = [](ShardedTtkv& engine) {
    engine.Put("alpha", Value(1), Seconds(1));
    engine.Put("beta", Value("b"), Seconds(2));
    engine.Put("alpha", Value(3), Seconds(3));
    engine.Delete("beta", Seconds(4));
    engine.Get("alpha");  // One read, counted in the snapshot.
  };
  ShardedTtkv one(1);
  ShardedTtkv many(7);
  fill(one);
  fill(many);
  const TTKV a = one.Snapshot();
  const TTKV b = many.Snapshot();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.stats().reads, 1u);
  EXPECT_EQ(a.latest("alpha"), Value(3));
  EXPECT_EQ(a.latest("beta"), std::nullopt);
}

TEST(ShardedTtkv, ServerAssignedTimestampsAreMonotonicPerKey) {
  ShardedTtkv engine(2);
  for (int i = 0; i < 100; ++i) engine.Put("hot", Value(i));  // t = 0 → stamped.
  const auto record = engine.History("hot");
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->versions.size(), 100u);
  for (size_t i = 1; i < record->versions.size(); ++i) {
    EXPECT_LE(record->versions[i - 1].timestamp, record->versions[i].timestamp);
  }
}

TEST(ShardedTtkv, CompactBeforeSpansShards) {
  ShardedTtkv engine(4);
  for (int k = 0; k < 16; ++k) {
    const std::string key = "key" + std::to_string(k);
    for (int v = 0; v < 4; ++v) engine.Put(key, Value(v), Seconds(10 * (v + 1)));
  }
  const size_t dropped = engine.CompactBefore(Seconds(35));
  EXPECT_EQ(dropped, 16u * 2u);  // Versions at 10s and 20s go; 30s survives as the floor.
  EXPECT_EQ(engine.GetAt("key0", Seconds(36)), Value(2));
  EXPECT_EQ(engine.Stats().ttkv.writes, 64u);  // Lifetime counters unaffected.
}

TEST(ShardedTtkv, ClusterNowFindsCoModifiedKeys) {
  ShardedTtkv engine(4);
  // Three bursts of {a, b} within a window, plus a solo key far away.
  for (int burst = 0; burst < 3; ++burst) {
    const TimeMicros t = Seconds(100 * (burst + 1));
    engine.Put("grp/a", Value(burst), t);
    engine.Put("grp/b", Value(burst), t + Seconds(0.2));
    engine.Put("solo", Value(burst), t + Seconds(50));
  }
  const auto clusters = engine.ClusterNow(1.5);
  bool found = false;
  for (const NamedCluster& cluster : clusters) {
    if (cluster.keys.size() == 2) {
      EXPECT_EQ(cluster.keys, (std::vector<std::string>{"grp/a", "grp/b"}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ShardedTtkv, RejectsEmptyKeysAndZeroShards) {
  EXPECT_THROW(ShardedTtkv(0), Error);
  ShardedTtkv engine(2);
  EXPECT_THROW(engine.Put("", Value(1)), StoreError);
  EXPECT_THROW(engine.Delete(""), StoreError);
}

// --- Concurrency ------------------------------------------------------------

// Writers on disjoint shards: the final state must be exactly what a
// single-threaded replay of the same per-shard sequences produces.
TEST(ShardedTtkvConcurrency, DisjointShardWritersMatchSingleThreadedReplay) {
  constexpr size_t kShards = 4;
  constexpr size_t kKeysPerShard = 40;
  constexpr int kWritesPerKey = 25;

  ShardedTtkv probe(kShards);
  // Partition a key universe by the shard each key actually hashes to.
  std::vector<std::vector<std::string>> keys_by_shard(kShards);
  const auto all_full = [&] {
    for (const auto& bucket : keys_by_shard) {
      if (bucket.size() < kKeysPerShard) return false;
    }
    return true;
  };
  for (int i = 0; !all_full(); ++i) {
    const std::string key = "det/key" + std::to_string(i);
    auto& bucket = keys_by_shard[probe.shard_of(key)];
    if (bucket.size() < kKeysPerShard) bucket.push_back(key);
  }

  const auto write_shard = [&](ShardedTtkv& engine, size_t shard) {
    for (int v = 0; v < kWritesPerKey; ++v) {
      for (const std::string& key : keys_by_shard[shard]) {
        engine.Put(key, Value(v), Seconds(v + 1));
      }
    }
  };

  // Concurrent run: one thread per shard.
  ShardedTtkv concurrent(kShards);
  {
    std::vector<std::thread> threads;
    for (size_t s = 0; s < kShards; ++s) {
      threads.emplace_back([&, s] { write_shard(concurrent, s); });
    }
    for (std::thread& t : threads) t.join();
  }

  // Single-threaded replay of the same per-shard op sequences.
  ShardedTtkv sequential(kShards);
  for (size_t s = 0; s < kShards; ++s) write_shard(sequential, s);

  EXPECT_TRUE(concurrent.Snapshot() == sequential.Snapshot());
}

// Colliding writers on a shared hot key set: totals are deterministic and
// per-key version order stays monotone even though interleaving is not.
TEST(ShardedTtkvConcurrency, CollidingWritersKeepDeterministicCounters) {
  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 500;
  const std::vector<std::string> hot_keys = {"hot/a", "hot/b", "hot/c"};

  ShardedTtkv engine(4);
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      for (int i = 0; i < kWritesPerThread; ++i) {
        // Server-assigned timestamps: colliding writers must never throw.
        engine.Put(hot_keys[(id + i) % hot_keys.size()], Value(id * kWritesPerThread + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.ttkv.writes, static_cast<uint64_t>(kThreads) * kWritesPerThread);
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kThreads) * kWritesPerThread);
  EXPECT_EQ(stats.ttkv.num_keys, hot_keys.size());

  uint64_t versions = 0;
  for (const std::string& key : hot_keys) {
    const auto record = engine.History(key);
    ASSERT_TRUE(record.has_value());
    versions += record->versions.size();
    for (size_t i = 1; i < record->versions.size(); ++i) {
      ASSERT_LE(record->versions[i - 1].timestamp, record->versions[i].timestamp);
    }
  }
  EXPECT_EQ(versions, static_cast<uint64_t>(kThreads) * kWritesPerThread);
}

// Mixed readers/writers/snapshotters racing: no crashes, snapshots are
// internally consistent, and the final write total adds up.
TEST(ShardedTtkvConcurrency, MixedOpsUnderContention) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 300;
  ShardedTtkv engine(4);
  std::vector<std::thread> threads;
  for (int id = 0; id < kWriters; ++id) {
    threads.emplace_back([&, id] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        const std::string key = "mix/key" + std::to_string(i % 17);
        engine.Put(key, Value(id), 0);
        engine.Get(key);
        if (i % 10 == 9) engine.Delete(key);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 30; ++i) {
      const TTKV snapshot = engine.Snapshot();
      const TtkvStats stats = snapshot.stats();
      ASSERT_LE(stats.deletes, stats.writes);
      engine.ListKeys("mix/");
      engine.ClusterNow(2.0);
    }
  });
  for (std::thread& t : threads) t.join();

  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(stats.ttkv.writes - stats.ttkv.deletes,
            static_cast<uint64_t>(kWriters) * kOpsPerWriter);
}

// --- shared_mutex read path --------------------------------------------------

TEST(ShardedTtkvSharedLocks, ReadsTakeSharedLocksWritesTakeExclusive) {
  ShardedTtkv engine(4);
  engine.Put("rw/key", Value(1), Seconds(1));  // 1 exclusive.
  const uint64_t writes_after_put = engine.write_lock_acquisitions();
  EXPECT_GE(writes_after_put, 1u);
  EXPECT_EQ(engine.read_lock_acquisitions(), 0u);

  engine.Get("rw/key");               // shared
  engine.GetAt("rw/key", Seconds(1));  // shared
  engine.History("rw/key");            // shared
  EXPECT_EQ(engine.read_lock_acquisitions(), 3u);
  EXPECT_EQ(engine.write_lock_acquisitions(), writes_after_put);

  // The split surfaces in EngineStats and sums to the total.
  const EngineStats stats = engine.Stats();  // Stats itself locks exclusively.
  EXPECT_EQ(stats.read_lock_acquisitions, 3u);
  EXPECT_GE(stats.write_lock_acquisitions, writes_after_put);
  EXPECT_EQ(stats.lock_acquisitions,
            stats.read_lock_acquisitions + stats.write_lock_acquisitions);
  // Read accounting still lands on the record and the aggregate.
  EXPECT_EQ(stats.gets, 1u);
  EXPECT_EQ(stats.ttkv.reads, 1u);
}

TEST(ShardedTtkvSharedLocks, ReadOnlyBatchGroupsTakeSharedLocks) {
  constexpr size_t kShards = 4;
  ShardedTtkv engine(kShards);
  for (int i = 0; i < 16; ++i) {
    engine.Put("batch/key" + std::to_string(i), Value(i), Seconds(i + 1));
  }
  const uint64_t reads_before = engine.read_lock_acquisitions();
  const uint64_t writes_before = engine.write_lock_acquisitions();

  // All-reads batch: every shard group locks SHARED (and at most once per
  // shard, preserving the grouped-locking guarantee).
  api::BatchCmd reads;
  for (int i = 0; i < 16; ++i) {
    reads.commands.push_back(api::GetCmd{"batch/key" + std::to_string(i)});
    reads.commands.push_back(api::HistoryCmd{"batch/key" + std::to_string(i)});
  }
  engine.ApplyBatch(std::span(reads.commands));
  EXPECT_EQ(engine.write_lock_acquisitions(), writes_before);
  EXPECT_LE(engine.read_lock_acquisitions() - reads_before, kShards);
  EXPECT_GE(engine.read_lock_acquisitions() - reads_before, 1u);

  // One write in a shard's group forces that group exclusive.
  api::BatchCmd mixed;
  mixed.commands.push_back(api::GetCmd{"batch/key0"});
  mixed.commands.push_back(api::PutCmd{"batch/key0", Value(99), Seconds(100)});
  engine.ApplyBatch(std::span(mixed.commands));
  EXPECT_GE(engine.write_lock_acquisitions(), writes_before + 1);
}

TEST(ShardedTtkvSharedLocks, ConcurrentReadersAndWritersKeepCountsExact) {
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  constexpr int kOps = 400;
  ShardedTtkv engine(2);  // Few shards: force same-shard reader overlap.
  engine.Put("hot/key", Value(0), Seconds(1));

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        engine.Get("hot/key");
        const auto record = engine.History("hot/key");
        ASSERT_TRUE(record.has_value());
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kOps; ++i) engine.Put("hot/key", Value(w * kOps + i), 0);
    });
  }
  for (std::thread& t : threads) t.join();

  const EngineStats stats = engine.Stats();
  // Every read was counted exactly once despite shared-lock concurrency
  // (the atomic read counters are the point of read_latest_shared).
  EXPECT_EQ(stats.gets, static_cast<uint64_t>(kReaders) * kOps);
  EXPECT_EQ(stats.ttkv.reads, static_cast<uint64_t>(kReaders) * kOps);
  EXPECT_EQ(stats.puts, static_cast<uint64_t>(kWriters) * kOps + 1);
  EXPECT_GE(stats.read_lock_acquisitions, static_cast<uint64_t>(kReaders) * kOps * 2);
}

}  // namespace
}  // namespace ocasta
