#include <gtest/gtest.h>

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/table.h"
#include "common/time.h"

namespace ocasta {
namespace {

// ----- strings ----------------------------------------------------------------

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", '/'), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split("/a/", '/'), (std::vector<std::string>{"", "a", ""}));
}

TEST(SplitNonEmpty, DropsEmptyFields) {
  EXPECT_EQ(SplitNonEmpty("/a//b/", '/'), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitNonEmpty("///", '/').empty());
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(Trim("  a b \t\n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(Join(parts, "/"), "a/b/c");
  EXPECT_EQ(Split(Join(parts, "/"), '/'), parts);
  EXPECT_EQ(Join({}, "/"), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("HKEY_CURRENT_USER\\x", "HKEY_CURRENT_USER"));
  EXPECT_FALSE(StartsWith("HK", "HKEY"));
  EXPECT_TRUE(EndsWith("config.json", ".json"));
  EXPECT_FALSE(EndsWith("x", ".json"));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d/%d %.1f%%", 3, 4, 75.0), "3/4 75.0%");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

class EscapeFieldTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EscapeFieldTest, RoundTrips) {
  const std::string original = GetParam();
  const std::string escaped = EscapeField(original, '\t');
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(UnescapeField(escaped, '\t'), original);
}

INSTANTIATE_TEST_SUITE_P(Cases, EscapeFieldTest,
                         ::testing::Values("", "plain", "with\ttab", "with\nnewline",
                                           "back\\slash", "\\n literal", "mix\t\n\\\t",
                                           "trailing\\"));

// ----- time ---------------------------------------------------------------------

TEST(Time, UnitConversions) {
  EXPECT_EQ(Seconds(1), kMicrosPerSecond);
  EXPECT_EQ(Minutes(2), 2 * kMicrosPerMinute);
  EXPECT_EQ(Hours(1), 60 * kMicrosPerMinute);
  EXPECT_EQ(Days(1), 24 * kMicrosPerHour);
  EXPECT_EQ(Seconds(0.5), kMicrosPerSecond / 2);
}

TEST(Time, QuantizeToSecondTruncates) {
  EXPECT_EQ(QuantizeToSecond(1'999'999), 1'000'000);
  EXPECT_EQ(QuantizeToSecond(2'000'000), 2'000'000);
  EXPECT_EQ(QuantizeToSecond(0), 0);
}

TEST(Time, FormatMinSec) {
  EXPECT_EQ(FormatMinSec(Seconds(0)), "0:00");
  EXPECT_EQ(FormatMinSec(Seconds(61)), "1:01");
  EXPECT_EQ(FormatMinSec(Minutes(90) + Seconds(5)), "90:05");
  EXPECT_EQ(FormatMinSec(-5), "0:00");
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock(100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.advance_to(120);  // Backwards: ignored.
  EXPECT_EQ(clock.now(), 150);
  clock.advance_to(500);
  EXPECT_EQ(clock.now(), 500);
}

// ----- rng ----------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.next_range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // All values hit.
}

TEST(Rng, BoolProbabilityRoughlyHolds) {
  Rng rng(11);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(heads) / 20000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double total = 0;
  for (int i = 0; i < 20000; ++i) total += rng.next_exponential(3.0);
  EXPECT_NEAR(total / 20000.0, 3.0, 0.15);
}

TEST(Rng, WeightedPrefersHeavyIndex) {
  Rng rng(17);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) ++counts[rng.next_weighted({1.0, 7.0, 2.0})];
  EXPECT_GT(counts[1], counts[0]);
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_NEAR(counts[1] / 9000.0, 0.7, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

// ----- hash ----------------------------------------------------------------------

TEST(Hash, Fnv1aIsStable) {
  // Known FNV-1a 64 test vector.
  EXPECT_EQ(Fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hash, DistinctInputsDistinctHashes) {
  EXPECT_NE(Fnv1a("screenshot-a"), Fnv1a("screenshot-b"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(Hash, HexRendering) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xdeadbeefULL), "00000000deadbeef");
}

// ----- table ----------------------------------------------------------------------

TEST(TextTable, AlignsColumns) {
  TextTable table({"A", "LongHeader"});
  table.add_row({"xx", "1"});
  table.add_row({"y"});
  const std::string out = table.render();
  EXPECT_NE(out.find("A   LongHeader"), std::string::npos);
  EXPECT_NE(out.find("xx  1"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(SeriesChart, RendersPoints) {
  SeriesChart chart("x", {"s1", "s2"});
  chart.add_point(1.0, {2.0, 3.0});
  const std::string out = chart.render();
  EXPECT_NE(out.find("s1"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

}  // namespace
}  // namespace ocasta
