#include <gtest/gtest.h>

#include "common/error.h"
#include "ttkv/serialize.h"
#include "ttkv/ttkv.h"
#include "ttkv/value.h"

namespace ocasta {
namespace {

// ----- Value ---------------------------------------------------------------------

TEST(Value, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNone);
  EXPECT_TRUE(Value().is_none());
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
  EXPECT_EQ(Value(std::vector<std::string>{"a", "b"}).as_list().size(), 2u);
}

TEST(Value, AccessorTypeMismatchThrows) {
  EXPECT_THROW(Value(42).as_bool(), StoreError);
  EXPECT_THROW(Value("x").as_int(), StoreError);
  EXPECT_THROW(Value().as_string(), StoreError);
  EXPECT_THROW(Value("x").as_number(), StoreError);
}

TEST(Value, AsNumberCoerces) {
  EXPECT_DOUBLE_EQ(Value(true).as_number(), 1.0);
  EXPECT_DOUBLE_EQ(Value(7).as_number(), 7.0);
  EXPECT_DOUBLE_EQ(Value(1.5).as_number(), 1.5);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_NE(Value(1), Value(2));
  EXPECT_NE(Value(1), Value("1"));  // Int vs string.
  EXPECT_NE(Value(true), Value(1));
  EXPECT_EQ(Value(), Value());
}

struct DisplayCase {
  Value value;
  std::string display;
};

class ValueDisplayTest : public ::testing::TestWithParam<DisplayCase> {};

TEST_P(ValueDisplayTest, DisplayRoundTrips) {
  const DisplayCase& c = GetParam();
  EXPECT_EQ(c.value.ToDisplay(), c.display);
  EXPECT_EQ(Value::ParseDisplay(c.value.type(), c.display), c.value);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ValueDisplayTest,
    ::testing::Values(DisplayCase{Value(true), "true"}, DisplayCase{Value(false), "false"},
                      DisplayCase{Value(-17), "-17"}, DisplayCase{Value("plain"), "plain"},
                      DisplayCase{Value(std::vector<std::string>{"a", "b"}), "a;b"},
                      DisplayCase{Value(std::vector<std::string>{"with;semi", "x"}),
                                  "with\\ssemi;x"},
                      DisplayCase{Value(std::vector<std::string>{}), ""}));

TEST(Value, EstimatedBytesGrowsWithContent) {
  EXPECT_LT(Value(true).EstimatedBytes(), Value(std::string(100, 'x')).EstimatedBytes());
}

// ----- Binary serialization ---------------------------------------------------------

TEST(BinarySerialize, PrimitivesRoundTrip) {
  BinaryWriter w;
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(BinarySerialize, TruncationThrows) {
  BinaryWriter w;
  w.u64(1);
  BinaryReader r(std::string_view(w.buffer()).substr(0, 3));
  EXPECT_THROW(r.u64(), ParseError);
}

class ValueBinaryTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueBinaryTest, RoundTrips) {
  BinaryWriter w;
  w.value(GetParam());
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.value(), GetParam());
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Cases, ValueBinaryTest,
                         ::testing::Values(Value(), Value(true), Value(false), Value(-5),
                                           Value(2.75), Value(""), Value("text"),
                                           Value(std::vector<std::string>{}),
                                           Value(std::vector<std::string>{"x", "", "z"})));

// ----- TTKV ---------------------------------------------------------------------------

TEST(Ttkv, LatestReflectsWritesAndDeletes) {
  TTKV ttkv;
  EXPECT_EQ(ttkv.latest("k"), std::nullopt);
  ttkv.record_write("k", Value(1), Seconds(1));
  EXPECT_EQ(ttkv.latest("k"), Value(1));
  ttkv.record_write("k", Value(2), Seconds(2));
  EXPECT_EQ(ttkv.latest("k"), Value(2));
  ttkv.record_delete("k", Seconds(3));
  EXPECT_EQ(ttkv.latest("k"), std::nullopt);
}

TEST(Ttkv, ValueAtTimeTravels) {
  TTKV ttkv;
  ttkv.record_write("k", Value("v1"), Seconds(10));
  ttkv.record_write("k", Value("v2"), Seconds(20));
  ttkv.record_delete("k", Seconds(30));
  ttkv.record_write("k", Value("v3"), Seconds(40));

  EXPECT_EQ(ttkv.value_at("k", Seconds(5)), std::nullopt);   // Before first write.
  EXPECT_EQ(ttkv.value_at("k", Seconds(10)), Value("v1"));   // Inclusive.
  EXPECT_EQ(ttkv.value_at("k", Seconds(15)), Value("v1"));
  EXPECT_EQ(ttkv.value_at("k", Seconds(25)), Value("v2"));
  EXPECT_EQ(ttkv.value_at("k", Seconds(35)), std::nullopt);  // Tombstoned.
  EXPECT_EQ(ttkv.value_at("k", Seconds(50)), Value("v3"));
  EXPECT_EQ(ttkv.value_at("unknown", Seconds(50)), std::nullopt);
}

TEST(Ttkv, OutOfOrderWritesThrow) {
  TTKV ttkv;
  ttkv.record_write("k", Value(1), Seconds(10));
  EXPECT_THROW(ttkv.record_write("k", Value(2), Seconds(5)), StoreError);
  EXPECT_THROW(ttkv.record_delete("k", Seconds(5)), StoreError);
  // Equal timestamps are fine (1-second quantisation produces them).
  ttkv.record_write("k", Value(3), Seconds(10));
}

TEST(Ttkv, KeyIdsAreDenseAndStable) {
  TTKV ttkv;
  ttkv.record_write("a", Value(1), 0);
  ttkv.record_write("b", Value(1), 0);
  ttkv.record_write("a", Value(2), Seconds(1));
  EXPECT_EQ(ttkv.key_id("a"), 0u);
  EXPECT_EQ(ttkv.key_id("b"), 1u);
  EXPECT_EQ(ttkv.key_name(0), "a");
  EXPECT_THROW(ttkv.key_id("zz"), StoreError);
  EXPECT_THROW(ttkv.key_name(9), StoreError);
}

TEST(Ttkv, WriteEventsSortedAndComplete) {
  TTKV ttkv;
  ttkv.record_write("a", Value(1), Seconds(5));
  ttkv.record_write("b", Value(1), Seconds(1));
  ttkv.record_delete("a", Seconds(9));
  const auto events = ttkv.write_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].timestamp, Seconds(1));
  EXPECT_EQ(events[1].timestamp, Seconds(5));
  EXPECT_TRUE(events[2].is_delete);
}

TEST(Ttkv, ModifiedKeyIdsExcludesReadOnlyKeys) {
  TTKV ttkv;
  ttkv.record_write("w", Value(1), 0);
  ttkv.record_read("r", 0);
  ttkv.record_reads("r2", 100);
  EXPECT_EQ(ttkv.modified_key_ids(), std::vector<uint32_t>{ttkv.key_id("w")});
  EXPECT_EQ(ttkv.num_keys(), 3u);  // Read-only keys still counted as accessed.
}

TEST(Ttkv, StatsCountEverything) {
  TTKV ttkv;
  ttkv.record_write("a", Value(1), 0);
  ttkv.record_write("a", Value(2), Seconds(1));
  ttkv.record_delete("a", Seconds(2));
  ttkv.record_reads("a", 50);
  ttkv.record_read("b", 0);
  const TtkvStats stats = ttkv.stats();
  EXPECT_EQ(stats.writes, 3u);  // Deletions fold into writes (Table I).
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.reads, 51u);
  EXPECT_EQ(stats.num_keys, 2u);
  EXPECT_GT(stats.size_bytes, 0u);
}

TEST(Ttkv, SerializeRoundTripsExactly) {
  TTKV ttkv;
  ttkv.record_write("app/x", Value("hello"), Seconds(1));
  ttkv.record_write("app/y", Value(std::vector<std::string>{"a", "b"}), Seconds(2));
  ttkv.record_delete("app/x", Seconds(3));
  ttkv.record_reads("app/z", 7);
  const TTKV restored = TTKV::Deserialize(ttkv.Serialize());
  EXPECT_EQ(restored, ttkv);
  EXPECT_EQ(restored.value_at("app/x", Seconds(2)), Value("hello"));
  EXPECT_EQ(restored.stats().reads, 7u);
}

TEST(Ttkv, DeserializeRejectsGarbage) {
  EXPECT_THROW(TTKV::Deserialize("not a snapshot"), ParseError);
  std::string valid = TTKV().Serialize();
  EXPECT_THROW(TTKV::Deserialize(valid + "trailing"), ParseError);
}

// A populated snapshot exercising every value type, used by the corruption
// tests below.
std::string SampleSnapshotBytes() {
  TTKV ttkv;
  ttkv.record_write("app/bool", Value(true), Seconds(1));
  ttkv.record_write("app/int", Value(-42), Seconds(2));
  ttkv.record_write("app/real", Value(2.5), Seconds(3));
  ttkv.record_write("app/str", Value("hello"), Seconds(4));
  ttkv.record_write("app/list", Value(std::vector<std::string>{"a", "b"}), Seconds(5));
  ttkv.record_delete("app/str", Seconds(6));
  ttkv.record_reads("app/int", 3);
  return ttkv.Serialize();
}

// Truncating a valid snapshot at ANY byte boundary must raise ParseError —
// never crash, hang, or silently return a partial store.
TEST(Ttkv, DeserializeRejectsEveryTruncation) {
  const std::string bytes = SampleSnapshotBytes();
  ASSERT_GT(bytes.size(), 100u);
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(TTKV::Deserialize(bytes.substr(0, n)), ParseError) << "prefix length " << n;
  }
}

TEST(Ttkv, DeserializeRejectsBadValueTag) {
  // The last record is app/list; its value starts tag(1) + count(4) +
  // 2 × (len(4) + 1 byte) = 15 bytes from the end.
  std::string bytes = SampleSnapshotBytes();
  const size_t tag_pos = bytes.size() - 15;
  ASSERT_EQ(static_cast<uint8_t>(bytes[tag_pos]), static_cast<uint8_t>(ValueType::kStringList));
  bytes[tag_pos] = '\x2a';
  EXPECT_THROW(TTKV::Deserialize(bytes), ParseError);
}

TEST(Ttkv, DeserializeRejectsOversizedStringListCount) {
  // Patch app/list's element count (the 4 bytes after its value tag) to
  // 0xffffffff: it must fail cleanly instead of reserving 4G strings.
  std::string bytes = SampleSnapshotBytes();
  const size_t count_pos = bytes.size() - 14;
  for (size_t i = 0; i < 4; ++i) bytes[count_pos + i] = '\xff';
  EXPECT_THROW(TTKV::Deserialize(bytes), ParseError);
}

TEST(Ttkv, DeserializeRejectsOversizedRecordAndVersionCounts) {
  // Record count lives at offset 13 (magic 4 + version 1 + reads 8).
  std::string bytes = SampleSnapshotBytes();
  for (size_t i = 0; i < 8; ++i) bytes[13 + i] = '\x7f';
  EXPECT_THROW(TTKV::Deserialize(bytes), ParseError);

  // Version count of the first record: offset 21 (header) + str "app/bool"
  // (4 + 8) + three counters (24).
  bytes = SampleSnapshotBytes();
  const size_t version_count_pos = 21 + 12 + 24;
  for (size_t i = 0; i < 8; ++i) bytes[version_count_pos + i] = '\x7f';
  EXPECT_THROW(TTKV::Deserialize(bytes), ParseError);
}

TEST(Ttkv, ImportRecordMergesAndValidates) {
  TTKV source;
  source.record_write("k", Value(1), Seconds(1));
  source.record_write("k", Value(2), Seconds(2));
  source.record_reads("k", 5);

  TTKV merged;
  merged.ImportRecord(source.record("k"));
  EXPECT_EQ(merged.latest("k"), Value(2));
  EXPECT_EQ(merged.stats().reads, 5u);
  EXPECT_TRUE(merged == source);

  EXPECT_THROW(merged.ImportRecord(source.record("k")), StoreError);  // Duplicate key.
  VersionedRecord unordered;
  unordered.key = "bad";
  unordered.versions = {Version{.timestamp = Seconds(2), .value = Value(1), .is_delete = false},
                        Version{.timestamp = Seconds(1), .value = Value(2), .is_delete = false}};
  EXPECT_THROW(merged.ImportRecord(unordered), StoreError);
}

TEST(VersionedRecord, FirstLastModified) {
  TTKV ttkv;
  ttkv.record_write("k", Value(1), Seconds(4));
  ttkv.record_write("k", Value(2), Seconds(9));
  const VersionedRecord& record = ttkv.record("k");
  EXPECT_EQ(record.first_modified(), Seconds(4));
  EXPECT_EQ(record.last_modified(), Seconds(9));
  EXPECT_EQ(record.write_count, 2u);
}

// ----- Compaction -----------------------------------------------------------------

TEST(Ttkv, CompactBeforePreservesQueriesAtOrAfterHorizon) {
  TTKV ttkv;
  for (int i = 0; i < 10; ++i) ttkv.record_write("k", Value(i), Seconds(i * 10));
  ttkv.record_delete("d", Seconds(5));
  const TimeMicros horizon = Seconds(45);

  TTKV reference = TTKV::Deserialize(ttkv.Serialize());
  const size_t dropped = ttkv.CompactBefore(horizon);
  EXPECT_EQ(dropped, 4u);  // Versions at 0,10,20,30 gone; 40 survives as anchor.

  for (TimeMicros t = horizon; t <= Seconds(100); t += Seconds(5)) {
    EXPECT_EQ(ttkv.value_at("k", t), reference.value_at("k", t)) << "t=" << t;
    EXPECT_EQ(ttkv.value_at("d", t), reference.value_at("d", t)) << "t=" << t;
  }
  // Lifetime counters unaffected.
  EXPECT_EQ(ttkv.record("k").write_count, 10u);
  // New writes continue normally after compaction.
  ttkv.record_write("k", Value(99), Seconds(200));
  EXPECT_EQ(ttkv.latest("k"), Value(99));
}

TEST(Ttkv, CompactBeforeZeroIsNoOp) {
  TTKV ttkv;
  ttkv.record_write("k", Value(1), Seconds(10));
  EXPECT_EQ(ttkv.CompactBefore(0), 0u);
  EXPECT_EQ(ttkv.CompactBefore(Seconds(10)), 0u);  // Nothing strictly older.
  EXPECT_EQ(ttkv.record("k").versions.size(), 1u);
}

TEST(Ttkv, CompactShrinksFootprint) {
  TTKV ttkv;
  for (int i = 0; i < 200; ++i) {
    ttkv.record_write("k", Value("some longer value " + std::to_string(i)), Seconds(i));
  }
  const size_t before = ttkv.stats().size_bytes;
  ttkv.CompactBefore(Seconds(150));
  EXPECT_LT(ttkv.stats().size_bytes, before / 2);
}

// Property: value_at at each version timestamp equals that version's value.
TEST(Ttkv, ValueAtMatchesEveryVersion) {
  TTKV ttkv;
  for (int i = 0; i < 50; ++i) {
    ttkv.record_write("k", Value(i), Seconds(i * 3));
  }
  const VersionedRecord& record = ttkv.record("k");
  for (const Version& version : record.versions) {
    EXPECT_EQ(record.value_at(version.timestamp), version.value);
    if (version.timestamp > 0) {
      EXPECT_NE(record.value_at(version.timestamp - 1), version.value);
    }
  }
}

}  // namespace
}  // namespace ocasta
