#include <gtest/gtest.h>

#include <set>

#include "apps/catalog.h"
#include "common/error.h"
#include "workload/generator.h"
#include "workload/inject.h"
#include "workload/profiles.h"
#include "workload/value_gen.h"

namespace ocasta {
namespace {

// A small two-app machine used by most tests here (fast to generate).
MachineProfile MiniProfile() {
  MachineProfile profile;
  profile.name = "mini";
  profile.days = 20;
  profile.apps = {kGnomeEdit, kEyeOfGnome};
  profile.sessions_per_day = 4;
  profile.reads_per_key_per_session = 2;
  profile.seed = 77;
  return profile;
}

MachineTrace MiniMachine() {
  const MachineProfile profile = MiniProfile();
  std::vector<AppSchema> schemas{BuildGnomeEdit(), BuildEyeOfGnome()};
  return GenerateMachineTrace(profile, std::move(schemas));
}

// ----- Value generation ----------------------------------------------------------------

TEST(NextValue, ProducesDifferentValueWhenPossible) {
  Rng rng(1);
  KeySpec toggle{.path = "k", .type = ValueType::kBool};
  EXPECT_EQ(NextValue(rng, toggle, Value(true)), Value(false));
  EXPECT_EQ(NextValue(rng, toggle, Value(false)), Value(true));

  KeySpec choice{.path = "k", .type = ValueType::kString, .choices = {"a", "b", "c"}};
  for (int i = 0; i < 20; ++i) {
    EXPECT_NE(NextValue(rng, choice, Value("b")), Value("b"));
  }
  KeySpec number{.path = "k", .type = ValueType::kInt, .int_min = 0, .int_max = 100};
  for (int i = 0; i < 20; ++i) {
    const Value v = NextValue(rng, number, Value(50));
    EXPECT_NE(v, Value(50));
    EXPECT_GE(v.as_int(), 0);
    EXPECT_LE(v.as_int(), 100);
  }
}

TEST(NextValue, ListsDrawFromPool) {
  Rng rng(2);
  KeySpec list{.path = "k", .type = ValueType::kStringList, .choices = {"a", "b", "c", "d"}};
  for (int i = 0; i < 10; ++i) {
    const Value v = NextValue(rng, list, std::nullopt);
    EXPECT_GE(v.as_list().size(), 1u);
    EXPECT_LE(v.as_list().size(), 4u);
    for (const std::string& item : v.as_list()) {
      EXPECT_NE(std::find(list.choices.begin(), list.choices.end(), item), list.choices.end());
    }
  }
}

// ----- Profiles ---------------------------------------------------------------------------

TEST(Profiles, NineTable1Machines) {
  const auto profiles = Table1Profiles();
  ASSERT_EQ(profiles.size(), 9u);
  EXPECT_EQ(profiles[0].name, "Windows 7");
  EXPECT_EQ(profiles[8].name, "Linux-4");
  EXPECT_EQ(ProfileByName("Linux-2").days, 84);
  EXPECT_THROW(ProfileByName("Windows 11"), Error);
  // Every scenario machine hosts its application.
  for (const MachineProfile& profile : profiles) {
    for (const std::string& app : profile.apps) {
      EXPECT_NO_THROW(AppSchemaByName(app));
    }
  }
}

// ----- Generator invariants -----------------------------------------------------------------

TEST(Generator, DeterministicForSameSeed) {
  const MachineTrace a = MiniMachine();
  const MachineTrace b = MiniMachine();
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace.events()[i], b.trace.events()[i]);
  }
  EXPECT_EQ(a.final_configs, b.final_configs);
}

TEST(Generator, EventsAreTimeOrdered) {
  const MachineTrace machine = MiniMachine();
  ASSERT_FALSE(machine.trace.empty());
  for (size_t i = 1; i < machine.trace.size(); ++i) {
    EXPECT_LE(machine.trace.events()[i - 1].timestamp, machine.trace.events()[i].timestamp);
  }
  EXPECT_LE(machine.trace.events().back().timestamp, machine.end_time + Minutes(5));
}

TEST(Generator, FinalConfigMatchesReplay) {
  // The live store state must equal the initial config plus the trace —
  // otherwise the logger missed a write.
  const MachineTrace machine = MiniMachine();
  for (const AppSchema& schema : machine.schemas) {
    const ConfigMap replayed =
        ReplayToConfig(machine.initial_configs.at(schema.name), machine.trace, schema.name);
    EXPECT_EQ(replayed, machine.final_configs.at(schema.name)) << schema.name;
  }
}

TEST(Generator, MinChangesGuaranteeHonored) {
  const MachineTrace machine = MiniMachine();
  const TTKV ttkv = BuildAppTtkv(machine, kGnomeEdit);
  // gedit-save has min_changes_per_trace = 3.
  const auto& record = ttkv.record("/apps/gedit-2/preferences/editor/save/can_save");
  EXPECT_GE(record.write_count, 3u);
  // And those forced changes land before the last 14 days (the scenario
  // injection window).
  EXPECT_LT(record.first_modified(), machine.end_time - Days(14));
}

TEST(Generator, ReadCountsPopulated) {
  const MachineTrace machine = MiniMachine();
  const auto& counts = machine.read_counts.at(kGnomeEdit);
  EXPECT_GE(counts.size(), 9u);  // All accessed keys get read counters.
  uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  EXPECT_GT(total, 0u);
}

TEST(Generator, FileAppsLogThroughFlushDiff) {
  MachineProfile profile = MiniProfile();
  profile.apps = {kChrome};
  const MachineTrace machine = GenerateMachineTrace(profile, {BuildChrome()});
  bool any_file_event = false;
  for (const AccessEvent& event : machine.trace.events()) {
    EXPECT_EQ(event.store, StoreKind::kFile);
    EXPECT_NE(event.op, AccessOp::kRead);  // Flush diff sees writes only.
    any_file_event = true;
  }
  EXPECT_TRUE(any_file_event);
}

TEST(Generator, MruResizeDeletesTrimmedItems) {
  MachineProfile profile = MiniProfile();
  profile.days = 40;
  profile.apps = {kWord};
  const MachineTrace machine = GenerateMachineTrace(profile, {BuildWord()});
  // Word's MRU resizes must produce deletion events for trimmed items.
  bool any_item_delete = false;
  for (const AccessEvent& event : machine.trace.events()) {
    if (event.op == AccessOp::kDelete && event.key.find("File MRU\\Item") != std::string::npos) {
      any_item_delete = true;
      break;
    }
  }
  EXPECT_TRUE(any_item_delete);
}

TEST(BuildAppTtkv, QuantizesAndCounts) {
  const MachineTrace machine = MiniMachine();
  const TTKV ttkv = BuildAppTtkv(machine, kGnomeEdit);
  for (uint32_t id = 0; id < ttkv.num_keys(); ++id) {
    for (const Version& version : ttkv.record(id).versions) {
      EXPECT_EQ(version.timestamp % kMicrosPerSecond, 0) << "timestamp not quantised";
    }
  }
  const TraceStats trace_stats = machine.trace.FilterByApp(kGnomeEdit).Stats();
  EXPECT_EQ(ttkv.stats().writes, trace_stats.writes);
}

TEST(BuildAppTtkvAcrossMachines, DisjointTimeRanges) {
  const MachineTrace a = MiniMachine();
  MachineProfile profile2 = MiniProfile();
  profile2.seed = 99;
  const MachineTrace b = GenerateMachineTrace(profile2, {BuildGnomeEdit(), BuildEyeOfGnome()});
  const TTKV merged = BuildAppTtkvAcrossMachines({&a, &b}, kGnomeEdit);
  const TTKV only_a = BuildAppTtkv(a, kGnomeEdit);
  const TTKV only_b = BuildAppTtkv(b, kGnomeEdit);
  EXPECT_EQ(merged.stats().writes, only_a.stats().writes + only_b.stats().writes);
  // The second machine's events sit beyond the first machine's horizon.
  const auto events = merged.write_events();
  EXPECT_GT(events.back().timestamp, a.end_time + Days(999));
}

// ----- Injection -----------------------------------------------------------------------------

TEST(Inject, CorruptsFinalStateAndHistory) {
  MachineTrace machine = MiniMachine();
  const std::string key = "/apps/gedit-2/preferences/editor/save/can_save";
  const TimeMicros t_inj = machine.end_time - Days(5);
  machine.trace.RemoveEventsForKeys(kGnomeEdit, {key}, t_inj);

  InjectionSpec spec;
  spec.app = kGnomeEdit;
  spec.at = t_inj;
  spec.corruptions = {{key, Value(false)}};
  InjectError(machine, spec);

  EXPECT_EQ(machine.final_configs.at(kGnomeEdit).at(key), Value(false));
  const TTKV ttkv = BuildAppTtkv(machine, kGnomeEdit);
  EXPECT_EQ(ttkv.value_at(key, machine.end_time), Value(false));
  // The pre-injection value is still reachable by time travel.
  const ConfigMap good = SnapshotAt(machine, kGnomeEdit, t_inj);
  EXPECT_EQ(ttkv.value_at(key, t_inj - 1), good.at(key));
}

TEST(Inject, DeletionCorruption) {
  MachineTrace machine = MiniMachine();
  const std::string key = "/apps/gedit-2/preferences/editor/save/can_save";
  InjectionSpec spec;
  spec.app = kGnomeEdit;
  spec.at = machine.end_time - Days(5);
  spec.corruptions = {{key, std::nullopt}};
  machine.trace.RemoveEventsForKeys(kGnomeEdit, {key}, spec.at);
  InjectError(machine, spec);
  EXPECT_EQ(machine.final_configs.at(kGnomeEdit).count(key), 0u);
}

TEST(Inject, SpuriousWritesAddVersions) {
  MachineTrace machine = MiniMachine();
  const std::string key = "/apps/gedit-2/preferences/editor/save/can_save";
  machine.trace.RemoveEventsForKeys(kGnomeEdit, {key}, machine.end_time - Days(5));
  const TTKV before = BuildAppTtkv(machine, kGnomeEdit);

  InjectionSpec spec;
  spec.app = kGnomeEdit;
  spec.at = machine.end_time - Days(5);
  spec.corruptions = {{key, Value(false)}};
  spec.spurious_writes = 2;
  InjectError(machine, spec);
  const TTKV after = BuildAppTtkv(machine, kGnomeEdit);
  EXPECT_EQ(after.record(key).write_count, before.record(key).write_count + 3);
}

TEST(Inject, EmptyCorruptionsThrow) {
  MachineTrace machine = MiniMachine();
  InjectionSpec spec;
  spec.app = kGnomeEdit;
  EXPECT_THROW(InjectError(machine, spec), Error);
}

}  // namespace
}  // namespace ocasta
