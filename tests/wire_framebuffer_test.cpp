// FrameBuffer under pathological inputs: torn headers, torn payloads,
// oversized prefixes, zero-length bursts, and EOF at every interesting
// boundary. RecvFrame's contract (wire.h) must hold even when the kernel
// delivers the stream one byte at a time.
#include "server/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace ocasta {
namespace {

// A connected stream socket pair; [0] is the writer, [1] the reader.
class FrameBufferTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }

  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    ::close(fds_[1]);
  }

  void SendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fds_[0], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

  void CloseWriter() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }

  static std::string Frame(const std::string& payload) {
    std::string out;
    AppendFrameHeader(out, static_cast<uint32_t>(payload.size()));
    out += payload;
    return out;
  }

  int fds_[2] = {-1, -1};
  FrameBuffer buffer_;
};

TEST_F(FrameBufferTest, ZeroLengthFramesBackToBackThenCleanEof) {
  SendRaw(Frame("") + Frame("") + Frame(""));
  CloseWriter();
  for (int i = 0; i < 3; ++i) {
    const auto frame = buffer_.Recv(fds_[1]);
    ASSERT_TRUE(frame.has_value()) << "frame " << i;
    EXPECT_EQ(*frame, "");
  }
  EXPECT_EQ(buffer_.Recv(fds_[1]), std::nullopt);
}

TEST_F(FrameBufferTest, OversizedLengthPrefixThrows) {
  std::string header;
  AppendFrameHeader(header, kMaxFrameBytes + 1);
  SendRaw(header);
  EXPECT_THROW(buffer_.Recv(fds_[1]), WireError);
}

TEST_F(FrameBufferTest, EofAfterHeaderIsMidFrameError) {
  // A header promising kMaxFrameBytes, then the peer vanishes: the length
  // itself is legal, so the failure must be the mid-frame EOF, not the size.
  std::string header;
  AppendFrameHeader(header, kMaxFrameBytes);
  SendRaw(header);
  CloseWriter();
  EXPECT_THROW(buffer_.Recv(fds_[1]), WireError);
}

TEST_F(FrameBufferTest, EofInsidePayloadIsMidFrameError) {
  const std::string bytes = Frame("truncated payload");
  SendRaw(bytes.substr(0, bytes.size() - 3));
  CloseWriter();
  EXPECT_THROW(buffer_.Recv(fds_[1]), WireError);
}

TEST_F(FrameBufferTest, EofInsideHeaderIsMidFrameError) {
  SendRaw(Frame("whole").substr(0, 2));  // Two of the four header bytes.
  CloseWriter();
  EXPECT_THROW(buffer_.Recv(fds_[1]), WireError);
}

TEST_F(FrameBufferTest, HeaderSplitAcrossFourSends) {
  const std::string bytes = Frame("split header");
  std::thread writer([&] {
    // Each header byte in its own send(); Recv blocks on the reader side
    // until the full frame has dribbled in.
    for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
      ASSERT_EQ(::send(fds_[0], bytes.data() + i, 1, 0), 1);
    }
    const char* rest = bytes.data() + kFrameHeaderBytes;
    const size_t rest_len = bytes.size() - kFrameHeaderBytes;
    ASSERT_EQ(::send(fds_[0], rest, rest_len, 0), static_cast<ssize_t>(rest_len));
  });
  const auto frame = buffer_.Recv(fds_[1]);
  writer.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "split header");
}

TEST_F(FrameBufferTest, PayloadSplitAcrossSends) {
  const std::string bytes = Frame("first half|second half");
  std::thread writer([&] {
    const size_t cut = kFrameHeaderBytes + 10;  // Mid-payload.
    ASSERT_EQ(::send(fds_[0], bytes.data(), cut, 0), static_cast<ssize_t>(cut));
    ASSERT_EQ(::send(fds_[0], bytes.data() + cut, bytes.size() - cut, 0),
              static_cast<ssize_t>(bytes.size() - cut));
  });
  const auto frame = buffer_.Recv(fds_[1]);
  writer.join();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "first half|second half");
}

TEST_F(FrameBufferTest, PipelinedBurstSurfacesEveryFrame) {
  SendRaw(Frame("a") + Frame("") + Frame(std::string(4096, 'x')) + Frame("tail"));
  CloseWriter();
  const char* expected[] = {"a", ""};
  for (const char* want : expected) {
    const auto frame = buffer_.Recv(fds_[1]);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, want);
  }
  auto frame = buffer_.Recv(fds_[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, std::string(4096, 'x'));
  frame = buffer_.Recv(fds_[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "tail");
  EXPECT_EQ(buffer_.Recv(fds_[1]), std::nullopt);
}

TEST_F(FrameBufferTest, ResetDropsBufferedBytes) {
  // Buffer a complete frame plus a partial one, consume the first, Reset,
  // then verify the partial leftovers are gone: a fresh full frame parses
  // cleanly where stale buffered bytes would have corrupted the stream.
  SendRaw(Frame("kept") + Frame("to be dropped").substr(0, 7));
  auto frame = buffer_.Recv(fds_[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "kept");
  buffer_.Reset();

  int fresh[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fresh), 0);
  const std::string bytes = Frame("after reset");
  ASSERT_EQ(::send(fresh[0], bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  frame = buffer_.Recv(fresh[1]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, "after reset");
  ::close(fresh[0]);
  ::close(fresh[1]);
}

TEST_F(FrameBufferTest, MaxSizedLengthPrefixIsAcceptedUpToEof) {
  // Exactly kMaxFrameBytes must NOT be rejected as oversized. Sending the
  // full 256 MB is wasteful; instead verify the header passes the size
  // check by observing a mid-frame EOF (not an immediate size error) —
  // and that one byte more IS rejected before any payload is read.
  std::string header;
  AppendFrameHeader(header, kMaxFrameBytes);
  SendRaw(header + "partial");
  CloseWriter();
  try {
    buffer_.Recv(fds_[1]);
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_EQ(std::string(e.what()).find("frame length"), std::string::npos)
        << "kMaxFrameBytes exactly must pass the size check, got: " << e.what();
  }
}

}  // namespace
}  // namespace ocasta
