// Differential property test: one random api::Command trace, three
// executions —
//   LocalEngine      (one TTKV, one mutex)
//   ShardedTtkv      (4 mutex-striped shards)
//   DurableEngine    (WAL over LocalEngine) that CRASHES at a random trace
//                    offset — the process-side half of the trace stops, the
//                    engine object is dropped without ceremony, a torn
//                    garbage tail is stapled onto the live WAL segment, the
//                    engine is recovered from disk, and the rest of the
//                    trace resumes
// — and the final durable state (key inventory, version histories,
// write/delete counts, engine stats) must be identical across all three.
//
// Read counters are compared only between the always-alive engines: reads
// are deliberately never write-ahead logged, so a recovered engine forgets
// read counts since the last checkpoint (docs/DURABILITY.md).
//
// Traces use explicit, strictly-increasing timestamps: engine-assigned
// stamps come from wall clocks that would legitimately differ across the
// three executions and say nothing about durability.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>

#include "api/engine.h"
#include "api/local_engine.h"
#include "common/io.h"
#include "common/rng.h"
#include "persist/durable_engine.h"
#include "server/sharded_ttkv.h"

namespace ocasta {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ocasta_differential_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

Value RandomValue(Rng& rng) {
  switch (rng.next_below(5)) {
    case 0: return Value(static_cast<int64_t>(rng.next_below(1000)));
    case 1: return Value(rng.next_double());
    case 2: return Value(rng.next_bool(0.5));
    case 3: return Value("v" + std::to_string(rng.next_below(100)));
    default:
      return Value(std::vector<std::string>{"a" + std::to_string(rng.next_below(10)),
                                            "b" + std::to_string(rng.next_below(10))});
  }
}

std::string RandomKey(Rng& rng) { return "/d/" + std::to_string(rng.next_below(40)); }

// One random simple (non-batch) command. `t` supplies the explicit
// timestamp for mutations; weights skew toward writes so histories grow.
api::Command RandomSimpleCommand(Rng& rng, TimeMicros t) {
  const uint64_t roll = rng.next_below(100);
  if (roll < 55) return api::PutCmd{RandomKey(rng), RandomValue(rng), t};
  if (roll < 70) return api::DeleteCmd{RandomKey(rng), t, rng.next_bool(0.3)};
  if (roll < 85) return api::GetCmd{RandomKey(rng)};
  if (roll < 92) return api::GetAtCmd{RandomKey(rng), t / 2};
  if (roll < 97) return api::HistoryCmd{RandomKey(rng)};
  return api::ListKeysCmd{"/d/"};
}

// The trace: mostly simple commands, some batches (depth 2..8), a rare
// compact. Timestamps strictly increase across the whole trace.
std::vector<api::Command> RandomTrace(Rng& rng, size_t length) {
  std::vector<api::Command> trace;
  TimeMicros t = Seconds(1);
  while (trace.size() < length) {
    t += 1000 + static_cast<TimeMicros>(rng.next_below(1000));
    const uint64_t roll = rng.next_below(100);
    if (roll < 80) {
      trace.push_back(RandomSimpleCommand(rng, t));
    } else if (roll < 96) {
      api::BatchCmd batch;
      const size_t depth = 2 + rng.next_below(7);
      for (size_t i = 0; i < depth; ++i) {
        t += 1 + static_cast<TimeMicros>(rng.next_below(10));
        batch.commands.push_back(RandomSimpleCommand(rng, t));
      }
      trace.push_back(std::move(batch));
    } else {
      // Compact far enough behind the write frontier to keep some history.
      trace.push_back(api::CompactCmd{t > Seconds(2) ? t - Seconds(1) : 0});
    }
  }
  return trace;
}

// Durable state of one engine, read back through the public API.
struct DurableState {
  std::vector<std::string> keys;  // All keys ever recorded, sorted.
  TTKV snapshot;
};

DurableState StateOf(api::Engine& engine) {
  DurableState state;
  state.snapshot = api::Snapshot(engine);
  for (uint32_t id = 0; id < state.snapshot.num_keys(); ++id) {
    state.keys.push_back(state.snapshot.record(id).key);
  }
  std::sort(state.keys.begin(), state.keys.end());
  return state;
}

// Asserts the durable dimensions of two snapshots are identical;
// `compare_reads` additionally matches read counters (valid only between
// engines that never crashed).
void ExpectSameDurableState(const char* label, api::Engine& a, api::Engine& b,
                            bool compare_reads) {
  const DurableState sa = StateOf(a);
  const DurableState sb = StateOf(b);
  ASSERT_EQ(sa.keys, sb.keys) << label;
  for (const std::string& key : sa.keys) {
    const VersionedRecord* ra = sa.snapshot.find(key);
    const VersionedRecord* rb = sb.snapshot.find(key);
    ASSERT_NE(ra, nullptr) << label << " " << key;
    ASSERT_NE(rb, nullptr) << label << " " << key;
    EXPECT_EQ(ra->versions, rb->versions) << label << " " << key;
    EXPECT_EQ(ra->write_count, rb->write_count) << label << " " << key;
    EXPECT_EQ(ra->delete_count, rb->delete_count) << label << " " << key;
    if (compare_reads) {
      EXPECT_EQ(ra->read_count, rb->read_count) << label << " " << key;
    }
  }
  const EngineStats ea = api::Stats(a);
  const EngineStats eb = api::Stats(b);
  EXPECT_EQ(ea.ttkv.writes, eb.ttkv.writes) << label;
  EXPECT_EQ(ea.ttkv.deletes, eb.ttkv.deletes) << label;
  EXPECT_EQ(ea.ttkv.num_keys, eb.ttkv.num_keys) << label;
  if (compare_reads) {
    EXPECT_EQ(ea.ttkv.reads, eb.ttkv.reads) << label;
  }
}

// Drives `trace[begin, end)` into the engine, alternating Apply and
// ApplyBatch chunks the same deterministic way for every engine.
void Drive(api::Engine& engine, const std::vector<api::Command>& trace, size_t begin,
           size_t end) {
  size_t i = begin;
  while (i < end) {
    // Chunk size keyed off the trace position, not a per-engine RNG, so
    // all executions issue identical ApplyBatch boundaries.
    const size_t chunk = 1 + (i * 2654435761u) % 5;
    if (chunk == 1 || i + chunk > end) {
      engine.Apply(trace[i]);
      ++i;
    } else {
      engine.ApplyBatch(std::span(trace).subspan(i, chunk));
      i += chunk;
    }
  }
}

std::unique_ptr<persist::DurableEngine> OpenDurable(const std::string& dir,
                                                    persist::DurableOptions options) {
  return std::make_unique<persist::DurableEngine>(
      dir, [](TTKV recovered) -> std::unique_ptr<api::Engine> {
        return std::make_unique<api::LocalEngine>(std::move(recovered));
      },
      options);
}

TEST(DurableDifferentialTest, CrashRecoveredEngineMatchesInMemoryEngines) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 7919);
    const std::vector<api::Command> trace = RandomTrace(rng, 300);
    const size_t crash_at = 30 + rng.next_below(trace.size() - 60);

    api::LocalEngine local;
    ShardedTtkv sharded(4, 1.0);
    Drive(local, trace, 0, trace.size());
    Drive(sharded, trace, 0, trace.size());

    TempDir dir;
    persist::DurableOptions options;
    // Tiny segments + occasional mid-flight checkpoints exercise rotation
    // and the snapshot seam inside the differential, not just in the unit
    // tests.
    options.wal.segment_bytes = 4096;
    options.checkpoint_wal_bytes = 0;
    options.checkpoint_interval_seconds = 0;
    {
      auto durable = OpenDurable(dir.path, options);
      Drive(*durable, trace, 0, crash_at);
      if (seed % 2 == 0) durable->Checkpoint();
      // Crash: drop the engine with no shutdown hook, then tear the log
      // tail the way a power cut mid-write(2) would.
    }
    {
      // Staple a torn half-record onto the newest segment.
      std::string newest;
      for (const auto& entry : fs::directory_iterator(dir.path)) {
        const std::string name = entry.path().filename().string();
        if (name.starts_with("wal-") && name.ends_with(".log") && name > newest) {
          newest = name;
        }
      }
      ASSERT_FALSE(newest.empty());
      const std::string path = dir.path + "/" + newest;
      WriteFile(path, ReadFile(path) + std::string("\x30\x00\x00\x00\xde\xad", 6));
    }
    auto recovered = OpenDurable(dir.path, options);
    EXPECT_GT(recovered->recovery().dropped_bytes, 0u);
    Drive(*recovered, trace, crash_at, trace.size());

    ExpectSameDurableState("local vs sharded", local, sharded, /*compare_reads=*/true);
    ExpectSameDurableState("local vs durable", local, *recovered, /*compare_reads=*/false);
    ExpectSameDurableState("sharded vs durable", sharded, *recovered,
                           /*compare_reads=*/false);
  }
}

// The seam-heavy variant: checkpoint BETWEEN every chunk of traffic, crash,
// recover, and compare — recovery must compose snapshot + replay correctly
// at every possible seam position, not just one.
TEST(DurableDifferentialTest, CheckpointAtEverySeamStaysFaithful) {
  Rng rng(424243);
  const std::vector<api::Command> trace = RandomTrace(rng, 120);

  api::LocalEngine reference;
  Drive(reference, trace, 0, trace.size());

  TempDir dir;
  persist::DurableOptions options;
  options.wal.segment_bytes = 2048;
  options.checkpoint_wal_bytes = 0;
  {
    auto durable = OpenDurable(dir.path, options);
    for (size_t i = 0; i < trace.size(); ++i) {
      durable->Apply(trace[i]);
      if (i % 10 == 9) durable->Checkpoint();
    }
  }
  auto recovered = OpenDurable(dir.path, options);
  ExpectSameDurableState("reference vs seam-recovered", reference, *recovered,
                         /*compare_reads=*/false);
}

}  // namespace
}  // namespace ocasta
