// The write-ahead log and DurableEngine recovery suites.
//
// The WAL corruption matrix mirrors the codec and TTKV::Deserialize
// corruption suites: every-prefix truncation of the final record, a CRC
// flip mid-log, a garbage tail, and empty/zero-length segments must all
// recover to the last valid record — never crash, never resurrect bytes
// past the first lie. The DurableEngine tests prove the decorator's
// contract (acknowledged => recovered) and the snapshot/log seam's
// idempotency: a record the snapshot already contains is skipped on
// replay, not double-applied.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <gtest/gtest.h>

#include "api/codec.h"
#include "api/local_engine.h"
#include "common/io.h"
#include "persist/durable_engine.h"
#include "persist/wal.h"
#include "server/sharded_ttkv.h"

namespace ocasta {
namespace persist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/ocasta_persist_test_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) throw Error("mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Payloads are codec-encoded commands in production; for WAL-level tests
// any bytes do.
std::string PutPayload(int i) {
  return api::EncodeCommand(
      api::PutCmd{"/k/" + std::to_string(i), Value(int64_t{i}), Seconds(i + 1)});
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("wal-") && name.ends_with(".log")) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> SnapshotFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("snap-") && name.ends_with(".ttkv")) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Appends `count` records (payload i = PutPayload(i)) through a Wal and
// closes it, leaving the directory for scanning/corrupting.
void WriteLog(const std::string& dir, int count, size_t segment_bytes = 64u << 20) {
  Wal wal(dir, WalOptions{.segment_bytes = segment_bytes, .fsync = FsyncPolicy::kBatch});
  for (int i = 0; i < count; ++i) wal.Sync(wal.Append(PutPayload(i)));
}

TEST(WalTest, RoundTripsRecordsAcrossReopen) {
  TempDir dir;
  WriteLog(dir.path, 5);

  Wal wal(dir.path, WalOptions{});
  const std::vector<WalRecord> records = wal.TakeRecovered();
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[static_cast<size_t>(i)].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(records[static_cast<size_t>(i)].payload, PutPayload(i));
  }
  EXPECT_EQ(wal.last_lsn(), 5u);
  EXPECT_EQ(wal.recovered_dropped_bytes(), 0u);

  // Appending continues the sequence.
  EXPECT_EQ(wal.Append(PutPayload(5)), 6u);
}

TEST(WalTest, EveryPrefixTruncationOfFinalRecordRecovers) {
  TempDir base;
  WriteLog(base.path, 4);
  const std::string segment = SegmentFiles(base.path).at(0);
  const std::string full = ReadFile(segment);

  // Find where record 4 starts: scan after writing only 3 records.
  TempDir three;
  WriteLog(three.path, 3);
  const size_t three_bytes = ReadFile(SegmentFiles(three.path).at(0)).size();
  ASSERT_LT(three_bytes, full.size());

  for (size_t cut = three_bytes; cut < full.size(); ++cut) {
    TempDir dir;
    WriteFile(dir.path + "/wal-00000000000000000001.log", full.substr(0, cut));
    const WalScan scan = Wal::Scan(dir.path);
    EXPECT_EQ(scan.records.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(scan.last_lsn, 3u);
    EXPECT_EQ(scan.dropped_bytes, cut - three_bytes);

    // Reopening truncates the torn tail and appends cleanly after it.
    Wal wal(dir.path, WalOptions{});
    EXPECT_EQ(wal.Append(PutPayload(99)), 4u);
  }
}

TEST(WalTest, CrcFlipMidLogStopsAtLastValidRecord) {
  TempDir base;
  WriteLog(base.path, 3);
  TempDir one;
  WriteLog(one.path, 1);
  const size_t one_bytes = ReadFile(SegmentFiles(one.path).at(0)).size();

  const std::string segment = SegmentFiles(base.path).at(0);
  std::string bytes = ReadFile(segment);
  // Flip one payload byte inside record 2 (between the one- and two-record
  // offsets, past record 2's header).
  bytes[one_bytes + 16 + 2] = static_cast<char>(bytes[one_bytes + 16 + 2] ^ 0x40);
  WriteFile(segment, bytes);

  const WalScan scan = Wal::Scan(base.path);
  // Recovery must stop at record 1: record 3 is intact on disk but sits
  // beyond a corrupt record, and a log is only trustworthy up to its first
  // lie.
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.last_lsn, 1u);
  EXPECT_EQ(scan.dropped_bytes, bytes.size() - one_bytes);

  Wal wal(base.path, WalOptions{});
  EXPECT_EQ(wal.Append(PutPayload(7)), 2u);
}

TEST(WalTest, GarbageTailIsTruncated) {
  TempDir dir;
  WriteLog(dir.path, 3);
  const std::string segment = SegmentFiles(dir.path).at(0);
  const size_t clean_size = ReadFile(segment).size();
  const std::string garbage = "!!garbage written by a torn batch!!";
  WriteFile(segment, ReadFile(segment) + garbage);

  Wal wal(dir.path, WalOptions{});
  EXPECT_EQ(wal.TakeRecovered().size(), 3u);
  EXPECT_EQ(wal.recovered_dropped_bytes(), garbage.size());
  // The torn suffix is physically gone.
  EXPECT_EQ(ReadFile(segment).size(), clean_size);
}

TEST(WalTest, EmptyAndZeroLengthSegmentsAreHarmless) {
  {
    // A zero-length segment file: the crash remnant of a rotation.
    TempDir dir;
    WriteFile(dir.path + "/wal-00000000000000000001.log", "");
    const WalScan scan = Wal::Scan(dir.path);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_EQ(scan.last_lsn, 0u);
    Wal wal(dir.path, WalOptions{});
    EXPECT_EQ(wal.Append(PutPayload(0)), 1u);
  }
  {
    // A header-only segment: opened, never written.
    TempDir dir;
    WriteLog(dir.path, 0);
    const WalScan scan = Wal::Scan(dir.path);
    EXPECT_TRUE(scan.records.empty());
    Wal wal(dir.path, WalOptions{});
    EXPECT_EQ(wal.Append(PutPayload(0)), 1u);
  }
  {
    // An empty directory.
    TempDir dir;
    Wal wal(dir.path, WalOptions{});
    EXPECT_TRUE(wal.TakeRecovered().empty());
    EXPECT_EQ(wal.Append(PutPayload(0)), 1u);
  }
}

TEST(WalTest, RotatesSegmentsAndScansAcrossThem) {
  TempDir dir;
  WriteLog(dir.path, 40, /*segment_bytes=*/256);
  EXPECT_GT(SegmentFiles(dir.path).size(), 2u);

  const WalScan scan = Wal::Scan(dir.path);
  ASSERT_EQ(scan.records.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(scan.records[static_cast<size_t>(i)].payload, PutPayload(i));
  }
  EXPECT_GT(scan.segments, 2u);
}

TEST(WalTest, TruncateThroughDropsCoveredSegmentsOnly) {
  TempDir dir;
  size_t before = 0;
  {
    Wal wal(dir.path, WalOptions{.segment_bytes = 256, .fsync = FsyncPolicy::kOff});
    for (int i = 0; i < 40; ++i) wal.Append(PutPayload(i));
    before = SegmentFiles(dir.path).size();
    ASSERT_GT(before, 2u);
    EXPECT_GT(wal.TruncateThrough(20), 0u);
    EXPECT_LT(SegmentFiles(dir.path).size(), before);
  }
  // The surviving tail — a log that no longer starts at LSN 1 — must scan
  // contiguously from the first remaining segment through LSN 40.
  const WalScan scan = Wal::Scan(dir.path);
  ASSERT_FALSE(scan.records.empty());
  EXPECT_LE(scan.records.front().lsn, 21u);  // Whole segments only.
  EXPECT_EQ(scan.last_lsn, 40u);
  EXPECT_EQ(scan.dropped_bytes, 0u);
  for (size_t i = 1; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].lsn, scan.records[i - 1].lsn + 1);
  }
  // And appends continue the numbering after reopen.
  Wal wal(dir.path, WalOptions{});
  EXPECT_EQ(wal.Append(PutPayload(40)), 41u);
}

TEST(WalTest, ResetToRestartsNumbering) {
  TempDir dir;
  WriteLog(dir.path, 3);
  Wal wal(dir.path, WalOptions{});
  wal.TakeRecovered();
  wal.ResetTo(11);
  EXPECT_EQ(wal.last_lsn(), 10u);
  EXPECT_EQ(wal.Append(PutPayload(0)), 11u);
  EXPECT_THROW(wal.ResetTo(5), Error);
}

TEST(WalTest, ReadFromServesBoundedContiguousTail) {
  TempDir dir;
  WriteLog(dir.path, 10, /*segment_bytes=*/128);  // Force rotation mid-run.
  Wal wal(dir.path, WalOptions{.segment_bytes = 128});
  wal.TakeRecovered();

  // Full log from the start.
  WalTail all = wal.ReadFrom(1, 100, 1u << 20);
  ASSERT_TRUE(all.reachable);
  ASSERT_EQ(all.records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(all.records[static_cast<size_t>(i)].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(all.records[static_cast<size_t>(i)].payload, PutPayload(i));
  }

  // Mid-log start across a segment boundary, record-capped.
  const WalTail mid = wal.ReadFrom(5, 3, 1u << 20);
  ASSERT_TRUE(mid.reachable);
  ASSERT_EQ(mid.records.size(), 3u);
  EXPECT_EQ(mid.records[0].lsn, 5u);
  EXPECT_EQ(mid.records[2].lsn, 7u);

  // Caught-up reader: reachable with nothing to send.
  const WalTail caught_up = wal.ReadFrom(11, 100, 1u << 20);
  EXPECT_TRUE(caught_up.reachable);
  EXPECT_TRUE(caught_up.records.empty());

  // A cursor AHEAD of the log (divergent timeline) is not reachable.
  EXPECT_FALSE(wal.ReadFrom(12, 100, 1u << 20).reachable);

  // The byte cap never starves the first record, however tiny.
  const WalTail tiny = wal.ReadFrom(1, 100, 1);
  ASSERT_TRUE(tiny.reachable);
  EXPECT_EQ(tiny.records.size(), 1u);
}

TEST(WalTest, ReadFromBehindTruncationIsUnreachable) {
  TempDir dir;
  WriteLog(dir.path, 12, /*segment_bytes=*/128);
  Wal wal(dir.path, WalOptions{.segment_bytes = 128});
  wal.TakeRecovered();
  ASSERT_GT(wal.TruncateThrough(6), 0u);  // Drops fully-covered segments.

  // What survives is exactly what a scan sees; everything from its first
  // record on is reachable, anything earlier is not — the follower holding
  // such a cursor must reseed from a snapshot.
  const WalScan scan = Wal::Scan(dir.path);
  ASSERT_FALSE(scan.records.empty());
  const uint64_t first = scan.records.front().lsn;
  ASSERT_GT(first, 1u);  // Truncation really dropped the head of the log.

  EXPECT_FALSE(wal.ReadFrom(1, 100, 1u << 20).reachable);
  EXPECT_FALSE(wal.ReadFrom(first - 1, 100, 1u << 20).reachable);
  const WalTail tail = wal.ReadFrom(first, 100, 1u << 20);
  ASSERT_TRUE(tail.reachable);
  EXPECT_EQ(tail.records.front().lsn, first);
  EXPECT_EQ(tail.records.back().lsn, 12u);
}

TEST(PersistTest, FsyncPolicyNamesRoundTrip) {
  EXPECT_EQ(FsyncPolicyByName("off"), FsyncPolicy::kOff);
  EXPECT_EQ(FsyncPolicyByName("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(FsyncPolicyByName("always"), FsyncPolicy::kAlways);
  EXPECT_THROW(FsyncPolicyByName("sometimes"), Error);
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kBatch), "batch");
}

// --- DurableEngine ----------------------------------------------------------

std::unique_ptr<DurableEngine> OpenLocal(const std::string& dir, DurableOptions options = {}) {
  return std::make_unique<DurableEngine>(
      dir, [](TTKV recovered) -> std::unique_ptr<api::Engine> {
        return std::make_unique<api::LocalEngine>(std::move(recovered));
      },
      options);
}

std::unique_ptr<DurableEngine> OpenSharded(const std::string& dir,
                                           DurableOptions options = {}) {
  return std::make_unique<DurableEngine>(
      dir, [](TTKV recovered) -> std::unique_ptr<api::Engine> {
        auto engine = std::make_unique<ShardedTtkv>(4, 1.0);
        engine->ImportSnapshot(recovered);
        return engine;
      },
      options);
}

TEST(DurableEngineTest, RecoversAckedWritesAfterUncleanClose) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/a", Value(int64_t{1}), Seconds(1));
    api::Put(*engine, "/a", Value(int64_t{2}), Seconds(2));
    api::Put(*engine, "/b", Value("hello"), Seconds(3));
    EXPECT_TRUE(api::Delete(*engine, "/b", Seconds(4)));
    // No clean shutdown hook exists on purpose: destruction == crash.
  }
  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(engine->recovery().replayed, 4u);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 0u);
  EXPECT_EQ(api::Get(*engine, "/a"), Value(int64_t{2}));
  EXPECT_EQ(api::Get(*engine, "/b"), std::nullopt);
  const auto record = api::History(*engine, "/a");
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->versions.size(), 2u);
  EXPECT_EQ(record->versions[0].timestamp, Seconds(1));
  EXPECT_EQ(record->write_count, 2u);
}

TEST(DurableEngineTest, EngineAssignedStampsAreLoggedExplicitly) {
  TempDir dir;
  TimeMicros stamped = 0;
  {
    auto engine = OpenLocal(dir.path);
    engine->Apply(api::PutCmd{"/t", Value(int64_t{9}), 0});  // Backend-assigned stamp.
    stamped = api::History(*engine, "/t")->versions.at(0).timestamp;
    EXPECT_GT(stamped, 0);
  }
  auto engine = OpenLocal(dir.path);
  // Replay must reproduce the stamp assigned at log time, not re-stamp.
  EXPECT_EQ(api::History(*engine, "/t")->versions.at(0).timestamp, stamped);
  // And fresh stamps keep moving forward from the recovered clock.
  engine->Apply(api::PutCmd{"/t", Value(int64_t{10}), 0});
  EXPECT_GT(api::History(*engine, "/t")->versions.at(1).timestamp, stamped);
}

TEST(DurableEngineTest, SnapshotSeamIsIdempotent) {
  // The latent-gap regression: a snapshot at LSN S followed by a replay
  // that does not respect S would re-apply records 1..S on top of the
  // deserialized store, doubling every version at the seam.
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/seam", Value(int64_t{1}), Seconds(1));
    api::Put(*engine, "/seam", Value(int64_t{2}), Seconds(2));
    engine->Checkpoint();  // snap-2 now contains both versions; WAL still does too.
    api::Put(*engine, "/seam", Value(int64_t{3}), Seconds(3));
  }
  // The log retains records at or below the snapshot seam (retention keeps
  // the WAL until an OLDER snapshot covers it) — exactly the double-apply
  // hazard.
  ASSERT_EQ(SnapshotFiles(dir.path).size(), 1u);
  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 2u);
  EXPECT_EQ(engine->recovery().replayed, 1u);   // Only the post-snapshot record.
  EXPECT_GE(engine->recovery().skipped, 0u);
  const auto record = api::History(*engine, "/seam");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->versions.size(), 3u);  // Not 5: records 1..2 not re-applied.
  EXPECT_EQ(record->write_count, 3u);
  EXPECT_EQ(api::Get(*engine, "/seam"), Value(int64_t{3}));
}

TEST(DurableEngineTest, CheckpointWithNoNewWritesDoesNotDoubleApply) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/x", Value(int64_t{1}), Seconds(1));
    engine->Checkpoint();
  }
  {
    auto engine = OpenLocal(dir.path);
    EXPECT_EQ(api::History(*engine, "/x")->versions.size(), 1u);
    engine->Checkpoint();  // Same LSN: must be a no-op, not a second snapshot.
    EXPECT_EQ(SnapshotFiles(dir.path).size(), 1u);
  }
  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(api::History(*engine, "/x")->versions.size(), 1u);
}

TEST(DurableEngineTest, CorruptNewestSnapshotFallsBackToOlder) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/f", Value(int64_t{1}), Seconds(1));
    engine->Checkpoint();
    api::Put(*engine, "/f", Value(int64_t{2}), Seconds(2));
    engine->Checkpoint();
    api::Put(*engine, "/f", Value(int64_t{3}), Seconds(3));
  }
  auto snaps = SnapshotFiles(dir.path);
  ASSERT_EQ(snaps.size(), 2u);
  // Tear the newest snapshot in half.
  const std::string newest = snaps.back();
  WriteFile(newest, ReadFile(newest).substr(0, ReadFile(newest).size() / 2));

  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 1u);  // Fell back.
  EXPECT_EQ(engine->recovery().replayed, 2u);      // Records 2 and 3.
  EXPECT_EQ(api::Get(*engine, "/f"), Value(int64_t{3}));
  EXPECT_EQ(api::History(*engine, "/f")->versions.size(), 3u);
}

TEST(DurableEngineTest, RefusesProvablyPartialRecovery) {
  // Checkpoint truncation deleted the early WAL segments trusting the
  // snapshot; if every snapshot then corrupts, the surviving log tail
  // cannot reconstruct records 1..N — recovery must refuse to boot a
  // silently partial store.
  TempDir dir;
  DurableOptions options;
  options.wal.segment_bytes = 256;  // Force rotation so truncation has prey.
  options.retained_snapshots = 1;
  {
    auto engine = OpenLocal(dir.path, options);
    for (int i = 0; i < 30; ++i) {
      api::Put(*engine, "/p/" + std::to_string(i), Value(int64_t{i}), Seconds(i + 1));
    }
    engine->Checkpoint();  // Truncates segments covered by the snapshot.
    api::Put(*engine, "/p/tail", Value(int64_t{99}), Seconds(40));
  }
  ASSERT_EQ(SnapshotFiles(dir.path).size(), 1u);
  const std::string snap = SnapshotFiles(dir.path).at(0);
  WriteFile(snap, "corrupt");
  EXPECT_THROW(OpenLocal(dir.path, options), Error);
}

TEST(DurableEngineTest, TornTailLosesOnlyTheTornRecord) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/t", Value(int64_t{1}), Seconds(1));
    api::Put(*engine, "/t", Value(int64_t{2}), Seconds(2));
  }
  // Simulate a crash mid-write: garbage where record 3 would be.
  const std::string segment = SegmentFiles(dir.path).at(0);
  WriteFile(segment, ReadFile(segment) + std::string("\x14\x00\x00\x00torn", 8));

  auto engine = OpenLocal(dir.path);
  EXPECT_GT(engine->recovery().dropped_bytes, 0u);
  EXPECT_EQ(engine->recovery().replayed, 2u);
  EXPECT_EQ(api::Get(*engine, "/t"), Value(int64_t{2}));
  // The log keeps working past the truncation.
  api::Put(*engine, "/t", Value(int64_t{3}), Seconds(3));
}

TEST(DurableEngineTest, CheckpointTruncatesCoveredWalSegments) {
  TempDir dir;
  DurableOptions options;
  options.wal.segment_bytes = 256;  // Force rotation quickly.
  options.retained_snapshots = 1;
  {
    auto engine = OpenLocal(dir.path, options);
    for (int i = 0; i < 30; ++i) {
      api::Put(*engine, "/k/" + std::to_string(i), Value(int64_t{i}), Seconds(i + 1));
    }
    const size_t before = SegmentFiles(dir.path).size();
    ASSERT_GT(before, 2u);
    engine->Checkpoint();
    EXPECT_LT(SegmentFiles(dir.path).size(), before);
  }
  auto engine = OpenLocal(dir.path, options);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(api::Get(*engine, "/k/" + std::to_string(i)), Value(int64_t{i}));
  }
}

TEST(DurableEngineTest, BatchMutationsAreDurableUnderEveryPolicy) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kOff, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    TempDir dir;
    DurableOptions options;
    options.wal.fsync = policy;
    {
      auto engine = OpenSharded(dir.path, options);
      std::vector<api::Command> batch;
      for (int i = 0; i < 8; ++i) {
        batch.push_back(api::PutCmd{"/b/" + std::to_string(i), Value(int64_t{i}), Seconds(i + 1)});
      }
      batch.push_back(api::GetCmd{"/b/0"});  // Read-only member: not logged.
      batch.push_back(api::DeleteCmd{"/b/3", Seconds(20), false});
      const auto results = engine->ApplyBatch(batch);
      ASSERT_EQ(results.size(), 10u);
      for (const auto& result : results) EXPECT_FALSE(api::IsError(result));
    }
    auto engine = OpenSharded(dir.path, options);
    for (int i = 0; i < 8; ++i) {
      if (i == 3) {
        EXPECT_EQ(api::Get(*engine, "/b/3"), std::nullopt);
      } else {
        EXPECT_EQ(api::Get(*engine, "/b/" + std::to_string(i)), Value(int64_t{i}));
      }
    }
  }
}

TEST(DurableEngineTest, CompactIsLoggedAndReplayed) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/c", Value(int64_t{1}), Seconds(1));
    api::Put(*engine, "/c", Value(int64_t{2}), Seconds(2));
    api::Put(*engine, "/c", Value(int64_t{3}), Seconds(3));
    EXPECT_EQ(api::Compact(*engine, Seconds(3)), 1u);
    EXPECT_EQ(api::History(*engine, "/c")->versions.size(), 2u);
  }
  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(api::History(*engine, "/c")->versions.size(), 2u);
  EXPECT_EQ(api::Get(*engine, "/c"), Value(int64_t{3}));
}

TEST(DurableEngineTest, ReadsAndErrorsAreNotLogged) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/r", Value(int64_t{1}), Seconds(1));
    api::Get(*engine, "/r");
    api::Get(*engine, "/r");
    engine->Apply(api::StatsCmd{});
    // A rejected mutation is logged (replay reproduces the same rejection
    // deterministically) but must not corrupt recovery.
    EXPECT_TRUE(api::IsError(engine->Apply(api::PutCmd{"", Value(int64_t{1}), Seconds(2)})));
    EXPECT_EQ(engine->wal().last_lsn(), 2u);  // The put + the rejected put; no reads.
  }
  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(api::Get(*engine, "/r"), Value(int64_t{1}));
  EXPECT_EQ(api::Stats(*engine).ttkv.num_keys, 1u);
}

TEST(DurableEngineTest, ShardedImportSnapshotMatchesLocalRecovery) {
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    for (int i = 0; i < 20; ++i) {
      api::Put(*engine, "/m/" + std::to_string(i % 5), Value(int64_t{i}), Seconds(i + 1));
    }
    engine->Checkpoint();
    api::Delete(*engine, "/m/0", Seconds(40));
  }
  // The same directory recovers through the sharded factory: snapshot split
  // across shards via ImportSnapshot, log tail replayed on top.
  auto sharded = OpenSharded(dir.path);
  auto local = OpenLocal(dir.path);
  const TTKV a = api::Snapshot(*sharded);
  const TTKV b = api::Snapshot(*local);
  ASSERT_EQ(a.num_keys(), b.num_keys());
  for (uint32_t id = 0; id < a.num_keys(); ++id) {
    const VersionedRecord& rec = a.record(id);
    const VersionedRecord* other = b.find(rec.key);
    ASSERT_NE(other, nullptr) << rec.key;
    EXPECT_EQ(rec.versions, other->versions) << rec.key;
    EXPECT_EQ(rec.write_count, other->write_count);
    EXPECT_EQ(rec.delete_count, other->delete_count);
  }
}

TEST(DurableEngineTest, FallsBackThroughEveryRetainedSnapshot) {
  // Recovery must walk EVERY retained snapshot newest-first, not just try
  // the newest and give up: with retained_snapshots = 3 and the two newest
  // generations corrupt, the oldest still anchors recovery and the log
  // replays the difference.
  TempDir dir;
  DurableOptions options;
  options.retained_snapshots = 3;
  {
    auto engine = OpenLocal(dir.path, options);
    api::Put(*engine, "/g", Value(int64_t{1}), Seconds(1));
    engine->Checkpoint();  // snap @ 1
    api::Put(*engine, "/g", Value(int64_t{2}), Seconds(2));
    engine->Checkpoint();  // snap @ 2
    api::Put(*engine, "/g", Value(int64_t{3}), Seconds(3));
    engine->Checkpoint();  // snap @ 3
    api::Put(*engine, "/g", Value(int64_t{4}), Seconds(4));
  }
  auto snaps = SnapshotFiles(dir.path);
  ASSERT_EQ(snaps.size(), 3u);
  WriteFile(snaps[2], "garbage");                                   // Newest: corrupt.
  WriteFile(snaps[1], ReadFile(snaps[1]).substr(0, 3));             // Middle: torn.

  auto engine = OpenLocal(dir.path, options);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 1u);  // Fell back twice.
  EXPECT_EQ(engine->recovery().replayed, 3u);      // Records 2, 3, 4.
  EXPECT_EQ(api::Get(*engine, "/g"), Value(int64_t{4}));
  EXPECT_EQ(api::History(*engine, "/g")->versions.size(), 4u);
}

TEST(DurableEngineTest, AllSnapshotsCorruptFallsBackToBareLogReplay) {
  // When every snapshot is unreadable but the log still reaches record 1,
  // nothing is actually lost: recovery must boot from an empty store and
  // replay the whole log instead of refusing (the refusal is reserved for
  // the provably-partial case where truncation already ate the head).
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);  // Default: big segments, nothing truncated.
    api::Put(*engine, "/b", Value(int64_t{1}), Seconds(1));
    engine->Checkpoint();
    api::Put(*engine, "/b", Value(int64_t{2}), Seconds(2));
    engine->Checkpoint();
    api::Put(*engine, "/b", Value(int64_t{3}), Seconds(3));
  }
  for (const std::string& snap : SnapshotFiles(dir.path)) WriteFile(snap, "corrupt");

  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 0u);  // No snapshot anchored.
  EXPECT_EQ(engine->recovery().replayed, 3u);      // The full log.
  EXPECT_EQ(api::Get(*engine, "/b"), Value(int64_t{3}));
  EXPECT_EQ(api::History(*engine, "/b")->versions.size(), 3u);
}

TEST(DurableEngineTest, StatsTotalsSurviveRestart) {
  // The stats contract (docs/DURABILITY.md): STATS presents LIFETIME
  // op-counter totals, so a checkpoint must persist them (OCDS header) and
  // recovery must baseline the fresh inner engine with them. Before the
  // wrapper, every restart silently reset puts/gets/deletes to zero.
  TempDir dir;
  {
    auto engine = OpenLocal(dir.path);
    api::Put(*engine, "/s/a", Value(int64_t{1}), Seconds(1));
    api::Put(*engine, "/s/b", Value(int64_t{2}), Seconds(2));
    api::Get(*engine, "/s/a");
    api::Get(*engine, "/s/a");
    api::Get(*engine, "/s/b");
    api::Delete(*engine, "/s/b", Seconds(3));
    engine->Checkpoint();
    // One more put AFTER the checkpoint: replayed from the log, so the
    // recovered total must be baseline + replay, not just the baseline.
    api::Put(*engine, "/s/c", Value(int64_t{3}), Seconds(4));
  }
  auto engine = OpenLocal(dir.path);
  const EngineStats stats = api::Stats(*engine);
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.gets, 3u);
  EXPECT_EQ(stats.deletes, 1u);

  // And the counters keep counting from there.
  api::Put(*engine, "/s/d", Value(int64_t{4}), Seconds(5));
  api::Get(*engine, "/s/a");
  const EngineStats after = api::Stats(*engine);
  EXPECT_EQ(after.puts, 4u);
  EXPECT_EQ(after.gets, 4u);
}

TEST(DurableEngineTest, DurableSnapshotCodecRoundTripsAndReadsLegacyImages) {
  DurableSnapshot snap;
  snap.puts = 7;
  snap.gets = 11;
  snap.deletes = 2;
  snap.ttkv.record_write("/c/k", Value("v"), Seconds(1));
  const DurableSnapshot decoded = DecodeDurableSnapshot(EncodeDurableSnapshot(snap));
  EXPECT_EQ(decoded.puts, 7u);
  EXPECT_EQ(decoded.gets, 11u);
  EXPECT_EQ(decoded.deletes, 2u);
  EXPECT_EQ(decoded.ttkv.Serialize(), snap.ttkv.Serialize());

  // A pre-wrapper file is the bare TTKV image: readable, totals unknown.
  const DurableSnapshot legacy = DecodeDurableSnapshot(snap.ttkv.Serialize());
  EXPECT_EQ(legacy.puts, 0u);
  EXPECT_EQ(legacy.ttkv.Serialize(), snap.ttkv.Serialize());
}

TEST(DurableEngineTest, LegacyBareSnapshotFileStillAnchorsRecovery) {
  // A data dir written before the OCDS wrapper holds bare TTKV images;
  // they must keep loading (with zero baselines) rather than bricking the
  // store on upgrade.
  TempDir dir;
  TTKV image;
  image.record_write("/old/key", Value("survives"), Seconds(1));
  image.record_write("/old/key2", Value(int64_t{5}), Seconds(2));
  char name[64];
  std::snprintf(name, sizeof(name), "snap-%020llu.ttkv", 2ull);
  WriteFile(dir.path + "/" + name, image.Serialize());

  auto engine = OpenLocal(dir.path);
  EXPECT_EQ(engine->recovery().snapshot_lsn, 2u);
  EXPECT_EQ(api::Get(*engine, "/old/key"), Value("survives"));
  EXPECT_EQ(api::Stats(*engine).puts, 0u);  // Totals unknown for legacy images.

  // New writes append past the legacy seam.
  api::Put(*engine, "/new/key", Value(int64_t{9}), Seconds(3));
  EXPECT_EQ(api::Stats(*engine).puts, 1u);
}

TEST(DurableEngineTest, BackendNameAndPassThroughs) {
  TempDir dir;
  auto engine = OpenLocal(dir.path);
  EXPECT_STREQ(engine->backend_name(), "durable");
  EXPECT_FALSE(api::IsError(engine->Apply(api::PingCmd{})));
  EXPECT_FALSE(api::IsError(engine->Apply(api::ShutdownCmd{})));
  EXPECT_TRUE(api::ListKeys(*engine).empty());
}

}  // namespace
}  // namespace persist
}  // namespace ocasta
