// Exhaustive protocol-v2 codec tests: every Command and Result alternative
// must round-trip byte-exactly, and corrupt payloads — every-prefix
// truncation, bad tags, oversized counts, over-deep batches, trailing
// bytes — must raise ParseError instead of crashing, hanging, or silently
// mis-decoding (mirroring the TTKV::Deserialize corruption suite).
#include "api/codec.h"

#include <gtest/gtest.h>

#include "api/engine.h"
#include "ttkv/serialize.h"

namespace ocasta {
namespace api {
namespace {

// One of each command, with bodies exercising every field.
std::vector<Command> SampleCommands() {
  std::vector<Command> cmds;
  cmds.push_back(PingCmd{});
  cmds.push_back(PutCmd{"/apps/a", Value("text"), Seconds(1)});
  cmds.push_back(PutCmd{"/apps/b", Value(std::vector<std::string>{"x", "y"}), 0});
  cmds.push_back(DeleteCmd{"/apps/a", Seconds(2), false});
  cmds.push_back(DeleteCmd{"/apps/gone", Seconds(3), true});
  cmds.push_back(GetCmd{"/apps/a"});
  cmds.push_back(GetAtCmd{"/apps/a", Seconds(4)});
  cmds.push_back(HistoryCmd{"/apps/a"});
  cmds.push_back(ListKeysCmd{"/apps/"});
  cmds.push_back(StatsCmd{});
  cmds.push_back(SnapshotCmd{});
  cmds.push_back(CompactCmd{Seconds(5)});
  cmds.push_back(ClusterNowCmd{1.5, Linkage::kAverage});
  cmds.push_back(ShutdownCmd{});
  BatchCmd batch;
  batch.commands.push_back(PutCmd{"/batch/a", Value(7), Seconds(6)});
  batch.commands.push_back(GetCmd{"/batch/a"});
  BatchCmd nested;
  nested.commands.push_back(PingCmd{});
  batch.commands.push_back(std::move(nested));
  cmds.push_back(std::move(batch));
  cmds.push_back(ReplicateCmd{"follower-1", 7, 128});
  cmds.push_back(ReplicateCmd{"", 0, 0});  // Anonymous status probe.
  cmds.push_back(PromoteCmd{});
  return cmds;
}

TTKV SampleTtkv() {
  TTKV ttkv;
  ttkv.record_write("/snap/a", Value(1), Seconds(1));
  ttkv.record_write("/snap/b", Value("two"), Seconds(2));
  ttkv.record_delete("/snap/a", Seconds(3));
  return ttkv;
}

// GCC 12's -Wmaybe-uninitialized misfires on the monostate variant inside
// none-Value temporaries at -O2 (GCC PR105562), same as TTKV::record_delete.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
// One of each result, with bodies exercising every field.
std::vector<Result> SampleResults() {
  std::vector<Result> results;
  results.push_back(OkResult{});
  results.push_back(ErrorResult{"something broke"});
  results.push_back(ExistedResult{true});
  results.push_back(ValueResult{});
  results.push_back(ValueResult{Value(3.25)});
  VersionedRecord rec;
  rec.key = "/hist/key";
  rec.write_count = 2;
  rec.delete_count = 1;
  rec.read_count = 9;
  rec.versions.push_back(Version{Seconds(1), Value(true), false});
  rec.versions.push_back(Version{Seconds(2), Value(), true});
  results.push_back(HistoryResult{std::move(rec)});
  results.push_back(HistoryResult{});
  results.push_back(KeysResult{{"/k/a", "/k/b"}});
  EngineStats stats;
  stats.ttkv = TtkvStats{.reads = 1, .writes = 2, .deletes = 3, .num_keys = 4, .size_bytes = 5};
  stats.num_shards = 6;
  stats.puts = 7;
  stats.gets = 8;
  stats.deletes = 9;
  stats.lock_acquisitions = 10;
  stats.read_lock_acquisitions = 4;
  stats.write_lock_acquisitions = 6;
  results.push_back(StatsResult{stats});
  results.push_back(SnapshotResult{SampleTtkv()});
  results.push_back(CompactResult{11});
  ClustersResult clusters;
  clusters.clusters.push_back(NamedCluster{{"/c/a", "/c/b"}, 12, Seconds(7)});
  results.push_back(std::move(clusters));
  BatchResult batch;
  batch.results.push_back(OkResult{});
  batch.results.push_back(ErrorResult{"inner"});
  batch.results.push_back(ValueResult{Value(1)});
  results.push_back(std::move(batch));
  results.push_back(NotLeaderResult{"127.0.0.1", 7341});
  results.push_back(NotLeaderResult{});  // Follower with no known leader address.
  ReplicateResult tail;  // Log-tail variant, served by a follower.
  tail.leader_lsn = 42;
  tail.follower = true;
  tail.records.push_back(ReplicateResult::Entry{41, "put-bytes"});
  tail.records.push_back(ReplicateResult::Entry{42, "delete-bytes"});
  results.push_back(std::move(tail));
  ReplicateResult seed;  // Snapshot-bootstrap variant.
  seed.leader_lsn = 99;
  seed.snapshot_lsn = 99;
  seed.snapshot = "durable-snapshot-image";
  results.push_back(std::move(seed));
  return results;
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// Structural equality via re-encoding: the codec is deterministic, so two
// values that encode identically are identical.
void ExpectCommandRoundTrip(const Command& cmd) {
  const std::string bytes = EncodeCommand(cmd);
  const Command decoded = DecodeCommand(bytes);
  EXPECT_EQ(decoded.op.index(), cmd.op.index()) << CommandName(cmd);
  EXPECT_EQ(EncodeCommand(decoded), bytes) << CommandName(cmd);
}

void ExpectResultRoundTrip(const Result& result) {
  const std::string bytes = EncodeResult(result);
  const Result decoded = DecodeResult(bytes);
  EXPECT_EQ(decoded.op.index(), result.op.index());
  EXPECT_EQ(EncodeResult(decoded), bytes);
}

TEST(ApiCodec, EveryCommandRoundTrips) {
  for (const Command& cmd : SampleCommands()) ExpectCommandRoundTrip(cmd);
}

TEST(ApiCodec, EveryResultRoundTrips) {
  for (const Result& result : SampleResults()) ExpectResultRoundTrip(result);
}

TEST(ApiCodec, PutRoundTripsAllValueTypes) {
  const std::vector<Value> values = {
      Value(), Value(true), Value(static_cast<int64_t>(-7)), Value(3.25), Value("text"),
      Value(std::vector<std::string>{"a", "b", "c"})};
  for (const Value& value : values) {
    const Command cmd = PutCmd{"/typed", value, Seconds(1)};
    const Command decoded = DecodeCommand(EncodeCommand(cmd));
    EXPECT_EQ(std::get<PutCmd>(decoded.op).value, value);
  }
}

TEST(ApiCodec, DeleteForceBitRoundTrips) {
  for (const bool force : {false, true}) {
    const Command decoded = DecodeCommand(EncodeCommand(DeleteCmd{"/d", Seconds(1), force}));
    EXPECT_EQ(std::get<DeleteCmd>(decoded.op).force, force);
  }
}

// Truncating any message at ANY byte boundary must raise ParseError —
// never crash, hang, or silently return a partial decode.
TEST(ApiCodec, EveryCommandPrefixTruncationRejected) {
  for (const Command& cmd : SampleCommands()) {
    const std::string bytes = EncodeCommand(cmd);
    for (size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_THROW(DecodeCommand(bytes.substr(0, n)), ParseError)
          << CommandName(cmd) << " prefix length " << n;
    }
  }
}

TEST(ApiCodec, EveryResultPrefixTruncationRejected) {
  for (const Result& result : SampleResults()) {
    const std::string bytes = EncodeResult(result);
    for (size_t n = 0; n < bytes.size(); ++n) {
      EXPECT_THROW(DecodeResult(bytes.substr(0, n)), ParseError)
          << "result index " << result.op.index() << " prefix length " << n;
    }
  }
}

TEST(ApiCodec, TrailingBytesRejected) {
  for (const Command& cmd : SampleCommands()) {
    EXPECT_THROW(DecodeCommand(EncodeCommand(cmd) + "x"), ParseError) << CommandName(cmd);
  }
  for (const Result& result : SampleResults()) {
    EXPECT_THROW(DecodeResult(EncodeResult(result) + "x"), ParseError);
  }
}

TEST(ApiCodec, BadTagsRejected) {
  EXPECT_THROW(DecodeCommand(std::string(1, '\x63')), ParseError);
  EXPECT_THROW(DecodeCommand(std::string(1, '\x00')), ParseError);
  EXPECT_THROW(DecodeResult(std::string(1, '\x63')), ParseError);
  EXPECT_THROW(DecodeCommand(""), ParseError);
  EXPECT_THROW(DecodeResult(""), ParseError);
}

TEST(ApiCodec, BadValueTagInsidePutRejected) {
  std::string bytes = EncodeCommand(Command(PutCmd{"/k", Value(true), Seconds(1)}));
  // The value is encoded last: tag byte then the bool payload byte.
  bytes[bytes.size() - 2] = '\x2a';
  EXPECT_THROW(DecodeCommand(bytes), ParseError);
}

TEST(ApiCodec, BadLinkageCodeRejected) {
  std::string bytes = EncodeCommand(Command(ClusterNowCmd{2.0, Linkage::kComplete}));
  bytes.back() = '\x07';  // Linkage byte is last.
  EXPECT_THROW(DecodeCommand(bytes), ParseError);
}

TEST(ApiCodec, OversizedBatchCountRejected) {
  // BATCH claiming 2^32-1 commands with no bodies: must fail on truncation
  // without attempting a giant allocation.
  BinaryWriter w;
  w.u8(static_cast<uint8_t>(OpTag::kBatch));
  w.u32(0xffffffffu);
  EXPECT_THROW(DecodeCommand(w.take()), ParseError);
}

TEST(ApiCodec, OverDeepBatchRejectedBothWays) {
  // Encode side: a programmatically built over-deep batch is refused.
  Command cmd = PingCmd{};
  for (size_t i = 0; i < kMaxBatchDepth + 1; ++i) {
    BatchCmd wrapper;
    wrapper.commands.push_back(std::move(cmd));
    cmd = std::move(wrapper);
  }
  EXPECT_THROW(EncodeCommand(cmd), Error);

  // Decode side: hand-built nested BATCH bytes beyond the cap are refused.
  BinaryWriter w;
  for (size_t i = 0; i < kMaxBatchDepth + 1; ++i) {
    w.u8(static_cast<uint8_t>(OpTag::kBatch));
    w.u32(1);
  }
  w.u8(static_cast<uint8_t>(OpTag::kPing));
  EXPECT_THROW(DecodeCommand(w.take()), ParseError);
}

TEST(ApiCodec, BatchRequestSpanEncodingMatchesBatchCmd) {
  BatchCmd batch;
  batch.commands.push_back(PutCmd{"/s/a", Value(1), Seconds(1)});
  batch.commands.push_back(GetCmd{"/s/a"});
  batch.commands.push_back(DeleteCmd{"/s/a", Seconds(2), true});
  EXPECT_EQ(EncodeBatchRequest(std::span(batch.commands)), EncodeCommand(Command(batch)));
}

TEST(ApiCodec, MaxDepthBatchStillDecodes) {
  Command cmd = PingCmd{};
  for (size_t i = 0; i < kMaxBatchDepth; ++i) {
    BatchCmd wrapper;
    wrapper.commands.push_back(std::move(cmd));
    cmd = std::move(wrapper);
  }
  ExpectCommandRoundTrip(cmd);
}

TEST(ApiCodec, HelloRoundTrip) {
  const std::string request = EncodeHello(kProtocolVersion);
  EXPECT_TRUE(IsHelloRequest(request));
  EXPECT_FALSE(IsHelloRequest(EncodeCommand(Command(PingCmd{}))));
  EXPECT_FALSE(IsHelloRequest(""));
  EXPECT_EQ(DecodeHello(request), kProtocolVersion);
  EXPECT_THROW(DecodeHello(request + "x"), ParseError);
  EXPECT_THROW(DecodeHello(request.substr(0, 3)), ParseError);

  const std::string reply = EncodeHelloReply(kProtocolVersion);
  EXPECT_EQ(DecodeHelloReply(reply), kProtocolVersion);
  EXPECT_THROW(DecodeHelloReply(reply + "x"), ParseError);
  // An error reply to HELLO (version rejected) surfaces as StoreError.
  EXPECT_THROW(DecodeHelloReply(EncodeResult(Result(ErrorResult{"too old"}))), StoreError);
  // A HELLO reply is not a generic Result.
  EXPECT_THROW(DecodeResult(reply), ParseError);
}

TEST(ApiCodec, SnapshotResultCarriesFullTtkv) {
  const TTKV original = SampleTtkv();
  const Result decoded = DecodeResult(EncodeResult(Result(SnapshotResult{original})));
  const TTKV& snapshot = std::get<SnapshotResult>(decoded.op).snapshot;
  EXPECT_EQ(snapshot, original);
}

TEST(ApiCodec, HistoryResultPreservesRecord) {
  VersionedRecord rec;
  rec.key = "/h";
  rec.write_count = 1;
  rec.versions.push_back(Version{Seconds(1), Value("v"), false});
  const Result decoded = DecodeResult(EncodeResult(Result(HistoryResult{rec})));
  const auto& roundtripped = std::get<HistoryResult>(decoded.op).record;
  ASSERT_TRUE(roundtripped.has_value());
  EXPECT_EQ(roundtripped->key, "/h");
  ASSERT_EQ(roundtripped->versions.size(), 1u);
  EXPECT_EQ(roundtripped->versions[0].value, Value("v"));
}

}  // namespace
}  // namespace api
}  // namespace ocasta
