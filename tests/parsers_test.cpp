#include <gtest/gtest.h>

#include "common/error.h"
#include "parsers/codec.h"
#include "parsers/config_map.h"
#include "parsers/ini.h"
#include "parsers/json.h"
#include "parsers/plaintext.h"
#include "parsers/pskv.h"
#include "parsers/xml.h"

namespace ocasta {
namespace {

// ----- DiffConfigMaps ------------------------------------------------------------

TEST(DiffConfigMaps, DetectsWritesAndDeletes) {
  const ConfigMap before{{"a", Value(1)}, {"b", Value(2)}, {"c", Value(3)}};
  const ConfigMap after{{"a", Value(1)}, {"b", Value(9)}, {"d", Value(4)}};
  const auto deltas = DiffConfigMaps(before, after);
  ASSERT_EQ(deltas.size(), 3u);
  EXPECT_EQ(deltas[0], (ConfigDelta{ConfigDelta::Kind::kWrite, "b", Value(9)}));
  EXPECT_EQ(deltas[1].kind, ConfigDelta::Kind::kDelete);
  EXPECT_EQ(deltas[1].key, "c");
  EXPECT_EQ(deltas[2], (ConfigDelta{ConfigDelta::Kind::kWrite, "d", Value(4)}));
}

TEST(DiffConfigMaps, IdenticalMapsProduceNothing) {
  const ConfigMap m{{"a", Value("x")}};
  EXPECT_TRUE(DiffConfigMaps(m, m).empty());
  EXPECT_TRUE(DiffConfigMaps({}, {}).empty());
}

TEST(InferScalar, TypesHeuristically) {
  EXPECT_EQ(InferScalar("true"), Value(true));
  EXPECT_EQ(InferScalar("false"), Value(false));
  EXPECT_EQ(InferScalar("-42"), Value(-42));
  EXPECT_EQ(InferScalar("+7"), Value(7));
  EXPECT_EQ(InferScalar("2.5"), Value(2.5));
  EXPECT_EQ(InferScalar("1e3"), Value(1000.0));
  EXPECT_EQ(InferScalar("hello"), Value("hello"));
  EXPECT_EQ(InferScalar(""), Value(""));
  EXPECT_EQ(InferScalar("12abc"), Value("12abc"));
}

// ----- INI ------------------------------------------------------------------------

TEST(Ini, ParsesSectionsAndComments) {
  const std::string text =
      "; comment\n"
      "top = 1\n"
      "[view]\n"
      "zoom = 1.5\n"
      "visible = true\n"
      "# another comment\n"
      "[editor]\n"
      "font = Courier New\n";
  const ConfigMap map = IniCodec().Parse(text);
  EXPECT_EQ(map.at("top"), Value(1));
  EXPECT_EQ(map.at("view/zoom"), Value(1.5));
  EXPECT_EQ(map.at("view/visible"), Value(true));
  EXPECT_EQ(map.at("editor/font"), Value("Courier New"));
  EXPECT_EQ(map.size(), 4u);
}

TEST(Ini, MalformedInputThrows) {
  EXPECT_THROW(IniCodec().Parse("[unclosed\n"), ParseError);
  EXPECT_THROW(IniCodec().Parse("no equals sign\n"), ParseError);
  EXPECT_THROW(IniCodec().Parse("= empty key\n"), ParseError);
}

// ----- Round-trip property across codecs --------------------------------------------

ConfigMap ScalarSample() {
  // Single top-level segment so the XML codec (one root element) can
  // represent it too.
  return {{"app/alpha/enabled", Value(true)},
          {"app/alpha/size", Value(42)},
          {"app/alpha/name", Value("hello world")},
          {"app/beta/ratio", Value(2.5)},
          {"app/beta/off", Value(false)}};
}

class ScalarRoundTripTest : public ::testing::TestWithParam<ConfigFormat> {};

TEST_P(ScalarRoundTripTest, ParseSerializeIdentity) {
  const FormatCodec& codec = CodecFor(GetParam());
  const ConfigMap original = ScalarSample();
  const std::string text = codec.Serialize(original);
  EXPECT_EQ(codec.Parse(text), original) << "format " << FormatName(GetParam()) << "\n" << text;
  // Serialize(Parse(Serialize(m))) is stable.
  EXPECT_EQ(codec.Serialize(codec.Parse(text)), text);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, ScalarRoundTripTest,
                         ::testing::Values(ConfigFormat::kIni, ConfigFormat::kPlainText,
                                           ConfigFormat::kJson, ConfigFormat::kXml,
                                           ConfigFormat::kPskv),
                         [](const auto& info) { return FormatName(info.param); });

class ListRoundTripTest : public ::testing::TestWithParam<ConfigFormat> {};

TEST_P(ListRoundTripTest, StringListsSurvive) {
  const FormatCodec& codec = CodecFor(GetParam());
  const ConfigMap original{{"mru/items", Value(std::vector<std::string>{"a.doc", "b (draft).doc"})},
                           {"mru/max", Value(9)}};
  EXPECT_EQ(codec.Parse(codec.Serialize(original)), original);
}

// JSON and PSKV support native string arrays (the formats our list-bearing
// applications use); INI/plain-text apps only store scalars.
INSTANTIATE_TEST_SUITE_P(ListFormats, ListRoundTripTest,
                         ::testing::Values(ConfigFormat::kJson, ConfigFormat::kPskv),
                         [](const auto& info) { return FormatName(info.param); });

// ----- JSON -------------------------------------------------------------------------

TEST(Json, ParsesNestingAndTypes) {
  const std::string text = R"({
    "browser": {"show_home_button": true, "zoom": 1.25},
    "session": {"restore_on_startup": 4, "urls": ["a", "b"]},
    "tabs": [{"url": "x"}, {"url": "y"}],
    "profile": null
  })";
  const ConfigMap map = JsonCodec().Parse(text);
  EXPECT_EQ(map.at("browser/show_home_button"), Value(true));
  EXPECT_EQ(map.at("browser/zoom"), Value(1.25));
  EXPECT_EQ(map.at("session/restore_on_startup"), Value(4));
  EXPECT_EQ(map.at("session/urls"), Value(std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(map.at("tabs/0/url"), Value("x"));
  EXPECT_EQ(map.at("tabs/1/url"), Value("y"));
  EXPECT_EQ(map.at("profile"), Value());
}

TEST(Json, StringEscapes) {
  const ConfigMap map = JsonCodec().Parse(R"({"k": "line\nbreak \"q\" A\t\\"})");
  EXPECT_EQ(map.at("k"), Value("line\nbreak \"q\" A\t\\"));
}

TEST(Json, SerializeEscapesControlCharacters) {
  const ConfigMap map{{"k", Value("a\nb\"c\\d")}};
  const std::string text = JsonCodec().Serialize(map);
  EXPECT_EQ(JsonCodec().Parse(text), map);
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(JsonCodec().Parse("{"), ParseError);
  EXPECT_THROW(JsonCodec().Parse(R"({"a": })"), ParseError);
  EXPECT_THROW(JsonCodec().Parse(R"({"a": 1} trailing)"), ParseError);
  EXPECT_THROW(JsonCodec().Parse(R"({"a": truish})"), ParseError);
  EXPECT_THROW(JsonCodec().Parse(R"({"a": "unterminated)"), ParseError);
}

TEST(Json, ErrorsCarryLineNumbers) {
  try {
    JsonCodec().Parse("{\n  \"a\": 1,\n  \"b\": }\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

// ----- XML ---------------------------------------------------------------------------

TEST(Xml, ParsesElementsAttributesAndText) {
  const std::string text = R"(<?xml version="1.0"?>
<!-- prefs -->
<config>
  <view zoom="1.5"><mode>fit</mode></view>
  <flags>true</flags>
  <empty/>
</config>)";
  const ConfigMap map = XmlCodec().Parse(text);
  EXPECT_EQ(map.at("config/view@zoom"), Value(1.5));
  EXPECT_EQ(map.at("config/view/mode"), Value("fit"));
  EXPECT_EQ(map.at("config/flags"), Value(true));
  EXPECT_EQ(map.count("config/empty"), 0u);  // Empty element: no value.
}

TEST(Xml, RepeatedSiblingsGetIndexes) {
  const ConfigMap map = XmlCodec().Parse("<l><item>a</item><item>b</item><only>c</only></l>");
  EXPECT_EQ(map.at("l/item#0"), Value("a"));
  EXPECT_EQ(map.at("l/item#1"), Value("b"));
  EXPECT_EQ(map.at("l/only"), Value("c"));
}

TEST(Xml, EntityDecodingAndEncoding) {
  const ConfigMap map = XmlCodec().Parse("<c><k>a &amp; b &lt;tag&gt; &quot;q&quot;</k></c>");
  EXPECT_EQ(map.at("c/k"), Value("a & b <tag> \"q\""));
  EXPECT_EQ(XmlCodec().Parse(XmlCodec().Serialize(map)), map);
}

TEST(Xml, MalformedInputThrows) {
  EXPECT_THROW(XmlCodec().Parse("<a><b></a></b>"), ParseError);
  EXPECT_THROW(XmlCodec().Parse("<a>"), ParseError);
  EXPECT_THROW(XmlCodec().Parse("<a>text<b>x</b></a>"), ParseError);  // Mixed content.
  EXPECT_THROW(XmlCodec().Parse("<a attr=noquotes></a>"), ParseError);
}

TEST(Xml, SerializeRequiresSingleRoot) {
  EXPECT_THROW(XmlCodec().Serialize({{"a", Value(1)}, {"b", Value(2)}}), ParseError);
}

// ----- PSKV -------------------------------------------------------------------------

TEST(Pskv, ParsesAdobeStylePreferences) {
  const std::string text = R"(% Acrobat preferences
/ShowMenuBar true def
/ZoomScale 1.25 def
/RecentFiles [(a.pdf) (b \(draft\).pdf)] def
/AVGeneral << /toolbar << /visible false /mode (compact) >> /count 3 >> def
)";
  const ConfigMap map = PskvCodec().Parse(text);
  EXPECT_EQ(map.at("ShowMenuBar"), Value(true));
  EXPECT_EQ(map.at("ZoomScale"), Value(1.25));
  EXPECT_EQ(map.at("RecentFiles"), Value(std::vector<std::string>{"a.pdf", "b (draft).pdf"}));
  EXPECT_EQ(map.at("AVGeneral/toolbar/visible"), Value(false));
  EXPECT_EQ(map.at("AVGeneral/toolbar/mode"), Value("compact"));
  EXPECT_EQ(map.at("AVGeneral/count"), Value(3));
}

TEST(Pskv, MalformedInputThrows) {
  EXPECT_THROW(PskvCodec().Parse("/key (unterminated"), ParseError);
  EXPECT_THROW(PskvCodec().Parse("/key notanumber def"), ParseError);
  EXPECT_THROW(PskvCodec().Parse("/key 1 wrongword"), ParseError);
  EXPECT_THROW(PskvCodec().Parse("/key [1 2] def"), ParseError);  // Non-string array.
}

TEST(Pskv, StringEscapesRoundTrip) {
  const ConfigMap map{{"k", Value("parens () and \\ backslash")}};
  EXPECT_EQ(PskvCodec().Parse(PskvCodec().Serialize(map)), map);
}

// ----- Codec registry -----------------------------------------------------------------

TEST(CodecRegistry, ReturnsMatchingFormat) {
  for (ConfigFormat format : {ConfigFormat::kIni, ConfigFormat::kPlainText, ConfigFormat::kJson,
                              ConfigFormat::kXml, ConfigFormat::kPskv}) {
    EXPECT_EQ(CodecFor(format).format(), format);
  }
}

}  // namespace
}  // namespace ocasta
