// Behavioral tests for the api::Engine backends: LocalEngine end-to-end,
// the DeleteCmd force/suppress policy on both in-process engines, batch
// ordering and error isolation, and the ShardedTtkv grouped-locking fast
// path (a BatchCmd must cost at most num_shards lock acquisitions instead
// of one per command).
#include "api/engine.h"

#include <gtest/gtest.h>

#include "api/backends.h"
#include "api/local_engine.h"
#include "common/time.h"
#include "server/sharded_ttkv.h"

namespace ocasta {
namespace {

using api::BatchCmd;
using api::Command;
using api::DeleteCmd;
using api::GetCmd;
using api::PutCmd;
using api::Result;

TEST(LocalEngine, FullCommandVocabulary) {
  api::LocalEngine engine;
  EXPECT_STREQ(engine.backend_name(), "local");
  api::Ping(engine);

  api::Put(engine, "/app/shell", Value("zsh"), Seconds(1));
  api::Put(engine, "/app/shell", Value("bash"), Seconds(2));
  api::Put(engine, "/app/cols", Value(80), Seconds(3));
  EXPECT_EQ(api::Get(engine, "/app/shell"), Value("bash"));
  EXPECT_EQ(api::GetAt(engine, "/app/shell", Seconds(1)), Value("zsh"));
  EXPECT_EQ(api::Get(engine, "/nope"), std::nullopt);

  EXPECT_TRUE(api::Delete(engine, "/app/cols", Seconds(4)));
  EXPECT_EQ(api::ListKeys(engine, "/app/"), (std::vector<std::string>{"/app/shell"}));

  const auto record = api::History(engine, "/app/shell");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->write_count, 2u);

  const EngineStats stats = api::Stats(engine);
  EXPECT_EQ(stats.num_shards, 1u);
  EXPECT_EQ(stats.puts, 3u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.ttkv.num_keys, 2u);

  const TTKV snapshot = api::Snapshot(engine);
  EXPECT_EQ(snapshot.num_keys(), 2u);
  EXPECT_EQ(snapshot.latest("/app/shell"), Value("bash"));

  EXPECT_EQ(api::Compact(engine, Seconds(10)), 2u);  // Old shell + tombstoned cols versions.
  api::Shutdown(engine);                             // No-op for in-process engines.
}

TEST(LocalEngine, ClusterNowRunsOfflinePipeline) {
  api::LocalEngine engine(api::LocalEngine::Options{.cluster_window_seconds = 1.0});
  for (int burst = 0; burst < 3; ++burst) {
    const TimeMicros t = Seconds(100 * (burst + 1));
    api::Put(engine, "net/a", Value(burst), t);
    api::Put(engine, "net/b", Value(burst), t + Seconds(0.3));
  }
  const auto clusters = api::ClusterNow(engine, 1.5);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].keys, (std::vector<std::string>{"net/a", "net/b"}));
}

TEST(LocalEngine, AdoptsExistingTtkv) {
  TTKV seed;
  seed.record_write("/seed/key", Value(7), Seconds(1));
  api::LocalEngine engine(std::move(seed));
  EXPECT_EQ(api::Get(engine, "/seed/key"), Value(7));
}

TEST(LocalEngine, ServerAssignedTimestampsAreMonotonic) {
  api::LocalEngine engine;
  api::Put(engine, "/mono", Value(1));
  api::Put(engine, "/mono", Value(2));
  const auto record = api::History(engine, "/mono");
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->versions.size(), 2u);
  EXPECT_LT(record->versions[0].timestamp, record->versions[1].timestamp);
}

// --- DeleteCmd force/suppress policy, on both in-process engines ------------

void ExerciseDeletePolicy(api::Engine& engine) {
  // Suppressed path (force = false): absent keys record nothing.
  EXPECT_FALSE(api::Delete(engine, "/del/absent", Seconds(1)));
  EXPECT_EQ(api::History(engine, "/del/absent"), std::nullopt);

  // Live key: tombstoned either way; a second non-force delete is a no-op.
  api::Put(engine, "/del/live", Value(1), Seconds(1));
  EXPECT_TRUE(api::Delete(engine, "/del/live", Seconds(2)));
  EXPECT_FALSE(api::Delete(engine, "/del/live", Seconds(3)));
  {
    const auto record = api::History(engine, "/del/live");
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->delete_count, 1u);
    EXPECT_EQ(record->versions.size(), 2u);  // Write + one tombstone.
  }

  // Forced path: records unconditionally — even for a never-seen key...
  EXPECT_FALSE(api::Delete(engine, "/del/forced-absent", Seconds(4), /*force=*/true));
  {
    const auto record = api::History(engine, "/del/forced-absent");
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->delete_count, 1u);
    EXPECT_EQ(record->write_count, 0u);
  }
  // ...and even when already tombstoned (trace replay keeps every event).
  EXPECT_FALSE(api::Delete(engine, "/del/live", Seconds(5), /*force=*/true));
  {
    const auto record = api::History(engine, "/del/live");
    ASSERT_TRUE(record.has_value());
    EXPECT_EQ(record->delete_count, 2u);
    EXPECT_EQ(record->versions.size(), 3u);
  }
}

TEST(DeletePolicy, LocalEngine) {
  api::LocalEngine engine;
  ExerciseDeletePolicy(engine);
}

TEST(DeletePolicy, ShardedTtkv) {
  ShardedTtkv engine(4);
  ExerciseDeletePolicy(engine);
}

TEST(DeletePolicy, ShardedTypedMethodMatchesCommandPath) {
  ShardedTtkv engine(4);
  engine.Put("/typed", Value(1), Seconds(1));
  EXPECT_TRUE(engine.Delete("/typed", Seconds(2)));
  EXPECT_FALSE(engine.Delete("/typed", Seconds(3)));             // Suppressed.
  EXPECT_FALSE(engine.Delete("/typed", Seconds(4), /*force=*/true));  // Recorded.
  const auto record = engine.History("/typed");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->delete_count, 2u);
}

// --- Batch semantics --------------------------------------------------------

void ExerciseBatchSemantics(api::Engine& engine) {
  BatchCmd batch;
  batch.commands.push_back(PutCmd{"/b/k", Value("v1"), Seconds(1)});
  batch.commands.push_back(PutCmd{"/b/k", Value("v2"), Seconds(2)});  // Same key: ordered.
  batch.commands.push_back(GetCmd{"/b/k"});
  batch.commands.push_back(PutCmd{"", Value(0), 0});  // Fails alone.
  batch.commands.push_back(api::StatsCmd{});          // Cross-shard barrier mid-batch.
  batch.commands.push_back(DeleteCmd{"/b/k", Seconds(3), false});

  const std::vector<Result> results = engine.ApplyBatch(std::span(batch.commands));
  ASSERT_EQ(results.size(), 6u);
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(results[0].op));
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(results[1].op));
  EXPECT_EQ(std::get<api::ValueResult>(results[2].op).value, Value("v2"));
  EXPECT_TRUE(std::holds_alternative<api::ErrorResult>(results[3].op));
  const EngineStats mid = std::get<api::StatsResult>(results[4].op).stats;
  EXPECT_EQ(mid.puts, 2u);  // The barrier observes every put before it.
  EXPECT_TRUE(std::get<api::ExistedResult>(results[5].op).existed);

  // Per-key version order survived the grouped execution.
  const auto record = api::History(engine, "/b/k");
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->versions.size(), 3u);
  EXPECT_EQ(record->versions[0].value, Value("v1"));
  EXPECT_EQ(record->versions[1].value, Value("v2"));
  EXPECT_TRUE(record->versions[2].is_delete);
}

TEST(BatchSemantics, LocalEngine) {
  api::LocalEngine engine;
  ExerciseBatchSemantics(engine);
}

TEST(BatchSemantics, ShardedTtkv) {
  ShardedTtkv engine(4);
  ExerciseBatchSemantics(engine);
}

TEST(BatchSemantics, NestedBatchViaApply) {
  ShardedTtkv engine(4);
  BatchCmd inner;
  inner.commands.push_back(PutCmd{"/nest/a", Value(1), Seconds(1)});
  BatchCmd outer;
  outer.commands.push_back(std::move(inner));
  outer.commands.push_back(GetCmd{"/nest/a"});
  const auto result = api::Expect<api::BatchResult>(engine.Apply(outer), "BATCH");
  ASSERT_EQ(result.results.size(), 2u);
  const auto& inner_result = std::get<api::BatchResult>(result.results[0].op);
  ASSERT_EQ(inner_result.results.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<api::OkResult>(inner_result.results[0].op));
  EXPECT_EQ(std::get<api::ValueResult>(result.results[1].op).value, Value(1));
}

// The point of the batched fast path: K single-key commands grouped into
// one BatchCmd lock each shard once — at most num_shards acquisitions —
// where K single Applys cost K.
TEST(BatchSemantics, GroupedBatchLocksEachShardOnce) {
  constexpr size_t kShards = 4;
  constexpr int kCommands = 32;
  ShardedTtkv engine(kShards);

  BatchCmd batch;
  for (int i = 0; i < kCommands; ++i) {
    batch.commands.push_back(PutCmd{"grp/key" + std::to_string(i), Value(i), Seconds(i + 1)});
  }
  const uint64_t before = engine.shard_lock_acquisitions();
  engine.ApplyBatch(std::span(batch.commands));
  const uint64_t batched_locks = engine.shard_lock_acquisitions() - before;
  EXPECT_LE(batched_locks, kShards);
  EXPECT_GE(batched_locks, 1u);

  // The same commands applied one by one cost one lock each.
  ShardedTtkv single(kShards);
  const uint64_t single_before = single.shard_lock_acquisitions();
  for (const Command& cmd : batch.commands) single.Apply(cmd);
  EXPECT_EQ(single.shard_lock_acquisitions() - single_before,
            static_cast<uint64_t>(kCommands));

  // Both execution strategies produce identical stores.
  EXPECT_EQ(engine.Snapshot(), single.Snapshot());
}

TEST(BatchSemantics, LockCountSurfacesInStats) {
  ShardedTtkv engine(2);
  engine.Put("/locked", Value(1), Seconds(1));
  const EngineStats stats = engine.Stats();
  EXPECT_GE(stats.lock_acquisitions, 1u);
}

// --- Backend factory --------------------------------------------------------

TEST(Backends, MakeEngineSelectsImplementations) {
  api::BackendOptions options;
  options.backend = "local";
  EXPECT_STREQ(api::MakeEngine(options)->backend_name(), "local");
  options.backend = "sharded";
  options.num_shards = 2;
  EXPECT_STREQ(api::MakeEngine(options)->backend_name(), "sharded");
  options.backend = "remote";
  EXPECT_STREQ(api::MakeEngine(options)->backend_name(), "remote");
  options.backend = "redis";
  EXPECT_THROW(api::MakeEngine(options), Error);
}

TEST(Backends, EngineHelpersSurfaceErrorsAsStoreError) {
  api::LocalEngine engine;
  EXPECT_THROW(api::Put(engine, "", Value(1)), StoreError);
  ShardedTtkv sharded(2);
  EXPECT_THROW(api::Put(sharded, "", Value(1)), StoreError);
}

}  // namespace
}  // namespace ocasta
