#include <gtest/gtest.h>

#include "common/error.h"
#include "configstore/file_config_store.h"
#include "logger/flush_diff.h"
#include "logger/recorder.h"
#include "logger/trace.h"

namespace ocasta {
namespace {

AccessEvent MakeEvent(TimeMicros t, const std::string& app, AccessOp op, const std::string& key,
                      Value value = Value()) {
  return AccessEvent{.timestamp = t,
                     .app = app,
                     .store = StoreKind::kGconf,
                     .op = op,
                     .key = key,
                     .value = std::move(value)};
}

// ----- TraceLog -----------------------------------------------------------------

TEST(TraceLog, StatsMatchTable1Semantics) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(0), "A", AccessOp::kWrite, "k1", Value(1)));
  log.OnAccess(MakeEvent(Seconds(10), "A", AccessOp::kRead, "k1"));
  log.OnAccess(MakeEvent(Days(2), "B", AccessOp::kDelete, "k2"));
  const TraceStats stats = log.Stats();
  EXPECT_EQ(stats.writes, 2u);  // Write + delete.
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.num_keys, 2u);
  EXPECT_DOUBLE_EQ(stats.days, 2.0);
}

TEST(TraceLog, FiltersByAppAndTime) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(1), "A", AccessOp::kWrite, "k", Value(1)));
  log.OnAccess(MakeEvent(Seconds(2), "B", AccessOp::kWrite, "k", Value(2)));
  log.OnAccess(MakeEvent(Seconds(3), "A", AccessOp::kWrite, "k", Value(3)));
  EXPECT_EQ(log.FilterByApp("A").size(), 2u);
  EXPECT_EQ(log.FilterByApp("C").size(), 0u);
  EXPECT_EQ(log.FilterByTime(Seconds(2), Seconds(3)).size(), 1u);  // [begin, end).
  EXPECT_EQ(log.AppNames(), (std::vector<std::string>{"A", "B"}));
}

TEST(TraceLog, TextRoundTripsExactly) {
  TraceLog log;
  log.OnAccess(MakeEvent(123456789, "App with\ttab", AccessOp::kWrite, "key\nnewline",
                         Value("value\twith specials")));
  log.OnAccess(MakeEvent(Seconds(99), "B", AccessOp::kDelete, "k2"));
  log.OnAccess(MakeEvent(Seconds(100), "B", AccessOp::kWrite, "k3",
                         Value(std::vector<std::string>{"x", "y"})));
  const TraceLog parsed = TraceLog::ParseText(log.ToText());
  ASSERT_EQ(parsed.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) EXPECT_EQ(parsed.events()[i], log.events()[i]);
}

TEST(TraceLog, ParseRejectsMalformedLines) {
  EXPECT_THROW(TraceLog::ParseText("only\ttwo\n"), ParseError);
}

TEST(TraceLog, InsertEventsKeepsOrder) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(10), "A", AccessOp::kWrite, "k", Value(1)));
  log.OnAccess(MakeEvent(Seconds(30), "A", AccessOp::kWrite, "k", Value(3)));
  log.InsertEvents({MakeEvent(Seconds(20), "A", AccessOp::kWrite, "k", Value(2)),
                    MakeEvent(Seconds(5), "A", AccessOp::kWrite, "k", Value(0)),
                    MakeEvent(Seconds(40), "A", AccessOp::kWrite, "k", Value(4))});
  ASSERT_EQ(log.size(), 5u);
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log.events()[i - 1].timestamp, log.events()[i].timestamp);
  }
  EXPECT_EQ(log.events()[0].value, Value(0));
  EXPECT_EQ(log.events()[4].value, Value(4));
}

TEST(TraceLog, InsertAfterEqualTimestamps) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(10), "A", AccessOp::kWrite, "k", Value("existing")));
  log.InsertEvents({MakeEvent(Seconds(10), "A", AccessOp::kWrite, "k", Value("injected"))});
  EXPECT_EQ(log.events()[0].value, Value("existing"));  // Injected lands after.
  EXPECT_EQ(log.events()[1].value, Value("injected"));
}

TEST(TraceLog, RemoveEventsForKeys) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(1), "A", AccessOp::kWrite, "k1", Value(1)));
  log.OnAccess(MakeEvent(Seconds(5), "A", AccessOp::kWrite, "k1", Value(2)));
  log.OnAccess(MakeEvent(Seconds(5), "B", AccessOp::kWrite, "k1", Value(3)));  // Other app.
  log.OnAccess(MakeEvent(Seconds(6), "A", AccessOp::kWrite, "k2", Value(4)));  // Other key.
  log.RemoveEventsForKeys("A", {"k1"}, Seconds(5));
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.events()[0].value, Value(1));  // Before cutoff: kept.
}

// ----- Recorders ------------------------------------------------------------------

TEST(TtkvRecorder, QuantizesToSeconds) {
  TTKV ttkv;
  TtkvRecorder recorder(ttkv);
  recorder.OnAccess(MakeEvent(Seconds(1) + 700'000, "A", AccessOp::kWrite, "k", Value(1)));
  EXPECT_EQ(ttkv.record("k").versions[0].timestamp, Seconds(1));
}

TEST(TtkvRecorder, UnquantizedKeepsMicros) {
  TTKV ttkv;
  TtkvRecorder recorder(ttkv, /*quantize_to_seconds=*/false);
  recorder.OnAccess(MakeEvent(Seconds(1) + 700'000, "A", AccessOp::kWrite, "k", Value(1)));
  EXPECT_EQ(ttkv.record("k").versions[0].timestamp, Seconds(1) + 700'000);
}

TEST(PerAppRecorder, SeparatesApplications) {
  PerAppRecorder recorder;
  recorder.OnAccess(MakeEvent(Seconds(1), "A", AccessOp::kWrite, "k", Value(1)));
  recorder.OnAccess(MakeEvent(Seconds(2), "B", AccessOp::kWrite, "k", Value(2)));
  recorder.OnAccess(MakeEvent(Seconds(3), "A", AccessOp::kRead, "k"));
  EXPECT_EQ(recorder.StoreFor("A").stats().writes, 1u);
  EXPECT_EQ(recorder.StoreFor("A").stats().reads, 1u);
  EXPECT_EQ(recorder.StoreFor("B").stats().writes, 1u);
  EXPECT_EQ(recorder.AppNames(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(recorder.FindStore("C"), nullptr);
}

TEST(ReplayTrace, RebuildsTtkvFromSavedTrace) {
  TraceLog log;
  log.OnAccess(MakeEvent(Seconds(1), "A", AccessOp::kWrite, "k", Value("v1")));
  log.OnAccess(MakeEvent(Seconds(2), "A", AccessOp::kDelete, "k"));
  TTKV ttkv;
  TtkvRecorder recorder(ttkv);
  ReplayTrace(TraceLog::ParseText(log.ToText()), recorder);
  EXPECT_EQ(ttkv.record("k").write_count, 1u);
  EXPECT_EQ(ttkv.record("k").delete_count, 1u);
  EXPECT_EQ(ttkv.latest("k"), std::nullopt);
}

// ----- Flush diff -----------------------------------------------------------------

TEST(FlushDiffLogger, InfersWritesAndDeletesFromFileTexts) {
  SimClock clock(Seconds(500));
  TraceLog log;
  FlushDiffLogger logger("Chrome Browser", ConfigFormat::kJson, clock, log);
  logger.OnFlush(R"({"a": 1, "b": 2})", R"({"a": 1, "c": 3})");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].op, AccessOp::kDelete);
  EXPECT_EQ(log.events()[0].key, "b");
  EXPECT_EQ(log.events()[1].op, AccessOp::kWrite);
  EXPECT_EQ(log.events()[1].key, "c");
  EXPECT_EQ(log.events()[1].value, Value(3));
  EXPECT_EQ(log.events()[1].timestamp, Seconds(500));
  EXPECT_EQ(log.events()[1].store, StoreKind::kFile);
}

TEST(FlushDiffLogger, AttachObservesStoreFlushes) {
  SimClock clock;
  TraceLog log;
  FileConfigStore store(ConfigFormat::kIni);
  FlushDiffLogger logger("App", ConfigFormat::kIni, clock, log);
  logger.Attach(store);
  store.Write("view/zoom", Value(2));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].key, "view/zoom");
}

TEST(FlushDiffLogger, CollapsesIntermediateWrites) {
  // The paper: "if they do not [flush after each modification], Ocasta will
  // not be able to tell if a key was modified several times between
  // flushes."
  SimClock clock;
  TraceLog log;
  FileConfigStore store(ConfigFormat::kIni, /*auto_flush=*/false);
  FlushDiffLogger logger("App", ConfigFormat::kIni, clock, log);
  logger.Attach(store);
  store.Write("k", Value(1));
  store.Write("k", Value(2));
  store.Write("k", Value(3));
  store.Flush();
  ASSERT_EQ(log.size(), 1u);  // One observed write, final value only.
  EXPECT_EQ(log.events()[0].value, Value(3));
}

TEST(FlushDiffLogger, FormatMismatchThrows) {
  SimClock clock;
  TraceLog log;
  FileConfigStore store(ConfigFormat::kJson);
  FlushDiffLogger logger("App", ConfigFormat::kIni, clock, log);
  EXPECT_THROW(logger.Attach(store), StoreError);
}

TEST(TeeSink, FansOutToAllSinks) {
  TraceLog a;
  TraceLog b;
  TeeSink tee({&a, &b});
  tee.OnAccess(MakeEvent(0, "A", AccessOp::kWrite, "k", Value(1)));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 1u);
}

}  // namespace
}  // namespace ocasta
