// Compile-smoke for common/thread_safety.h: every macro in the set is
// exercised on a miniature annotated class, and the file rides the tier-1
// gcc build with -Wall -Wextra -Werror. Off-clang the macros must expand
// to NOTHING — if one ever leaks tokens into a gcc build (a stray
// attribute, an unbalanced paren), this file is where it breaks. Under
// the clang-threadsafety CI build the same code doubles as a positive
// example the analysis must accept warning-free.
#include "common/thread_safety.h"

#include <gtest/gtest.h>

#include <optional>

#include "common/lockdep.h"

namespace ocasta {
namespace {

// A miniature capability of its own, independent of lockdep, so the raw
// CAPABILITY / ACQUIRE / TRY_ACQUIRE / ASSERT macros are all used on a
// type this test controls.
class OCASTA_CAPABILITY("mutex") ToyMutex {
 public:
  void lock() OCASTA_ACQUIRE() {}
  bool try_lock() OCASTA_TRY_ACQUIRE(true) { return true; }
  void unlock() OCASTA_RELEASE() {}
  void lock_shared() OCASTA_ACQUIRE_SHARED() {}
  bool try_lock_shared() OCASTA_TRY_ACQUIRE_SHARED(true) { return true; }
  void unlock_shared() OCASTA_RELEASE_SHARED() {}
  void unlock_generic() OCASTA_RELEASE_GENERIC() {}
  void AssertHeld() OCASTA_ASSERT_CAPABILITY(this) {}
  void AssertSharedHeld() OCASTA_ASSERT_SHARED_CAPABILITY(this) {}
};

class OCASTA_SCOPED_CAPABILITY ToyGuard {
 public:
  explicit ToyGuard(ToyMutex& mu) OCASTA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~ToyGuard() OCASTA_RELEASE() { mu_.unlock(); }
  ToyGuard(const ToyGuard&) = delete;
  ToyGuard& operator=(const ToyGuard&) = delete;

 private:
  ToyMutex& mu_;
};

class Annotated {
 public:
  ToyMutex& mu() OCASTA_RETURN_CAPABILITY(mu_) { return mu_; }

  void Set(int v) OCASTA_EXCLUDES(mu_) {
    const ToyGuard guard(mu_);
    SetLocked(v);
  }

  int GetLocked() const OCASTA_REQUIRES_SHARED(mu_) { return value_; }

  int Get() OCASTA_EXCLUDES(mu_) {
    const ToyGuard guard(mu_);
    return GetLocked();
  }

  int* handle() OCASTA_REQUIRES(mu_) { return pointee_; }

 private:
  void SetLocked(int v) OCASTA_REQUIRES(mu_) { value_ = v; }

  ToyMutex mu_;
  int value_ OCASTA_GUARDED_BY(mu_) = 0;
  int* pointee_ OCASTA_PT_GUARDED_BY(mu_) = nullptr;
};

// Justification: deliberately reads the guarded field without the lock to
// prove the opt-out macro compiles; the read races with nothing (single
// thread) and exists purely as macro-surface coverage.
int ReadUnlocked(Annotated& a) OCASTA_NO_THREAD_SAFETY_ANALYSIS {
  return a.Get();
}

TEST(ThreadSafetySmoke, AnnotatedCodeRunsIdentically) {
  Annotated a;
  a.Set(42);
  EXPECT_EQ(a.Get(), 42);
  EXPECT_EQ(ReadUnlocked(a), 42);
}

TEST(ThreadSafetySmoke, LockdepGuardsCompose) {
  // The four lockdep guard types built on the annotated wrappers — the
  // exact shapes the production code uses.
  lockdep::ordered_mutex mu{lockdep::kLocalEngineClass};
  lockdep::ordered_shared_mutex smu{lockdep::kShardClass};
  {
    const lockdep::guard lock(mu);
  }
  {
    lockdep::relock_guard lock(mu);
    lock.unlock();
    lock.lock();
  }
  {
    const lockdep::writer_guard lock(smu);
  }
  {
    const lockdep::reader_guard lock(smu);
  }
  SUCCEED();
}

}  // namespace
}  // namespace ocasta
