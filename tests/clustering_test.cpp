#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "clustering/correlation.h"
#include "clustering/engine.h"
#include "clustering/hac.h"
#include "clustering/window.h"

namespace ocasta {
namespace {

WriteEvent W(double t_seconds, uint32_t key) {
  return WriteEvent{.timestamp = Seconds(t_seconds), .key_id = key, .is_delete = false};
}

// ----- Window grouping --------------------------------------------------------------

TEST(GroupWrites, SplitsOnGapsLargerThanWindow) {
  const auto groups = GroupWrites({W(0, 0), W(0.5, 1), W(1.4, 2), W(3.0, 3)}, Seconds(1));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key_ids, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(groups[1].key_ids, (std::vector<uint32_t>{3}));
  EXPECT_EQ(groups[0].start, Seconds(0));
  EXPECT_EQ(groups[0].end, Seconds(1.4));
}

TEST(GroupWrites, ZeroWindowRequiresIdenticalTimestamps) {
  const auto groups = GroupWrites({W(1, 0), W(1, 1), W(2, 2)}, 0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key_ids, (std::vector<uint32_t>{0, 1}));
}

TEST(GroupWrites, GapMeasuredFromGroupsLastWrite) {
  // Chained writes 0.9 s apart all merge under a 1 s window even though the
  // first and last are far apart — the sliding-window semantics.
  const auto groups = GroupWrites({W(0, 0), W(0.9, 1), W(1.8, 2), W(2.7, 3)}, Seconds(1));
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].key_ids.size(), 4u);
}

TEST(GroupWrites, DeduplicatesKeysWithinGroup) {
  const auto groups = GroupWrites({W(0, 5), W(0.1, 5), W(0.2, 5)}, Seconds(1));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].key_ids, (std::vector<uint32_t>{5}));
}

TEST(GroupWrites, EmptyAndErrorCases) {
  EXPECT_TRUE(GroupWrites({}, Seconds(1)).empty());
  EXPECT_THROW(GroupWrites({W(2, 0), W(1, 1)}, Seconds(1)), Error);  // Unsorted.
  EXPECT_THROW(GroupWrites({}, -1), Error);
}

TEST(GroupWrites, GapExactlyEqualToWindowStaysInOneGroup) {
  // The boundary is inclusive: a new group starts only when the gap exceeds
  // the window, so a gap of exactly one window keeps the burst together.
  const auto groups = GroupWrites({W(0, 0), W(1.0, 1)}, Seconds(1));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].key_ids, (std::vector<uint32_t>{0, 1}));

  // One microsecond past the window starts a new group.
  const WriteEvent just_past{.timestamp = Seconds(1) + 1, .key_id = 1, .is_delete = false};
  const auto split = GroupWrites({W(0, 0), just_past}, Seconds(1));
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].key_ids, (std::vector<uint32_t>{0}));
  EXPECT_EQ(split[1].key_ids, (std::vector<uint32_t>{1}));
}

TEST(GroupWrites, ZeroWindowSplitsOnAnyGap) {
  // With a zero-width window even a one-microsecond gap separates groups.
  const WriteEvent one_later{.timestamp = Seconds(1) + 1, .key_id = 1, .is_delete = false};
  const auto groups = GroupWrites({W(1, 0), one_later}, 0);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key_ids, (std::vector<uint32_t>{0}));
  EXPECT_EQ(groups[1].key_ids, (std::vector<uint32_t>{1}));
}

TEST(GroupWrites, UnsortedInputWithinWindowThrows) {
  // Out-of-order events are rejected even when both would land in the same
  // group — the window pass relies on the TTKV's time-ordered event stream.
  EXPECT_THROW(GroupWrites({W(1, 0), W(0.5, 1)}, Seconds(1)), Error);
}

// ----- Correlation --------------------------------------------------------------------

TEST(Correlation, PaperFormula) {
  // A written 4 times, B written 2 times, together twice:
  // corr = 2/4 + 2/2 = 1.5.
  std::vector<CoModGroup> groups;
  groups.push_back({0, 0, {0, 1}});
  groups.push_back({0, 0, {0, 1}});
  groups.push_back({0, 0, {0}});
  groups.push_back({0, 0, {0}});
  const CorrelationResult result = ComputeCorrelations(groups, 2);
  EXPECT_EQ(result.group_counts[0], 4u);
  EXPECT_EQ(result.group_counts[1], 2u);
  EXPECT_DOUBLE_EQ(result.correlation.Get(0, 1, 0), 1.5);
  EXPECT_DOUBLE_EQ(result.correlation.Get(1, 0, 0), 1.5);  // Symmetric.
}

TEST(Correlation, AlwaysTogetherIsTwo) {
  std::vector<CoModGroup> groups{{0, 0, {2, 3}}, {0, 0, {2, 3}}};
  const CorrelationResult result = ComputeCorrelations(groups, 4);
  EXPECT_DOUBLE_EQ(result.correlation.Get(2, 3, 0), 2.0);
}

TEST(Correlation, NeverTogetherIsAbsent) {
  std::vector<CoModGroup> groups{{0, 0, {0}}, {0, 0, {1}}};
  const CorrelationResult result = ComputeCorrelations(groups, 2);
  EXPECT_EQ(result.correlation.size(), 0u);
  EXPECT_DOUBLE_EQ(result.correlation.Get(0, 1, -1), -1);  // Fallback returned.
}

TEST(Correlation, BoundedByTwo) {
  // Random-ish memberships: correlation must stay in (0, 2].
  std::vector<CoModGroup> groups;
  for (uint32_t i = 0; i < 30; ++i) {
    groups.push_back({0, 0, {i % 5, (i * 3 + 1) % 5, (i * 7 + 2) % 5}});
    auto& ids = groups.back().key_ids;
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  }
  const CorrelationResult result = ComputeCorrelations(groups, 5);
  for (const auto& [pair, corr] : result.correlation.raw()) {
    EXPECT_GT(corr, 0.0);
    EXPECT_LE(corr, 2.0);
  }
}

// ----- HAC ------------------------------------------------------------------------------

PairTable Distances(std::initializer_list<std::tuple<uint32_t, uint32_t, double>> entries) {
  PairTable table;
  for (const auto& [a, b, d] : entries) table.Set(a, b, d);
  return table;
}

TEST(Hac, MergesWithinThreshold) {
  const auto clusters = AgglomerativeCluster({0, 1, 2}, Distances({{0, 1, 0.5}, {1, 2, 0.9}}),
                                             Linkage::kComplete, 0.5);
  // 0-1 merge at 0.5; 2 stays out (0.9 > threshold; complete linkage to
  // {0,1} is infinite for 0-2 anyway).
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(clusters[1], (std::vector<uint32_t>{2}));
}

TEST(Hac, CompleteLinkageUsesMaxDistance) {
  // 0-1 close, 1-2 close, 0-2 far: complete linkage refuses the chain.
  const auto complete = AgglomerativeCluster(
      {0, 1, 2}, Distances({{0, 1, 0.1}, {1, 2, 0.1}, {0, 2, 10.0}}), Linkage::kComplete, 1.0);
  EXPECT_EQ(complete.size(), 2u);

  // Single linkage happily chains all three.
  const auto single = AgglomerativeCluster(
      {0, 1, 2}, Distances({{0, 1, 0.1}, {1, 2, 0.1}, {0, 2, 10.0}}), Linkage::kSingle, 1.0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].size(), 3u);
}

TEST(Hac, AverageLinkageBetweenSingleAndComplete) {
  // 0-2 distance 1.5: average of (0.1, 1.5) = 0.8 <= 1.0 so average linkage
  // merges; complete (1.5) does not.
  const auto distances = Distances({{0, 1, 0.1}, {1, 2, 0.1}, {0, 2, 1.5}});
  EXPECT_EQ(AgglomerativeCluster({0, 1, 2}, distances, Linkage::kComplete, 1.0).size(), 2u);
  EXPECT_EQ(AgglomerativeCluster({0, 1, 2}, distances, Linkage::kAverage, 1.0).size(), 1u);
}

TEST(Hac, IsolatedPointsStaySingletons) {
  const auto clusters =
      AgglomerativeCluster({7, 9, 11}, Distances({{7, 9, 0.2}}), Linkage::kComplete, 1.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<uint32_t>{7, 9}));
  EXPECT_EQ(clusters[1], (std::vector<uint32_t>{11}));
}

TEST(Hac, ThresholdZeroNeverMergesPositiveDistances) {
  const auto clusters =
      AgglomerativeCluster({0, 1}, Distances({{0, 1, 0.5}}), Linkage::kComplete, 0.0);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(Hac, EmptyInput) {
  EXPECT_TRUE(AgglomerativeCluster({}, PairTable{}, Linkage::kComplete, 1.0).empty());
}

TEST(Hac, PartitionProperty) {
  // Every input id appears exactly once in the output, for all linkages.
  PairTable distances;
  Rng rng(5);
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 40; ++i) ids.push_back(i);
  for (int e = 0; e < 120; ++e) {
    const auto a = static_cast<uint32_t>(rng.next_below(40));
    const auto b = static_cast<uint32_t>(rng.next_below(40));
    if (a != b) distances.Set(a, b, 0.3 + rng.next_double());
  }
  for (Linkage linkage : {Linkage::kComplete, Linkage::kSingle, Linkage::kAverage}) {
    const auto clusters = AgglomerativeCluster(ids, distances, linkage, 0.8);
    std::vector<int> seen(40, 0);
    for (const auto& cluster : clusters) {
      for (uint32_t id : cluster) ++seen[id];
    }
    for (uint32_t i = 0; i < 40; ++i) EXPECT_EQ(seen[i], 1) << "id " << i;
  }
}

TEST(Hac, NegativeThresholdThrows) {
  EXPECT_THROW(AgglomerativeCluster({0}, PairTable{}, Linkage::kComplete, -1.0), Error);
}

// ----- Engine (end-to-end over a TTKV) -----------------------------------------------

TEST(Engine, ClustersAlwaysTogetherKeys) {
  TTKV ttkv;
  // a+b always together (3 bursts); c independent.
  for (int burst = 0; burst < 3; ++burst) {
    ttkv.record_write("a", Value(burst), Seconds(100 * burst));
    ttkv.record_write("b", Value(burst), Seconds(100 * burst));
  }
  ttkv.record_write("c", Value(1), Seconds(55));
  ttkv.record_write("c", Value(2), Seconds(155));

  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters.multi_cluster_count(), 1u);
  EXPECT_EQ(clusters.cluster_of(ttkv.key_id("a")), clusters.cluster_of(ttkv.key_id("b")));
  EXPECT_NE(clusters.cluster_of(ttkv.key_id("a")), clusters.cluster_of(ttkv.key_id("c")));
}

TEST(Engine, ThresholdTwoRejectsMostlyTogetherPairs) {
  TTKV ttkv;
  for (int burst = 0; burst < 4; ++burst) {
    ttkv.record_write("a", Value(burst), Seconds(100 * burst));
    if (burst < 3) ttkv.record_write("b", Value(burst), Seconds(100 * burst));
  }
  ClusteringParams params;  // Threshold 2.
  EXPECT_EQ(ClusterKeys(ttkv, params).multi_cluster_count(), 0u);
  params.threshold_correlation = 1.5;  // corr = 3/4 + 3/3 = 1.75 >= 1.5.
  EXPECT_EQ(ClusterKeys(ttkv, params).multi_cluster_count(), 1u);
}

TEST(Engine, ExcludesNeverModifiedKeys) {
  TTKV ttkv;
  ttkv.record_write("w", Value(1), 0);
  ttkv.record_reads("readonly", 100);
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  EXPECT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters.cluster_of(ttkv.key_id("readonly")), ClusterSet::kNoCluster);
}

TEST(Engine, VersionCountsCountBursts) {
  TTKV ttkv;
  for (int burst = 0; burst < 5; ++burst) {
    ttkv.record_write("a", Value(burst), Seconds(100 * burst));
    ttkv.record_write("b", Value(burst), Seconds(100 * burst));
  }
  const ClusterSet clusters = ClusterKeys(ttkv, ClusteringParams{});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters.cluster(0).version_count, 5u);
  EXPECT_EQ(clusters.cluster(0).last_modified, Seconds(400));
}

TEST(Engine, AnnotateClustersIgnoresUnclusteredKeys) {
  // Regression: a key mapped to kNoCluster (or out of the index's range) must
  // be skipped, not used to index clusters[] out of bounds.
  std::vector<CoModGroup> groups;
  groups.push_back({Seconds(1), Seconds(2), {0, 1, 2}});
  groups.push_back({Seconds(3), Seconds(4), {1, 7}});  // 7 beyond the index.
  const std::vector<uint32_t> cluster_index = {0, ClusterSet::kNoCluster, 0};
  std::vector<KeyCluster> clusters(1);
  clusters[0].keys = {0, 2};
  AnnotateClusters(groups, cluster_index, clusters);
  EXPECT_EQ(clusters[0].version_count, 1u);  // Only the first group touches it.
  EXPECT_EQ(clusters[0].last_modified, Seconds(2));
}

TEST(Engine, MultiThreadedClusteringMatchesSingleThreaded) {
  // A randomised trace large enough to engage the threaded correlation pass:
  // correlated triples mixed with solo writes across 400 keys.
  Rng rng(11);
  TTKV ttkv;
  TimeMicros t = 0;
  for (int burst = 0; burst < 5000; ++burst) {
    t += Seconds(10);
    const uint32_t base = static_cast<uint32_t>(rng.next_below(400));
    if (burst % 3 == 0) {
      for (uint32_t i = 0; i < 3; ++i) {
        ttkv.record_write("k" + std::to_string((base + i) % 400), Value(burst),
                          t + static_cast<TimeMicros>(i) * Seconds(0.1));
      }
    } else {
      ttkv.record_write("k" + std::to_string(base), Value(burst), t);
    }
  }

  for (const Linkage linkage : {Linkage::kComplete, Linkage::kSingle, Linkage::kAverage}) {
    ClusteringParams params;
    params.threshold_correlation = 1.0;
    params.linkage = linkage;
    params.num_threads = 1;
    const ClusterSet single = ClusterKeys(ttkv, params);
    for (const int threads : {4, 0}) {  // 0 = hardware concurrency.
      params.num_threads = threads;
      const ClusterSet multi = ClusterKeys(ttkv, params);
      ASSERT_EQ(single.size(), multi.size()) << LinkageName(linkage);
      for (size_t i = 0; i < single.size(); ++i) {
        EXPECT_EQ(single.cluster(i).keys, multi.cluster(i).keys);
        EXPECT_EQ(single.cluster(i).version_count, multi.cluster(i).version_count);
        EXPECT_EQ(single.cluster(i).last_modified, multi.cluster(i).last_modified);
      }
    }
  }
}

TEST(Engine, InvalidThresholdThrows) {
  TTKV ttkv;
  ClusteringParams params;
  params.threshold_correlation = 0;
  EXPECT_THROW(ClusterKeys(ttkv, params), Error);
}

// ----- ClusterSet ------------------------------------------------------------------------

TEST(ClusterSet, SizeMetrics) {
  std::vector<KeyCluster> clusters;
  clusters.push_back({{0, 1, 2}, 1, 0});
  clusters.push_back({{3}, 5, 0});
  clusters.push_back({{4, 5}, 2, 0});
  const ClusterSet set(std::move(clusters), 6);
  EXPECT_EQ(set.multi_cluster_count(), 2u);
  EXPECT_DOUBLE_EQ(set.average_multi_cluster_size(), 2.5);
  EXPECT_DOUBLE_EQ(set.average_cluster_size(), 2.0);
}

TEST(ClusterSet, RecoveryOrderLeastModifiedFirst) {
  std::vector<KeyCluster> clusters;
  clusters.push_back({{0}, 10, Seconds(1)});          // Noisy: last.
  clusters.push_back({{1}, 2, Seconds(5)});           // Tie on count...
  clusters.push_back({{2}, 2, Seconds(9)});           // ...more recent wins.
  clusters.push_back({{3}, 1, Seconds(2)});           // Least modified: first.
  const ClusterSet set(std::move(clusters), 4);
  EXPECT_EQ(set.RecoveryOrder(), (std::vector<size_t>{3, 2, 1, 0}));
}

TEST(ClusterSet, RejectsDuplicateMembership) {
  std::vector<KeyCluster> clusters;
  clusters.push_back({{0, 1}, 1, 0});
  clusters.push_back({{1}, 1, 0});
  EXPECT_THROW(ClusterSet(std::move(clusters), 2), Error);
}

}  // namespace
}  // namespace ocasta
