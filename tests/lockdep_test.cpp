// Lockdep runtime tests: prove the checker actually catches the historic
// ordering hazards (tracker-vs-shard, append-vs-sync), accepts every legal
// chain, and reports violations with both lock sites. The violation tests
// are death tests — lockdep aborts on the first inconsistent acquisition,
// which is exactly the property that lets a single-threaded test prove a
// cross-thread deadlock would occur (see src/common/lockdep.h).
//
// Under a build without -DOCASTA_LOCKDEP=ON every test here SKIPs: the
// pass-through mutexes detect nothing by design.
#include "common/lockdep.h"

#include <gtest/gtest.h>

#include <mutex>
#include <shared_mutex>

#include "api/command.h"
#include "server/sharded_ttkv.h"

namespace ocasta {
namespace {

using lockdep::ordered_mutex;
using lockdep::ordered_shared_mutex;

#define SKIP_WITHOUT_LOCKDEP()                                              \
  if (!lockdep::kEnabled) {                                                 \
    GTEST_SKIP() << "built without OCASTA_LOCKDEP; nothing to check here";  \
  }                                                                         \
  ::testing::FLAGS_gtest_death_test_style = "threadsafe"

// The invariant this whole layer exists for: DrainTracker holds
// tracker_mu_ while sweeping shards, so a writer taking tracker_mu_ while
// holding a shard lock is a deadlock waiting for the right interleaving.
// Lockdep must refuse the bad order on the spot, naming BOTH locks and
// printing both acquisition sites.
TEST(LockdepDeath, TrackerAcquiredUnderShardLockAborts) {
  SKIP_WITHOUT_LOCKDEP();
  EXPECT_DEATH(
      {
        ordered_shared_mutex shard_mu{lockdep::kShardClass};
        ordered_mutex tracker_mu{lockdep::kTrackerClass};
        std::shared_lock<ordered_shared_mutex> shard(shard_mu);
        std::lock_guard<ordered_mutex> tracker(tracker_mu);  // Forbidden order.
      },
      "lockdep: RANK VIOLATION: acquiring \"ShardedTtkv::tracker_mu_\" \\(rank 40\\) "
      "while holding \"ShardedTtkv::Shard::mu\" \\(rank 50\\)");
}

// The report must carry both stacks, or the abort is a puzzle instead of a
// diagnosis.
TEST(LockdepDeath, ViolationReportNamesBothLockSites) {
  SKIP_WITHOUT_LOCKDEP();
  EXPECT_DEATH(
      {
        ordered_mutex sync_mu{lockdep::kWalSyncClass};
        ordered_mutex append_mu{lockdep::kWalAppendClass};
        std::lock_guard<ordered_mutex> sync(sync_mu);
        std::lock_guard<ordered_mutex> append(append_mu);  // sync before append: reversed.
      },
      "held lock acquired here(.|\n)*violating acquisition \\(current stack\\)");
}

// Deliberate double-lock, exempted from the static analysis: clang's
// -Wthread-safety correctly flags it at compile time, but this test needs
// it to REACH the runtime checker and prove lockdep aborts too.
void AcquireTwice() OCASTA_NO_THREAD_SAFETY_ANALYSIS {
  ordered_mutex mu{lockdep::kTrackerClass};
  mu.lock();
  mu.lock();  // Self-deadlock; lockdep must fire before the hang.
}

TEST(LockdepDeath, RecursiveAcquisitionAborts) {
  SKIP_WITHOUT_LOCKDEP();
  EXPECT_DEATH(AcquireTwice(), "lockdep: RECURSIVE ACQUISITION");
}

// Deliberate unmatched unlock, exempted for the same reason as above.
void ReleaseUnheld() OCASTA_NO_THREAD_SAFETY_ANALYSIS {
  ordered_mutex mu{lockdep::kTrackerClass};
  mu.unlock();  // OnRelease aborts before the underlying unlock.
}

TEST(LockdepDeath, ReleaseOfUnheldLockAborts) {
  SKIP_WITHOUT_LOCKDEP();
  EXPECT_DEATH(ReleaseUnheld(), "lockdep: RELEASE OF UNHELD LOCK");
}

// Unranked classes skip the rank rule but stay covered by the edge graph:
// observing A->B then B->A is a cross-thread deadlock cycle even though no
// rank was violated.
TEST(LockdepDeath, UnrankedInversionCaughtByEdgeGraph) {
  SKIP_WITHOUT_LOCKDEP();
  static constexpr lockdep::LockClass kTestA{"test::A", lockdep::kUnranked};
  static constexpr lockdep::LockClass kTestB{"test::B", lockdep::kUnranked};
  EXPECT_DEATH(
      {
        ordered_mutex a{kTestA};
        ordered_mutex b{kTestB};
        {
          std::lock_guard<ordered_mutex> la(a);
          std::lock_guard<ordered_mutex> lb(b);  // Records edge A -> B.
        }
        std::lock_guard<ordered_mutex> lb(b);
        std::lock_guard<ordered_mutex> la(a);  // Reverse edge: cycle.
      },
      "lockdep: LOCK-ORDER INVERSION(.|\n)*test::B(.|\n)*test::A");
}

// Every legal chain in the rank table, innermost to outermost, in one
// acquisition: must be silent.
TEST(Lockdep, FullLegalChainIsSilent) {
  SKIP_WITHOUT_LOCKDEP();
  ordered_mutex checkpoint_mu{lockdep::kDurableCheckpointClass};
  ordered_mutex mutate_mu{lockdep::kDurableMutateClass};
  ordered_mutex tracker_mu{lockdep::kTrackerClass};
  ordered_shared_mutex shard_mu{lockdep::kShardClass};
  ordered_mutex append_mu{lockdep::kWalAppendClass};
  ordered_mutex sync_mu{lockdep::kWalSyncClass};

  std::lock_guard<ordered_mutex> l1(checkpoint_mu);
  std::lock_guard<ordered_mutex> l2(mutate_mu);
  std::lock_guard<ordered_mutex> l3(tracker_mu);
  std::unique_lock<ordered_shared_mutex> l4(shard_mu);
  std::lock_guard<ordered_mutex> l5(append_mu);
  std::lock_guard<ordered_mutex> l6(sync_mu);
  SUCCEED();
}

// Dropping a lock mid-chain resets the frontier: shard then (released)
// then tracker-then-shard again is legal, and LIFO is not required.
TEST(Lockdep, ReleaseResetsOrderingFrontier) {
  SKIP_WITHOUT_LOCKDEP();
  ordered_mutex tracker_mu{lockdep::kTrackerClass};
  ordered_shared_mutex shard_mu{lockdep::kShardClass};
  {
    std::unique_lock<ordered_shared_mutex> shard(shard_mu);
  }
  std::lock_guard<ordered_mutex> tracker(tracker_mu);
  std::unique_lock<ordered_shared_mutex> shard(shard_mu);
  SUCCEED();
}

// End-to-end: the real engine paths that motivated the ranks — sharded
// writes (shard locks), reads (shared locks), ClusterNow (tracker sweep
// over every shard) — run clean under the checker.
TEST(Lockdep, ShardedEngineOperationsAreClean) {
  SKIP_WITHOUT_LOCKDEP();
  ShardedTtkv engine(/*num_shards=*/4);
  for (int i = 0; i < 64; ++i) {
    const std::string key = "key-" + std::to_string(i % 8);
    engine.Apply(api::PutCmd{key, int64_t{i}, static_cast<TimeMicros>(i + 1)});
    engine.Apply(api::GetCmd{key});
  }
  const api::Result result = engine.Apply(api::ClusterNowCmd{});
  EXPECT_FALSE(api::IsError(result));
  const api::Result stats = engine.Apply(api::StatsCmd{});
  EXPECT_FALSE(api::IsError(stats));
}

}  // namespace
}  // namespace ocasta
